#!/usr/bin/env bash
# Offline CI gate: build, test, lint. Dependencies are vendored under
# vendor/, so no registry access is needed.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --offline
cargo test -q --offline
cargo test -q --offline --test crash_recovery --test fault_matrix
# Query-path determinism gate: the scheduled batch engine must answer
# identically to the sequential loop at every thread count.
cargo test -q --offline --test parallel_query_equivalence
# MVCC gate: N reader threads × M refresh cycles; every pinned batch must
# match exactly one committed generation, and retired generations must be
# reclaimed once the last pin drops.
cargo test -q --offline --test mvcc_concurrency
# HTTP serving gate: validation 4xx-not-panic, loopback answers bit-identical
# to sequential query(), refresh-during-queries snapshot consistency, 429
# overload with Retry-After.
cargo test -q --offline --test serving_http
cargo clippy --offline --workspace --all-targets -- -D warnings
# Error-path gate: ct-storage and ct-rtree deny clippy::{unwrap,expect}_used
# at the crate level (test code exempt); check their lib targets explicitly.
cargo clippy --offline -p ct-storage -p ct-rtree --lib -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --offline --workspace --no-deps -q
cargo run -q --release --offline --example quickstart > /dev/null
# Parallel query smoke: a scheduled, metrics-enabled Figure 12 run.
cargo run -q --release --offline -p ct-bench --bin fig12_queries -- \
  --sf 0.005 --queries 20 --threads 2 --metrics target/fig12_metrics.json > /dev/null
# Scaling baseline: exits non-zero if the parallel batch reads more pages
# than the sequential one; BENCH_queries.json records wall/I-O/sched stats.
cargo run -q --release --offline -p ct-bench --bin bench_queries -- \
  --sf 0.05 --queries 200 --threads 4 --json BENCH_queries.json > /dev/null
# Reader-during-update smoke: queries run concurrently with merge-pack
# refreshes; exits non-zero on any snapshot-isolation violation.
cargo run -q --release --offline -p ct-bench --bin bench_mixed -- \
  --sf 0.005 --queries 8 --threads 2 > /dev/null
# Serving smoke: ephemeral-port server, one JSON query, one CSV query, one
# refresh, clean shutdown.
cargo run -q --release --offline --example serving_smoke > /dev/null
# Serving baseline: real server over loopback at two client counts; exits
# non-zero if batched dispatch reads more pages per query than per-request
# sequential dispatch allows (results/bench_serving_baseline.json), or any
# query errors. BENCH_serving.json records qps and tail latencies.
cargo run -q --release --offline -p ct-bench --bin bench_serving -- \
  --sf 0.01 --queries 160 --threads 4 --json BENCH_serving.json > /dev/null
# Delta-tier gates: tree+delta answers must equal a rebuilt base∪delta
# engine across compaction, and concurrent /ingest + /query + merge-pack
# must produce zero 5xx with monotonic visibility and an exact drained
# total on shutdown.
cargo test -q --offline --test ingest_delta --test ingest_stress
# Ingest smoke: ephemeral-port server, rows visible to the next query at
# generation 0, post-compaction answer bit-identical, clean drain.
cargo run -q --release --offline --example ingest_smoke > /dev/null
# Streaming ingestion baseline: /ingest ack throughput vs the Table 7
# batch-refresh path; exits non-zero on any invariant failure (freshness,
# bit-identity after compaction, shutdown drain) or if the streaming/refresh
# throughput ratio drops below results/bench_ingest_baseline.json.
cargo run -q --release --offline -p ct-bench --bin bench_ingest -- \
  --sf 0.01 --threads 2 --json BENCH_ingest.json > /dev/null
# Partitioned-forest gates: sharded answers must be bit-identical to the
# unsharded engine for every query class at shards ∈ {1..4}, and a crashed
# multi-shard refresh must recover to a consistent cut.
cargo test -q --offline --test sharded_equivalence --test sharded_recovery
# Sharded scatter-gather smoke: shard-count sweep {1,2,4,8}; exits non-zero
# if any sharded answer diverges from shards=1 or if shards=4 reads more
# pages per query than the gather-overhead allowance in
# results/bench_shards_baseline.json. BENCH_shards.json records build
# wall/speedup, per-query page I/O, and the shard-skew report.
cargo run -q --release --offline -p ct-bench --bin bench_shards -- \
  --sf 0.02 --queries 28 --threads 4 --json BENCH_shards.json > /dev/null
# Answer-cache equivalence gate: random query/refresh/ingest/compact
# interleavings must answer bit-identically with the cache on and off (both
# engines), and a stamp mismatch must force a miss after every flip.
cargo test -q --offline --test cache_equivalence
# Answer-cache smoke: identical Zipf-skewed serving runs cache-on vs
# cache-off; exits non-zero on any answer mismatch, zero hits, or if the
# cached run reads more pages per query than
# results/bench_cache_baseline.json allows. BENCH_cache.json records hit
# rate and the page economy.
cargo run -q --release --offline -p ct-bench --bin bench_cache -- \
  --sf 0.01 --queries 240 --threads 2 --json BENCH_cache.json > /dev/null
