#!/usr/bin/env bash
# Offline CI gate: build, test, lint. Dependencies are vendored under
# vendor/, so no registry access is needed.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --offline
cargo test -q --offline
cargo test -q --offline --test crash_recovery --test fault_matrix
cargo clippy --offline --workspace --all-targets -- -D warnings
# Error-path gate: ct-storage and ct-rtree deny clippy::{unwrap,expect}_used
# at the crate level (test code exempt); check their lib targets explicitly.
cargo clippy --offline -p ct-storage -p ct-rtree --lib -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --offline --workspace --no-deps -q
cargo run -q --release --offline --example quickstart > /dev/null
