#!/usr/bin/env bash
# Offline CI gate: build, test, lint. Dependencies are vendored under
# vendor/, so no registry access is needed.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --offline
cargo test -q --offline
cargo clippy --offline --workspace --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --offline --workspace --no-deps -q
cargo run -q --release --offline --example quickstart > /dev/null
