//! Quickstart: build a small warehouse, materialize views in Cubetrees,
//! answer slice queries, apply a bulk-incremental refresh, and read the
//! phase-attributed metrics of the whole run (OBSERVABILITY.md).
//!
//! Run with: `cargo run --release --example quickstart`

use cubetrees_repro::obs::Recorder;
use cubetrees_repro::{
    AggFn, Catalog, ConventionalConfig, ConventionalEngine, CubetreeConfig, CubetreeEngine,
    Relation, RolapEngine, SliceQuery, ViewDef, ViewId,
};

fn main() {
    // --- 1. Schema: a star warehouse with three dimensions (paper Fig. 1).
    let mut catalog = Catalog::new();
    let partkey = catalog.add_attr("partkey", 50);
    let suppkey = catalog.add_attr("suppkey", 10);
    let custkey = catalog.add_attr("custkey", 20);

    // --- 2. Fact data: (partkey, suppkey, custkey) + quantity.
    let mut keys = Vec::new();
    let mut quantities = Vec::new();
    let mut x: u64 = 2024;
    for _ in 0..5_000 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        keys.extend_from_slice(&[x % 50 + 1, (x >> 11) % 10 + 1, (x >> 23) % 20 + 1]);
        quantities.push(((x >> 37) % 50) as i64 + 1);
    }
    let fact = Relation::from_fact(vec![partkey, suppkey, custkey], keys, &quantities);

    // --- 3. Views to materialize (a slice of the paper's selected set V).
    let views = vec![
        ViewDef::new(0, vec![partkey, suppkey, custkey], AggFn::Sum),
        ViewDef::new(1, vec![partkey, suppkey], AggFn::Sum),
        ViewDef::new(2, vec![custkey], AggFn::Sum),
        ViewDef::new(3, vec![], AggFn::Sum),
    ];

    // --- 4. Load the Cubetree engine (SelectMapping → sort → pack), with an
    // enabled metrics recorder so the run can be attributed phase by phase.
    let recorder = Recorder::enabled();
    let config = CubetreeConfig::new(views.clone()).with_recorder(recorder.clone());
    let mut cubetrees = CubetreeEngine::new(catalog.clone(), config).unwrap();
    cubetrees.load(&fact).unwrap();
    println!(
        "loaded {} fact rows into {} Cubetrees ({} bytes)",
        fact.len(),
        cubetrees.forest().unwrap().plan().tree_count(),
        cubetrees.storage_bytes()
    );

    // --- 5. Slice queries (paper §3.1's query model).
    // "Give me the total sales of every part bought from supplier 3" (Q1).
    let q1 = SliceQuery::new(vec![partkey], vec![(suppkey, 3)]);
    let mut rows = cubetrees.query(&q1).unwrap();
    rows.sort_by(|a, b| a.key.cmp(&b.key));
    println!("\n{}:", q1.display(&catalog));
    for r in rows.iter().take(5) {
        println!("  part {:>3} -> {}", r.key[0], r.agg);
    }
    println!("  ... {} parts total", rows.len());

    // The grand total lives at the origin of one tree (the `none` view).
    let total = cubetrees.query(&SliceQuery::new(vec![], vec![])).unwrap();
    println!("\ntotal quantity (V{{none}}): {}", total[0].agg);

    // --- 6. Bulk-incremental refresh (paper §3.4): merge-pack a delta.
    let mut dkeys = Vec::new();
    let mut dquant = Vec::new();
    for _ in 0..500 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        dkeys.extend_from_slice(&[x % 50 + 1, (x >> 11) % 10 + 1, (x >> 23) % 20 + 1]);
        dquant.push(((x >> 37) % 50) as i64 + 1);
    }
    let delta = Relation::from_fact(vec![partkey, suppkey, custkey], dkeys, &dquant);
    cubetrees.update(&delta).unwrap();
    let new_total = cubetrees.query(&SliceQuery::new(vec![], vec![])).unwrap();
    println!(
        "after a {}-row increment: {} (+{})",
        delta.len(),
        new_total[0].agg,
        new_total[0].agg - total[0].agg
    );

    // --- 7. Sanity: the conventional configuration answers identically.
    let conv_cfg = ConventionalConfig::new(views).with_index(ViewId(0), vec![custkey, suppkey, partkey]);
    let mut conventional = ConventionalEngine::new(catalog.clone(), conv_cfg).unwrap();
    conventional.load(&fact).unwrap();
    conventional.update(&delta).unwrap();
    let conv_total = conventional.query(&SliceQuery::new(vec![], vec![])).unwrap();
    assert_eq!(conv_total[0].agg, new_total[0].agg);
    println!("\nconventional engine agrees: {}", conv_total[0].agg);
    println!(
        "storage: cubetrees {} bytes vs conventional {} bytes",
        cubetrees.storage_bytes(),
        conventional.storage_bytes()
    );

    // --- 8. Where did the time and I/O go? The recorder's phase tree
    // attributes wall-clock, page I/O and buffer hit rate to each stage.
    let snapshot = recorder.snapshot();
    println!("\nphase tree of the cubetree run:");
    print!("{}", snapshot.render_tree());
    println!(
        "entries packed: {}, merge-pack output entries: {}",
        snapshot.counters.get("rtree.pack.entries").copied().unwrap_or(0),
        snapshot.counters.get("rtree.merge.out_entries").copied().unwrap_or(0),
    );
    // Root phases must account for every page the engine touched.
    assert_eq!(
        snapshot.root_io_total().total_io(),
        cubetrees.env().snapshot().to_delta().total_io(),
        "phase attribution reconciles with the global I/O counters"
    );

    // --- 9. Exit loudly if any environment failed to clean up after itself:
    // a swallowed temp-dir removal error must not masquerade as success.
    drop(cubetrees);
    drop(conventional);
    let leaked = cubetrees_repro::storage::env::cleanup_failures();
    assert_eq!(leaked, 0, "{leaked} environment director(ies) failed to clean up");
}
