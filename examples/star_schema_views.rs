//! The paper's §2.4 "more complete example": nine views (Figure 6) over a
//! four-dimension warehouse with hierarchies, mapped by SelectMapping onto
//! three Cubetrees (Figure 7), then queried through rollup and drill-down.
//!
//! Run with: `cargo run --release --example star_schema_views`

use cubetrees_repro::core::query::execute_forest_query;
use cubetrees_repro::core::{select_mapping, CubetreeForest};
use cubetrees_repro::rtree::LeafFormat;
use cubetrees_repro::storage::StorageEnv;
use cubetrees_repro::tpcd::{TpcdConfig, TpcdWarehouse};
use cubetrees_repro::{AggFn, SliceQuery, ViewDef};

fn main() {
    let warehouse = TpcdWarehouse::new(TpcdConfig { scale_factor: 0.002, seed: 7 });
    let catalog = warehouse.catalog().clone();
    let a = *warehouse.attrs();
    let fact = warehouse.generate_fact();
    println!(
        "warehouse: {} parts, {} suppliers, {} customers, {} fact rows\n",
        warehouse.parts(),
        warehouse.suppliers(),
        warehouse.customers(),
        fact.len()
    );

    // Figure 6: the selected set of views V1..V9.
    let views = vec![
        ViewDef::new(1, vec![a.brand], AggFn::Count), // V1: count(*) by brand
        ViewDef::new(2, vec![a.suppkey, a.partkey], AggFn::Sum),
        ViewDef::new(3, vec![a.brand, a.suppkey, a.custkey, a.month], AggFn::Sum),
        ViewDef::new(4, vec![a.partkey, a.suppkey, a.custkey, a.year], AggFn::Sum),
        ViewDef::new(5, vec![a.partkey, a.custkey, a.year], AggFn::Sum),
        ViewDef::new(6, vec![a.custkey], AggFn::Avg),
        ViewDef::new(7, vec![a.custkey, a.partkey], AggFn::Avg),
        ViewDef::new(8, vec![a.partkey], AggFn::Sum),
        ViewDef::new(9, vec![a.suppkey, a.custkey], AggFn::Sum),
    ];

    // Figure 7: SelectMapping groups the views by arity into three trees.
    let plan = select_mapping(&views);
    println!("SelectMapping allocation (paper Figure 7):");
    for (i, tree) in plan.trees.iter().enumerate() {
        let names: Vec<String> = tree
            .views
            .iter()
            .map(|id| {
                views.iter().find(|v| v.id == *id).unwrap().display_name(&catalog)
            })
            .collect();
        println!("  R{}{{{} dims}}: {}", i + 1, tree.dims, names.join("  "));
    }

    // Build the forest and run the paper's drill-down narrative (§2.1):
    // total sales per year → months of one year → brand detail.
    let env = StorageEnv::new("star-schema-example").unwrap();
    let forest =
        CubetreeForest::build(&env, &catalog, &fact, &views, &[], LeafFormat::ZeroElided)
            .unwrap();

    println!("\ndrill-down: total quantity per year (from V5 by rollup):");
    let by_year = run(&forest, &env, &catalog, SliceQuery::new(vec![a.year], vec![]));
    for (k, v) in &by_year {
        println!("  year {k}: {v}");
    }

    let year = by_year.last().unwrap().0;
    println!("\n… per month of year {year} (from V3 by rollup):");
    for (k, v) in run(
        &forest,
        &env,
        &catalog,
        SliceQuery::new(vec![a.month], vec![(a.year, year)]),
    ) {
        println!("  month {k}: {v}");
    }

    println!("\nroll-up: count of line items per brand (V1, count(*)):");
    for (k, v) in run(&forest, &env, &catalog, SliceQuery::new(vec![a.brand], vec![])) {
        println!("  brand {k}: {v}");
    }

    println!("\naverage quantity per customer (V6, avg) — first five:");
    let avg = run(&forest, &env, &catalog, SliceQuery::new(vec![a.custkey], vec![]));
    for (k, v) in avg.iter().take(5) {
        println!("  customer {k}: {v:.2}");
    }
}

fn run(
    forest: &CubetreeForest,
    env: &StorageEnv,
    catalog: &cubetrees_repro::Catalog,
    q: SliceQuery,
) -> Vec<(u64, f64)> {
    let mut rows = execute_forest_query(forest, env, catalog, &q).unwrap();
    rows.sort_by(|x, y| x.key.cmp(&y.key));
    rows.into_iter().map(|r| (r.key.first().copied().unwrap_or(0), r.agg)).collect()
}
