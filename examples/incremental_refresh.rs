//! The paper's §3.4 refresh experiment in miniature: apply a 10% fact-table
//! increment three ways and compare their cost under the 1998 disk model.
//!
//! Run with: `cargo run --release --example incremental_refresh`

use cubetrees_repro::workload::paper_configs;
use cubetrees_repro::{
    ConventionalEngine, CubetreeEngine, Relation, RolapEngine, SliceQuery, TpcdConfig,
    TpcdWarehouse,
};

/// Measures simulated seconds between two snapshots of one engine.
macro_rules! sim_of {
    ($engine:expr, $body:expr) => {{
        let before = $engine.env().snapshot();
        $body;
        $engine
            .env()
            .snapshot()
            .since(&before)
            .simulated_seconds($engine.env().cost_model())
    }};
}

fn main() {
    let warehouse = TpcdWarehouse::new(TpcdConfig { scale_factor: 0.01, seed: 1 });
    let fact = warehouse.generate_fact();
    let delta = warehouse.generate_increment(0.1);
    let mut setup = paper_configs(&warehouse);
    // Scale the buffer pool to the dataset like the paper's testbed (32 MB
    // of RAM against ~600 MB of views): with everything cached the random
    // I/O that ruins row-at-a-time maintenance would never reach the disk.
    setup.conventional.pool_pages = 256;
    setup.cubetree.pool_pages = 256;
    println!("base: {} rows; increment: {} rows (10%)\n", fact.len(), delta.len());

    // Conventional, incremental (row-at-a-time through the B-trees).
    let mut conv_inc =
        ConventionalEngine::new(warehouse.catalog().clone(), setup.conventional.clone()).unwrap();
    conv_inc.load(&fact).unwrap();
    let t_inc = sim_of!(conv_inc, conv_inc.update(&delta).unwrap());

    // Conventional, recompute from scratch over fact ∪ delta.
    let mut conv_rec =
        ConventionalEngine::new(warehouse.catalog().clone(), setup.conventional.clone()).unwrap();
    conv_rec.load(&fact).unwrap();
    let mut keys = fact.keys.clone();
    keys.extend_from_slice(&delta.keys);
    let mut measures: Vec<i64> = fact.states.iter().map(|s| s.sum).collect();
    measures.extend(delta.states.iter().map(|s| s.sum));
    let combined = Relation::from_fact(fact.attrs.clone(), keys, &measures);
    let t_rec = sim_of!(conv_rec, conv_rec.recompute(&combined).unwrap());

    // Cubetrees: one sequential merge-pack per tree.
    let mut cube =
        CubetreeEngine::new(warehouse.catalog().clone(), setup.cubetree.clone()).unwrap();
    cube.load(&fact).unwrap();
    let t_cube = sim_of!(cube, cube.update(&delta).unwrap());

    println!("refresh cost (simulated 1998-disk seconds — paper Table 7):");
    println!("  conventional incremental : {t_inc:>9.2}s   (paper: > 24 hours)");
    println!("  conventional recompute   : {t_rec:>9.2}s   (paper: 12h 59m)");
    println!("  cubetree merge-pack      : {t_cube:>9.2}s   (paper: 8m 24s)");
    println!(
        "\n  merge-pack speedup: {:.0}x over incremental, {:.1}x over recompute",
        t_inc / t_cube,
        t_rec / t_cube
    );

    // All three must agree afterwards.
    let a = warehouse.attrs();
    let q = SliceQuery::new(vec![a.suppkey], vec![(a.partkey, 11)]);
    let norm = |mut rows: Vec<cubetrees_repro::common::query::QueryRow>| {
        rows.sort_by(|x, y| x.key.cmp(&y.key));
        rows
    };
    let r1 = norm(conv_inc.query(&q).unwrap());
    let r2 = norm(conv_rec.query(&q).unwrap());
    let r3 = norm(cube.query(&q).unwrap());
    assert_eq!(r1, r2);
    assert_eq!(r1, r3);
    println!("\nall three engines agree on {} ({} rows)", q.display(warehouse.catalog()), r1.len());
}
