//! Serving smoke: start a real ct-server on an ephemeral loopback port,
//! run one JSON query, one CSV query and one refresh through it, then shut
//! down cleanly. Exercised by ci.sh; exits non-zero (panics) on any
//! unexpected status or mismatched answer.
//!
//! Run with: `cargo run --release --example serving_smoke`

use cubetrees_repro::server::{CtServer, ServerConfig};
use cubetrees_repro::workload::serving::HttpClient;
use cubetrees_repro::{
    AggFn, Catalog, CubetreeConfig, CubetreeEngine, Relation, RolapEngine, ViewDef,
};
use std::sync::Arc;

fn main() {
    // A small two-dimensional warehouse with the full view materialized.
    let mut catalog = Catalog::new();
    let partkey = catalog.add_attr("partkey", 20);
    let suppkey = catalog.add_attr("suppkey", 8);
    let views = vec![
        ViewDef::new(0, vec![partkey, suppkey], AggFn::Sum),
        ViewDef::new(1, vec![suppkey], AggFn::Sum),
    ];
    let mut keys = Vec::new();
    let mut quantities = Vec::new();
    let mut x: u64 = 7;
    for _ in 0..2_000 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        keys.extend_from_slice(&[x % 20 + 1, (x >> 13) % 8 + 1]);
        quantities.push(((x >> 29) % 30) as i64 + 1);
    }
    let fact = Relation::from_fact(vec![partkey, suppkey], keys, &quantities);
    let mut engine = CubetreeEngine::new(catalog, CubetreeConfig::new(views)).unwrap();
    engine.load(&fact).unwrap();

    // Ephemeral port; the handle reports where the OS put us.
    let server = CtServer::start(Arc::new(engine), ServerConfig::default()).unwrap();
    let addr = server.addr().to_string();
    println!("serving on http://{addr}");
    let mut client = HttpClient::connect(&addr).unwrap();

    let health = client.request("GET", "/healthz", "").unwrap();
    assert_eq!(health.status, 200, "{}", health.text());
    println!("healthz   → {}", health.text());

    let json = client
        .request("POST", "/query", r#"{"group_by": ["suppkey"], "where": {"partkey": 3}}"#)
        .unwrap();
    assert_eq!(json.status, 200, "{}", json.text());
    println!("json query → {}", json.text());

    let csv = client
        .request(
            "POST",
            "/query",
            r#"{"group_by": ["suppkey"], "where": {"partkey": 3}, "format": "csv"}"#,
        )
        .unwrap();
    assert_eq!(csv.status, 200, "{}", csv.text());
    assert_eq!(csv.header("content-type"), Some("text/csv"));
    println!("csv query  →\n{}", csv.text());

    let refresh = client
        .request(
            "POST",
            "/refresh",
            r#"{"attrs": ["partkey", "suppkey"], "rows": [[3, 1, 100], [3, 2, 50]]}"#,
        )
        .unwrap();
    assert_eq!(refresh.status, 200, "{}", refresh.text());
    assert!(refresh.text().contains("\"generation\": 1"), "{}", refresh.text());
    println!("refresh    → {}", refresh.text());

    // The same query now answers from generation 1 with the delta folded in.
    let after = client
        .request("POST", "/query", r#"{"group_by": ["suppkey"], "where": {"partkey": 3}}"#)
        .unwrap();
    assert_eq!(after.status, 200, "{}", after.text());
    assert!(after.text().contains("\"generation\": 1"), "{}", after.text());
    println!("post-refresh → {}", after.text());

    server.join();
    println!("clean shutdown");
}
