//! Ingest smoke: start a real ct-server on an ephemeral loopback port,
//! stream rows in through `POST /ingest`, and check the two promises the
//! delta tier makes: the rows are visible to the very next query *before*
//! any compaction (generation still 0), and after the background
//! compactor folds the tier into the packed trees the same query answers
//! bit-identically from the new generation. Exercised by ci.sh; exits
//! non-zero (panics) on any unexpected status or mismatched answer.
//!
//! Run with: `cargo run --release --example ingest_smoke`

use cubetrees_repro::core::delta::DeltaConfig;
use cubetrees_repro::server::compactor::IngestConfig;
use cubetrees_repro::server::{CtServer, ServerConfig};
use cubetrees_repro::workload::serving::HttpClient;
use cubetrees_repro::{
    AggFn, Catalog, CubetreeConfig, CubetreeEngine, Relation, RolapEngine, ViewDef,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Strip the leading `"generation": N` stamp so pre- and post-compaction
/// answers can be compared for bit-identity of the actual rows.
fn rows_part(text: &str) -> String {
    let at = text.find("\"columns\"").expect("answer has a columns field");
    text[at..].to_string()
}

fn main() {
    let mut catalog = Catalog::new();
    let partkey = catalog.add_attr("partkey", 20);
    let suppkey = catalog.add_attr("suppkey", 8);
    let views = vec![
        ViewDef::new(0, vec![partkey, suppkey], AggFn::Sum),
        ViewDef::new(1, vec![suppkey], AggFn::Sum),
    ];
    let mut keys = Vec::new();
    let mut quantities = Vec::new();
    let mut x: u64 = 7;
    for _ in 0..2_000 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        keys.extend_from_slice(&[x % 20 + 1, (x >> 13) % 8 + 1]);
        quantities.push(((x >> 29) % 30) as i64 + 1);
    }
    let fact = Relation::from_fact(vec![partkey, suppkey], keys, &quantities);
    let mut engine = CubetreeEngine::new(catalog, CubetreeConfig::new(views)).unwrap();
    engine.load(&fact).unwrap();

    // Size/byte thresholds out of reach; only the age trigger fires, well
    // after the freshness probe below but quickly enough to watch here.
    let config = ServerConfig {
        ingest: IngestConfig {
            delta: DeltaConfig {
                max_age: Duration::from_millis(400),
                ..DeltaConfig::default()
            },
            check_interval: Duration::from_millis(25),
            ..IngestConfig::default()
        },
        ..ServerConfig::default()
    };
    let server = CtServer::start(Arc::new(engine), config).unwrap();
    let addr = server.addr().to_string();
    println!("serving on http://{addr}");
    let mut client = HttpClient::connect(&addr).unwrap();

    let probe = r#"{"group_by": ["suppkey"], "where": {"partkey": 3}}"#;
    let before = client.request("POST", "/query", probe).unwrap();
    assert_eq!(before.status, 200, "{}", before.text());
    println!("baseline     → {}", before.text());

    let ingest = client
        .request(
            "POST",
            "/ingest",
            r#"{"attrs": ["partkey", "suppkey"], "rows": [[3, 1, 100], [3, 2, 50]]}"#,
        )
        .unwrap();
    assert_eq!(ingest.status, 200, "{}", ingest.text());
    assert!(ingest.text().contains("\"accepted_rows\": 2"), "{}", ingest.text());
    assert!(ingest.text().contains("\"generation\": 0"), "{}", ingest.text());
    println!("ingest       → {}", ingest.text());

    // Freshness: the very next query sees the rows with no merge-pack run.
    let fresh = client.request("POST", "/query", probe).unwrap();
    assert_eq!(fresh.status, 200, "{}", fresh.text());
    assert!(fresh.text().contains("\"generation\": 0"), "{}", fresh.text());
    assert_ne!(rows_part(&fresh.text()), rows_part(&before.text()), "ingested rows invisible");
    println!("pre-compact  → {}", fresh.text());

    // Wait for the age threshold to trip and the compactor to publish.
    let deadline = Instant::now() + Duration::from_secs(10);
    let compacted = loop {
        let health = client.request("GET", "/healthz", "").unwrap();
        assert_eq!(health.status, 200, "{}", health.text());
        if !health.text().contains("\"generation\": 0") {
            break client.request("POST", "/query", probe).unwrap();
        }
        assert!(Instant::now() < deadline, "compactor never published a generation");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(compacted.status, 200, "{}", compacted.text());
    assert!(compacted.text().contains("\"generation\": 1"), "{}", compacted.text());
    assert_eq!(
        rows_part(&compacted.text()),
        rows_part(&fresh.text()),
        "post-compaction answer must be bit-identical to the delta-merged one"
    );
    println!("post-compact → {}", compacted.text());

    server.join();
    println!("clean shutdown");
}
