//! The paper's §3 selection pipeline end to end: measure the Data Cube
//! lattice over generated TPC-D data, run the GHRU97 1-greedy view/index
//! selection, and show how SelectMapping places the winners.
//!
//! Run with: `cargo run --release --example view_selection`

use cubetrees_repro::cube::estimate::measure_size;
use cubetrees_repro::cube::{one_greedy, GreedyConfig, Lattice, SizeEstimator, Structure};
use cubetrees_repro::core::select_mapping;
use cubetrees_repro::tpcd::{TpcdConfig, TpcdWarehouse, SUPPLIERS_PER_PART};
use cubetrees_repro::{AggFn, ViewDef};

fn main() {
    let warehouse = TpcdWarehouse::new(TpcdConfig { scale_factor: 0.01, seed: 42 });
    let catalog = warehouse.catalog();
    let a = warehouse.attrs();
    let fact = warehouse.generate_fact();
    let base = vec![a.partkey, a.suppkey, a.custkey];

    // --- 1. Lattice sizes: measured, and estimated via Cardenas with the
    // partsupp-correlation override.
    let mut lattice = Lattice::new(base.clone());
    let mut estimator = SizeEstimator::new(catalog, fact.len() as u64);
    estimator.add_domain_override(
        &[a.partkey, a.suppkey],
        SUPPLIERS_PER_PART * warehouse.parts(),
    );
    println!("lattice node sizes ({} fact rows):", fact.len());
    println!("  {:<28} {:>10} {:>10}", "node", "measured", "estimated");
    for m in 0..lattice.len() {
        let attrs = lattice.nodes[m].attrs.clone();
        let measured = measure_size(catalog, &fact, &attrs);
        let estimated = estimator.estimate(&attrs);
        lattice.set_size(m, measured);
        let names: Vec<&str> = attrs.iter().map(|&x| catalog.attr(x).name.as_str()).collect();
        let label = if names.is_empty() { "none".into() } else { names.join(",") };
        println!("  {label:<28} {measured:>10} {estimated:>10}");
    }

    // --- 2. 1-greedy selection (paper: V = {psc, ps, c, s, p, none},
    // I = the three rotations on the top view).
    let config = GreedyConfig { max_structures: 9, ..Default::default() };
    let result = one_greedy(catalog, &lattice, fact.len() as u64, &config);
    println!("\n1-greedy picks (benefit in tuples):");
    for (i, (pick, benefit)) in result.picks.iter().enumerate() {
        let label = match pick {
            Structure::View { node } => {
                let names: Vec<&str> = lattice.nodes[*node]
                    .attrs
                    .iter()
                    .map(|&x| catalog.attr(x).name.as_str())
                    .collect();
                if names.is_empty() {
                    "materialize V{none}".into()
                } else {
                    format!("materialize V{{{}}}", names.join(","))
                }
            }
            Structure::Index { order, .. } => {
                let names: Vec<&str> =
                    order.iter().map(|x| catalog.attr(*x).name.as_str()).collect();
                format!("build index I{{{}}}", names.join(","))
            }
        };
        println!("  {:>2}. {label:<50} benefit {benefit:>14.0}", i + 1);
    }
    println!("  space used: {} tuples", result.space_used);

    // --- 2b. The same algorithm at the paper's scale (SF 1 statistics:
    // 6,001,215 fact rows). At small scale factors the size ratios between
    // lattice nodes shift and the greedy legitimately picks a slightly
    // different set; with the paper's statistics it reproduces the paper's
    // exact selection.
    // The SF-1 run needs SF-1 attribute cardinalities in its catalog, not
    // the scaled-down ones used above.
    let paper_w = TpcdWarehouse::new(TpcdConfig { scale_factor: 1.0, seed: 42 });
    let pa = paper_w.attrs();
    let mut paper_lattice = Lattice::new(vec![pa.partkey, pa.suppkey, pa.custkey]);
    let sf1 = [
        (vec![], 1u64),
        (vec![pa.partkey], 200_000),
        (vec![pa.suppkey], 10_000),
        (vec![pa.custkey], 150_000),
        (vec![pa.partkey, pa.suppkey], 799_541),
        (vec![pa.partkey, pa.custkey], 5_993_105),
        (vec![pa.suppkey, pa.custkey], 5_989_120),
        (vec![pa.partkey, pa.suppkey, pa.custkey], 5_950_922),
    ];
    for (attrs, size) in &sf1 {
        let m = paper_lattice.mask_of(attrs).unwrap();
        paper_lattice.set_size(m, *size);
    }
    let paper_result = one_greedy(paper_w.catalog(), &paper_lattice, 6_001_215, &config);
    println!("\nat SF 1 statistics the greedy reproduces the paper's sets:");
    let mut v_names: Vec<String> = paper_result
        .views
        .iter()
        .map(|&m| {
            let names: Vec<&str> = paper_lattice.nodes[m]
                .attrs
                .iter()
                .map(|&x| paper_w.catalog().attr(x).name.as_str())
                .collect();
            if names.is_empty() { "none".into() } else { names.join(",") }
        })
        .collect();
    v_names.sort();
    println!("  V = {{{}}}", v_names.join(" | "));
    let i_names: Vec<String> = paper_result
        .indexes
        .iter()
        .map(|(_, o)| {
            let names: Vec<&str> =
                o.iter().map(|x| paper_w.catalog().attr(*x).name.as_str()).collect();
            format!("I{{{}}}", names.join(","))
        })
        .collect();
    println!("  I = {{{}}}", i_names.join(" | "));

    // --- 3. SelectMapping over the selected views.
    let mut views: Vec<ViewDef> = result
        .views
        .iter()
        .enumerate()
        .map(|(i, &m)| ViewDef::new(i as u32, lattice.nodes[m].attrs.clone(), AggFn::Sum))
        .collect();
    views.sort_by_key(|v| std::cmp::Reverse(v.arity()));
    let plan = select_mapping(&views);
    println!("\nSelectMapping allocation of the selected views (paper Table 5):");
    for (t, spec) in plan.trees.iter().enumerate() {
        let names: Vec<String> = spec
            .views
            .iter()
            .map(|id| views.iter().find(|v| v.id == *id).unwrap().display_name(catalog))
            .collect();
        println!("  R{}{{{} dims}}: {}", t + 1, spec.dims, names.join("  "));
    }
}
