//! # cubetrees-repro — umbrella crate
//!
//! Reproduction of *Kotidis & Roussopoulos, "An Alternative Storage
//! Organization for ROLAP Aggregate Views Based on Cubetrees" (SIGMOD
//! 1998)*. This crate re-exports the whole workspace so examples,
//! integration tests and downstream users can depend on one crate.
//!
//! Layer map (bottom-up):
//!
//! | crate | role |
//! |---|---|
//! | [`obs`] | metrics registry, histograms, hierarchical phase spans |
//! | [`common`] | points, rectangles, aggregates, schemas, queries, cost model |
//! | [`storage`] | pages, pager with seq/rand I/O accounting, buffer pool, external sort |
//! | [`btree`] | B+-trees (conventional baseline indexing) |
//! | [`heap`] | heap tables (conventional baseline storage) |
//! | [`rtree`] | packed, compressed R-trees with merge-pack |
//! | [`cube`] | lattice, sort-based cube computation, 1-greedy selection |
//! | [`tpcd`] | TPC-D-like generator (DBGEN substitute) |
//! | [`core`] | SelectMapping, the Cubetree forest, both engines |
//! | [`workload`] | random slice queries, batch runner, the paper's §3 setup |
//! | [`server`] | HTTP/1.1 serving layer with admission-controlled batching |

pub use ct_btree as btree;
pub use ct_common as common;
pub use ct_cube as cube;
pub use ct_heap as heap;
pub use ct_obs as obs;
pub use ct_rtree as rtree;
pub use ct_server as server;
pub use ct_storage as storage;
pub use ct_tpcd as tpcd;
pub use ct_workload as workload;
pub use cubetree as core;

pub use ct_common::{AggFn, Catalog, SliceQuery, ViewDef, ViewId};
pub use ct_cube::Relation;
pub use ct_tpcd::{TpcdConfig, TpcdWarehouse};
pub use cubetree::engine::{
    ConventionalConfig, ConventionalEngine, CubetreeConfig, CubetreeEngine, RolapEngine,
};
pub use cubetree::shard::{ShardRouter, ShardSpec, ShardedConfig, ShardedEngine};
