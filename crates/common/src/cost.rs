//! The simulated-time I/O cost model.
//!
//! The paper's headline ratios (10:1 queries, 100:1 updates, 16:1 load) are
//! driven by one mechanism: the Cubetree organization turns *random* page
//! I/O into *sequential* page I/O (its packing "permits sequential writes on
//! the disk", §1 and §3.2). The paper's testbed — an UltraSPARC I with 32 MB
//! of RAM and a 1998 SCSI disk — made that distinction roughly a 50× cost
//! gap per page. On 2026 hardware with an OS page cache and NVMe storage the
//! distinction all but vanishes from wall-clock, so this reproduction counts
//! page accesses by class and converts them to simulated elapsed time with
//! 1998-calibrated constants. Benchmarks report both wall-clock and
//! simulated time; the *shape* claims live in the simulated metric, as argued
//! in DESIGN.md.

/// Costs of page accesses and tuple handling, in microseconds/nanoseconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Sequential 8 KiB page read (disk transfer at ~10 MB/s): µs.
    pub seq_read_us: f64,
    /// Random 8 KiB page read (dominated by seek + rotational delay): µs.
    pub rand_read_us: f64,
    /// Sequential page write: µs.
    pub seq_write_us: f64,
    /// Random page write: µs.
    pub rand_write_us: f64,
    /// CPU cost to process one tuple (compare/aggregate/copy): ns.
    pub cpu_tuple_ns: f64,
}

impl CostModel {
    /// A 1998-era disk: ~10 MB/s sustained transfer (0.8 ms per 8 KiB page)
    /// and ~12 ms average seek + rotational latency for a random access.
    pub const DISK_1998: CostModel = CostModel {
        seq_read_us: 800.0,
        rand_read_us: 12_000.0,
        seq_write_us: 800.0,
        rand_write_us: 12_000.0,
        cpu_tuple_ns: 2_000.0,
    };

    /// A model with no I/O weighting — useful in tests that only care about
    /// logical behaviour.
    pub const FREE: CostModel =
        CostModel { seq_read_us: 0.0, rand_read_us: 0.0, seq_write_us: 0.0, rand_write_us: 0.0, cpu_tuple_ns: 0.0 };

    /// Simulated elapsed seconds for a set of access counts.
    pub fn seconds(
        &self,
        seq_reads: u64,
        rand_reads: u64,
        seq_writes: u64,
        rand_writes: u64,
        tuples: u64,
    ) -> f64 {
        let us = seq_reads as f64 * self.seq_read_us
            + rand_reads as f64 * self.rand_read_us
            + seq_writes as f64 * self.seq_write_us
            + rand_writes as f64 * self.rand_write_us;
        us / 1e6 + tuples as f64 * self.cpu_tuple_ns / 1e9
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::DISK_1998
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_io_dominates() {
        let m = CostModel::DISK_1998;
        // 1000 random reads should cost ~15x more than 1000 sequential reads.
        let seq = m.seconds(1000, 0, 0, 0, 0);
        let rnd = m.seconds(0, 1000, 0, 0, 0);
        assert!(rnd / seq > 10.0, "random/sequential ratio {}", rnd / seq);
    }

    #[test]
    fn free_model_costs_nothing() {
        assert_eq!(CostModel::FREE.seconds(10, 10, 10, 10, 10), 0.0);
    }

    #[test]
    fn seconds_are_additive() {
        let m = CostModel::DISK_1998;
        let a = m.seconds(1, 2, 3, 4, 5);
        let b = m.seconds(10, 20, 30, 40, 50);
        let ab = m.seconds(11, 22, 33, 44, 55);
        assert!((a + b - ab).abs() < 1e-12);
    }
}
