//! Warehouse schema metadata: attributes, hierarchies, views, catalog.
//!
//! The paper's framework (§2.1–2.2) is schema-agnostic: a view is identified
//! by its *projection list* — the attributes from the fact and dimension
//! tables it groups by — plus the aggregate it materializes. Dimension
//! hierarchies (`day → month → year`, `partkey → brand`) make a view over a
//! coarse attribute derivable from one over the fine attribute it rolls up.

use crate::agg::AggFn;
use crate::error::{CtError, Result};

/// Identifier of a groupable attribute (fact foreign key or dimension
/// attribute). Indexes into the catalog's attribute table.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct AttrId(pub u16);

/// Identifier of a materialized view.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ViewId(pub u32);

/// Metadata of one groupable attribute.
#[derive(Clone, Debug)]
pub struct AttrMeta {
    /// Human-readable name (`"partkey"`, `"part.brand"`, …).
    pub name: String,
    /// Number of distinct values; the attribute's domain is `1..=cardinality`
    /// (zero is reserved for coordinate padding, paper §2.2).
    pub cardinality: u64,
}

/// A functional dependency `base → derived` realized as a lookup table:
/// `map[base_value]` is the derived value (1-based; index 0 is unused).
///
/// Example: `partkey → part.brand` with `map[p] = brand(p)`.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    /// The fine attribute (determines the coarse one).
    pub base: AttrId,
    /// The coarse attribute.
    pub derived: AttrId,
    /// `map[v]` for `v in 1..=card(base)`; `map[0]` is a placeholder.
    pub map: Vec<u64>,
}

impl Hierarchy {
    /// Applies the dependency to a base value.
    ///
    /// # Panics
    /// Panics if `base_value` is outside the base domain.
    #[inline]
    pub fn apply(&self, base_value: u64) -> u64 {
        self.map[base_value as usize]
    }
}

/// Definition of one materialized aggregate view ("summary table").
#[derive(Clone, Debug)]
pub struct ViewDef {
    /// Stable identifier.
    pub id: ViewId,
    /// The projection list — the group-by attributes, in declaration order.
    /// Order matters: it is the coordinate mapping order (`a1 → x`, `a2 → y`,
    /// …) and therefore determines the view's physical sort order.
    pub projection: Vec<AttrId>,
    /// The aggregate the view materializes.
    pub agg: AggFn,
}

impl ViewDef {
    /// Creates a view definition.
    pub fn new(id: u32, projection: Vec<AttrId>, agg: AggFn) -> Self {
        ViewDef { id: ViewId(id), projection, agg }
    }

    /// The paper's arity `|V|`: number of attributes in the projection list.
    #[inline]
    pub fn arity(&self) -> usize {
        self.projection.len()
    }

    /// True if this view groups by exactly the given attribute set
    /// (order-insensitive).
    pub fn covers_exactly(&self, attrs: &[AttrId]) -> bool {
        self.arity() == attrs.len() && attrs.iter().all(|a| self.projection.contains(a))
    }

    /// Display name in the paper's notation, e.g. `V{partkey,suppkey}`.
    pub fn display_name(&self, catalog: &Catalog) -> String {
        let names: Vec<&str> =
            self.projection.iter().map(|a| catalog.attr(*a).name.as_str()).collect();
        if names.is_empty() {
            "V{none}".to_string()
        } else {
            format!("V{{{}}}", names.join(","))
        }
    }
}

/// The warehouse catalog: every groupable attribute plus the functional
/// dependencies between them.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    attrs: Vec<AttrMeta>,
    hierarchies: Vec<Hierarchy>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers an attribute and returns its id.
    pub fn add_attr(&mut self, name: impl Into<String>, cardinality: u64) -> AttrId {
        let id = AttrId(self.attrs.len() as u16);
        self.attrs.push(AttrMeta { name: name.into(), cardinality });
        id
    }

    /// Registers a functional dependency `base → derived`.
    ///
    /// # Panics
    /// Panics if the map is shorter than the base domain.
    pub fn add_hierarchy(&mut self, base: AttrId, derived: AttrId, map: Vec<u64>) {
        assert!(
            map.len() as u64 > self.attr(base).cardinality,
            "hierarchy map must cover 1..=card(base)"
        );
        self.hierarchies.push(Hierarchy { base, derived, map });
    }

    /// Attribute metadata.
    pub fn attr(&self, id: AttrId) -> &AttrMeta {
        &self.attrs[id.0 as usize]
    }

    /// Number of registered attributes.
    pub fn attr_count(&self) -> usize {
        self.attrs.len()
    }

    /// All registered hierarchies.
    pub fn hierarchies(&self) -> &[Hierarchy] {
        &self.hierarchies
    }

    /// Looks up an attribute by name.
    pub fn attr_by_name(&self, name: &str) -> Option<AttrId> {
        self.attrs.iter().position(|a| a.name == name).map(|i| AttrId(i as u16))
    }

    /// The chain of hierarchies turning a value of some attribute in `from`
    /// into a value of `target`, or `None` if `target` is not functionally
    /// determined by `from`.
    ///
    /// Returns `(source_attr, steps)`: apply the steps left-to-right to the
    /// source attribute's value. An empty chain means `target ∈ from`.
    pub fn derivation_path(&self, from: &[AttrId], target: AttrId) -> Option<(AttrId, Vec<&Hierarchy>)> {
        if from.contains(&target) {
            return Some((target, Vec::new()));
        }
        // Breadth-first over the dependency graph, starting from each source
        // attribute. Hierarchies chain (e.g. timekey → month → year).
        for &src in from {
            if let Some(path) = self.bfs_path(src, target) {
                return Some((src, path));
            }
        }
        None
    }

    fn bfs_path(&self, src: AttrId, target: AttrId) -> Option<Vec<&Hierarchy>> {
        use std::collections::VecDeque;
        let mut queue: VecDeque<(AttrId, Vec<&Hierarchy>)> = VecDeque::new();
        queue.push_back((src, Vec::new()));
        let mut seen = vec![false; self.attrs.len()];
        seen[src.0 as usize] = true;
        while let Some((at, path)) = queue.pop_front() {
            for h in &self.hierarchies {
                if h.base == at && !seen[h.derived.0 as usize] {
                    let mut p = path.clone();
                    p.push(h);
                    if h.derived == target {
                        return Some(p);
                    }
                    seen[h.derived.0 as usize] = true;
                    queue.push_back((h.derived, p));
                }
            }
        }
        None
    }

    /// True if a view grouping by `child` can be computed from one grouping by
    /// `parent` — the lattice *derives-from* relation extended with
    /// hierarchies ([MQM97, GHRU97], paper §3.2).
    pub fn derivable_from(&self, child: &[AttrId], parent: &[AttrId]) -> bool {
        child.iter().all(|&a| self.derivation_path(parent, a).is_some())
    }

    /// Translates one attribute value: `source_attrs[i]` ↦ `values[i]`
    /// provides the source tuple; computes the value of `target`.
    pub fn translate(
        &self,
        source_attrs: &[AttrId],
        values: &[u64],
        target: AttrId,
    ) -> Result<u64> {
        let (src, path) = self.derivation_path(source_attrs, target).ok_or_else(|| {
            CtError::unsupported(format!(
                "attribute {} is not derivable from the source projection",
                self.attr(target).name
            ))
        })?;
        let idx = source_attrs.iter().position(|&a| a == src).expect("src came from the list");
        let mut v = values[idx];
        for h in path {
            v = h.apply(v);
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_catalog() -> (Catalog, AttrId, AttrId, AttrId, AttrId) {
        let mut c = Catalog::new();
        let partkey = c.add_attr("partkey", 6);
        let suppkey = c.add_attr("suppkey", 3);
        let brand = c.add_attr("part.brand", 2);
        let timekey = c.add_attr("timekey", 4);
        let month = c.add_attr("month", 2);
        let year = c.add_attr("year", 1);
        // partkey → brand: parts 1-3 brand 1, parts 4-6 brand 2.
        c.add_hierarchy(partkey, brand, vec![0, 1, 1, 1, 2, 2, 2]);
        // timekey → month → year.
        c.add_hierarchy(timekey, month, vec![0, 1, 1, 2, 2]);
        c.add_hierarchy(month, year, vec![0, 1, 1]);
        let _ = (suppkey, year);
        (c, partkey, brand, timekey, month)
    }

    #[test]
    fn direct_membership_is_derivable() {
        let (c, partkey, _, timekey, _) = toy_catalog();
        assert!(c.derivable_from(&[partkey], &[partkey, timekey]));
        let (src, path) = c.derivation_path(&[partkey, timekey], partkey).unwrap();
        assert_eq!(src, partkey);
        assert!(path.is_empty());
    }

    #[test]
    fn hierarchy_derivation_single_step() {
        let (c, partkey, brand, _, _) = toy_catalog();
        assert!(c.derivable_from(&[brand], &[partkey]));
        assert!(!c.derivable_from(&[partkey], &[brand]), "FD only goes fine→coarse");
        assert_eq!(c.translate(&[partkey], &[5], brand).unwrap(), 2);
        assert_eq!(c.translate(&[partkey], &[2], brand).unwrap(), 1);
    }

    #[test]
    fn hierarchy_derivation_chains() {
        let (c, _, _, timekey, month) = toy_catalog();
        let year = c.attr_by_name("year").unwrap();
        // year derivable from timekey through month.
        assert!(c.derivable_from(&[year], &[timekey]));
        assert_eq!(c.translate(&[timekey], &[3], year).unwrap(), 1);
        assert_eq!(c.translate(&[month], &[2], year).unwrap(), 1);
    }

    #[test]
    fn translate_unreachable_errors() {
        let (c, partkey, _, _, month) = toy_catalog();
        assert!(c.translate(&[month], &[1], partkey).is_err());
    }

    #[test]
    fn view_names_match_paper_notation() {
        let (c, partkey, _, _, _) = toy_catalog();
        let suppkey = c.attr_by_name("suppkey").unwrap();
        let v = ViewDef::new(1, vec![partkey, suppkey], AggFn::Sum);
        assert_eq!(v.display_name(&c), "V{partkey,suppkey}");
        assert_eq!(v.arity(), 2);
        let none = ViewDef::new(2, vec![], AggFn::Sum);
        assert_eq!(none.display_name(&c), "V{none}");
        assert!(v.covers_exactly(&[suppkey, partkey]));
        assert!(!v.covers_exactly(&[partkey]));
    }

    #[test]
    fn attr_lookup_by_name() {
        let (c, partkey, _, _, _) = toy_catalog();
        assert_eq!(c.attr_by_name("partkey"), Some(partkey));
        assert_eq!(c.attr_by_name("nope"), None);
        assert_eq!(c.attr(partkey).cardinality, 6);
    }
}
