//! Points and rectangles in the Cubetree coordinate space.
//!
//! Paper §2.2 maps every tuple of a materialized view to a point in the index
//! space of an R-tree: attribute `a1` becomes the `x` coordinate, `a2` the
//! `y` coordinate, and so on. Coordinates are *positive* integers; when a view
//! of arity `k` is stored in a tree of dimensionality `d > k`, the unused
//! coordinates `k+1 ..= d` are set to **zero** (§2.3, "valid mapping"). The
//! scalar `none` view maps to the origin.
//!
//! Paper §2.3 fixes the packing sort order: the points of `R{x1,…,xd}` are
//! sorted first by `xd`, then `x(d-1)`, …, then `x1` (e.g. `R{x,y}` sorts in
//! `y,x` order). [`Point::packed_cmp`] implements exactly that order; it is
//! what keeps every view's tuples in a distinct contiguous run of leaves.

use std::cmp::Ordering;
use std::fmt;

/// Maximum dimensionality of a single Cubetree.
///
/// The paper's examples use up to 4 dimensions; real deployments cited in
/// \[KR97\] use warehouses with 10 dimension tables but map views of arity at
/// most `maxArity` per tree. Eight is comfortably above every workload in the
/// evaluation while keeping points `Copy`.
pub const MAX_DIMS: usize = 8;

/// Largest usable coordinate value. `u64::MAX` is reserved as an exclusive
/// sentinel so that "open" query ranges `[1, COORD_MAX]` can never overflow.
pub const COORD_MAX: u64 = u64::MAX - 1;

/// A point in a `dims`-dimensional Cubetree space.
///
/// Coordinates beyond `dims` are guaranteed to be zero, which lets a single
/// fixed-size array back points of any arity.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Point {
    coords: [u64; MAX_DIMS],
    dims: u8,
}

impl Point {
    /// Builds a point of dimensionality `dims` from the leading coordinates in
    /// `coords`; missing trailing coordinates are zero-padded (the paper's
    /// valid-mapping rule for views of arity `< dims`).
    ///
    /// # Panics
    /// Panics if `coords.len() > dims` or `dims > MAX_DIMS`.
    pub fn new(coords: &[u64], dims: usize) -> Self {
        assert!(dims <= MAX_DIMS, "tree dimensionality {dims} exceeds MAX_DIMS");
        assert!(coords.len() <= dims, "point arity {} exceeds tree dims {dims}", coords.len());
        let mut c = [0u64; MAX_DIMS];
        c[..coords.len()].copy_from_slice(coords);
        Point { coords: c, dims: dims as u8 }
    }

    /// The origin of a `dims`-dimensional space — where the scalar `none`
    /// view lives (paper §3: "mapped to the origin point (0,0,..)").
    pub fn origin(dims: usize) -> Self {
        Point::new(&[], dims)
    }

    /// Dimensionality of the space this point lives in.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims as usize
    }

    /// All `dims` coordinates (including zero padding).
    #[inline]
    pub fn coords(&self) -> &[u64] {
        &self.coords[..self.dims as usize]
    }

    /// A single coordinate.
    #[inline]
    pub fn coord(&self, axis: usize) -> u64 {
        debug_assert!(axis < self.dims());
        self.coords[axis]
    }

    /// Number of leading non-padding coordinates if this point was produced by
    /// a valid mapping of a view of some arity: the index one past the last
    /// non-zero coordinate. The origin has arity 0.
    pub fn mapped_arity(&self) -> usize {
        (0..self.dims())
            .rev()
            .find(|&i| self.coords[i] != 0)
            .map_or(0, |i| i + 1)
    }

    /// The paper's packing order: compare by the **last** coordinate first,
    /// then the one before it, down to the first (§2.3).
    ///
    /// # Panics
    /// Debug-asserts both points share a dimensionality.
    #[inline]
    pub fn packed_cmp(&self, other: &Point) -> Ordering {
        debug_assert_eq!(self.dims, other.dims, "comparing points of different spaces");
        for i in (0..self.dims as usize).rev() {
            match self.coords[i].cmp(&other.coords[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl Ord for Point {
    fn cmp(&self, other: &Self) -> Ordering {
        self.packed_cmp(other)
    }
}

impl PartialOrd for Point {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.coords().iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

/// An axis-aligned hyper-rectangle: the MBR geometry of R-tree nodes and the
/// region form of slice queries (paper Figure 4).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rect {
    lo: [u64; MAX_DIMS],
    hi: [u64; MAX_DIMS],
    dims: u8,
}

impl Rect {
    /// A rectangle from inclusive bounds.
    ///
    /// # Panics
    /// Panics if the bounds disagree in length, exceed [`MAX_DIMS`], or are
    /// inverted on any axis.
    pub fn new(lo: &[u64], hi: &[u64]) -> Self {
        assert_eq!(lo.len(), hi.len(), "bound arity mismatch");
        assert!(lo.len() <= MAX_DIMS);
        let dims = lo.len();
        let mut l = [0u64; MAX_DIMS];
        let mut h = [0u64; MAX_DIMS];
        l[..dims].copy_from_slice(lo);
        h[..dims].copy_from_slice(hi);
        for i in 0..dims {
            assert!(l[i] <= h[i], "inverted bounds on axis {i}: {} > {}", l[i], h[i]);
        }
        Rect { lo: l, hi: h, dims: dims as u8 }
    }

    /// The degenerate rectangle covering exactly one point.
    pub fn from_point(p: &Point) -> Self {
        Rect { lo: p.coords, hi: p.coords, dims: p.dims }
    }

    /// An "empty" rectangle suitable as the identity for [`Rect::expand`]:
    /// inverted bounds that any real expansion will overwrite.
    pub fn empty(dims: usize) -> Self {
        assert!(dims <= MAX_DIMS);
        let mut r = Rect { lo: [u64::MAX; MAX_DIMS], hi: [0u64; MAX_DIMS], dims: dims as u8 };
        // Keep padding axes in a consistent state.
        for i in dims..MAX_DIMS {
            r.lo[i] = u64::MAX;
            r.hi[i] = 0;
        }
        r
    }

    /// True if no point has been added yet.
    pub fn is_empty(&self) -> bool {
        (0..self.dims()).any(|i| self.lo[i] > self.hi[i])
    }

    /// Dimensionality.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims as usize
    }

    /// Inclusive lower bounds.
    #[inline]
    pub fn lo(&self) -> &[u64] {
        &self.lo[..self.dims as usize]
    }

    /// Inclusive upper bounds.
    #[inline]
    pub fn hi(&self) -> &[u64] {
        &self.hi[..self.dims as usize]
    }

    /// Grows the rectangle to cover `p`.
    pub fn expand_point(&mut self, p: &Point) {
        debug_assert_eq!(self.dims, p.dims);
        for i in 0..self.dims() {
            self.lo[i] = self.lo[i].min(p.coords[i]);
            self.hi[i] = self.hi[i].max(p.coords[i]);
        }
    }

    /// Grows the rectangle to cover `other`.
    pub fn expand(&mut self, other: &Rect) {
        debug_assert_eq!(self.dims, other.dims);
        for i in 0..self.dims() {
            self.lo[i] = self.lo[i].min(other.lo[i]);
            self.hi[i] = self.hi[i].max(other.hi[i]);
        }
    }

    /// True if the rectangles share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        debug_assert_eq!(self.dims, other.dims);
        (0..self.dims()).all(|i| self.lo[i] <= other.hi[i] && self.hi[i] >= other.lo[i])
    }

    /// True if `p` lies inside the rectangle.
    #[inline]
    pub fn contains_point(&self, p: &Point) -> bool {
        debug_assert_eq!(self.dims, p.dims);
        (0..self.dims()).all(|i| self.lo[i] <= p.coords[i] && p.coords[i] <= self.hi[i])
    }

    /// True if `other` lies entirely inside the rectangle.
    pub fn contains(&self, other: &Rect) -> bool {
        debug_assert_eq!(self.dims, other.dims);
        (0..self.dims()).all(|i| self.lo[i] <= other.lo[i] && other.hi[i] <= self.hi[i])
    }
}

impl fmt::Debug for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:?}..{:?}]", &self.lo[..self.dims()], &self.hi[..self.dims()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padding_is_zero() {
        let p = Point::new(&[7, 3], 4);
        assert_eq!(p.coords(), &[7, 3, 0, 0]);
        assert_eq!(p.dims(), 4);
        assert_eq!(p.mapped_arity(), 2);
        assert_eq!(Point::origin(3).mapped_arity(), 0);
    }

    #[test]
    fn packed_order_matches_paper_table_2() {
        // Paper Table 2: view V8 (arity 1) points (partkey, 0) sorted by
        // (y, x): 1,2,3,4,5,6 — plain x order because y is constant zero.
        let mut pts: Vec<Point> =
            [4u64, 2, 3, 1, 6, 5].iter().map(|&k| Point::new(&[k], 2)).collect();
        pts.sort();
        let xs: Vec<u64> = pts.iter().map(|p| p.coord(0)).collect();
        assert_eq!(xs, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn packed_order_matches_paper_table_4() {
        // Paper Table 4: view V9 (suppkey→x, custkey→y) sorted in (y, x)
        // order: (1,1),(2,1),(3,1),(1,3),(3,3).
        let raw = [(3u64, 1u64), (1, 1), (1, 3), (3, 3), (2, 1)];
        let mut pts: Vec<Point> = raw.iter().map(|&(x, y)| Point::new(&[x, y], 2)).collect();
        pts.sort();
        let got: Vec<(u64, u64)> = pts.iter().map(|p| (p.coord(0), p.coord(1))).collect();
        assert_eq!(got, vec![(1, 1), (2, 1), (3, 1), (1, 3), (3, 3)]);
    }

    #[test]
    fn lower_arity_views_sort_before_higher_arity() {
        // §2.4: in R3{x,y}, all V8 (arity-1) points precede all V9 (arity-2)
        // points because their y coordinate is zero.
        let v8 = Point::new(&[6], 2);
        let v9 = Point::new(&[1, 1], 2);
        assert!(v8 < v9);
    }

    #[test]
    fn rect_expand_and_contains() {
        let mut r = Rect::empty(2);
        assert!(r.is_empty());
        r.expand_point(&Point::new(&[3, 5], 2));
        r.expand_point(&Point::new(&[7, 1], 2));
        assert!(!r.is_empty());
        assert_eq!(r.lo(), &[3, 1]);
        assert_eq!(r.hi(), &[7, 5]);
        assert!(r.contains_point(&Point::new(&[5, 3], 2)));
        assert!(!r.contains_point(&Point::new(&[8, 3], 2)));
        let inner = Rect::new(&[4, 2], &[6, 4]);
        assert!(r.contains(&inner));
        assert!(r.intersects(&inner));
        let outside = Rect::new(&[8, 6], &[9, 9]);
        assert!(!r.intersects(&outside));
    }

    #[test]
    fn slice_region_excludes_other_arities() {
        // A slice query for an arity-2 view in a 3-d tree pins z to [0,0];
        // arity-3 points (z >= 1) must not match, nor must arity-1 points
        // match an arity-2 open region on y=[1,MAX].
        let q_v1 = Rect::new(&[1, 1, 0], &[COORD_MAX, COORD_MAX, 0]);
        assert!(q_v1.contains_point(&Point::new(&[5, 9], 3)));
        assert!(!q_v1.contains_point(&Point::new(&[5, 9, 2], 3)));
        assert!(!q_v1.contains_point(&Point::new(&[5], 3)));
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_rect_panics() {
        let _ = Rect::new(&[5], &[4]);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_point(dims: usize) -> impl Strategy<Value = Point> {
        proptest::collection::vec(0..1000u64, dims).prop_map(move |c| Point::new(&c, dims))
    }

    proptest! {
        /// packed_cmp is a total order consistent with reversed-tuple order.
        #[test]
        fn packed_cmp_is_reversed_lex(a in arb_point(3), b in arb_point(3)) {
            let ka = (a.coord(2), a.coord(1), a.coord(0));
            let kb = (b.coord(2), b.coord(1), b.coord(0));
            prop_assert_eq!(a.packed_cmp(&b), ka.cmp(&kb));
        }

        /// Sorting is antisymmetric and transitive by construction; check
        /// reflexivity and duality.
        #[test]
        fn packed_cmp_duality(a in arb_point(4), b in arb_point(4)) {
            prop_assert_eq!(a.packed_cmp(&a), std::cmp::Ordering::Equal);
            prop_assert_eq!(a.packed_cmp(&b), b.packed_cmp(&a).reverse());
        }

        /// A rectangle grown from points contains exactly those points.
        #[test]
        fn expanded_rect_contains_its_points(
            pts in proptest::collection::vec((1..100u64, 1..100u64), 1..30)
        ) {
            let mut r = Rect::empty(2);
            for &(x, y) in &pts {
                r.expand_point(&Point::new(&[x, y], 2));
            }
            for &(x, y) in &pts {
                prop_assert!(r.contains_point(&Point::new(&[x, y], 2)));
            }
            prop_assert!(!r.is_empty());
        }

        /// intersects is symmetric; containment implies intersection.
        #[test]
        fn rect_relations(
            a in (1..50u64, 1..50u64, 1..50u64, 1..50u64),
            b in (1..50u64, 1..50u64, 1..50u64, 1..50u64),
        ) {
            let ra = Rect::new(&[a.0.min(a.1), a.2.min(a.3)], &[a.0.max(a.1), a.2.max(a.3)]);
            let rb = Rect::new(&[b.0.min(b.1), b.2.min(b.3)], &[b.0.max(b.1), b.2.max(b.3)]);
            prop_assert_eq!(ra.intersects(&rb), rb.intersects(&ra));
            if ra.contains(&rb) {
                prop_assert!(ra.intersects(&rb));
            }
        }
    }
}
