//! Small order statistics shared by every measurement layer.
//!
//! The nearest-rank percentile used to be private to the workload runner;
//! the serving layer and its bench report need the exact same definition
//! (tail latencies must be comparable across reports), so the single
//! implementation lives here. Nearest rank means the estimate is always an
//! observed sample: rank `ceil(p/100 · n)` of the ascending-sorted values,
//! so `p = 0` is the minimum and `p = 100` the maximum.

/// The `p`-th percentile (0–100, nearest rank) of `values`.
///
/// Defined as 0.0 on an empty sample so report code never divides by zero
/// or panics on an empty batch. `p` is clamped to `[0, 100]`. NaN samples
/// compare as equal to everything (the sort falls back to
/// `Ordering::Equal`), preserving the workload runner's historical
/// behavior.
pub fn percentile_nearest_rank(values: impl IntoIterator<Item = f64>, p: f64) -> f64 {
    let mut v: Vec<f64> = values.into_iter().collect();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    percentile_of_sorted(&v, p)
}

/// Nearest-rank percentile over an already ascending-sorted slice; 0.0 on
/// an empty slice. Use this form when taking several percentiles of the
/// same sample to sort once instead of once per call.
pub fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    // The epsilon absorbs binary-fraction noise: 99.9/100 · 1000 computes
    // as 999.0000000000001, which must rank 999, not ceil up to 1000.
    let exact = (p.clamp(0.0, 100.0) / 100.0) * sorted.len() as f64;
    let rank = (exact - 1e-9).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The serving report quotes p50/p99/p999; pin them on a known
    /// distribution (1..=1000, shuffled) so all three layers agree forever.
    #[test]
    fn p50_p99_p999_pinned_on_known_distribution() {
        // A fixed permutation of 1..=1000 (LCG walk) — percentiles must not
        // depend on arrival order.
        let mut values: Vec<f64> = Vec::with_capacity(1000);
        let mut x = 7u64;
        let mut pool: Vec<u64> = (1..=1000).collect();
        while !pool.is_empty() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            values.push(pool.swap_remove((x % pool.len() as u64) as usize) as f64);
        }
        assert_eq!(percentile_nearest_rank(values.iter().copied(), 50.0), 500.0);
        assert_eq!(percentile_nearest_rank(values.iter().copied(), 99.0), 990.0);
        assert_eq!(percentile_nearest_rank(values.iter().copied(), 99.9), 999.0);
        assert_eq!(percentile_nearest_rank(values.iter().copied(), 0.0), 1.0);
        assert_eq!(percentile_nearest_rank(values, 100.0), 1000.0);
    }

    #[test]
    fn nearest_rank_on_small_samples() {
        let v = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile_nearest_rank(v, 0.0), 1.0);
        assert_eq!(percentile_nearest_rank(v, 25.0), 1.0);
        assert_eq!(percentile_nearest_rank(v, 50.0), 2.0);
        assert_eq!(percentile_nearest_rank(v, 75.0), 3.0);
        assert_eq!(percentile_nearest_rank(v, 100.0), 4.0);
        // A single sample is every percentile.
        assert_eq!(percentile_nearest_rank([7.5], 1.0), 7.5);
        assert_eq!(percentile_nearest_rank([7.5], 99.9), 7.5);
    }

    #[test]
    fn empty_sample_is_zero_not_panic() {
        assert_eq!(percentile_nearest_rank(std::iter::empty(), 50.0), 0.0);
        assert_eq!(percentile_of_sorted(&[], 99.0), 0.0);
    }

    #[test]
    fn sorted_form_matches_unsorted_form() {
        let mut v = vec![9.0, 2.0, 5.0, 5.0, 1.0];
        let unsorted: Vec<f64> = v.clone();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for p in [0.0, 10.0, 50.0, 90.0, 99.9, 100.0] {
            assert_eq!(
                percentile_of_sorted(&v, p),
                percentile_nearest_rank(unsorted.iter().copied(), p)
            );
        }
    }

    #[test]
    fn out_of_range_p_clamps() {
        let v = [1.0, 2.0, 3.0];
        assert_eq!(percentile_nearest_rank(v, -5.0), 1.0);
        assert_eq!(percentile_nearest_rank(v, 250.0), 3.0);
    }
}
