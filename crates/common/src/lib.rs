//! # ct-common — shared types for the Cubetree reproduction
//!
//! This crate holds the vocabulary types shared by every layer of the system:
//!
//! * [`geom`] — multidimensional points and rectangles over the unsigned
//!   coordinate space used by Cubetrees (paper §2.2: every coordinate is a
//!   positive value, zero is reserved for padding unused dimensions).
//! * [`agg`] — aggregate functions (COUNT/SUM/MIN/MAX/AVG) and their mergeable
//!   running states, including the fixed-width word encoding used by the
//!   storage layers.
//! * [`schema`] — attribute/view metadata: projection lists, arities, and the
//!   warehouse catalog (attribute names, cardinalities, hierarchies).
//! * [`query`] — the slice-query model of the paper's §3.1/§3.3 evaluation.
//! * [`cost`] — the 1998-calibrated I/O cost model used to turn page-access
//!   counters into simulated elapsed time.
//! * [`stats`] — order statistics (nearest-rank percentiles) shared by the
//!   workload runner, the serving layer and the bench reports.
//! * [`error`] — the shared error type.

pub mod agg;
pub mod cost;
pub mod error;
pub mod geom;
pub mod query;
pub mod schema;
pub mod stats;

pub use agg::{AggFn, AggState};
pub use cost::CostModel;
pub use error::{CtError, Result};
pub use geom::{Point, Rect, COORD_MAX, MAX_DIMS};
pub use query::{QueryKey, SliceQuery};
pub use schema::{AttrId, AttrMeta, Catalog, Hierarchy, ViewDef, ViewId};
