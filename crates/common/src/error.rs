//! Shared error type for every crate in the workspace.

use std::fmt;

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, CtError>;

/// Errors surfaced by the storage engines and the Cubetree layers.
#[derive(Debug)]
pub enum CtError {
    /// An underlying file-system operation failed.
    Io(std::io::Error),
    /// A page, record or key failed to decode (corruption or version skew).
    Corrupt(String),
    /// The caller asked for something the engine cannot satisfy
    /// (e.g. a query over attributes no materialized view covers).
    Unsupported(String),
    /// An invariant the caller must uphold was violated
    /// (e.g. loading unsorted input into a packed structure).
    InvalidArgument(String),
    /// A fault injected by a test's `FaultPlan` (deterministic failure
    /// testing). Distinct from [`CtError::Io`] so fault-matrix tests can
    /// tell an injected failure from a real one.
    Injected(String),
}

impl fmt::Display for CtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtError::Io(e) => write!(f, "i/o error: {e}"),
            CtError::Corrupt(m) => write!(f, "corrupt data: {m}"),
            CtError::Unsupported(m) => write!(f, "unsupported: {m}"),
            CtError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            CtError::Injected(m) => write!(f, "injected fault: {m}"),
        }
    }
}

impl std::error::Error for CtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CtError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CtError {
    fn from(e: std::io::Error) -> Self {
        CtError::Io(e)
    }
}

impl CtError {
    /// Convenience constructor for corruption errors.
    pub fn corrupt(msg: impl Into<String>) -> Self {
        CtError::Corrupt(msg.into())
    }

    /// Convenience constructor for unsupported-operation errors.
    pub fn unsupported(msg: impl Into<String>) -> Self {
        CtError::Unsupported(msg.into())
    }

    /// Convenience constructor for invalid-argument errors.
    pub fn invalid(msg: impl Into<String>) -> Self {
        CtError::InvalidArgument(msg.into())
    }

    /// Convenience constructor for injected (fault-plan) errors.
    pub fn injected(msg: impl Into<String>) -> Self {
        CtError::Injected(msg.into())
    }

    /// True for faults raised by a `FaultPlan` rather than the real world.
    pub fn is_injected(&self) -> bool {
        matches!(self, CtError::Injected(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(CtError::corrupt("bad page").to_string(), "corrupt data: bad page");
        assert_eq!(CtError::unsupported("x").to_string(), "unsupported: x");
        assert_eq!(CtError::invalid("y").to_string(), "invalid argument: y");
        let io = CtError::from(std::io::Error::other("boom"));
        assert!(io.to_string().contains("boom"));
    }

    #[test]
    fn io_error_preserves_source() {
        use std::error::Error;
        let e = CtError::from(std::io::Error::other("boom"));
        assert!(e.source().is_some());
        assert!(CtError::corrupt("x").source().is_none());
    }
}
