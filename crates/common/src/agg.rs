//! Aggregate functions and mergeable aggregate states.
//!
//! Every materialized ROLAP view carries one aggregate per group (the paper's
//! experiments use `sum(quantity)`; §2.2 footnote 3 notes the scheme extends
//! to multiple functions per point). [`AggState`] is a *mergeable* running
//! state so that:
//!
//! * cube computation can aggregate a view from a **parent** view rather than
//!   the fact table (paper Figure 10 — e.g. the COUNT of a coarser group is
//!   the *sum* of the finer groups' counts), and
//! * the merge-pack bulk-incremental update (paper Figure 15) can combine an
//!   existing point with its delta in O(1).

use crate::error::{CtError, Result};

/// The aggregate function a view materializes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AggFn {
    /// `count(*)`
    Count,
    /// `sum(measure)` — the paper's representative aggregate (§3 footnote 4).
    Sum,
    /// `min(measure)`
    Min,
    /// `max(measure)`
    Max,
    /// `avg(measure)`, maintained as (sum, count) so it stays mergeable.
    Avg,
    /// `sum(measure)` maintained **with a reference count** so the view can
    /// absorb deletions (\[GL95\]-style counting maintenance). Costs one extra
    /// word per group on disk compared with [`AggFn::Sum`]; finalizes to the
    /// sum.
    SumCount,
}

impl AggFn {
    /// Number of 64-bit words this function's state occupies on disk.
    #[inline]
    pub const fn width(self) -> usize {
        match self {
            AggFn::Avg | AggFn::SumCount => 2,
            _ => 1,
        }
    }

    /// True if a view materialized with this function can absorb retraction
    /// (deletion) deltas: the stored state must carry a faithful group count
    /// so annihilated groups can be recognized. SUM/MIN/MAX at rest cannot
    /// (and MIN/MAX could not recompute the extremum even with one).
    pub const fn deletion_safe(self) -> bool {
        matches!(self, AggFn::Count | AggFn::Avg | AggFn::SumCount)
    }

    /// Stable numeric tag used by on-disk headers.
    pub const fn tag(self) -> u8 {
        match self {
            AggFn::Count => 0,
            AggFn::Sum => 1,
            AggFn::Min => 2,
            AggFn::Max => 3,
            AggFn::Avg => 4,
            AggFn::SumCount => 5,
        }
    }

    /// Inverse of [`AggFn::tag`].
    pub fn from_tag(tag: u8) -> Result<Self> {
        Ok(match tag {
            0 => AggFn::Count,
            1 => AggFn::Sum,
            2 => AggFn::Min,
            3 => AggFn::Max,
            4 => AggFn::Avg,
            5 => AggFn::SumCount,
            other => return Err(CtError::corrupt(format!("unknown aggregate tag {other}"))),
        })
    }

    /// SQL-ish display name, used by examples and bench reports.
    pub const fn name(self) -> &'static str {
        match self {
            AggFn::Count => "count(*)",
            AggFn::Sum => "sum",
            AggFn::Min => "min",
            AggFn::Max => "max",
            AggFn::Avg => "avg",
            AggFn::SumCount => "sum+count",
        }
    }
}

/// A mergeable aggregate state.
///
/// All four statistics are maintained in memory; only the words required by
/// the view's [`AggFn`] are written to disk ([`AggState::encode`]). That keeps
/// leaf entries at 8 bytes for SUM/COUNT/MIN/MAX and 16 bytes for AVG.
///
/// The count is *signed* so that deletions can flow through the same merge
/// machinery as insertions ([GMS93, GL95]-style counting maintenance): a
/// retraction carries `count = -1` and a negated sum, and a group whose
/// count reaches zero has been annihilated. MIN/MAX are **not** maintainable
/// under deletion (the deleted row may have been the extremum), so engines
/// reject retraction deltas against MIN/MAX views.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AggState {
    /// Sum of measures.
    pub sum: i64,
    /// Number of contributing fact rows.
    pub count: i64,
    /// Minimum measure seen.
    pub min: i64,
    /// Maximum measure seen.
    pub max: i64,
}

impl AggState {
    /// State for a single fact row with the given measure.
    #[inline]
    pub fn from_measure(measure: i64) -> Self {
        AggState { sum: measure, count: 1, min: measure, max: measure }
    }

    /// The retraction of a fact row with the given measure: merging it with
    /// the row's insertion yields a zero-count (annihilated) state. The
    /// extremum fields stay neutral — MIN/MAX cannot absorb deletions.
    #[inline]
    pub fn retraction(measure: i64) -> Self {
        AggState { sum: -measure, count: -1, min: i64::MAX, max: i64::MIN }
    }

    /// True if the state's group has been fully annihilated by retractions.
    #[inline]
    pub fn is_annihilated(&self) -> bool {
        self.count == 0
    }

    /// The additive/extremal identity — merging it changes nothing.
    pub fn identity() -> Self {
        AggState { sum: 0, count: 0, min: i64::MAX, max: i64::MIN }
    }

    /// Combines another state into this one. Associative and commutative,
    /// which is what lets views be computed from any parent in the lattice.
    #[inline]
    pub fn merge(&mut self, other: &AggState) {
        self.sum = self.sum.wrapping_add(other.sum);
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Final answer of the aggregate under function `f`, as an `f64`
    /// (AVG is fractional; the others are exact integers).
    pub fn finalize(&self, f: AggFn) -> f64 {
        match f {
            AggFn::Count => self.count as f64,
            AggFn::Sum | AggFn::SumCount => self.sum as f64,
            AggFn::Min => self.min as f64,
            AggFn::Max => self.max as f64,
            AggFn::Avg => {
                if self.count == 0 {
                    f64::NAN
                } else {
                    self.sum as f64 / self.count as f64
                }
            }
        }
    }

    /// Exact integer answer for the non-AVG functions.
    pub fn finalize_int(&self, f: AggFn) -> i64 {
        match f {
            AggFn::Count => self.count,
            AggFn::Sum | AggFn::SumCount => self.sum,
            AggFn::Min => self.min,
            AggFn::Max => self.max,
            AggFn::Avg => {
                if self.count == 0 {
                    0
                } else {
                    self.sum / self.count
                }
            }
        }
    }

    /// Serializes the words function `f` needs (see [`AggFn::width`]).
    pub fn encode(&self, f: AggFn, out: &mut Vec<u64>) {
        match f {
            AggFn::Count => out.push(self.count as u64),
            AggFn::Sum => out.push(self.sum as u64),
            AggFn::Min => out.push(self.min as u64),
            AggFn::Max => out.push(self.max as u64),
            AggFn::Avg | AggFn::SumCount => {
                out.push(self.sum as u64);
                out.push(self.count as u64);
            }
        }
    }

    /// Inverse of [`AggState::encode`]. Fields the function does not persist
    /// are restored to values that keep `merge` + `finalize(f)` correct.
    pub fn decode(f: AggFn, words: &[u64]) -> Result<Self> {
        let need = f.width();
        if words.len() < need {
            return Err(CtError::corrupt(format!(
                "aggregate state needs {need} words, got {}",
                words.len()
            )));
        }
        let mut s = AggState::identity();
        match f {
            AggFn::Count => s.count = words[0] as i64,
            AggFn::Sum => s.sum = words[0] as i64,
            AggFn::Min => s.min = words[0] as i64,
            AggFn::Max => s.max = words[0] as i64,
            AggFn::Avg | AggFn::SumCount => {
                s.sum = words[0] as i64;
                s.count = words[1] as i64;
            }
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_associative_and_commutative() {
        let a = AggState::from_measure(5);
        let b = AggState::from_measure(-3);
        let c = AggState::from_measure(11);
        let mut ab_c = a;
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut a_bc = a;
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
        let mut ba = b;
        ba.merge(&a);
        let mut ab = a;
        ab.merge(&b);
        assert_eq!(ab, ba);
    }

    #[test]
    fn identity_is_neutral() {
        let mut s = AggState::from_measure(7);
        s.merge(&AggState::identity());
        assert_eq!(s, AggState::from_measure(7));
    }

    #[test]
    fn finalize_every_function() {
        let mut s = AggState::from_measure(10);
        s.merge(&AggState::from_measure(2));
        s.merge(&AggState::from_measure(6));
        assert_eq!(s.finalize(AggFn::Sum), 18.0);
        assert_eq!(s.finalize(AggFn::Count), 3.0);
        assert_eq!(s.finalize(AggFn::Min), 2.0);
        assert_eq!(s.finalize(AggFn::Max), 10.0);
        assert_eq!(s.finalize(AggFn::Avg), 6.0);
        assert_eq!(s.finalize_int(AggFn::Sum), 18);
        assert_eq!(s.finalize_int(AggFn::Avg), 6);
    }

    #[test]
    fn empty_avg_is_nan_not_panic() {
        let s = AggState::identity();
        assert!(s.finalize(AggFn::Avg).is_nan());
        assert_eq!(s.finalize_int(AggFn::Avg), 0);
    }

    #[test]
    fn encode_decode_roundtrip_preserves_answer() {
        let mut s = AggState::from_measure(-4);
        s.merge(&AggState::from_measure(9));
        for f in [AggFn::Count, AggFn::Sum, AggFn::Min, AggFn::Max, AggFn::Avg] {
            let mut words = Vec::new();
            s.encode(f, &mut words);
            assert_eq!(words.len(), f.width());
            let back = AggState::decode(f, &words).unwrap();
            let (a, b) = (s.finalize(f), back.finalize(f));
            assert_eq!(a, b, "mismatch for {f:?}");
        }
    }

    #[test]
    fn decode_roundtrip_is_mergeable() {
        // Decoded states must keep merging correctly: count-of-counts is a
        // sum, which is how coarser views derive from finer ones.
        let a = AggState::from_measure(3);
        let b = AggState::from_measure(5);
        let mut wa = Vec::new();
        a.encode(AggFn::Count, &mut wa);
        let mut wb = Vec::new();
        b.encode(AggFn::Count, &mut wb);
        let mut da = AggState::decode(AggFn::Count, &wa).unwrap();
        let db = AggState::decode(AggFn::Count, &wb).unwrap();
        da.merge(&db);
        assert_eq!(da.finalize_int(AggFn::Count), 2);
    }

    #[test]
    fn tags_roundtrip() {
        for f in [AggFn::Count, AggFn::Sum, AggFn::Min, AggFn::Max, AggFn::Avg] {
            assert_eq!(AggFn::from_tag(f.tag()).unwrap(), f);
        }
        assert!(AggFn::from_tag(99).is_err());
    }

    #[test]
    fn decode_short_buffer_is_error() {
        assert!(AggState::decode(AggFn::Avg, &[1]).is_err());
        assert!(AggState::decode(AggFn::Sum, &[]).is_err());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Merging a retraction of the same measure annihilates the count
        /// and sum contributions exactly.
        #[test]
        fn retraction_cancels_insertion(m in -1000i64..1000) {
            let mut s = AggState::from_measure(m);
            s.merge(&AggState::retraction(m));
            prop_assert!(s.is_annihilated());
            prop_assert_eq!(s.sum, 0);
        }

        /// encode/decode preserves finalize for every function over merged
        /// states.
        #[test]
        fn encode_decode_preserves_answers(ms in proptest::collection::vec(-100i64..100, 1..20)) {
            let mut s = AggState::identity();
            for &m in &ms {
                s.merge(&AggState::from_measure(m));
            }
            for f in [AggFn::Count, AggFn::Sum, AggFn::Min, AggFn::Max, AggFn::Avg, AggFn::SumCount] {
                let mut words = Vec::new();
                s.encode(f, &mut words);
                let back = AggState::decode(f, &words).unwrap();
                prop_assert_eq!(s.finalize(f).to_bits(), back.finalize(f).to_bits());
            }
        }

        /// Merge order never matters (free permutation invariance).
        #[test]
        fn merge_is_order_insensitive(ms in proptest::collection::vec(-50i64..50, 2..12)) {
            let mut fwd = AggState::identity();
            for &m in &ms {
                fwd.merge(&AggState::from_measure(m));
            }
            let mut rev = AggState::identity();
            for &m in ms.iter().rev() {
                rev.merge(&AggState::from_measure(m));
            }
            prop_assert_eq!(fwd, rev);
        }
    }
}
