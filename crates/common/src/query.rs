//! The slice-query model of the paper's evaluation (§3.1).
//!
//! A slice query targets one node of the Data Cube lattice: it aggregates the
//! measure grouped by a set of attributes, with a list of *equality*
//! predicates on a disjoint set of attributes (TPC-D attributes are foreign
//! keys, so generic range predicates "don't seem applicable" — §3.1). For a
//! lattice node `W` there are `2^|W|` slice-query types, one per subset of
//! `W` chosen as the fixed attributes.

use crate::schema::{AttrId, Catalog};

/// One slice query.
///
/// SQL shape:
/// ```sql
/// SELECT g1, …, gk, AGG(measure)
/// FROM   cube
/// WHERE  f1 = v1 AND … AND fm = vm
/// GROUP BY g1, …, gk
/// ```
/// where `{g…} ∪ {f…}` is the lattice node the query addresses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SliceQuery {
    /// Attributes to group by (the "open" dimensions).
    pub group_by: Vec<AttrId>,
    /// Equality predicates `(attribute, constant)` (the "sliced" dimensions).
    pub predicates: Vec<(AttrId, u64)>,
    /// Inclusive range predicates `(attribute, lo, hi)`. The paper's TPC-D
    /// workload uses equality only (foreign keys, §3.1), but notes that
    /// R-trees "behave faster in bounded range queries" — this extension
    /// exercises that claim.
    pub ranges: Vec<(AttrId, u64, u64)>,
}

impl SliceQuery {
    /// Builds a query; `group_by` and predicate attributes must be disjoint.
    ///
    /// # Panics
    /// Panics if an attribute appears both as group-by and predicate.
    pub fn new(group_by: Vec<AttrId>, predicates: Vec<(AttrId, u64)>) -> Self {
        for (a, _) in &predicates {
            assert!(!group_by.contains(a), "attribute {a:?} is both grouped and sliced");
        }
        SliceQuery { group_by, predicates, ranges: Vec::new() }
    }

    /// Adds an inclusive range predicate on an attribute not already grouped
    /// or equality-sliced.
    ///
    /// # Panics
    /// Panics if the attribute is already used, or the bounds are inverted.
    pub fn with_range(mut self, attr: AttrId, lo: u64, hi: u64) -> Self {
        assert!(lo <= hi, "inverted range on {attr:?}");
        assert!(!self.group_by.contains(&attr), "attribute {attr:?} is grouped");
        assert!(
            self.predicates.iter().all(|&(a, _)| a != attr)
                && self.ranges.iter().all(|&(a, _, _)| a != attr),
            "attribute {attr:?} already constrained"
        );
        self.ranges.push((attr, lo, hi));
        self
    }

    /// The lattice node this query addresses: group-by ∪ predicate ∪ range
    /// attributes, in a canonical (sorted) order.
    pub fn node(&self) -> Vec<AttrId> {
        let mut attrs: Vec<AttrId> = self
            .group_by
            .iter()
            .copied()
            .chain(self.predicates.iter().map(|&(a, _)| a))
            .chain(self.ranges.iter().map(|&(a, _, _)| a))
            .collect();
        attrs.sort();
        attrs
    }

    /// The inclusive range on `attr`, if the query constrains it (an
    /// equality predicate is the degenerate range `[v, v]`).
    pub fn range_of(&self, attr: AttrId) -> Option<(u64, u64)> {
        if let Some(v) = self.predicate_value(attr) {
            return Some((v, v));
        }
        self.ranges.iter().find(|&&(a, _, _)| a == attr).map(|&(_, lo, hi)| (lo, hi))
    }

    /// The fixed value of `attr`, if the query slices on it.
    pub fn predicate_value(&self, attr: AttrId) -> Option<u64> {
        self.predicates.iter().find(|&&(a, _)| a == attr).map(|&(_, v)| v)
    }

    /// True if the query has no predicates (whole-view output). The paper's
    /// generator excludes these because their huge output "dilutes the actual
    /// retrieval cost" (§3.3).
    pub fn is_full_view(&self) -> bool {
        self.predicates.is_empty() && self.ranges.is_empty()
    }

    /// SQL-ish rendering for logs and examples.
    pub fn display(&self, catalog: &Catalog) -> String {
        let gb: Vec<&str> = self.group_by.iter().map(|&a| catalog.attr(a).name.as_str()).collect();
        let preds: Vec<String> = self
            .predicates
            .iter()
            .map(|&(a, v)| format!("{} = {v}", catalog.attr(a).name))
            .chain(
                self.ranges
                    .iter()
                    .map(|&(a, lo, hi)| format!("{} between {lo} and {hi}", catalog.attr(a).name)),
            )
            .collect();
        let mut s = String::from("select ");
        if gb.is_empty() {
            s.push_str("agg(measure)");
        } else {
            s.push_str(&format!("{}, agg(measure)", gb.join(", ")));
        }
        s.push_str(" from cube");
        if !preds.is_empty() {
            s.push_str(&format!(" where {}", preds.join(" and ")));
        }
        if !gb.is_empty() {
            s.push_str(&format!(" group by {}", gb.join(", ")));
        }
        s
    }
}

/// The canonical, hashable identity of a [`SliceQuery`] — the memoization
/// key of the serving layer's answer cache.
///
/// Two requests that differ only in WHERE-clause order ask the same
/// question, so predicates and ranges are sorted into a canonical order.
/// `group_by` is kept in *request* order: result rows carry their key values
/// aligned with the group-by list, so reordering it changes the answer shape
/// and must produce a different key.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct QueryKey {
    group_by: Vec<AttrId>,
    predicates: Vec<(AttrId, u64)>,
    ranges: Vec<(AttrId, u64, u64)>,
}

impl QueryKey {
    /// A stable 64-bit digest (FNV-1a over the canonical encoding), suitable
    /// for shard selection and frequency sketches. Deterministic across runs
    /// and platforms, unlike [`std::hash::Hash`] through a keyed hasher.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(self.group_by.len() as u64);
        for a in &self.group_by {
            eat(u64::from(a.0));
        }
        eat(self.predicates.len() as u64);
        for (a, v) in &self.predicates {
            eat(u64::from(a.0));
            eat(*v);
        }
        eat(self.ranges.len() as u64);
        for (a, lo, hi) in &self.ranges {
            eat(u64::from(a.0));
            eat(*lo);
            eat(*hi);
        }
        h
    }

    /// Approximate heap bytes this key holds (cache byte accounting).
    pub fn approx_bytes(&self) -> u64 {
        (self.group_by.len() * std::mem::size_of::<AttrId>()
            + self.predicates.len() * std::mem::size_of::<(AttrId, u64)>()
            + self.ranges.len() * std::mem::size_of::<(AttrId, u64, u64)>()
            + std::mem::size_of::<QueryKey>()) as u64
    }
}

impl SliceQuery {
    /// The canonical cache key of this query (see [`QueryKey`]).
    pub fn cache_key(&self) -> QueryKey {
        let mut predicates = self.predicates.clone();
        predicates.sort_unstable();
        let mut ranges = self.ranges.clone();
        ranges.sort_unstable();
        QueryKey { group_by: self.group_by.clone(), predicates, ranges }
    }
}

/// One output row of a slice query: the group-by key values (in
/// [`SliceQuery::group_by`] order) and the finalized aggregate.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryRow {
    /// Group key values, aligned with the query's `group_by` list.
    pub key: Vec<u64>,
    /// Finalized aggregate value.
    pub agg: f64,
}

/// Canonicalizes a result set so answers from different engines (which may
/// produce rows in different physical orders) can be compared.
pub fn normalize_rows(mut rows: Vec<QueryRow>) -> Vec<QueryRow> {
    rows.sort_by(|a, b| a.key.cmp(&b.key));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggFn;
    use crate::schema::ViewDef;

    fn catalog() -> (Catalog, AttrId, AttrId, AttrId) {
        let mut c = Catalog::new();
        let p = c.add_attr("partkey", 10);
        let s = c.add_attr("suppkey", 10);
        let cu = c.add_attr("custkey", 10);
        (c, p, s, cu)
    }

    #[test]
    fn node_is_union_sorted() {
        let (_, p, s, cu) = catalog();
        let q = SliceQuery::new(vec![cu, p], vec![(s, 3)]);
        assert_eq!(q.node(), vec![p, s, cu]);
        assert_eq!(q.predicate_value(s), Some(3));
        assert_eq!(q.predicate_value(p), None);
        assert!(!q.is_full_view());
    }

    #[test]
    #[should_panic(expected = "both grouped and sliced")]
    fn overlapping_attrs_panic() {
        let (_, p, s, _) = catalog();
        let _ = SliceQuery::new(vec![p, s], vec![(p, 1)]);
    }

    #[test]
    fn sql_display() {
        let (c, p, s, _) = catalog();
        let q = SliceQuery::new(vec![s], vec![(p, 7)]);
        assert_eq!(
            q.display(&c),
            "select suppkey, agg(measure) from cube where partkey = 7 group by suppkey"
        );
        let scalar = SliceQuery::new(vec![], vec![(p, 7)]);
        assert_eq!(scalar.display(&c), "select agg(measure) from cube where partkey = 7");
        let v = ViewDef::new(0, vec![p, s], AggFn::Sum);
        assert!(v.covers_exactly(&q.node()));
    }

    #[test]
    fn ranges_extend_node_and_display() {
        let (c, p, s, cu) = catalog();
        let q = SliceQuery::new(vec![cu], vec![(s, 2)]).with_range(p, 3, 7);
        assert_eq!(q.node(), vec![p, s, cu]);
        assert_eq!(q.range_of(p), Some((3, 7)));
        assert_eq!(q.range_of(s), Some((2, 2)), "equality is a degenerate range");
        assert_eq!(q.range_of(cu), None);
        assert!(!q.is_full_view());
        assert_eq!(
            q.display(&c),
            "select custkey, agg(measure) from cube where suppkey = 2 and \
             partkey between 3 and 7 group by custkey"
        );
    }

    #[test]
    #[should_panic(expected = "already constrained")]
    fn duplicate_range_panics() {
        let (_, p, _, _) = catalog();
        let _ = SliceQuery::new(vec![], vec![(p, 1)]).with_range(p, 1, 2);
    }

    #[test]
    #[should_panic(expected = "inverted range")]
    fn inverted_range_panics() {
        let (_, p, _, _) = catalog();
        let _ = SliceQuery::new(vec![], vec![]).with_range(p, 5, 2);
    }

    #[test]
    fn cache_key_canonicalizes_predicate_order_only() {
        let (_, p, s, cu) = catalog();
        let a = SliceQuery::new(vec![cu], vec![(p, 1), (s, 2)]);
        let b = SliceQuery::new(vec![cu], vec![(s, 2), (p, 1)]);
        assert_eq!(a.cache_key(), b.cache_key(), "WHERE order is not identity");
        assert_eq!(a.cache_key().digest(), b.cache_key().digest());
        // Group-by order shapes the result rows, so it stays significant.
        let c = SliceQuery::new(vec![p, s], vec![]);
        let d = SliceQuery::new(vec![s, p], vec![]);
        assert_ne!(c.cache_key(), d.cache_key(), "group-by order changes row keys");
        // Different constants are different questions.
        let e = SliceQuery::new(vec![cu], vec![(p, 1), (s, 3)]);
        assert_ne!(a.cache_key(), e.cache_key());
        assert_ne!(a.cache_key().digest(), e.cache_key().digest());
        assert!(a.cache_key().approx_bytes() > 0);
    }

    #[test]
    fn cache_key_digest_is_stable_across_calls() {
        let (_, p, s, _) = catalog();
        let q = SliceQuery::new(vec![s], vec![(p, 7)]).with_range(AttrId(2), 1, 4);
        assert_eq!(q.cache_key().digest(), q.cache_key().digest());
        let trimmed = SliceQuery::new(vec![s], vec![(p, 7)]);
        assert_ne!(q.cache_key(), trimmed.cache_key(), "ranges are part of the key");
    }

    #[test]
    fn normalize_sorts_by_key() {
        let rows = vec![
            QueryRow { key: vec![3], agg: 1.0 },
            QueryRow { key: vec![1], agg: 2.0 },
            QueryRow { key: vec![2], agg: 3.0 },
        ];
        let n = normalize_rows(rows);
        assert_eq!(n.iter().map(|r| r.key[0]).collect::<Vec<_>>(), vec![1, 2, 3]);
    }
}
