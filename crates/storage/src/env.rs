//! Storage environment: a temp directory + buffer pool + counters.

use crate::buffer::BufferPool;
use crate::io::{IoSnapshot, IoStats};
use crate::pager::{DiskFile, FileId};
use ct_common::{CostModel, Result};
use ct_obs::{Recorder, SpanGuard};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A self-deleting temporary directory (removed on drop).
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates a fresh directory under the system temp dir.
    pub fn new(prefix: &str) -> Result<Self> {
        let n = TEMP_COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "cubetrees-{prefix}-{}-{n}",
            std::process::id()
        ));
        std::fs::create_dir_all(&path)?;
        Ok(TempDir { path })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// Worker-thread budget for the parallel sort→pack pipeline.
///
/// `threads = 1` is the fully sequential legacy pipeline. Larger values let
/// the external sorter overlap run generation with input consumption, the
/// k-way merge prefetch run pages, and the forest build/refresh dispatch one
/// job per Cubetree. The simulated-I/O totals are identical for every value:
/// each worker touches its own files in the same per-file page order the
/// sequential pipeline would, and the counters aggregate atomically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Parallelism {
    /// Number of worker threads (clamped to at least 1).
    pub threads: usize,
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism { threads: 1 }
    }
}

impl Parallelism {
    /// A budget of `threads` workers (zero is treated as one).
    pub fn new(threads: usize) -> Self {
        Parallelism { threads: threads.max(1) }
    }

    /// True when more than one worker is allowed.
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }
}

/// Everything a storage engine needs: where files live, the shared buffer
/// pool, the I/O counters and the cost model that prices them.
pub struct StorageEnv {
    dir: TempDir,
    stats: Arc<IoStats>,
    pool: Arc<BufferPool>,
    cost: CostModel,
    file_seq: AtomicU64,
    parallelism: Parallelism,
    recorder: Recorder,
}

/// Default buffer pool size: 4096 × 8 KiB = 32 MiB, matching the paper's
/// testbed RAM ("a single processor Ultra Sparc I, with 32MB main memory").
pub const DEFAULT_POOL_PAGES: usize = 4096;

impl StorageEnv {
    /// Creates an environment with the default (paper-matching) buffer size
    /// and cost model.
    pub fn new(prefix: &str) -> Result<Self> {
        StorageEnv::with_config(prefix, DEFAULT_POOL_PAGES, CostModel::default())
    }

    /// Creates an environment with an explicit pool size (in pages) and cost
    /// model.
    pub fn with_config(prefix: &str, pool_pages: usize, cost: CostModel) -> Result<Self> {
        Self::with_config_parallel(prefix, pool_pages, cost, Parallelism::default())
    }

    /// Like [`StorageEnv::with_config`] with an explicit worker budget.
    pub fn with_config_parallel(
        prefix: &str,
        pool_pages: usize,
        cost: CostModel,
        parallelism: Parallelism,
    ) -> Result<Self> {
        Self::with_config_full(prefix, pool_pages, cost, parallelism, Recorder::disabled())
    }

    /// The fully explicit constructor: worker budget plus a metrics
    /// [`Recorder`]. Pass [`Recorder::disabled`] (what every other
    /// constructor does) for the zero-cost path; pass an enabled recorder to
    /// have the buffer pool, sorter and everything built on top report
    /// counters and phase spans into it.
    pub fn with_config_full(
        prefix: &str,
        pool_pages: usize,
        cost: CostModel,
        parallelism: Parallelism,
        recorder: Recorder,
    ) -> Result<Self> {
        let dir = TempDir::new(prefix)?;
        let stats = Arc::new(IoStats::new());
        let pool = Arc::new(BufferPool::with_recorder(pool_pages, stats.clone(), recorder.clone()));
        Ok(StorageEnv {
            dir,
            stats,
            pool,
            cost,
            file_seq: AtomicU64::new(0),
            parallelism: Parallelism::new(parallelism.threads),
            recorder,
        })
    }

    /// The environment's metrics recorder (disabled unless the environment
    /// was built with [`StorageEnv::with_config_full`]).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Opens a root phase span (e.g. `"load"`) that, when dropped, records
    /// both its wall time and the environment-wide page-I/O delta spanning
    /// its lifetime.
    ///
    /// I/O attribution reads the *global* counters, so root phases must not
    /// overlap each other in time; open them on the engine's main thread
    /// around complete operations. For concurrent per-tree work, use
    /// wall-only child spans ([`Phase::child_wall`]) instead — attributing
    /// shared counters to concurrent siblings would misattribute.
    pub fn phase(&self, path: &str) -> Phase {
        Phase::open(self.recorder.span(path), &self.stats, self.recorder.is_enabled())
    }

    /// The environment's worker budget.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// A fresh private buffer pool charging into this environment's counters.
    ///
    /// Per-tree build/refresh jobs run against private pools so their page
    /// traffic is a pure function of the job, independent of how jobs are
    /// interleaved across workers — which keeps the counter totals identical
    /// for every [`Parallelism`] setting.
    pub fn new_private_pool(&self, pages: usize) -> Arc<BufferPool> {
        Arc::new(BufferPool::with_recorder(
            pages.max(1),
            self.stats.clone(),
            self.recorder.clone(),
        ))
    }

    /// Creates a new page file in the environment directory and registers it
    /// with the buffer pool.
    pub fn create_file(&self, name: &str) -> Result<FileId> {
        let n = self.file_seq.fetch_add(1, Ordering::Relaxed);
        let path = self.dir.path().join(format!("{n:04}-{name}.pages"));
        let file = Arc::new(DiskFile::create(path, self.stats.clone())?);
        Ok(self.pool.register(file))
    }

    /// Creates an *unbuffered* page file (bypassing the pool) for streaming
    /// uses like sort runs, where caching would only pollute the pool.
    pub fn create_raw_file(&self, name: &str) -> Result<Arc<DiskFile>> {
        let n = self.file_seq.fetch_add(1, Ordering::Relaxed);
        let path = self.dir.path().join(format!("{n:04}-{name}.run"));
        Ok(Arc::new(DiskFile::create(path, self.stats.clone())?))
    }

    /// Drops a buffered file: evicts its frames (discarding dirty state) and
    /// deletes it from disk. Used when merge-pack replaces an old Cubetree
    /// and when the conventional engine rebuilds views from scratch.
    pub fn remove_file(&self, fid: FileId) -> Result<()> {
        self.pool.remove_file(fid)
    }

    /// The shared buffer pool.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The shared I/O counters.
    pub fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    /// A point-in-time copy of the I/O counters.
    pub fn snapshot(&self) -> IoSnapshot {
        self.stats.snapshot()
    }

    /// The environment's cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Total bytes currently allocated by all live buffered files.
    pub fn total_bytes(&self) -> u64 {
        self.pool.total_bytes()
    }

    /// Allocated bytes of one file.
    pub fn file_bytes(&self, fid: FileId) -> u64 {
        self.pool.file(fid).size_bytes()
    }
}

/// An open phase span with automatic page-I/O attribution.
///
/// Created by [`StorageEnv::phase`]. On drop, the wall time since opening
/// and the delta of the environment's [`IoStats`] over the phase's lifetime
/// are folded into the recorder under the span's path. With a disabled
/// recorder the guard is fully inert — no snapshots are taken.
#[derive(Debug)]
#[must_use = "a phase measures until dropped; binding it to _ closes it immediately"]
pub struct Phase {
    guard: SpanGuard,
    // `None` when the recorder is disabled (skips counter snapshots).
    stats: Option<Arc<IoStats>>,
    start: IoSnapshot,
}

impl Phase {
    fn open(guard: SpanGuard, stats: &Arc<IoStats>, enabled: bool) -> Phase {
        let (stats, start) = if enabled {
            (Some(stats.clone()), stats.snapshot())
        } else {
            (None, IoSnapshot::default())
        };
        Phase { guard, stats, start }
    }

    /// Opens a child phase (`self`'s path + `/` + `name`) that attributes
    /// its own I/O interval. Children must run sequentially within the
    /// parent (same single-writer rule as root phases).
    pub fn child(&self, name: &str) -> Phase {
        let guard = self.guard.child(name);
        match &self.stats {
            Some(stats) => {
                let start = stats.snapshot();
                Phase { guard, stats: Some(stats.clone()), start }
            }
            None => Phase { guard, stats: None, start: IoSnapshot::default() },
        }
    }

    /// Opens a wall-clock-only child span, safe to move into a worker
    /// thread running concurrently with its siblings (no I/O attribution,
    /// so shared global counters cannot be misattributed).
    pub fn child_wall(&self, name: &str) -> SpanGuard {
        self.guard.child(name)
    }
}

impl Drop for Phase {
    fn drop(&mut self) {
        if let Some(stats) = &self.stats {
            let delta = stats.snapshot().since(&self.start);
            self.guard.add_io(delta.to_delta());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tempdir_is_removed_on_drop() {
        let path;
        {
            let d = TempDir::new("probe").unwrap();
            path = d.path().to_path_buf();
            assert!(path.exists());
        }
        assert!(!path.exists());
    }

    #[test]
    fn env_creates_distinct_files() {
        let env = StorageEnv::new("env-test").unwrap();
        let a = env.create_file("alpha").unwrap();
        let b = env.create_file("alpha").unwrap();
        assert_ne!(a, b);
        assert_eq!(env.total_bytes(), 0);
    }

    #[test]
    fn raw_files_live_in_env_dir() {
        let env = StorageEnv::new("env-raw").unwrap();
        let f = env.create_raw_file("spill").unwrap();
        assert!(f.path().starts_with(env.dir.path()));
    }

    #[test]
    fn parallelism_defaults_and_clamps() {
        assert_eq!(Parallelism::default().threads, 1);
        assert!(!Parallelism::default().is_parallel());
        assert_eq!(Parallelism::new(0).threads, 1);
        assert!(Parallelism::new(4).is_parallel());
        let env = StorageEnv::new("env-par").unwrap();
        assert_eq!(env.parallelism().threads, 1);
        let env = StorageEnv::with_config_parallel(
            "env-par",
            64,
            CostModel::default(),
            Parallelism::new(3),
        )
        .unwrap();
        assert_eq!(env.parallelism().threads, 3);
    }

    #[test]
    fn phases_attribute_io_deltas() {
        let env = StorageEnv::with_config_full(
            "env-phase",
            16,
            CostModel::default(),
            Parallelism::default(),
            ct_obs::Recorder::enabled(),
        )
        .unwrap();
        {
            let load = env.phase("load");
            {
                let _pack = load.child("pack");
                let fid = env.create_file("t").unwrap();
                let pid = env.pool().new_page(fid).unwrap();
                env.pool().with_page_mut(fid, pid, |p| p.put_u64(0, 1)).unwrap();
                env.pool().flush_all().unwrap();
            }
        }
        let snap = env.recorder().snapshot();
        let load = &snap.spans["load"];
        let pack = &snap.spans["load/pack"];
        assert!(load.has_io && pack.has_io);
        assert_eq!(load.io, pack.io, "all I/O happened inside the child");
        assert_eq!(load.io.total_io(), 1, "one page flushed");
        assert_eq!(snap.root_io_total().total_io(), 1);
    }

    #[test]
    fn disabled_recorder_phases_are_inert() {
        let env = StorageEnv::new("env-phase-off").unwrap();
        assert!(!env.recorder().is_enabled());
        let p = env.phase("load");
        let _w = p.child_wall("tree0");
        drop(p);
        assert!(env.recorder().snapshot().spans.is_empty());
    }

    #[test]
    fn private_pools_share_counters() {
        let env = StorageEnv::new("env-priv").unwrap();
        let before = env.snapshot();
        let pool = env.new_private_pool(8);
        let file = env.create_raw_file("t").unwrap();
        let fid = pool.register(file);
        let pid = pool.new_page(fid).unwrap();
        pool.with_page_mut(fid, pid, |p| p.put_u64(0, 7)).unwrap();
        pool.flush_all().unwrap();
        let d = env.snapshot().since(&before);
        assert_eq!(d.seq_writes + d.rand_writes, 1, "private pool writes hit env stats");
    }
}
