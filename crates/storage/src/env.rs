//! Storage environment: a directory + buffer pool + counters + manifest.

use crate::buffer::BufferPool;
use crate::fault::FaultPlan;
use crate::io::{IoSnapshot, IoStats};
use crate::manifest::{self, Manifest, ManifestEntry, Recovery};
use crate::pager::{DiskFile, FileId};
use ct_common::{CostModel, CtError, Result};
use ct_obs::{Recorder, SpanGuard};
use parking_lot::Mutex;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);
static CLEANUP_FAILURES: AtomicU64 = AtomicU64::new(0);

/// Number of temp-directory removals that failed process-wide (reported by
/// [`TempDir`]'s drop). A non-zero value at process exit means temp state
/// leaked; `examples/quickstart.rs` turns it into a non-zero exit code.
pub fn cleanup_failures() -> u64 {
    CLEANUP_FAILURES.load(Ordering::Relaxed)
}

/// A self-deleting temporary directory (removed on drop).
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates a fresh directory under the system temp dir.
    pub fn new(prefix: &str) -> Result<Self> {
        let n = TEMP_COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "cubetrees-{prefix}-{}-{n}",
            std::process::id()
        ));
        std::fs::create_dir_all(&path)?;
        Ok(TempDir { path })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Removes the directory now, surfacing the error a plain drop can only
    /// log. An already-gone directory is fine.
    pub fn close(self) -> Result<()> {
        let path = self.path.clone();
        std::mem::forget(self);
        match std::fs::remove_dir_all(&path) {
            Err(e) if e.kind() != std::io::ErrorKind::NotFound => Err(e.into()),
            _ => Ok(()),
        }
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        // Drop cannot return the error, but it must not vanish either: count
        // it for process-exit checks and say where the leak is.
        if let Err(e) = std::fs::remove_dir_all(&self.path) {
            if e.kind() != std::io::ErrorKind::NotFound {
                CLEANUP_FAILURES.fetch_add(1, Ordering::Relaxed);
                eprintln!("warning: failed to remove temp dir {}: {e}", self.path.display());
            }
        }
    }
}

/// Where an environment's files live: a self-deleting temp directory (the
/// default) or a caller-owned persistent directory that survives the
/// environment (what crash-recovery reopening needs).
#[derive(Debug)]
enum EnvDir {
    Owned(TempDir),
    Persistent(PathBuf),
}

impl EnvDir {
    fn path(&self) -> &Path {
        match self {
            EnvDir::Owned(d) => d.path(),
            EnvDir::Persistent(p) => p,
        }
    }
}

/// Worker-thread budget for the parallel sort→pack pipeline.
///
/// `threads = 1` is the fully sequential legacy pipeline. Larger values let
/// the external sorter overlap run generation with input consumption, the
/// k-way merge prefetch run pages, and the forest build/refresh dispatch one
/// job per Cubetree. The simulated-I/O totals are identical for every value:
/// each worker touches its own files in the same per-file page order the
/// sequential pipeline would, and the counters aggregate atomically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Parallelism {
    /// Number of worker threads (clamped to at least 1).
    pub threads: usize,
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism { threads: 1 }
    }
}

impl Parallelism {
    /// A budget of `threads` workers (zero is treated as one).
    pub fn new(threads: usize) -> Self {
        Parallelism { threads: threads.max(1) }
    }

    /// True when more than one worker is allowed.
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }
}

/// Everything a storage engine needs: where files live, the shared buffer
/// pool, the I/O counters, the cost model that prices them, the durability
/// manifest and the fault plan.
pub struct StorageEnv {
    dir: EnvDir,
    stats: Arc<IoStats>,
    pool: Arc<BufferPool>,
    cost: CostModel,
    file_seq: AtomicU64,
    parallelism: Parallelism,
    recorder: Recorder,
    faults: FaultPlan,
    manifest: Mutex<Manifest>,
    manifest_commits: ct_obs::Counter,
}

/// Default buffer pool size: 4096 × 8 KiB = 32 MiB, matching the paper's
/// testbed RAM ("a single processor Ultra Sparc I, with 32MB main memory").
pub const DEFAULT_POOL_PAGES: usize = 4096;

impl StorageEnv {
    /// Creates an environment with the default (paper-matching) buffer size
    /// and cost model.
    pub fn new(prefix: &str) -> Result<Self> {
        StorageEnv::with_config(prefix, DEFAULT_POOL_PAGES, CostModel::default())
    }

    /// Creates an environment with an explicit pool size (in pages) and cost
    /// model.
    pub fn with_config(prefix: &str, pool_pages: usize, cost: CostModel) -> Result<Self> {
        Self::with_config_parallel(prefix, pool_pages, cost, Parallelism::default())
    }

    /// Like [`StorageEnv::with_config`] with an explicit worker budget.
    pub fn with_config_parallel(
        prefix: &str,
        pool_pages: usize,
        cost: CostModel,
        parallelism: Parallelism,
    ) -> Result<Self> {
        Self::with_config_full(prefix, pool_pages, cost, parallelism, Recorder::disabled())
    }

    /// The fully explicit constructor: worker budget plus a metrics
    /// [`Recorder`]. Pass [`Recorder::disabled`] (what every other
    /// constructor does) for the zero-cost path; pass an enabled recorder to
    /// have the buffer pool, sorter and everything built on top report
    /// counters and phase spans into it.
    pub fn with_config_full(
        prefix: &str,
        pool_pages: usize,
        cost: CostModel,
        parallelism: Parallelism,
        recorder: Recorder,
    ) -> Result<Self> {
        Self::with_config_faults(prefix, pool_pages, cost, parallelism, recorder, FaultPlan::none())
    }

    /// Like [`StorageEnv::with_config_full`] with a fault plan threaded into
    /// every file the environment creates (see [`FaultPlan`]).
    pub fn with_config_faults(
        prefix: &str,
        pool_pages: usize,
        cost: CostModel,
        parallelism: Parallelism,
        recorder: Recorder,
        faults: FaultPlan,
    ) -> Result<Self> {
        let dir = EnvDir::Owned(TempDir::new(prefix)?);
        Ok(Self::assemble(dir, pool_pages, cost, parallelism, recorder, faults, Manifest::default(), 0))
    }

    /// Opens (or creates) an environment over a *persistent* directory,
    /// running recovery first: a torn `MANIFEST.tmp` is discarded, every
    /// manifest-named file is verified against its recorded content
    /// checksum, and orphaned `.pages`/`.run` files from an interrupted
    /// build or update are deleted. The directory is left on disk when the
    /// environment drops, so a test (or a real caller) can crash an update
    /// and reopen.
    ///
    /// Returns the environment plus the [`Recovery`] report. Manifest-named
    /// files are *not* auto-registered with the pool — callers re-attach the
    /// components they know via [`StorageEnv::open_file`].
    pub fn open_at(
        dir: impl AsRef<Path>,
        pool_pages: usize,
        cost: CostModel,
        parallelism: Parallelism,
        recorder: Recorder,
        faults: FaultPlan,
    ) -> Result<(Self, Recovery)> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let recovery = manifest::recover(&dir)?;
        recorder.counter("storage.manifest.recoveries").inc();
        recorder
            .counter("storage.manifest.orphans_removed")
            .add(recovery.orphans_removed.len() as u64);
        let man = recovery.manifest.clone().unwrap_or_default();
        // Resume file numbering past every surviving file so new files never
        // collide with manifest-named ones.
        let mut next_seq = 0u64;
        for e in &man.entries {
            if let Some(n) = e.file.split('-').next().and_then(|p| p.parse::<u64>().ok()) {
                next_seq = next_seq.max(n + 1);
            }
        }
        let env = Self::assemble(
            EnvDir::Persistent(dir),
            pool_pages,
            cost,
            parallelism,
            recorder,
            faults,
            man,
            next_seq,
        );
        Ok((env, recovery))
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        dir: EnvDir,
        pool_pages: usize,
        cost: CostModel,
        parallelism: Parallelism,
        recorder: Recorder,
        faults: FaultPlan,
        manifest: Manifest,
        next_seq: u64,
    ) -> Self {
        let stats = Arc::new(IoStats::new());
        // A sequential environment keeps the historical single-shard clock
        // (the `threads=1` determinism contract depends on it); a parallel
        // one spreads frames over up to 8 shards so concurrent query workers
        // do not serialize on one latch. Sharding is also gated on capacity:
        // a small pool split many ways loses effective capacity to hash
        // imbalance (the hottest shard evicts while others sit idle), which
        // costs more than the latch it saves — keep >= 256 frames per shard.
        let shards = if parallelism.is_parallel() {
            parallelism.threads.min(8).min((pool_pages / 256).max(1))
        } else {
            1
        };
        let pool = Arc::new(BufferPool::with_shards(
            pool_pages,
            shards,
            stats.clone(),
            recorder.clone(),
        ));
        recorder.gauge_set("storage.buffer.shards", shards as f64);
        faults.attach_recorder(&recorder);
        let manifest_commits = recorder.counter("storage.manifest.commits");
        StorageEnv {
            dir,
            stats,
            pool,
            cost,
            file_seq: AtomicU64::new(next_seq),
            parallelism: Parallelism::new(parallelism.threads),
            recorder,
            faults,
            manifest: Mutex::new(manifest),
            manifest_commits,
        }
    }

    /// The environment's metrics recorder (disabled unless the environment
    /// was built with [`StorageEnv::with_config_full`]).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Opens a root phase span (e.g. `"load"`) that, when dropped, records
    /// both its wall time and the environment-wide page-I/O delta spanning
    /// its lifetime.
    ///
    /// I/O attribution reads the *global* counters, so root phases must not
    /// overlap each other in time; open them on the engine's main thread
    /// around complete operations. For concurrent per-tree work, use
    /// wall-only child spans ([`Phase::child_wall`]) instead — attributing
    /// shared counters to concurrent siblings would misattribute.
    pub fn phase(&self, path: &str) -> Phase {
        Phase::open(self.recorder.span(path), &self.stats, self.recorder.is_enabled())
    }

    /// The environment's worker budget.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// A fresh private buffer pool charging into this environment's counters.
    ///
    /// Per-tree build/refresh jobs run against private pools so their page
    /// traffic is a pure function of the job, independent of how jobs are
    /// interleaved across workers — which keeps the counter totals identical
    /// for every [`Parallelism`] setting.
    pub fn new_private_pool(&self, pages: usize) -> Arc<BufferPool> {
        Arc::new(BufferPool::with_recorder(
            pages.max(1),
            self.stats.clone(),
            self.recorder.clone(),
        ))
    }

    /// The directory the environment's files live in.
    pub fn dir_path(&self) -> &Path {
        self.dir.path()
    }

    /// The environment's fault plan (inert unless built with
    /// [`StorageEnv::with_config_faults`] / [`StorageEnv::open_at`]).
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Creates a new page file in the environment directory and registers it
    /// with the buffer pool.
    pub fn create_file(&self, name: &str) -> Result<FileId> {
        let n = self.file_seq.fetch_add(1, Ordering::Relaxed);
        let path = self.dir.path().join(format!("{n:04}-{name}.pages"));
        let file = Arc::new(DiskFile::create_with(path, self.stats.clone(), self.faults.clone())?);
        Ok(self.pool.register(file))
    }

    /// Creates an *unbuffered* page file (bypassing the pool) for streaming
    /// uses like sort runs, where caching would only pollute the pool.
    pub fn create_raw_file(&self, name: &str) -> Result<Arc<DiskFile>> {
        let n = self.file_seq.fetch_add(1, Ordering::Relaxed);
        let path = self.dir.path().join(format!("{n:04}-{name}.run"));
        Ok(Arc::new(DiskFile::create_with(path, self.stats.clone(), self.faults.clone())?))
    }

    /// Re-attaches the manifest-named file backing `component` (opened
    /// without truncation) and registers it with the pool. The normal path
    /// after [`StorageEnv::open_at`] recovery.
    pub fn open_file(&self, component: &str) -> Result<FileId> {
        let man = self.manifest.lock();
        let entry = man.entry(component).ok_or_else(|| {
            CtError::invalid(format!("manifest has no entry for component {component:?}"))
        })?;
        let path = self.dir.path().join(&entry.file);
        let file =
            Arc::new(DiskFile::open_existing(path, self.stats.clone(), self.faults.clone())?);
        Ok(self.pool.register(file))
    }

    /// The last committed (or recovered) manifest.
    pub fn manifest(&self) -> Manifest {
        self.manifest.lock().clone()
    }

    /// Builds the manifest entry recording `fid`'s current on-disk state
    /// (page count + whole-file content checksum) under `component`. The
    /// checksum is computed via `std::fs`, so the simulated I/O counters are
    /// untouched; call only after the file's pages are flushed.
    pub fn manifest_entry(&self, component: &str, fid: FileId) -> Result<ManifestEntry> {
        let file = self.pool.file(fid)?;
        let name = file
            .path()
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or_else(|| CtError::invalid("file has no utf-8 name"))?
            .to_string();
        Ok(ManifestEntry {
            component: component.to_string(),
            file: name,
            pages: file.page_count(),
            checksum: manifest::file_checksum(file.path())?,
        })
    }

    /// Atomically replaces the manifest's live file set with `entries`
    /// (write-temp → fsync → rename → fsync-dir), bumping the commit
    /// sequence number. This is the single commit point of every
    /// build-then-swap: before it the old file set is live, after it the new
    /// one is, and recovery deletes whichever side lost.
    pub fn commit_manifest(&self, entries: Vec<ManifestEntry>) -> Result<()> {
        self.commit_manifest_inner(entries, None)
    }

    /// [`StorageEnv::commit_manifest`] with a commit *stamp*: an opaque
    /// token (e.g. a sharded refresh id) recorded in the manifest and
    /// carried forward by every later unstamped commit. Multi-shard crash
    /// recovery reads it back via [`StorageEnv::manifest`] to decide whether
    /// this environment committed a given refresh.
    pub fn commit_manifest_stamped(&self, entries: Vec<ManifestEntry>, stamp: &str) -> Result<()> {
        self.commit_manifest_inner(entries, Some(stamp))
    }

    fn commit_manifest_inner(&self, entries: Vec<ManifestEntry>, stamp: Option<&str>) -> Result<()> {
        let mut man = self.manifest.lock();
        let stamp = match stamp {
            Some(s) => Some(s.to_string()),
            None => man.stamp.clone(),
        };
        let next = Manifest { seq: man.seq + 1, stamp, entries };
        next.write_atomic(self.dir.path(), &self.faults)?;
        *man = next;
        self.manifest_commits.inc();
        Ok(())
    }

    /// Drops a buffered file: evicts its frames (discarding dirty state) and
    /// deletes it from disk — or, if other components still hold handles,
    /// dooms it so deletion happens on last release and any straggler I/O
    /// fails loudly (see [`BufferPool::remove_file`]). Used when merge-pack
    /// replaces an old Cubetree and when the conventional engine rebuilds
    /// views from scratch.
    pub fn remove_file(&self, fid: FileId) -> Result<()> {
        self.pool.remove_file(fid)
    }

    /// Tears the environment down now, surfacing cleanup errors a plain drop
    /// can only log. A persistent ([`StorageEnv::open_at`]) directory is
    /// left on disk — that durability is its point.
    pub fn close(self) -> Result<()> {
        match self.dir {
            EnvDir::Owned(tmp) => tmp.close(),
            EnvDir::Persistent(_) => Ok(()),
        }
    }

    /// The shared buffer pool.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The shared I/O counters.
    pub fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    /// A point-in-time copy of the I/O counters.
    pub fn snapshot(&self) -> IoSnapshot {
        self.stats.snapshot()
    }

    /// The environment's cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Total bytes currently allocated by all live buffered files.
    pub fn total_bytes(&self) -> u64 {
        self.pool.total_bytes()
    }

    /// Allocated bytes of one file (zero for a removed handle).
    pub fn file_bytes(&self, fid: FileId) -> u64 {
        self.pool.file(fid).map_or(0, |f| f.size_bytes())
    }
}

/// An open phase span with automatic page-I/O attribution.
///
/// Created by [`StorageEnv::phase`]. On drop, the wall time since opening
/// and the delta of the environment's [`IoStats`] over the phase's lifetime
/// are folded into the recorder under the span's path. With a disabled
/// recorder the guard is fully inert — no snapshots are taken.
#[derive(Debug)]
#[must_use = "a phase measures until dropped; binding it to _ closes it immediately"]
pub struct Phase {
    guard: SpanGuard,
    // `None` when the recorder is disabled (skips counter snapshots).
    stats: Option<Arc<IoStats>>,
    start: IoSnapshot,
}

impl Phase {
    fn open(guard: SpanGuard, stats: &Arc<IoStats>, enabled: bool) -> Phase {
        let (stats, start) = if enabled {
            (Some(stats.clone()), stats.snapshot())
        } else {
            (None, IoSnapshot::default())
        };
        Phase { guard, stats, start }
    }

    /// Opens a child phase (`self`'s path + `/` + `name`) that attributes
    /// its own I/O interval. Children must run sequentially within the
    /// parent (same single-writer rule as root phases).
    pub fn child(&self, name: &str) -> Phase {
        let guard = self.guard.child(name);
        match &self.stats {
            Some(stats) => {
                let start = stats.snapshot();
                Phase { guard, stats: Some(stats.clone()), start }
            }
            None => Phase { guard, stats: None, start: IoSnapshot::default() },
        }
    }

    /// Opens a wall-clock-only child span, safe to move into a worker
    /// thread running concurrently with its siblings (no I/O attribution,
    /// so shared global counters cannot be misattributed).
    pub fn child_wall(&self, name: &str) -> SpanGuard {
        self.guard.child(name)
    }
}

impl Drop for Phase {
    fn drop(&mut self) {
        if let Some(stats) = &self.stats {
            let delta = stats.snapshot().since(&self.start);
            self.guard.add_io(delta.to_delta());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tempdir_is_removed_on_drop() {
        let path;
        {
            let d = TempDir::new("probe").unwrap();
            path = d.path().to_path_buf();
            assert!(path.exists());
        }
        assert!(!path.exists());
    }

    #[test]
    fn env_creates_distinct_files() {
        let env = StorageEnv::new("env-test").unwrap();
        let a = env.create_file("alpha").unwrap();
        let b = env.create_file("alpha").unwrap();
        assert_ne!(a, b);
        assert_eq!(env.total_bytes(), 0);
    }

    #[test]
    fn raw_files_live_in_env_dir() {
        let env = StorageEnv::new("env-raw").unwrap();
        let f = env.create_raw_file("spill").unwrap();
        assert!(f.path().starts_with(env.dir_path()));
        env.close().unwrap();
    }

    #[test]
    fn open_at_recovers_and_resumes_numbering() {
        let host = TempDir::new("env-open-at").unwrap();
        let dir = host.path().join("db");
        let open = || {
            StorageEnv::open_at(
                &dir,
                16,
                CostModel::default(),
                Parallelism::default(),
                Recorder::disabled(),
                FaultPlan::none(),
            )
        };
        // First open: nothing to recover, no manifest.
        let (env, rec) = open().unwrap();
        assert_eq!(rec.manifest, None);
        assert!(rec.orphans_removed.is_empty());
        // Commit one file, leave another as an orphan (never committed).
        let fid = env.create_file("alpha").unwrap();
        let pid = env.pool().new_page(fid).unwrap();
        env.pool().with_page_mut(fid, pid, |p| p.put_u64(0, 42)).unwrap();
        env.pool().flush_all().unwrap();
        let entry = env.manifest_entry("alpha", fid).unwrap();
        env.commit_manifest(vec![entry.clone()]).unwrap();
        env.create_file("orphan").unwrap();
        drop(env);
        assert!(dir.exists(), "persistent dir survives drop");
        // Second open: orphan removed, manifest intact, numbering resumes.
        let (env, rec) = open().unwrap();
        assert_eq!(rec.orphans_removed.len(), 1);
        let man = rec.manifest.unwrap();
        assert_eq!(man.seq, 1);
        assert_eq!(man.entry("alpha"), Some(&entry));
        let fid = env.open_file("alpha").unwrap();
        let val = env.pool().with_page(fid, crate::page::PageId(0), |p| p.get_u64(0)).unwrap();
        assert_eq!(val, 42);
        assert!(env.open_file("missing").is_err());
        let fresh = env.create_file("beta").unwrap();
        let fresh_name = env.pool().file(fresh).unwrap().path().to_path_buf();
        assert!(
            !fresh_name.ends_with(entry.file.as_str()),
            "new files never collide with manifest-named ones"
        );
        drop(env);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovered_ids_never_resurrect_prior_frames() {
        // FileId values restart from zero in every environment, so after a
        // recovery the same numeric id names a *different* file. Frames must
        // follow the file, never the id: the first touch of a re-attached
        // component is a physical read, not a hit on anything the old id
        // cached.
        let host = TempDir::new("env-id-reuse").unwrap();
        let dir = host.path().join("db");
        let open = || {
            StorageEnv::open_at(
                &dir,
                16,
                CostModel::default(),
                Parallelism::default(),
                Recorder::disabled(),
                FaultPlan::none(),
            )
        };
        let first_id;
        {
            let (env, _) = open().unwrap();
            let fid = env.create_file("alpha").unwrap();
            first_id = fid;
            let pid = env.pool().new_page(fid).unwrap();
            env.pool().with_page_mut(fid, pid, |p| p.put_u64(0, 0xA11CE)).unwrap();
            env.pool().flush_all().unwrap();
            let entry = env.manifest_entry("alpha", fid).unwrap();
            env.commit_manifest(vec![entry]).unwrap();
        }
        let (env, _) = open().unwrap();
        // A brand-new file claims the same numeric id first.
        let beta = env.create_file("beta").unwrap();
        assert_eq!(beta, first_id, "the recovered pool hands out the same id");
        let bpid = env.pool().new_page(beta).unwrap();
        env.pool().with_page_mut(beta, bpid, |p| p.put_u64(0, 0xB07)).unwrap();
        // Re-attaching alpha under a different id reads its own bytes from
        // disk, never a frame keyed by the reused id.
        let alpha = env.open_file("alpha").unwrap();
        assert_ne!(alpha, beta);
        let before = env.snapshot();
        let v = env
            .pool()
            .with_page(alpha, crate::page::PageId(0), |p| p.get_u64(0))
            .unwrap();
        assert_eq!(v, 0xA11CE);
        let d = env.snapshot().since(&before);
        assert_eq!(d.buffer_hits, 0, "first touch after recovery must hit disk");
        assert_eq!(d.seq_reads + d.rand_reads, 1);
        env.pool().with_page(beta, bpid, |p| assert_eq!(p.get_u64(0), 0xB07)).unwrap();
        drop(env);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn parallelism_defaults_and_clamps() {
        assert_eq!(Parallelism::default().threads, 1);
        assert!(!Parallelism::default().is_parallel());
        assert_eq!(Parallelism::new(0).threads, 1);
        assert!(Parallelism::new(4).is_parallel());
        let env = StorageEnv::new("env-par").unwrap();
        assert_eq!(env.parallelism().threads, 1);
        let env = StorageEnv::with_config_parallel(
            "env-par",
            64,
            CostModel::default(),
            Parallelism::new(3),
        )
        .unwrap();
        assert_eq!(env.parallelism().threads, 3);
    }

    #[test]
    fn phases_attribute_io_deltas() {
        let env = StorageEnv::with_config_full(
            "env-phase",
            16,
            CostModel::default(),
            Parallelism::default(),
            ct_obs::Recorder::enabled(),
        )
        .unwrap();
        {
            let load = env.phase("load");
            {
                let _pack = load.child("pack");
                let fid = env.create_file("t").unwrap();
                let pid = env.pool().new_page(fid).unwrap();
                env.pool().with_page_mut(fid, pid, |p| p.put_u64(0, 1)).unwrap();
                env.pool().flush_all().unwrap();
            }
        }
        let snap = env.recorder().snapshot();
        let load = &snap.spans["load"];
        let pack = &snap.spans["load/pack"];
        assert!(load.has_io && pack.has_io);
        assert_eq!(load.io, pack.io, "all I/O happened inside the child");
        assert_eq!(load.io.total_io(), 1, "one page flushed");
        assert_eq!(snap.root_io_total().total_io(), 1);
    }

    #[test]
    fn disabled_recorder_phases_are_inert() {
        let env = StorageEnv::new("env-phase-off").unwrap();
        assert!(!env.recorder().is_enabled());
        let p = env.phase("load");
        let _w = p.child_wall("tree0");
        drop(p);
        assert!(env.recorder().snapshot().spans.is_empty());
    }

    #[test]
    fn private_pools_share_counters() {
        let env = StorageEnv::new("env-priv").unwrap();
        let before = env.snapshot();
        let pool = env.new_private_pool(8);
        let file = env.create_raw_file("t").unwrap();
        let fid = pool.register(file);
        let pid = pool.new_page(fid).unwrap();
        pool.with_page_mut(fid, pid, |p| p.put_u64(0, 7)).unwrap();
        pool.flush_all().unwrap();
        let d = env.snapshot().since(&before);
        assert_eq!(d.seq_writes + d.rand_writes, 1, "private pool writes hit env stats");
    }
}
