//! The durability manifest: the one file that names the live file set.
//!
//! Every persistent [`crate::env::StorageEnv`] keeps a `MANIFEST` file in its
//! directory. Each record names one *component* (a Cubetree slot like
//! `cubetree-0`, or a conventional view's table/index) and the page file that
//! currently backs it, together with the file's page count and whole-file
//! content checksum. The manifest is rewritten atomically — write
//! `MANIFEST.tmp`, fsync it, rename over `MANIFEST`, fsync the directory — so
//! the forest's build-then-swap update becomes a single atomic commit: a
//! crash before the rename leaves the old manifest (and the old files)
//! intact, a crash after it leaves the new one, and recovery-on-open deletes
//! whichever orphaned `.pages`/`.run` files the surviving manifest does not
//! name.
//!
//! The format is a checksummed line-oriented text file:
//!
//! ```text
//! cubetrees-manifest v1
//! seq 3
//! stamp refresh-7
//! file cubetree-0 0007-cubetree-0-gen1.pages 12 f00dfeedcafe1234
//! file view-5 0002-view-5.pages 3 0123456789abcdef
//! crc 55aa55aa55aa55aa
//! ```
//!
//! The `stamp` line is optional: a *stamped* commit (a sharded refresh)
//! records its refresh id there, and every later unstamped commit carries
//! the token forward, so crash recovery can tell whether a given refresh
//! landed on this environment.
//!
//! The trailing `crc` line is the FNV-1a checksum ([`crate::page::checksum`])
//! of everything before it, so a torn manifest write is detected as
//! [`ct_common::CtError::Corrupt`] rather than silently trusted.
//!
//! All manifest I/O goes through `std::fs` directly — never the pager or the
//! buffer pool — so committing a manifest leaves the environment's simulated
//! [`crate::io::IoStats`] untouched. That preserves the repo's two pinned
//! contracts: byte-identical `IoSnapshot`s across worker counts
//! (`tests/parallel_equivalence.rs`) and zero counter drift with a disabled
//! recorder (`tests/metrics_obs.rs`).

use crate::fault::FaultPlan;
use crate::page::checksum;
use ct_common::{CtError, Result};
use std::path::{Path, PathBuf};

/// File name of the manifest inside an environment directory.
pub const MANIFEST_NAME: &str = "MANIFEST";
/// Scratch name used during an atomic rewrite.
pub const MANIFEST_TMP_NAME: &str = "MANIFEST.tmp";

const HEADER: &str = "cubetrees-manifest v1";

/// One component → file binding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Logical component name (e.g. `cubetree-0`, `view-5-table`).
    pub component: String,
    /// File name (relative to the environment directory) backing it.
    pub file: String,
    /// Allocated page count at commit time.
    pub pages: u64,
    /// Whole-file content checksum ([`crate::page::checksum`]) at commit
    /// time, for recovery to verify the file survived intact.
    pub checksum: u64,
}

/// The decoded manifest: a commit sequence number plus the live file set.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Monotone commit counter (each [`Manifest::write_atomic`] bumps it).
    pub seq: u64,
    /// Opaque token identifying the last *stamped* commit (e.g. a sharded
    /// refresh id). Ordinary commits carry the previous stamp forward, so a
    /// later compaction cannot erase the evidence that a stamped refresh
    /// landed; multi-shard recovery checks this token to decide whether a
    /// shard committed a given refresh.
    pub stamp: Option<String>,
    /// The live component → file bindings, in commit order.
    pub entries: Vec<ManifestEntry>,
}

impl Manifest {
    /// Looks up the entry for `component`.
    pub fn entry(&self, component: &str) -> Option<&ManifestEntry> {
        self.entries.iter().find(|e| e.component == component)
    }

    /// Serializes to the checksummed text format.
    ///
    /// Component and file names must be single whitespace-free tokens (the
    /// environment only ever generates such names); anything else is an
    /// [`CtError::InvalidArgument`].
    pub fn encode(&self) -> Result<String> {
        let mut body = format!("{HEADER}\nseq {}\n", self.seq);
        if let Some(stamp) = &self.stamp {
            if stamp.is_empty() || stamp.chars().any(char::is_whitespace) {
                return Err(CtError::invalid(format!(
                    "manifest stamp {stamp:?} must be one non-empty token"
                )));
            }
            body.push_str(&format!("stamp {stamp}\n"));
        }
        for e in &self.entries {
            for (what, s) in [("component", &e.component), ("file", &e.file)] {
                if s.is_empty() || s.chars().any(char::is_whitespace) {
                    return Err(CtError::invalid(format!(
                        "manifest {what} name {s:?} must be one non-empty token"
                    )));
                }
            }
            body.push_str(&format!("file {} {} {} {:016x}\n", e.component, e.file, e.pages, e.checksum));
        }
        let crc = checksum(body.as_bytes());
        body.push_str(&format!("crc {crc:016x}\n"));
        Ok(body)
    }

    /// Parses the text format, verifying the trailing `crc` line.
    pub fn decode(text: &str) -> Result<Manifest> {
        let corrupt = |what: &str| CtError::corrupt(format!("manifest: {what}"));
        // The crc line is always last; anchor on the final line break so a
        // record token can never be mistaken for it.
        let last_line_start = text
            .trim_end_matches('\n')
            .rfind('\n')
            .map(|i| i + 1)
            .ok_or_else(|| corrupt("missing crc line"))?;
        let (body, crc_line) = text.split_at(last_line_start);
        if !crc_line.starts_with("crc ") {
            return Err(corrupt("missing crc line"));
        }
        let want = crc_line
            .strip_prefix("crc ")
            .and_then(|s| u64::from_str_radix(s.trim(), 16).ok())
            .ok_or_else(|| corrupt("malformed crc line"))?;
        if checksum(body.as_bytes()) != want {
            return Err(corrupt("checksum mismatch (torn write?)"));
        }
        let mut lines = body.lines();
        if lines.next() != Some(HEADER) {
            return Err(corrupt("bad header"));
        }
        let seq = lines
            .next()
            .and_then(|l| l.strip_prefix("seq "))
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| corrupt("bad seq line"))?;
        let mut stamp = None;
        let mut entries = Vec::new();
        for line in lines {
            let mut tok = line.split_whitespace();
            match tok.next() {
                Some("file") => {}
                Some("stamp") => {
                    match (tok.next(), tok.next()) {
                        (Some(s), None) => stamp = Some(s.to_string()),
                        _ => return Err(corrupt("malformed stamp record")),
                    }
                    continue;
                }
                _ => return Err(corrupt("unknown record")),
            }
            let (component, file, pages, sum) =
                match (tok.next(), tok.next(), tok.next(), tok.next(), tok.next()) {
                    (Some(c), Some(f), Some(p), Some(s), None) => (c, f, p, s),
                    _ => return Err(corrupt("malformed file record")),
                };
            entries.push(ManifestEntry {
                component: component.to_string(),
                file: file.to_string(),
                pages: pages.parse().map_err(|_| corrupt("bad page count"))?,
                checksum: u64::from_str_radix(sum, 16).map_err(|_| corrupt("bad checksum"))?,
            });
        }
        Ok(Manifest { seq, stamp, entries })
    }

    /// Loads the manifest from `dir`, or `Ok(None)` if none was ever
    /// committed there. A present-but-undecodable manifest is an error — the
    /// caller must not guess at the live file set.
    pub fn load(dir: &Path) -> Result<Option<Manifest>> {
        match std::fs::read_to_string(dir.join(MANIFEST_NAME)) {
            Ok(text) => Ok(Some(Manifest::decode(&text)?)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// Atomically replaces the manifest in `dir`: write `MANIFEST.tmp`,
    /// fsync, rename over `MANIFEST`, fsync the directory. `faults` is
    /// consulted at the two named crash points (`manifest/before_tmp`,
    /// `manifest/before_rename`) bracketing the non-atomic steps.
    pub fn write_atomic(&self, dir: &Path, faults: &FaultPlan) -> Result<()> {
        use std::io::Write;
        let text = self.encode()?;
        faults.crash_point("manifest/before_tmp")?;
        let tmp = dir.join(MANIFEST_TMP_NAME);
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_data()?;
        drop(f);
        faults.crash_point("manifest/before_rename")?;
        std::fs::rename(&tmp, dir.join(MANIFEST_NAME))?;
        // Persist the rename itself. Directory fsync can be unsupported on
        // some filesystems; a failure there is not a torn manifest (the
        // rename is atomic either way), so it is ignored.
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }
}

/// Computes the whole-file content checksum recovery verifies against,
/// reading via `std::fs` so simulated I/O counters stay untouched.
pub fn file_checksum(path: &Path) -> Result<u64> {
    Ok(checksum(&std::fs::read(path)?))
}

/// The recovery report returned by [`recover`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Recovery {
    /// The manifest that survived, if any was ever committed.
    pub manifest: Option<Manifest>,
    /// Orphaned `.pages`/`.run` files (and any `MANIFEST.tmp`) deleted.
    pub orphans_removed: Vec<PathBuf>,
}

/// Recovers an environment directory to the state its manifest describes:
///
/// 1. a leftover `MANIFEST.tmp` (crash mid-commit) is deleted;
/// 2. every file the manifest names must exist with the recorded content
///    checksum — a mismatch is [`CtError::Corrupt`], because the manifest is
///    only committed after the files it names are synced;
/// 3. every *other* `.pages`/`.run` file in the directory is an orphan from
///    an interrupted build/update and is deleted.
///
/// With no manifest at all (a directory never committed to), every
/// `.pages`/`.run` file is an orphan.
pub fn recover(dir: &Path) -> Result<Recovery> {
    let tmp = dir.join(MANIFEST_TMP_NAME);
    let mut orphans = Vec::new();
    if tmp.exists() {
        std::fs::remove_file(&tmp)?;
        orphans.push(tmp);
    }
    let manifest = Manifest::load(dir)?;
    let live: Vec<&str> = manifest.iter().flat_map(|m| &m.entries).map(|e| e.file.as_str()).collect();
    if let Some(m) = &manifest {
        for e in &m.entries {
            let path = dir.join(&e.file);
            let sum = file_checksum(&path).map_err(|err| {
                CtError::corrupt(format!(
                    "manifest names {} but it cannot be read: {err}",
                    path.display()
                ))
            })?;
            if sum != e.checksum {
                return Err(CtError::corrupt(format!(
                    "content checksum mismatch for {} (manifest {:016x}, disk {sum:016x})",
                    path.display(),
                    e.checksum
                )));
            }
        }
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let is_data = name.ends_with(".pages") || name.ends_with(".run");
        if is_data && !live.contains(&name) {
            let path = entry.path();
            std::fs::remove_file(&path)?;
            orphans.push(path);
        }
    }
    Ok(Recovery { manifest, orphans_removed: orphans })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::TempDir;

    fn sample() -> Manifest {
        Manifest {
            seq: 7,
            stamp: None,
            entries: vec![
                ManifestEntry {
                    component: "cubetree-0".into(),
                    file: "0003-cubetree-0.pages".into(),
                    pages: 12,
                    checksum: 0xdead_beef,
                },
                ManifestEntry {
                    component: "view-5".into(),
                    file: "0004-view-5.pages".into(),
                    pages: 0,
                    checksum: 0,
                },
            ],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let m = sample();
        let text = m.encode().unwrap();
        assert_eq!(Manifest::decode(&text).unwrap(), m);
        assert_eq!(Manifest::decode(&Manifest::default().encode().unwrap()).unwrap(), Manifest::default());
    }

    #[test]
    fn stamp_roundtrips_and_is_validated() {
        let mut m = sample();
        m.stamp = Some("refresh-42".into());
        let text = m.encode().unwrap();
        assert_eq!(Manifest::decode(&text).unwrap(), m);
        // A stamp must be one whitespace-free token.
        m.stamp = Some("two words".into());
        assert!(m.encode().is_err());
        m.stamp = Some(String::new());
        assert!(m.encode().is_err());
        // Stampless manifests (every pre-existing one) still decode.
        let plain = sample().encode().unwrap();
        assert_eq!(Manifest::decode(&plain).unwrap().stamp, None);
    }

    #[test]
    fn corruption_is_detected() {
        let text = sample().encode().unwrap();
        // Flip one digit in the page count.
        let bad = text.replace(" 12 ", " 13 ");
        assert!(matches!(Manifest::decode(&bad), Err(CtError::Corrupt(_))));
        // Truncations lose the crc line or break the checksum. (Losing only
        // the final newline keeps the manifest intact, so cut real bytes.)
        for cut in [text.len() - 2, text.len() / 2, 3] {
            assert!(Manifest::decode(&text[..cut]).is_err(), "cut at {cut}");
        }
        assert!(Manifest::decode("").is_err());
    }

    #[test]
    fn names_with_whitespace_are_rejected() {
        let mut m = sample();
        m.entries[0].component = "bad name".into();
        assert!(m.encode().is_err());
        m.entries[0].component = "ok".into();
        m.entries[0].file = "".into();
        assert!(m.encode().is_err());
    }

    #[test]
    fn write_atomic_then_load() {
        let dir = TempDir::new("manifest-rw").unwrap();
        assert_eq!(Manifest::load(dir.path()).unwrap(), None);
        let m = sample();
        m.write_atomic(dir.path(), &FaultPlan::none()).unwrap();
        assert_eq!(Manifest::load(dir.path()).unwrap(), Some(m.clone()));
        assert!(!dir.path().join(MANIFEST_TMP_NAME).exists());
        // A second commit replaces the first.
        let mut m2 = m;
        m2.seq += 1;
        m2.entries.pop();
        m2.write_atomic(dir.path(), &FaultPlan::none()).unwrap();
        assert_eq!(Manifest::load(dir.path()).unwrap(), Some(m2));
    }

    #[test]
    fn recover_removes_orphans_and_tmp() {
        let dir = TempDir::new("manifest-recover").unwrap();
        let live = dir.path().join("0001-live.pages");
        std::fs::write(&live, b"live-bytes").unwrap();
        let m = Manifest {
            seq: 1,
            stamp: None,
            entries: vec![ManifestEntry {
                component: "t".into(),
                file: "0001-live.pages".into(),
                pages: 0,
                checksum: checksum(b"live-bytes"),
            }],
        };
        m.write_atomic(dir.path(), &FaultPlan::none()).unwrap();
        std::fs::write(dir.path().join("0002-orphan.pages"), b"x").unwrap();
        std::fs::write(dir.path().join("0003-orphan.run"), b"y").unwrap();
        std::fs::write(dir.path().join(MANIFEST_TMP_NAME), b"torn").unwrap();
        std::fs::write(dir.path().join("notes.txt"), b"kept").unwrap();
        let r = recover(dir.path()).unwrap();
        assert_eq!(r.manifest, Some(m));
        assert_eq!(r.orphans_removed.len(), 3);
        assert!(live.exists());
        assert!(dir.path().join("notes.txt").exists(), "non-data files untouched");
        assert!(!dir.path().join("0002-orphan.pages").exists());
        assert!(!dir.path().join("0003-orphan.run").exists());
        assert!(!dir.path().join(MANIFEST_TMP_NAME).exists());
    }

    #[test]
    fn recover_detects_content_corruption() {
        let dir = TempDir::new("manifest-corrupt").unwrap();
        std::fs::write(dir.path().join("0001-t.pages"), b"good").unwrap();
        let m = Manifest {
            seq: 1,
            stamp: None,
            entries: vec![ManifestEntry {
                component: "t".into(),
                file: "0001-t.pages".into(),
                pages: 0,
                checksum: checksum(b"good"),
            }],
        };
        m.write_atomic(dir.path(), &FaultPlan::none()).unwrap();
        std::fs::write(dir.path().join("0001-t.pages"), b"evil").unwrap();
        assert!(matches!(recover(dir.path()), Err(CtError::Corrupt(_))));
        std::fs::remove_file(dir.path().join("0001-t.pages")).unwrap();
        assert!(matches!(recover(dir.path()), Err(CtError::Corrupt(_))), "missing live file");
    }

    #[test]
    fn recover_without_manifest_clears_everything() {
        let dir = TempDir::new("manifest-none").unwrap();
        std::fs::write(dir.path().join("0001-a.pages"), b"x").unwrap();
        let r = recover(dir.path()).unwrap();
        assert_eq!(r.manifest, None);
        assert_eq!(r.orphans_removed.len(), 1);
    }

    #[test]
    fn crash_points_bracket_the_commit() {
        let dir = TempDir::new("manifest-crash").unwrap();
        let m = sample();
        let faults = FaultPlan::new();
        faults.arm_crash_point("manifest/before_tmp");
        assert!(m.write_atomic(dir.path(), &faults).unwrap_err().is_injected());
        assert!(!dir.path().join(MANIFEST_TMP_NAME).exists());
        assert!(!dir.path().join(MANIFEST_NAME).exists());
        faults.reset();
        faults.arm_crash_point("manifest/before_rename");
        assert!(m.write_atomic(dir.path(), &faults).unwrap_err().is_injected());
        assert!(dir.path().join(MANIFEST_TMP_NAME).exists(), "crashed after tmp write");
        assert!(!dir.path().join(MANIFEST_NAME).exists());
        // Recovery wipes the tmp; a clean retry then lands.
        recover(dir.path()).unwrap();
        faults.reset();
        m.write_atomic(dir.path(), &faults).unwrap();
        assert_eq!(Manifest::load(dir.path()).unwrap(), Some(m));
    }
}
