//! A sharded clock (second-chance) buffer pool shared by all storage
//! structures.
//!
//! The pool's job in this reproduction mirrors its role in the paper's
//! analysis (§2.4): the probability that the top levels of every index stay
//! resident determines search performance, and it is why SelectMapping's
//! *minimal* forest beats one-tree-per-view. Dirty frames are written back on
//! eviction and on [`BufferPool::flush_all`]; reads absorbed by the pool are
//! counted as buffer hits rather than physical I/O.
//!
//! The pool is safe to share across threads. Frames are partitioned into
//! shards by a hash of `(file, page)`; each shard is an independent clock
//! behind its own mutex, so concurrent readers of different pages rarely
//! contend on one latch. Page callbacks run under the owning shard's lock
//! (so they must not re-enter the pool). A single-shard pool (the default
//! from [`BufferPool::new`]) behaves exactly like the historical global
//! clock, which is what the deterministic `threads=1` contract relies on.
//! For *deterministic* counter totals under the parallel build pipeline,
//! concurrent jobs use private single-shard pools (see
//! `StorageEnv::new_private_pool`) rather than interleaving evictions in a
//! shared one.
//!
//! Readahead ([`BufferPool::prefetch_run`]) installs pages *cold*: a
//! prefetched frame carries no reference bit, so the first clock sweep may
//! reclaim it before any demand-fetched page loses its second chance (scan
//! resistance). Consuming a prefetched page for the first time counts as
//! neither a buffer hit nor a new physical read — the batched read charged
//! at prefetch time stands as that access — so readahead cannot inflate the
//! measured hit rate.

use crate::io::IoStats;
use crate::page::{Page, PageId};
use crate::pager::{DiskFile, FileId};
use ct_common::{CtError, Result};
use ct_obs::Recorder;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

struct Frame {
    key: (u32, u64),
    page: Page,
    dirty: bool,
    referenced: bool,
    /// Installed by readahead and not yet consumed by any caller.
    prefetched: bool,
    occupied: bool,
}

impl Frame {
    fn empty() -> Self {
        Frame {
            key: (u32::MAX, u64::MAX),
            page: Page::zeroed(),
            dirty: false,
            referenced: false,
            prefetched: false,
            occupied: false,
        }
    }
}

/// One independent clock over a slice of the pool's frames.
struct Shard {
    frames: Vec<Frame>,
    map: HashMap<(u32, u64), usize>,
    hand: usize,
}

/// Fixed-capacity page cache with second-chance replacement, sharded by
/// `(file, page)` hash.
///
/// Lock order: a shard lock may be taken while no other shard of the same
/// pool is held, and the file-table lock may be taken *under* a shard lock
/// (write-back during eviction) but never the other way around.
pub struct BufferPool {
    files: Mutex<Vec<Option<Arc<DiskFile>>>>,
    shards: Vec<Mutex<Shard>>,
    capacity: usize,
    stats: Arc<IoStats>,
    recorder: Recorder,
    evictions: ct_obs::Counter,
    writebacks: ct_obs::Counter,
    prefetch_pages: ct_obs::Counter,
    prefetch_batches: ct_obs::Counter,
    prefetch_used: ct_obs::Counter,
    prefetch_wasted: ct_obs::Counter,
}

impl BufferPool {
    /// A single-shard pool holding at most `capacity` pages, with metrics
    /// disabled.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, stats: Arc<IoStats>) -> Self {
        Self::with_recorder(capacity, stats, Recorder::disabled())
    }

    /// Like [`BufferPool::new`], reporting evictions, dirty write-backs and
    /// prefetch activity to `recorder` (`storage.buffer.evictions`,
    /// `storage.buffer.writebacks`, `storage.buffer.prefetch.*`).
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn with_recorder(capacity: usize, stats: Arc<IoStats>, recorder: Recorder) -> Self {
        Self::with_shards(capacity, 1, stats, recorder)
    }

    /// A pool whose frames are split across `shards` independent clocks.
    /// The shard count is clamped to `1..=capacity`; capacity is divided as
    /// evenly as possible, low shards taking the remainder.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn with_shards(
        capacity: usize,
        shards: usize,
        stats: Arc<IoStats>,
        recorder: Recorder,
    ) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        let shards = shards.clamp(1, capacity);
        let mut shard_vec = Vec::with_capacity(shards);
        for s in 0..shards {
            let frames = capacity / shards + usize::from(s < capacity % shards);
            shard_vec.push(Mutex::new(Shard {
                frames: (0..frames).map(|_| Frame::empty()).collect(),
                map: HashMap::new(),
                hand: 0,
            }));
        }
        let evictions = recorder.counter("storage.buffer.evictions");
        let writebacks = recorder.counter("storage.buffer.writebacks");
        let prefetch_pages = recorder.counter("storage.buffer.prefetch.pages");
        let prefetch_batches = recorder.counter("storage.buffer.prefetch.batches");
        let prefetch_used = recorder.counter("storage.buffer.prefetch.used");
        let prefetch_wasted = recorder.counter("storage.buffer.prefetch.wasted");
        BufferPool {
            files: Mutex::new(Vec::new()),
            shards: shard_vec,
            capacity,
            stats,
            recorder,
            evictions,
            writebacks,
            prefetch_pages,
            prefetch_batches,
            prefetch_used,
            prefetch_wasted,
        }
    }

    /// The recorder this pool reports to (disabled by default). Structures
    /// built over the pool (R-tree packing, merge-pack) reach their metrics
    /// through this handle rather than carrying their own plumbing.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The I/O counters this pool charges into.
    pub fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    /// Registers a file with the pool, returning its handle.
    pub fn register(&self, file: Arc<DiskFile>) -> FileId {
        let mut files = self.files.lock();
        let id = FileId(files.len() as u32);
        files.push(Some(file));
        id
    }

    /// The registered file behind a handle, or an error if the handle is
    /// stale (file was removed) or unknown.
    pub fn file(&self, fid: FileId) -> Result<Arc<DiskFile>> {
        self.files
            .lock()
            .get(fid.0 as usize)
            .and_then(|f| f.clone())
            .ok_or_else(|| CtError::invalid("file was removed from the pool"))
    }

    /// Pool capacity in pages, summed over shards.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of independent clock shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning page `(fid, pid)`. A single-shard pool short-circuits
    /// so the hash never perturbs the historical layout.
    fn shard_of(&self, fid: u32, pid: u64) -> usize {
        if self.shards.len() == 1 {
            return 0;
        }
        // splitmix64-style finalizer over the combined key.
        let mut x = pid ^ ((fid as u64) << 32) ^ 0x9E37_79B9_7F4A_7C15;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        (x % self.shards.len() as u64) as usize
    }

    /// Runs `f` over an immutable view of page `(fid, pid)`, faulting it in
    /// if needed.
    pub fn with_page<R>(&self, fid: FileId, pid: PageId, f: impl FnOnce(&Page) -> R) -> Result<R> {
        let mut shard = self.shards[self.shard_of(fid.0, pid.0)].lock();
        let idx = self.fault_in(&mut shard, fid, pid)?;
        shard.frames[idx].referenced = true;
        Ok(f(&shard.frames[idx].page))
    }

    /// Runs `f` over a mutable view of page `(fid, pid)`, marking it dirty.
    pub fn with_page_mut<R>(
        &self,
        fid: FileId,
        pid: PageId,
        f: impl FnOnce(&mut Page) -> R,
    ) -> Result<R> {
        let mut shard = self.shards[self.shard_of(fid.0, pid.0)].lock();
        let idx = self.fault_in(&mut shard, fid, pid)?;
        let frame = &mut shard.frames[idx];
        frame.referenced = true;
        frame.dirty = true;
        Ok(f(&mut frame.page))
    }

    /// Allocates a fresh page in `fid` and returns its id; the page is
    /// resident, zeroed and dirty (no disk read is charged for it).
    pub fn new_page(&self, fid: FileId) -> Result<PageId> {
        let file = self.file(fid)?;
        let pid = file.allocate();
        let mut shard = self.shards[self.shard_of(fid.0, pid.0)].lock();
        let idx = self.find_victim(&mut shard)?;
        let frame = &mut shard.frames[idx];
        frame.key = (fid.0, pid.0);
        frame.page.clear();
        frame.dirty = true;
        frame.referenced = true;
        frame.prefetched = false;
        frame.occupied = true;
        shard.map.insert((fid.0, pid.0), idx);
        Ok(pid)
    }

    /// Issues readahead for up to `count` pages of `fid` starting at
    /// `start`, returning how many were newly installed.
    ///
    /// Pages already resident are skipped; each maximal run of missing pages
    /// is fetched with one batched [`DiskFile::read_pages`] call (one seek,
    /// then sequential transfers). Installed frames are *cold* — no
    /// reference bit, `prefetched` set — so an un-consumed prefetch is the
    /// first thing its shard's clock reclaims, and its first consumption is
    /// accounted to the batched read rather than as a buffer hit.
    ///
    /// The window is clamped to the file's allocated length; callers clamp
    /// it to logical boundaries (a view's leaf run) themselves.
    pub fn prefetch_run(&self, fid: FileId, start: PageId, count: usize) -> Result<usize> {
        if count == 0 {
            return Ok(0);
        }
        let file = self.file(fid)?;
        let end = (start.0.saturating_add(count as u64)).min(file.page_count());
        if start.0 >= end {
            return Ok(0);
        }
        // Probe residency one shard lock at a time; a racing install between
        // the probe and ours is tolerated below.
        let mut missing: Vec<u64> = Vec::with_capacity((end - start.0) as usize);
        for pid in start.0..end {
            let shard = self.shards[self.shard_of(fid.0, pid)].lock();
            if !shard.map.contains_key(&(fid.0, pid)) {
                missing.push(pid);
            }
        }
        let mut installed = 0usize;
        let mut i = 0;
        'runs: while i < missing.len() {
            let mut j = i + 1;
            while j < missing.len() && missing[j] == missing[j - 1] + 1 {
                j += 1;
            }
            let run_start = missing[i];
            let run_len = j - i;
            let mut pages: Vec<Page> = (0..run_len).map(|_| Page::zeroed()).collect();
            file.read_pages(PageId(run_start), &mut pages)?;
            self.prefetch_batches.inc();
            for (k, page) in pages.into_iter().enumerate() {
                let pid = run_start + k as u64;
                let mut shard = self.shards[self.shard_of(fid.0, pid)].lock();
                if file.is_doomed() {
                    // The file was removed between our batched read and this
                    // install; installing now would plant a frame the removal
                    // sweep can no longer see.
                    break 'runs;
                }
                if shard.map.contains_key(&(fid.0, pid)) {
                    continue; // raced in by a demand read; keep that copy
                }
                let idx = self.find_victim(&mut shard)?;
                let frame = &mut shard.frames[idx];
                frame.key = (fid.0, pid);
                frame.page = page;
                frame.dirty = false;
                frame.referenced = false;
                frame.prefetched = true;
                frame.occupied = true;
                shard.map.insert((fid.0, pid), idx);
                installed += 1;
            }
            i = j;
        }
        self.prefetch_pages.add(installed as u64);
        Ok(installed)
    }

    /// Writes every dirty frame back to its file, shard by shard in order.
    pub fn flush_all(&self) -> Result<()> {
        for shard in &self.shards {
            let mut shard = shard.lock();
            for i in 0..shard.frames.len() {
                if shard.frames[i].occupied && shard.frames[i].dirty {
                    self.write_back(&mut shard, i)?;
                }
            }
        }
        Ok(())
    }

    /// Discards all frames of `fid` (dirty or not) and deletes the file.
    ///
    /// If another component still holds an `Arc<DiskFile>` to it (a raw sort
    /// run mid-merge, a job pool mid-swap, a pinned reader's generation),
    /// deletion is *deferred*: the file is doomed — every further read or
    /// write through any handle fails loudly — and the unlink happens when
    /// the last handle drops, instead of letting a stale handle silently
    /// write to an unlinked path.
    ///
    /// Ordering matters: the handle is taken out of the file table and
    /// doomed *before* the frame sweep. Every install path (demand fault,
    /// `new_page`, prefetch) resolves the handle first, so once the slot is
    /// empty no new frame for this id can slip in behind the sweep — the
    /// stale-frame hazard where a later registration reusing the id would
    /// resurrect a dead file's cached pages.
    pub fn remove_file(&self, fid: FileId) -> Result<()> {
        let file = {
            let mut files = self.files.lock();
            files
                .get_mut(fid.0 as usize)
                .and_then(|f| f.take())
                .ok_or_else(|| CtError::invalid("file already removed"))?
        };
        // Doom before sweeping: an install racing on an already-resolved
        // handle either fails its read or observes the flag and backs off,
        // so the sweep below is exhaustive.
        file.doom();
        for shard in &self.shards {
            let mut shard = shard.lock();
            for i in 0..shard.frames.len() {
                if shard.frames[i].occupied && shard.frames[i].key.0 == fid.0 {
                    let key = shard.frames[i].key;
                    shard.map.remove(&key);
                    shard.frames[i].occupied = false;
                    shard.frames[i].dirty = false;
                    if shard.frames[i].prefetched {
                        // Discarded before its first consumption: balance the
                        // batched read charged at prefetch time as wasted,
                        // exactly like a clock eviction would.
                        shard.frames[i].prefetched = false;
                        self.prefetch_wasted.inc();
                    }
                }
            }
        }
        if Arc::strong_count(&file) > 1 {
            Ok(())
        } else {
            file.delete()
        }
    }

    /// Adopts `from`'s cached pages of `from_fid` into this pool under
    /// `to_fid`, in `from`'s shard-then-frame order, leaving this pool as
    /// warm as if it had produced those pages itself. Pages are installed
    /// clean — the caller must have flushed `from` first — so no I/O is
    /// charged beyond any dirty victims this pool evicts to make room.
    /// Called from one thread at a time per target pool to keep the cache
    /// state deterministic.
    pub fn absorb_clean(&self, from: &BufferPool, from_fid: FileId, to_fid: FileId) -> Result<()> {
        if self.files.lock().get(to_fid.0 as usize).and_then(|f| f.as_ref()).is_none() {
            return Err(CtError::invalid("absorbing into a removed file"));
        }
        for src_shard in &from.shards {
            let src = src_shard.lock();
            for i in 0..src.frames.len() {
                let f = &src.frames[i];
                if !f.occupied || f.key.0 != from_fid.0 {
                    continue;
                }
                if f.dirty {
                    return Err(CtError::invalid("absorb_clean requires a flushed source pool"));
                }
                let key = (to_fid.0, f.key.1);
                let mut dst = self.shards[self.shard_of(key.0, key.1)].lock();
                let idx = match dst.map.get(&key) {
                    Some(&idx) => {
                        // Overwriting a resident prefetched copy retires it
                        // without a first consumption: balance its batched
                        // read as wasted or the prefetch books never close.
                        if dst.frames[idx].prefetched {
                            dst.frames[idx].prefetched = false;
                            self.prefetch_wasted.inc();
                        }
                        idx
                    }
                    None => {
                        let idx = self.find_victim(&mut dst)?;
                        dst.map.insert(key, idx);
                        idx
                    }
                };
                let frame = &mut dst.frames[idx];
                frame.key = key;
                frame.page.bytes_mut().copy_from_slice(src.frames[i].page.bytes());
                frame.dirty = false;
                frame.referenced = true;
                frame.prefetched = false;
                frame.occupied = true;
            }
        }
        Ok(())
    }

    /// Total allocated bytes across live files.
    pub fn total_bytes(&self) -> u64 {
        self.files.lock().iter().flatten().map(|f| f.size_bytes()).sum()
    }

    fn fault_in(&self, shard: &mut Shard, fid: FileId, pid: PageId) -> Result<usize> {
        if let Some(&idx) = shard.map.get(&(fid.0, pid.0)) {
            let frame = &mut shard.frames[idx];
            if frame.prefetched {
                // First consumption of a readahead page: the physical read
                // was charged when the prefetch issued, so this access is
                // neither a hit nor a new read.
                frame.prefetched = false;
                self.prefetch_used.inc();
            } else {
                self.stats.record_buffer_hit();
            }
            return Ok(idx);
        }
        let file = self.file(fid)?;
        let idx = self.find_victim(shard)?;
        // Read into the frame (the pager records the physical read).
        file.read_page(pid, &mut shard.frames[idx].page)?;
        let frame = &mut shard.frames[idx];
        frame.key = (fid.0, pid.0);
        frame.dirty = false;
        frame.referenced = true;
        frame.prefetched = false;
        frame.occupied = true;
        shard.map.insert((fid.0, pid.0), idx);
        Ok(idx)
    }

    /// Second-chance scan of one shard for a frame to reuse; writes back the
    /// victim if dirty. Prefetched frames carry no reference bit, so they go
    /// before any demand-fetched page loses its second chance.
    fn find_victim(&self, shard: &mut Shard) -> Result<usize> {
        let n = shard.frames.len();
        if n == 0 {
            return Err(CtError::invalid("buffer pool shard has no frames"));
        }
        // Two full sweeps guarantee progress: the first clears referenced
        // bits, the second must find a victim.
        for _ in 0..(2 * n + 1) {
            let i = shard.hand;
            shard.hand = (shard.hand + 1) % n;
            if !shard.frames[i].occupied {
                return Ok(i);
            }
            if shard.frames[i].referenced {
                shard.frames[i].referenced = false;
                continue;
            }
            if shard.frames[i].dirty {
                self.write_back(shard, i)?;
            }
            let key = shard.frames[i].key;
            shard.map.remove(&key);
            if shard.frames[i].prefetched {
                shard.frames[i].prefetched = false;
                self.prefetch_wasted.inc();
            }
            shard.frames[i].occupied = false;
            self.evictions.inc();
            return Ok(i);
        }
        Err(CtError::invalid("buffer pool could not find a victim frame"))
    }

    fn write_back(&self, shard: &mut Shard, idx: usize) -> Result<()> {
        let (fid, pid) = shard.frames[idx].key;
        let file = self
            .file(FileId(fid))
            .map_err(|_| CtError::corrupt("dirty frame for removed file"))?;
        file.write_page(PageId(pid), &shard.frames[idx].page)?;
        shard.frames[idx].dirty = false;
        self.writebacks.inc();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::TempDir;

    fn pool(capacity: usize) -> (TempDir, Arc<IoStats>, BufferPool, FileId) {
        let dir = TempDir::new("buffer-test").unwrap();
        let stats = Arc::new(IoStats::new());
        let pool = BufferPool::new(capacity, stats.clone());
        let file = Arc::new(DiskFile::create(dir.path().join("t.db"), stats.clone()).unwrap());
        let fid = pool.register(file);
        (dir, stats, pool, fid)
    }

    #[test]
    fn new_pages_are_zeroed_and_cached() {
        let (_d, stats, pool, fid) = pool(8);
        let pid = pool.new_page(fid).unwrap();
        pool.with_page(fid, pid, |p| assert_eq!(p.get_u64(0), 0)).unwrap();
        // No physical read should have happened.
        assert_eq!(stats.snapshot().seq_reads + stats.snapshot().rand_reads, 0);
        assert_eq!(stats.snapshot().buffer_hits, 1);
    }

    #[test]
    fn writes_survive_eviction() {
        let (_d, _s, pool, fid) = pool(2);
        let mut pids = Vec::new();
        for i in 0..10u64 {
            let pid = pool.new_page(fid).unwrap();
            pool.with_page_mut(fid, pid, |p| p.put_u64(0, i * 100)).unwrap();
            pids.push(pid);
        }
        // Capacity 2 forced evictions; values must round-trip through disk.
        for (i, pid) in pids.iter().enumerate() {
            pool.with_page(fid, *pid, |p| assert_eq!(p.get_u64(0), i as u64 * 100)).unwrap();
        }
    }

    #[test]
    fn hits_avoid_physical_io() {
        let (_d, stats, pool, fid) = pool(8);
        let pid = pool.new_page(fid).unwrap();
        pool.with_page_mut(fid, pid, |p| p.put_u64(0, 1)).unwrap();
        pool.flush_all().unwrap();
        let before = stats.snapshot();
        for _ in 0..5 {
            pool.with_page(fid, pid, |p| assert_eq!(p.get_u64(0), 1)).unwrap();
        }
        let delta = stats.snapshot().since(&before);
        assert_eq!(delta.seq_reads + delta.rand_reads, 0);
        assert_eq!(delta.buffer_hits, 5);
    }

    #[test]
    fn flush_all_persists_dirty_pages() {
        let (_d, _s, pool, fid) = pool(4);
        let pid = pool.new_page(fid).unwrap();
        pool.with_page_mut(fid, pid, |p| p.put_u64(8, 42)).unwrap();
        pool.flush_all().unwrap();
        // Read directly from the file, bypassing the pool.
        let file = pool.file(fid).unwrap();
        let mut page = Page::zeroed();
        file.read_page(pid, &mut page).unwrap();
        assert_eq!(page.get_u64(8), 42);
    }

    #[test]
    fn remove_file_discards_frames() {
        let (_d, _s, pool, fid) = pool(4);
        let pid = pool.new_page(fid).unwrap();
        pool.with_page_mut(fid, pid, |p| p.put_u64(0, 9)).unwrap();
        let path = pool.file(fid).unwrap().path().to_path_buf();
        pool.remove_file(fid).unwrap();
        assert!(!path.exists());
        assert!(pool.with_page(fid, pid, |_| ()).is_err());
        assert!(pool.file(fid).is_err(), "stale handle lookup errors");
    }

    #[test]
    fn remove_file_defers_while_handles_are_live() {
        let (_d, _s, pool, fid) = pool(4);
        let pid = pool.new_page(fid).unwrap();
        pool.with_page_mut(fid, pid, |p| p.put_u64(0, 9)).unwrap();
        pool.flush_all().unwrap();
        let held = pool.file(fid).unwrap();
        let path = held.path().to_path_buf();
        pool.remove_file(fid).unwrap();
        // The concurrently-held handle keeps the path alive but is doomed:
        // all I/O through it fails loudly instead of writing to a deleted
        // file.
        assert!(path.exists(), "deletion deferred until last handle drops");
        assert!(held.is_doomed());
        let page = Page::zeroed();
        assert!(held.write_page(pid, &page).is_err());
        let mut out = Page::zeroed();
        assert!(held.read_page(pid, &mut out).is_err());
        assert!(held.sync().is_err());
        drop(held);
        assert!(!path.exists(), "last handle drop unlinks the file");
    }

    #[test]
    fn many_files_interleaved() {
        let dir = TempDir::new("buffer-multi").unwrap();
        let stats = Arc::new(IoStats::new());
        let pool = BufferPool::new(3, stats.clone());
        let mut fids = Vec::new();
        for i in 0..4 {
            let f =
                Arc::new(DiskFile::create(dir.path().join(format!("f{i}.db")), stats.clone()).unwrap());
            fids.push(pool.register(f));
        }
        for (i, &fid) in fids.iter().enumerate() {
            let pid = pool.new_page(fid).unwrap();
            pool.with_page_mut(fid, pid, |p| p.put_u64(0, i as u64)).unwrap();
        }
        for (i, &fid) in fids.iter().enumerate() {
            pool.with_page(fid, PageId(0), |p| assert_eq!(p.get_u64(0), i as u64)).unwrap();
        }
        assert_eq!(pool.total_bytes(), 4 * crate::page::PAGE_SIZE as u64);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::env::TempDir;

    #[test]
    fn capacity_one_pool_thrashes_correctly() {
        let dir = TempDir::new("buffer-cap1").unwrap();
        let stats = Arc::new(IoStats::new());
        let pool = BufferPool::new(1, stats.clone());
        let file = Arc::new(DiskFile::create(dir.path().join("t.db"), stats.clone()).unwrap());
        let fid = pool.register(file);
        let mut pids = Vec::new();
        for i in 0..20u64 {
            let pid = pool.new_page(fid).unwrap();
            pool.with_page_mut(fid, pid, |p| p.put_u64(0, i)).unwrap();
            pids.push(pid);
        }
        for (i, pid) in pids.iter().enumerate() {
            pool.with_page(fid, *pid, |p| assert_eq!(p.get_u64(0), i as u64)).unwrap();
        }
        // Every re-read after the first eviction wave is a physical read.
        assert!(stats.snapshot().seq_reads + stats.snapshot().rand_reads >= 19);
    }

    #[test]
    fn flush_is_idempotent() {
        let dir = TempDir::new("buffer-flush2").unwrap();
        let stats = Arc::new(IoStats::new());
        let pool = BufferPool::new(4, stats.clone());
        let file = Arc::new(DiskFile::create(dir.path().join("t.db"), stats.clone()).unwrap());
        let fid = pool.register(file);
        let pid = pool.new_page(fid).unwrap();
        pool.with_page_mut(fid, pid, |p| p.put_u64(0, 5)).unwrap();
        pool.flush_all().unwrap();
        let w1 = stats.snapshot().seq_writes + stats.snapshot().rand_writes;
        pool.flush_all().unwrap();
        let w2 = stats.snapshot().seq_writes + stats.snapshot().rand_writes;
        assert_eq!(w1, w2, "clean frames must not be rewritten");
    }

    #[test]
    fn concurrent_access_from_many_threads_is_safe() {
        let dir = TempDir::new("buffer-mt").unwrap();
        let stats = Arc::new(IoStats::new());
        let pool = Arc::new(BufferPool::new(8, stats.clone()));
        let mut fids = Vec::new();
        for i in 0..4 {
            let f = Arc::new(
                DiskFile::create(dir.path().join(format!("mt{i}.db")), stats.clone()).unwrap(),
            );
            fids.push(pool.register(f));
        }
        std::thread::scope(|s| {
            for (t, &fid) in fids.iter().enumerate() {
                let pool = pool.clone();
                s.spawn(move || {
                    let mut pids = Vec::new();
                    for i in 0..50u64 {
                        let pid = pool.new_page(fid).unwrap();
                        pool.with_page_mut(fid, pid, |p| p.put_u64(0, t as u64 * 1000 + i))
                            .unwrap();
                        pids.push(pid);
                    }
                    for (i, pid) in pids.iter().enumerate() {
                        pool.with_page(fid, *pid, |p| {
                            assert_eq!(p.get_u64(0), t as u64 * 1000 + i as u64)
                        })
                        .unwrap();
                    }
                });
            }
        });
        pool.flush_all().unwrap();
        // 4 threads × 50 pages, all values must have survived the shared pool.
        assert_eq!(pool.total_bytes(), 4 * 50 * crate::page::PAGE_SIZE as u64);
    }

    #[test]
    fn absorb_clean_warms_target_without_io() {
        let dir = TempDir::new("buffer-absorb").unwrap();
        let stats = Arc::new(IoStats::new());
        let main = BufferPool::new(8, stats.clone());
        let file = Arc::new(DiskFile::create(dir.path().join("t.db"), stats.clone()).unwrap());
        let main_fid = main.register(file.clone());
        let job = BufferPool::new(8, stats.clone());
        let job_fid = job.register(file);
        let mut pids = Vec::new();
        for i in 0..5u64 {
            let pid = job.new_page(job_fid).unwrap();
            job.with_page_mut(job_fid, pid, |p| p.put_u64(0, i * 7)).unwrap();
            pids.push(pid);
        }
        // Unflushed source is rejected; flushed source transfers cleanly.
        assert!(main.absorb_clean(&job, job_fid, main_fid).is_err());
        job.flush_all().unwrap();
        let before = stats.snapshot();
        main.absorb_clean(&job, job_fid, main_fid).unwrap();
        for (i, pid) in pids.iter().enumerate() {
            main.with_page(main_fid, *pid, |p| assert_eq!(p.get_u64(0), i as u64 * 7)).unwrap();
        }
        let d = stats.snapshot().since(&before);
        assert_eq!(d.seq_reads + d.rand_reads, 0, "absorbed pages must be buffer hits");
        assert_eq!(d.buffer_hits, 5);
    }

    #[test]
    fn stale_file_handles_error_cleanly() {
        let dir = TempDir::new("buffer-stale").unwrap();
        let stats = Arc::new(IoStats::new());
        let pool = BufferPool::new(4, stats.clone());
        let file = Arc::new(DiskFile::create(dir.path().join("t.db"), stats.clone()).unwrap());
        let fid = pool.register(file);
        let pid = pool.new_page(fid).unwrap();
        pool.remove_file(fid).unwrap();
        assert!(pool.with_page(fid, pid, |_| ()).is_err());
        assert!(pool.with_page_mut(fid, pid, |_| ()).is_err());
        assert!(pool.new_page(fid).is_err());
        assert!(pool.remove_file(fid).is_err(), "double remove");
    }
}

#[cfg(test)]
mod shard_tests {
    use super::*;
    use crate::env::TempDir;

    fn sharded(capacity: usize, shards: usize) -> (TempDir, Arc<IoStats>, BufferPool, FileId) {
        let dir = TempDir::new("buffer-shard").unwrap();
        let stats = Arc::new(IoStats::new());
        let pool = BufferPool::with_shards(capacity, shards, stats.clone(), Recorder::disabled());
        let file = Arc::new(DiskFile::create(dir.path().join("t.db"), stats.clone()).unwrap());
        let fid = pool.register(file);
        (dir, stats, pool, fid)
    }

    #[test]
    fn shard_count_is_clamped_to_capacity() {
        let (_d, _s, pool, _f) = sharded(3, 64);
        assert_eq!(pool.shard_count(), 3);
        let frames: usize = pool.shards.iter().map(|s| s.lock().frames.len()).sum();
        assert_eq!(frames, 3, "every frame lands in exactly one shard");
    }

    #[test]
    fn sharded_pool_round_trips_values() {
        let (_d, _s, pool, fid) = sharded(16, 4);
        let mut pids = Vec::new();
        for i in 0..100u64 {
            let pid = pool.new_page(fid).unwrap();
            pool.with_page_mut(fid, pid, |p| p.put_u64(0, i * 3)).unwrap();
            pids.push(pid);
        }
        for (i, pid) in pids.iter().enumerate() {
            pool.with_page(fid, *pid, |p| assert_eq!(p.get_u64(0), i as u64 * 3)).unwrap();
        }
    }

    #[test]
    fn sharded_pool_concurrent_readers() {
        let dir = TempDir::new("buffer-shard-mt").unwrap();
        let stats = Arc::new(IoStats::new());
        let pool =
            Arc::new(BufferPool::with_shards(64, 8, stats.clone(), Recorder::disabled()));
        let file = Arc::new(DiskFile::create(dir.path().join("t.db"), stats.clone()).unwrap());
        let fid = pool.register(file);
        let mut pids = Vec::new();
        for i in 0..40u64 {
            let pid = pool.new_page(fid).unwrap();
            pool.with_page_mut(fid, pid, |p| p.put_u64(0, i)).unwrap();
            pids.push(pid);
        }
        pool.flush_all().unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let pool = pool.clone();
                let pids = pids.clone();
                s.spawn(move || {
                    for (i, pid) in pids.iter().enumerate() {
                        pool.with_page(fid, *pid, |p| assert_eq!(p.get_u64(0), i as u64))
                            .unwrap();
                    }
                });
            }
        });
    }

    #[test]
    fn prefetch_accounting_hit_rate_not_inflated() {
        // Write pages through one pool, then open a second pool over the
        // same file so nothing is resident when the prefetch issues.
        let dir = TempDir::new("buffer-prefetch").unwrap();
        let stats = Arc::new(IoStats::new());
        let writer = BufferPool::new(16, stats.clone());
        let file = Arc::new(DiskFile::create(dir.path().join("t.db"), stats.clone()).unwrap());
        let wfid = writer.register(file.clone());
        for i in 0..8u64 {
            let pid = writer.new_page(wfid).unwrap();
            writer.with_page_mut(wfid, pid, |p| p.put_u64(0, i + 1)).unwrap();
        }
        writer.flush_all().unwrap();

        let reader = BufferPool::with_shards(16, 4, stats.clone(), Recorder::disabled());
        let rfid = reader.register(file);
        let before = stats.snapshot();
        let installed = reader.prefetch_run(rfid, PageId(0), 8).unwrap();
        assert_eq!(installed, 8);
        let after_prefetch = stats.snapshot().since(&before);
        // One batched read: first page classified, the other 7 sequential;
        // and crucially zero buffer hits at install time.
        assert_eq!(after_prefetch.seq_reads + after_prefetch.rand_reads, 8);
        assert_eq!(after_prefetch.buffer_hits, 0);

        // First consumption: no hit, no new read (the batched read stands).
        let mid = stats.snapshot();
        for (i, pid) in (0..8u64).enumerate() {
            reader.with_page(rfid, PageId(pid), |p| assert_eq!(p.get_u64(0), i as u64 + 1))
                .unwrap();
        }
        let first_use = stats.snapshot().since(&mid);
        assert_eq!(first_use.seq_reads + first_use.rand_reads, 0);
        assert_eq!(first_use.buffer_hits, 0, "prefetch must not inflate the hit rate");

        // Second consumption is an ordinary buffer hit.
        let mid2 = stats.snapshot();
        for pid in 0..8u64 {
            reader.with_page(rfid, PageId(pid), |_| ()).unwrap();
        }
        let second_use = stats.snapshot().since(&mid2);
        assert_eq!(second_use.buffer_hits, 8);
    }

    #[test]
    fn prefetch_is_clamped_to_file_length_and_skips_resident_pages() {
        let dir = TempDir::new("buffer-prefetch-clamp").unwrap();
        let stats = Arc::new(IoStats::new());
        let pool = BufferPool::with_shards(16, 2, stats.clone(), Recorder::disabled());
        let file = Arc::new(DiskFile::create(dir.path().join("t.db"), stats.clone()).unwrap());
        let fid = pool.register(file);
        for _ in 0..4u64 {
            pool.new_page(fid).unwrap();
        }
        pool.flush_all().unwrap();
        // Pages 0..4 are resident: nothing to fetch, window past EOF clamps.
        assert_eq!(pool.prefetch_run(fid, PageId(0), 100).unwrap(), 0);
        assert_eq!(pool.prefetch_run(fid, PageId(4), 8).unwrap(), 0, "starts at EOF");
        assert_eq!(pool.prefetch_run(fid, PageId(0), 0).unwrap(), 0, "empty window");
        let d = stats.snapshot();
        assert_eq!(d.seq_reads + d.rand_reads, 0, "no physical reads for resident pages");
    }

    #[test]
    fn prefetched_frames_are_evicted_before_referenced_ones() {
        // Capacity 4, one shard: fill with 2 referenced pages + prefetch 2.
        let dir = TempDir::new("buffer-scanres").unwrap();
        let stats = Arc::new(IoStats::new());
        let writer = BufferPool::new(8, stats.clone());
        let file = Arc::new(DiskFile::create(dir.path().join("t.db"), stats.clone()).unwrap());
        let wfid = writer.register(file.clone());
        for i in 0..8u64 {
            let pid = writer.new_page(wfid).unwrap();
            writer.with_page_mut(wfid, pid, |p| p.put_u64(0, i)).unwrap();
        }
        writer.flush_all().unwrap();

        let pool = BufferPool::with_shards(4, 1, stats.clone(), Recorder::disabled());
        let fid = pool.register(file);
        // Demand-fetch pages 0 and 1 (referenced), prefetch 2 and 3 (cold).
        pool.with_page(fid, PageId(0), |_| ()).unwrap();
        pool.with_page(fid, PageId(1), |_| ()).unwrap();
        assert_eq!(pool.prefetch_run(fid, PageId(2), 2).unwrap(), 2);
        // Faulting two more pages must evict the two cold prefetched frames,
        // leaving the referenced pages resident.
        pool.with_page(fid, PageId(4), |_| ()).unwrap();
        pool.with_page(fid, PageId(5), |_| ()).unwrap();
        let before = stats.snapshot();
        pool.with_page(fid, PageId(0), |_| ()).unwrap();
        pool.with_page(fid, PageId(1), |_| ()).unwrap();
        let d = stats.snapshot().since(&before);
        assert_eq!(d.buffer_hits, 2, "referenced pages survived the scan");
        assert_eq!(d.seq_reads + d.rand_reads, 0);
    }

    #[test]
    fn single_shard_pool_reports_one_shard() {
        let (_d, _s, pool, _f) = sharded(8, 1);
        assert_eq!(pool.shard_count(), 1);
    }

    fn prefetch_counts(r: &Recorder) -> (u64, u64, u64) {
        (
            r.counter("storage.buffer.prefetch.pages").get(),
            r.counter("storage.buffer.prefetch.used").get(),
            r.counter("storage.buffer.prefetch.wasted").get(),
        )
    }

    #[test]
    fn prefetch_books_balance_under_memory_pressure_and_removal() {
        // Every installed prefetch must eventually be accounted used or
        // wasted — including frames evicted before first consumption and
        // frames discarded by `remove_file` — or the Σ phase-io
        // reconciliation drifts under memory pressure.
        let dir = TempDir::new("buffer-prefetch-balance").unwrap();
        let stats = Arc::new(IoStats::new());
        let writer = BufferPool::new(16, stats.clone());
        let file = Arc::new(DiskFile::create(dir.path().join("t.db"), stats.clone()).unwrap());
        let wfid = writer.register(file.clone());
        for i in 0..12u64 {
            let pid = writer.new_page(wfid).unwrap();
            writer.with_page_mut(wfid, pid, |p| p.put_u64(0, i)).unwrap();
        }
        writer.flush_all().unwrap();

        let recorder = Recorder::enabled();
        let pool = BufferPool::with_shards(4, 1, stats.clone(), recorder.clone());
        let fid = pool.register(file);
        // 12 prefetched pages through a 4-frame pool: most are evicted by
        // later installs before anything consumes them.
        assert_eq!(pool.prefetch_run(fid, PageId(0), 12).unwrap(), 12);
        let (pages, used, wasted) = prefetch_counts(&recorder);
        assert_eq!(pages, 12);
        // Four frames are still resident-and-cold; everything else must
        // already be accounted as wasted by the install-time evictions.
        assert_eq!(pages, used + wasted + 4);
        // Consume everything, resident tail first (those are first uses),
        // then the evicted head (demand faults that push out any remaining
        // cold frames).
        for pid in (0..12u64).rev() {
            pool.with_page(fid, PageId(pid), |_| ()).unwrap();
        }
        let (pages, used, wasted) = prefetch_counts(&recorder);
        assert_eq!(pages, used + wasted);
        assert!(used > 0, "the resident tail was consumed");
        // Refill with cold prefetched frames, then drop the file under them.
        let refetched = pool.prefetch_run(fid, PageId(4), 4).unwrap();
        assert!(refetched > 0, "consumed pages were evicted and re-fetchable");
        pool.remove_file(fid).unwrap();
        let (pages, used, wasted) = prefetch_counts(&recorder);
        assert_eq!(pages, used + wasted, "removal must waste un-consumed prefetches");
    }

    #[test]
    fn absorb_overwriting_a_prefetched_frame_counts_it_wasted() {
        let dir = TempDir::new("buffer-absorb-prefetch").unwrap();
        let stats = Arc::new(IoStats::new());
        let recorder = Recorder::enabled();
        let main = BufferPool::with_shards(8, 1, stats.clone(), recorder.clone());
        let file = Arc::new(DiskFile::create(dir.path().join("t.db"), stats.clone()).unwrap());
        let main_fid = main.register(file.clone());
        let job = BufferPool::new(8, stats.clone());
        let job_fid = job.register(file);
        for i in 0..3u64 {
            let pid = job.new_page(job_fid).unwrap();
            job.with_page_mut(job_fid, pid, |p| p.put_u64(0, i)).unwrap();
        }
        job.flush_all().unwrap();
        // The main pool prefetches the same pages, then absorbs the job's
        // warm copies over them before any consumption.
        assert_eq!(main.prefetch_run(main_fid, PageId(0), 3).unwrap(), 3);
        main.absorb_clean(&job, job_fid, main_fid).unwrap();
        let (pages, used, wasted) = prefetch_counts(&recorder);
        assert_eq!((pages, used, wasted), (3, 0, 3), "absorb retired the prefetched copies");
        // A subsequent consumption is an ordinary buffer hit on the
        // absorbed (referenced) frame, not a prefetch first-use.
        let before = stats.snapshot();
        main.with_page(main_fid, PageId(0), |_| ()).unwrap();
        assert_eq!(stats.snapshot().since(&before).buffer_hits, 1);
    }

    #[test]
    fn prefetch_install_backs_off_once_the_file_is_doomed() {
        // A prefetch whose batched read succeeded before removal must not
        // plant frames after the removal sweep ran: with the handle doomed,
        // installation stops (deterministic stand-in for the concurrent
        // interleaving).
        let dir = TempDir::new("buffer-prefetch-doomed").unwrap();
        let stats = Arc::new(IoStats::new());
        let pool = BufferPool::with_shards(8, 1, stats.clone(), Recorder::disabled());
        let file = Arc::new(DiskFile::create(dir.path().join("t.db"), stats.clone()).unwrap());
        let fid = pool.register(file.clone());
        for _ in 0..4 {
            let pid = pool.new_page(fid).unwrap();
            pool.with_page_mut(fid, pid, |p| p.put_u64(0, 1)).unwrap();
        }
        pool.flush_all().unwrap();
        pool.remove_file(fid).unwrap();
        // The id is gone from the table, so the pool path errors cleanly...
        assert!(pool.prefetch_run(fid, PageId(0), 4).is_err());
        // ...and every shard is verifiably empty of the dead file's frames.
        for shard in &pool.shards {
            let shard = shard.lock();
            assert!(shard.map.keys().all(|k| k.0 != fid.0));
        }
        drop(file);
    }
}
