//! A clock (second-chance) buffer pool shared by all storage structures.
//!
//! The pool's job in this reproduction mirrors its role in the paper's
//! analysis (§2.4): the probability that the top levels of every index stay
//! resident determines search performance, and it is why SelectMapping's
//! *minimal* forest beats one-tree-per-view. Dirty frames are written back on
//! eviction and on [`BufferPool::flush_all`]; reads absorbed by the pool are
//! counted as buffer hits rather than physical I/O.
//!
//! The pool is safe to share across threads: all frame/map/file state sits
//! behind one mutex, counters are atomic, and page callbacks run under the
//! lock (so they must not re-enter the pool). For *deterministic* counter
//! totals under the parallel build pipeline, concurrent jobs use private
//! pools (see `StorageEnv::new_private_pool`) rather than interleaving
//! evictions in a shared one.

use crate::io::IoStats;
use crate::page::{Page, PageId};
use crate::pager::{DiskFile, FileId};
use ct_common::{CtError, Result};
use ct_obs::Recorder;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

struct Frame {
    key: (u32, u64),
    page: Page,
    dirty: bool,
    referenced: bool,
    occupied: bool,
}

struct Inner {
    files: Vec<Option<Arc<DiskFile>>>,
    frames: Vec<Frame>,
    map: HashMap<(u32, u64), usize>,
    hand: usize,
}

/// Fixed-capacity page cache with second-chance replacement.
pub struct BufferPool {
    inner: Mutex<Inner>,
    capacity: usize,
    stats: Arc<IoStats>,
    recorder: Recorder,
    evictions: ct_obs::Counter,
    writebacks: ct_obs::Counter,
}

impl BufferPool {
    /// A pool holding at most `capacity` pages, with metrics disabled.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, stats: Arc<IoStats>) -> Self {
        Self::with_recorder(capacity, stats, Recorder::disabled())
    }

    /// Like [`BufferPool::new`], reporting evictions and dirty write-backs to
    /// `recorder` (`storage.buffer.evictions` / `storage.buffer.writebacks`).
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn with_recorder(capacity: usize, stats: Arc<IoStats>, recorder: Recorder) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        let frames = (0..capacity)
            .map(|_| Frame {
                key: (u32::MAX, u64::MAX),
                page: Page::zeroed(),
                dirty: false,
                referenced: false,
                occupied: false,
            })
            .collect();
        let evictions = recorder.counter("storage.buffer.evictions");
        let writebacks = recorder.counter("storage.buffer.writebacks");
        BufferPool {
            inner: Mutex::new(Inner { files: Vec::new(), frames, map: HashMap::new(), hand: 0 }),
            capacity,
            stats,
            recorder,
            evictions,
            writebacks,
        }
    }

    /// The recorder this pool reports to (disabled by default). Structures
    /// built over the pool (R-tree packing, merge-pack) reach their metrics
    /// through this handle rather than carrying their own plumbing.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The I/O counters this pool charges into.
    pub fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    /// Registers a file with the pool, returning its handle.
    pub fn register(&self, file: Arc<DiskFile>) -> FileId {
        let mut inner = self.inner.lock();
        let id = FileId(inner.files.len() as u32);
        inner.files.push(Some(file));
        id
    }

    /// The registered file behind a handle, or an error if the handle is
    /// stale (file was removed) or unknown.
    pub fn file(&self, fid: FileId) -> Result<Arc<DiskFile>> {
        let inner = self.inner.lock();
        inner
            .files
            .get(fid.0 as usize)
            .and_then(|f| f.clone())
            .ok_or_else(|| CtError::invalid("file was removed from the pool"))
    }

    /// Pool capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Runs `f` over an immutable view of page `(fid, pid)`, faulting it in
    /// if needed.
    pub fn with_page<R>(&self, fid: FileId, pid: PageId, f: impl FnOnce(&Page) -> R) -> Result<R> {
        let mut inner = self.inner.lock();
        let idx = self.fault_in(&mut inner, fid, pid)?;
        inner.frames[idx].referenced = true;
        Ok(f(&inner.frames[idx].page))
    }

    /// Runs `f` over a mutable view of page `(fid, pid)`, marking it dirty.
    pub fn with_page_mut<R>(
        &self,
        fid: FileId,
        pid: PageId,
        f: impl FnOnce(&mut Page) -> R,
    ) -> Result<R> {
        let mut inner = self.inner.lock();
        let idx = self.fault_in(&mut inner, fid, pid)?;
        let frame = &mut inner.frames[idx];
        frame.referenced = true;
        frame.dirty = true;
        Ok(f(&mut frame.page))
    }

    /// Allocates a fresh page in `fid` and returns its id; the page is
    /// resident, zeroed and dirty (no disk read is charged for it).
    pub fn new_page(&self, fid: FileId) -> Result<PageId> {
        let mut inner = self.inner.lock();
        let file = inner.files[fid.0 as usize]
            .as_ref()
            .ok_or_else(|| CtError::invalid("file was removed from the pool"))?
            .clone();
        let pid = file.allocate();
        let idx = self.find_victim(&mut inner)?;
        let frame = &mut inner.frames[idx];
        frame.key = (fid.0, pid.0);
        frame.page.clear();
        frame.dirty = true;
        frame.referenced = true;
        frame.occupied = true;
        inner.map.insert((fid.0, pid.0), idx);
        Ok(pid)
    }

    /// Writes every dirty frame back to its file.
    pub fn flush_all(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        for i in 0..inner.frames.len() {
            if inner.frames[i].occupied && inner.frames[i].dirty {
                self.write_back(&mut inner, i)?;
            }
        }
        Ok(())
    }

    /// Discards all frames of `fid` (dirty or not) and deletes the file.
    ///
    /// If another component still holds an `Arc<DiskFile>` to it (a raw sort
    /// run mid-merge, a job pool mid-swap), deletion is *deferred*: the file
    /// is doomed — every further read or write through any handle fails
    /// loudly — and the unlink happens when the last handle drops, instead
    /// of letting a stale handle silently write to an unlinked path.
    pub fn remove_file(&self, fid: FileId) -> Result<()> {
        let mut inner = self.inner.lock();
        for i in 0..inner.frames.len() {
            if inner.frames[i].occupied && inner.frames[i].key.0 == fid.0 {
                let key = inner.frames[i].key;
                inner.map.remove(&key);
                inner.frames[i].occupied = false;
                inner.frames[i].dirty = false;
            }
        }
        let file = inner.files[fid.0 as usize]
            .take()
            .ok_or_else(|| CtError::invalid("file already removed"))?;
        if Arc::strong_count(&file) > 1 {
            file.doom();
            Ok(())
        } else {
            file.delete()
        }
    }

    /// Adopts `from`'s cached pages of `from_fid` into this pool under
    /// `to_fid`, in `from`'s frame order, leaving this pool as warm as if it
    /// had produced those pages itself. Pages are installed clean — the
    /// caller must have flushed `from` first — so no I/O is charged beyond
    /// any dirty victims this pool evicts to make room. Called from one
    /// thread at a time per target pool to keep the cache state
    /// deterministic.
    pub fn absorb_clean(&self, from: &BufferPool, from_fid: FileId, to_fid: FileId) -> Result<()> {
        let src = from.inner.lock();
        let mut inner = self.inner.lock();
        if inner.files[to_fid.0 as usize].is_none() {
            return Err(CtError::invalid("absorbing into a removed file"));
        }
        for i in 0..src.frames.len() {
            let f = &src.frames[i];
            if !f.occupied || f.key.0 != from_fid.0 {
                continue;
            }
            if f.dirty {
                return Err(CtError::invalid("absorb_clean requires a flushed source pool"));
            }
            let key = (to_fid.0, f.key.1);
            let idx = match inner.map.get(&key) {
                Some(&idx) => idx,
                None => {
                    let idx = self.find_victim(&mut inner)?;
                    inner.map.insert(key, idx);
                    idx
                }
            };
            let frame = &mut inner.frames[idx];
            frame.key = key;
            frame.page.bytes_mut().copy_from_slice(src.frames[i].page.bytes());
            frame.dirty = false;
            frame.referenced = true;
            frame.occupied = true;
        }
        Ok(())
    }

    /// Total allocated bytes across live files.
    pub fn total_bytes(&self) -> u64 {
        let inner = self.inner.lock();
        inner.files.iter().flatten().map(|f| f.size_bytes()).sum()
    }

    fn fault_in(&self, inner: &mut Inner, fid: FileId, pid: PageId) -> Result<usize> {
        if let Some(&idx) = inner.map.get(&(fid.0, pid.0)) {
            self.stats.record_buffer_hit();
            return Ok(idx);
        }
        let file = inner.files[fid.0 as usize]
            .as_ref()
            .ok_or_else(|| CtError::invalid("file was removed from the pool"))?
            .clone();
        let idx = self.find_victim(inner)?;
        // Read into the frame (the pager records the physical read).
        file.read_page(pid, &mut inner.frames[idx].page)?;
        let frame = &mut inner.frames[idx];
        frame.key = (fid.0, pid.0);
        frame.dirty = false;
        frame.referenced = true;
        frame.occupied = true;
        inner.map.insert((fid.0, pid.0), idx);
        Ok(idx)
    }

    /// Second-chance scan for a frame to reuse; writes back the victim if
    /// dirty.
    fn find_victim(&self, inner: &mut Inner) -> Result<usize> {
        // Two full sweeps guarantee progress: the first clears referenced
        // bits, the second must find a victim.
        for _ in 0..(2 * self.capacity + 1) {
            let i = inner.hand;
            inner.hand = (inner.hand + 1) % self.capacity;
            if !inner.frames[i].occupied {
                return Ok(i);
            }
            if inner.frames[i].referenced {
                inner.frames[i].referenced = false;
                continue;
            }
            if inner.frames[i].dirty {
                self.write_back(inner, i)?;
            }
            let key = inner.frames[i].key;
            inner.map.remove(&key);
            inner.frames[i].occupied = false;
            self.evictions.inc();
            return Ok(i);
        }
        Err(CtError::invalid("buffer pool could not find a victim frame"))
    }

    fn write_back(&self, inner: &mut Inner, idx: usize) -> Result<()> {
        let (fid, pid) = inner.frames[idx].key;
        let file = inner.files[fid as usize]
            .as_ref()
            .ok_or_else(|| CtError::corrupt("dirty frame for removed file"))?
            .clone();
        file.write_page(PageId(pid), &inner.frames[idx].page)?;
        inner.frames[idx].dirty = false;
        self.writebacks.inc();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::TempDir;

    fn pool(capacity: usize) -> (TempDir, Arc<IoStats>, BufferPool, FileId) {
        let dir = TempDir::new("buffer-test").unwrap();
        let stats = Arc::new(IoStats::new());
        let pool = BufferPool::new(capacity, stats.clone());
        let file = Arc::new(DiskFile::create(dir.path().join("t.db"), stats.clone()).unwrap());
        let fid = pool.register(file);
        (dir, stats, pool, fid)
    }

    #[test]
    fn new_pages_are_zeroed_and_cached() {
        let (_d, stats, pool, fid) = pool(8);
        let pid = pool.new_page(fid).unwrap();
        pool.with_page(fid, pid, |p| assert_eq!(p.get_u64(0), 0)).unwrap();
        // No physical read should have happened.
        assert_eq!(stats.snapshot().seq_reads + stats.snapshot().rand_reads, 0);
        assert_eq!(stats.snapshot().buffer_hits, 1);
    }

    #[test]
    fn writes_survive_eviction() {
        let (_d, _s, pool, fid) = pool(2);
        let mut pids = Vec::new();
        for i in 0..10u64 {
            let pid = pool.new_page(fid).unwrap();
            pool.with_page_mut(fid, pid, |p| p.put_u64(0, i * 100)).unwrap();
            pids.push(pid);
        }
        // Capacity 2 forced evictions; values must round-trip through disk.
        for (i, pid) in pids.iter().enumerate() {
            pool.with_page(fid, *pid, |p| assert_eq!(p.get_u64(0), i as u64 * 100)).unwrap();
        }
    }

    #[test]
    fn hits_avoid_physical_io() {
        let (_d, stats, pool, fid) = pool(8);
        let pid = pool.new_page(fid).unwrap();
        pool.with_page_mut(fid, pid, |p| p.put_u64(0, 1)).unwrap();
        pool.flush_all().unwrap();
        let before = stats.snapshot();
        for _ in 0..5 {
            pool.with_page(fid, pid, |p| assert_eq!(p.get_u64(0), 1)).unwrap();
        }
        let delta = stats.snapshot().since(&before);
        assert_eq!(delta.seq_reads + delta.rand_reads, 0);
        assert_eq!(delta.buffer_hits, 5);
    }

    #[test]
    fn flush_all_persists_dirty_pages() {
        let (_d, _s, pool, fid) = pool(4);
        let pid = pool.new_page(fid).unwrap();
        pool.with_page_mut(fid, pid, |p| p.put_u64(8, 42)).unwrap();
        pool.flush_all().unwrap();
        // Read directly from the file, bypassing the pool.
        let file = pool.file(fid).unwrap();
        let mut page = Page::zeroed();
        file.read_page(pid, &mut page).unwrap();
        assert_eq!(page.get_u64(8), 42);
    }

    #[test]
    fn remove_file_discards_frames() {
        let (_d, _s, pool, fid) = pool(4);
        let pid = pool.new_page(fid).unwrap();
        pool.with_page_mut(fid, pid, |p| p.put_u64(0, 9)).unwrap();
        let path = pool.file(fid).unwrap().path().to_path_buf();
        pool.remove_file(fid).unwrap();
        assert!(!path.exists());
        assert!(pool.with_page(fid, pid, |_| ()).is_err());
        assert!(pool.file(fid).is_err(), "stale handle lookup errors");
    }

    #[test]
    fn remove_file_defers_while_handles_are_live() {
        let (_d, _s, pool, fid) = pool(4);
        let pid = pool.new_page(fid).unwrap();
        pool.with_page_mut(fid, pid, |p| p.put_u64(0, 9)).unwrap();
        pool.flush_all().unwrap();
        let held = pool.file(fid).unwrap();
        let path = held.path().to_path_buf();
        pool.remove_file(fid).unwrap();
        // The concurrently-held handle keeps the path alive but is doomed:
        // all I/O through it fails loudly instead of writing to a deleted
        // file.
        assert!(path.exists(), "deletion deferred until last handle drops");
        assert!(held.is_doomed());
        let page = Page::zeroed();
        assert!(held.write_page(pid, &page).is_err());
        let mut out = Page::zeroed();
        assert!(held.read_page(pid, &mut out).is_err());
        assert!(held.sync().is_err());
        drop(held);
        assert!(!path.exists(), "last handle drop unlinks the file");
    }

    #[test]
    fn many_files_interleaved() {
        let dir = TempDir::new("buffer-multi").unwrap();
        let stats = Arc::new(IoStats::new());
        let pool = BufferPool::new(3, stats.clone());
        let mut fids = Vec::new();
        for i in 0..4 {
            let f =
                Arc::new(DiskFile::create(dir.path().join(format!("f{i}.db")), stats.clone()).unwrap());
            fids.push(pool.register(f));
        }
        for (i, &fid) in fids.iter().enumerate() {
            let pid = pool.new_page(fid).unwrap();
            pool.with_page_mut(fid, pid, |p| p.put_u64(0, i as u64)).unwrap();
        }
        for (i, &fid) in fids.iter().enumerate() {
            pool.with_page(fid, PageId(0), |p| assert_eq!(p.get_u64(0), i as u64)).unwrap();
        }
        assert_eq!(pool.total_bytes(), 4 * crate::page::PAGE_SIZE as u64);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::env::TempDir;

    #[test]
    fn capacity_one_pool_thrashes_correctly() {
        let dir = TempDir::new("buffer-cap1").unwrap();
        let stats = Arc::new(IoStats::new());
        let pool = BufferPool::new(1, stats.clone());
        let file = Arc::new(DiskFile::create(dir.path().join("t.db"), stats.clone()).unwrap());
        let fid = pool.register(file);
        let mut pids = Vec::new();
        for i in 0..20u64 {
            let pid = pool.new_page(fid).unwrap();
            pool.with_page_mut(fid, pid, |p| p.put_u64(0, i)).unwrap();
            pids.push(pid);
        }
        for (i, pid) in pids.iter().enumerate() {
            pool.with_page(fid, *pid, |p| assert_eq!(p.get_u64(0), i as u64)).unwrap();
        }
        // Every re-read after the first eviction wave is a physical read.
        assert!(stats.snapshot().seq_reads + stats.snapshot().rand_reads >= 19);
    }

    #[test]
    fn flush_is_idempotent() {
        let dir = TempDir::new("buffer-flush2").unwrap();
        let stats = Arc::new(IoStats::new());
        let pool = BufferPool::new(4, stats.clone());
        let file = Arc::new(DiskFile::create(dir.path().join("t.db"), stats.clone()).unwrap());
        let fid = pool.register(file);
        let pid = pool.new_page(fid).unwrap();
        pool.with_page_mut(fid, pid, |p| p.put_u64(0, 5)).unwrap();
        pool.flush_all().unwrap();
        let w1 = stats.snapshot().seq_writes + stats.snapshot().rand_writes;
        pool.flush_all().unwrap();
        let w2 = stats.snapshot().seq_writes + stats.snapshot().rand_writes;
        assert_eq!(w1, w2, "clean frames must not be rewritten");
    }

    #[test]
    fn concurrent_access_from_many_threads_is_safe() {
        let dir = TempDir::new("buffer-mt").unwrap();
        let stats = Arc::new(IoStats::new());
        let pool = Arc::new(BufferPool::new(8, stats.clone()));
        let mut fids = Vec::new();
        for i in 0..4 {
            let f = Arc::new(
                DiskFile::create(dir.path().join(format!("mt{i}.db")), stats.clone()).unwrap(),
            );
            fids.push(pool.register(f));
        }
        std::thread::scope(|s| {
            for (t, &fid) in fids.iter().enumerate() {
                let pool = pool.clone();
                s.spawn(move || {
                    let mut pids = Vec::new();
                    for i in 0..50u64 {
                        let pid = pool.new_page(fid).unwrap();
                        pool.with_page_mut(fid, pid, |p| p.put_u64(0, t as u64 * 1000 + i))
                            .unwrap();
                        pids.push(pid);
                    }
                    for (i, pid) in pids.iter().enumerate() {
                        pool.with_page(fid, *pid, |p| {
                            assert_eq!(p.get_u64(0), t as u64 * 1000 + i as u64)
                        })
                        .unwrap();
                    }
                });
            }
        });
        pool.flush_all().unwrap();
        // 4 threads × 50 pages, all values must have survived the shared pool.
        assert_eq!(pool.total_bytes(), 4 * 50 * crate::page::PAGE_SIZE as u64);
    }

    #[test]
    fn absorb_clean_warms_target_without_io() {
        let dir = TempDir::new("buffer-absorb").unwrap();
        let stats = Arc::new(IoStats::new());
        let main = BufferPool::new(8, stats.clone());
        let file = Arc::new(DiskFile::create(dir.path().join("t.db"), stats.clone()).unwrap());
        let main_fid = main.register(file.clone());
        let job = BufferPool::new(8, stats.clone());
        let job_fid = job.register(file);
        let mut pids = Vec::new();
        for i in 0..5u64 {
            let pid = job.new_page(job_fid).unwrap();
            job.with_page_mut(job_fid, pid, |p| p.put_u64(0, i * 7)).unwrap();
            pids.push(pid);
        }
        // Unflushed source is rejected; flushed source transfers cleanly.
        assert!(main.absorb_clean(&job, job_fid, main_fid).is_err());
        job.flush_all().unwrap();
        let before = stats.snapshot();
        main.absorb_clean(&job, job_fid, main_fid).unwrap();
        for (i, pid) in pids.iter().enumerate() {
            main.with_page(main_fid, *pid, |p| assert_eq!(p.get_u64(0), i as u64 * 7)).unwrap();
        }
        let d = stats.snapshot().since(&before);
        assert_eq!(d.seq_reads + d.rand_reads, 0, "absorbed pages must be buffer hits");
        assert_eq!(d.buffer_hits, 5);
    }

    #[test]
    fn stale_file_handles_error_cleanly() {
        let dir = TempDir::new("buffer-stale").unwrap();
        let stats = Arc::new(IoStats::new());
        let pool = BufferPool::new(4, stats.clone());
        let file = Arc::new(DiskFile::create(dir.path().join("t.db"), stats.clone()).unwrap());
        let fid = pool.register(file);
        let pid = pool.new_page(fid).unwrap();
        pool.remove_file(fid).unwrap();
        assert!(pool.with_page(fid, pid, |_| ()).is_err());
        assert!(pool.with_page_mut(fid, pid, |_| ()).is_err());
        assert!(pool.new_page(fid).is_err());
        assert!(pool.remove_file(fid).is_err(), "double remove");
    }
}
