//! File-backed page I/O with sequential/random access classification.
//!
//! A [`DiskFile`] is one on-disk file addressed in [`PAGE_SIZE`] units. Every
//! read or write is classified against the previous access position of the
//! same kind on the same file: accessing page `p` right after page `p - 1`
//! (or re-touching `p`) counts as *sequential*; anything else counts as
//! *random* (a seek on the paper's 1998 disk). This is the instrumentation
//! behind the paper's central claim that Cubetree packing/merge-packing does
//! "only sequential writes to the disk" (§3.4) while relational view
//! maintenance is dominated by random I/O.

use crate::io::IoStats;
use crate::page::{Page, PageId, PAGE_SIZE};
use ct_common::{CtError, Result};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Handle to a file registered in a [`crate::buffer::BufferPool`] /
/// [`crate::env::StorageEnv`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FileId(pub u32);

/// Sentinel meaning "no previous access".
const NO_PREV: u64 = u64::MAX;

/// One page-addressed file plus its access-pattern tracking state.
pub struct DiskFile {
    path: PathBuf,
    file: Mutex<File>,
    /// Number of allocated pages (the logical end of file).
    pages: AtomicU64,
    last_read: AtomicU64,
    last_write: AtomicU64,
    stats: Arc<IoStats>,
}

impl DiskFile {
    /// Creates (truncating) a file at `path`.
    pub fn create(path: impl AsRef<Path>, stats: Arc<IoStats>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().read(true).write(true).create(true).truncate(true).open(&path)?;
        Ok(DiskFile {
            path,
            file: Mutex::new(file),
            pages: AtomicU64::new(0),
            last_read: AtomicU64::new(NO_PREV),
            last_write: AtomicU64::new(NO_PREV),
            stats,
        })
    }

    /// The file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of allocated pages.
    pub fn page_count(&self) -> u64 {
        self.pages.load(Ordering::Relaxed)
    }

    /// Allocated size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.page_count() * PAGE_SIZE as u64
    }

    /// Reserves the next page id. The page contents are undefined until the
    /// first [`DiskFile::write_page`].
    pub fn allocate(&self) -> PageId {
        PageId(self.pages.fetch_add(1, Ordering::Relaxed))
    }

    /// Reads page `pid` into `page`, recording a sequential or random read.
    pub fn read_page(&self, pid: PageId, page: &mut Page) -> Result<()> {
        if pid.0 >= self.page_count() {
            return Err(CtError::invalid(format!(
                "read past end of file: page {} of {}",
                pid.0,
                self.page_count()
            )));
        }
        let prev = self.last_read.swap(pid.0, Ordering::Relaxed);
        let sequential = prev != NO_PREV && (pid.0 == prev + 1 || pid.0 == prev);
        self.stats.record_read(sequential);
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(pid.byte_offset()))?;
        // The file may be sparse past the last physical write; treat short
        // reads of allocated-but-unwritten pages as zeroes.
        let n = read_up_to(&mut f, page.bytes_mut())?;
        page.bytes_mut()[n..].fill(0);
        Ok(())
    }

    /// Writes `page` at `pid`, recording a sequential or random write.
    pub fn write_page(&self, pid: PageId, page: &Page) -> Result<()> {
        if pid.0 >= self.page_count() {
            return Err(CtError::invalid(format!(
                "write past end of file: page {} of {}",
                pid.0,
                self.page_count()
            )));
        }
        let prev = self.last_write.swap(pid.0, Ordering::Relaxed);
        let sequential = prev != NO_PREV && (pid.0 == prev + 1 || pid.0 == prev);
        self.stats.record_write(sequential);
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(pid.byte_offset()))?;
        f.write_all(page.bytes())?;
        Ok(())
    }

    /// Flushes OS buffers.
    pub fn sync(&self) -> Result<()> {
        self.file.lock().sync_data()?;
        Ok(())
    }

    /// Deletes the underlying file. The handle must not be used afterwards.
    pub fn delete(&self) -> Result<()> {
        std::fs::remove_file(&self.path)?;
        Ok(())
    }
}

fn read_up_to(f: &mut File, buf: &mut [u8]) -> Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match f.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(filled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::TempDir;

    fn setup() -> (TempDir, Arc<IoStats>, DiskFile) {
        let dir = TempDir::new("pager-test").unwrap();
        let stats = Arc::new(IoStats::new());
        let f = DiskFile::create(dir.path().join("t.db"), stats.clone()).unwrap();
        (dir, stats, f)
    }

    #[test]
    fn roundtrip_pages() {
        let (_d, _s, f) = setup();
        let p0 = f.allocate();
        let p1 = f.allocate();
        let mut page = Page::zeroed();
        page.put_u64(0, 111);
        f.write_page(p0, &page).unwrap();
        page.put_u64(0, 222);
        f.write_page(p1, &page).unwrap();
        let mut out = Page::zeroed();
        f.read_page(p0, &mut out).unwrap();
        assert_eq!(out.get_u64(0), 111);
        f.read_page(p1, &mut out).unwrap();
        assert_eq!(out.get_u64(0), 222);
        assert_eq!(f.page_count(), 2);
        assert_eq!(f.size_bytes(), 2 * PAGE_SIZE as u64);
    }

    #[test]
    fn sequential_vs_random_classification() {
        let (_d, stats, f) = setup();
        let page = Page::zeroed();
        for _ in 0..5 {
            let pid = f.allocate();
            f.write_page(pid, &page).unwrap();
        }
        let snap = stats.snapshot();
        // First write is random (no previous position), the rest sequential.
        assert_eq!(snap.rand_writes, 1);
        assert_eq!(snap.seq_writes, 4);

        let mut out = Page::zeroed();
        f.read_page(PageId(0), &mut out).unwrap(); // random (first)
        f.read_page(PageId(1), &mut out).unwrap(); // sequential
        f.read_page(PageId(4), &mut out).unwrap(); // random (jump)
        f.read_page(PageId(4), &mut out).unwrap(); // sequential (same page)
        let snap = stats.snapshot();
        assert_eq!(snap.rand_reads, 2);
        assert_eq!(snap.seq_reads, 2);
    }

    #[test]
    fn allocated_but_unwritten_pages_read_as_zero() {
        let (_d, _s, f) = setup();
        let pid = f.allocate();
        let mut out = Page::zeroed();
        out.put_u64(64, 77);
        f.read_page(pid, &mut out).unwrap();
        assert_eq!(out.get_u64(64), 0);
    }

    #[test]
    fn out_of_bounds_is_error() {
        let (_d, _s, f) = setup();
        let mut out = Page::zeroed();
        assert!(f.read_page(PageId(0), &mut out).is_err());
        assert!(f.write_page(PageId(0), &out).is_err());
    }

    #[test]
    fn delete_removes_file() {
        let (_d, _s, f) = setup();
        let path = f.path().to_path_buf();
        assert!(path.exists());
        f.delete().unwrap();
        assert!(!path.exists());
    }
}
