//! File-backed page I/O with sequential/random access classification.
//!
//! A [`DiskFile`] is one on-disk file addressed in [`PAGE_SIZE`] units. Every
//! read or write is classified against the previous access position of the
//! same kind on the same file: accessing page `p` right after page `p - 1`
//! (or re-touching `p`) counts as *sequential*; anything else counts as
//! *random* (a seek on the paper's 1998 disk). This is the instrumentation
//! behind the paper's central claim that Cubetree packing/merge-packing does
//! "only sequential writes to the disk" (§3.4) while relational view
//! maintenance is dominated by random I/O.

use crate::fault::FaultPlan;
use crate::io::IoStats;
use crate::page::{Page, PageId, PAGE_SIZE};
use ct_common::{CtError, Result};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Handle to a file registered in a [`crate::buffer::BufferPool`] /
/// [`crate::env::StorageEnv`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FileId(pub u32);

/// Sentinel meaning "no previous access".
const NO_PREV: u64 = u64::MAX;

/// One page-addressed file plus its access-pattern tracking state.
pub struct DiskFile {
    path: PathBuf,
    file: Mutex<File>,
    /// Number of allocated pages (the logical end of file).
    pages: AtomicU64,
    last_read: AtomicU64,
    last_write: AtomicU64,
    stats: Arc<IoStats>,
    faults: FaultPlan,
    /// Checksum of each page's last written (or first read) contents, for
    /// torn-write detection on subsequent reads. Indexed by page id; `None`
    /// means never observed.
    sums: Mutex<Vec<Option<u64>>>,
    /// Set by deferred removal: the file is logically deleted and will be
    /// unlinked when the last handle drops; all I/O on it fails loudly.
    doomed: AtomicBool,
}

impl DiskFile {
    /// Creates (truncating) a file at `path` with no fault plan.
    pub fn create(path: impl AsRef<Path>, stats: Arc<IoStats>) -> Result<Self> {
        Self::create_with(path, stats, FaultPlan::none())
    }

    /// Creates (truncating) a file at `path`, threading `faults` through
    /// every subsequent page write.
    pub fn create_with(
        path: impl AsRef<Path>,
        stats: Arc<IoStats>,
        faults: FaultPlan,
    ) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().read(true).write(true).create(true).truncate(true).open(&path)?;
        Ok(Self::from_parts(path, file, 0, stats, faults))
    }

    /// Opens an existing file without truncating; the page count is taken
    /// from the on-disk length. Used by recovery to re-attach the files a
    /// manifest names.
    pub fn open_existing(
        path: impl AsRef<Path>,
        stats: Arc<IoStats>,
        faults: FaultPlan,
    ) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        let len = file.metadata()?.len();
        Ok(Self::from_parts(path, file, len.div_ceil(PAGE_SIZE as u64), stats, faults))
    }

    fn from_parts(
        path: PathBuf,
        file: File,
        pages: u64,
        stats: Arc<IoStats>,
        faults: FaultPlan,
    ) -> Self {
        DiskFile {
            path,
            file: Mutex::new(file),
            pages: AtomicU64::new(pages),
            last_read: AtomicU64::new(NO_PREV),
            last_write: AtomicU64::new(NO_PREV),
            stats,
            faults,
            sums: Mutex::new(Vec::new()),
            doomed: AtomicBool::new(false),
        }
    }

    /// The file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of allocated pages.
    pub fn page_count(&self) -> u64 {
        self.pages.load(Ordering::Relaxed)
    }

    /// Allocated size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.page_count() * PAGE_SIZE as u64
    }

    /// Reserves the next page id. The page contents are undefined until the
    /// first [`DiskFile::write_page`].
    pub fn allocate(&self) -> PageId {
        PageId(self.pages.fetch_add(1, Ordering::Relaxed))
    }

    fn check_live(&self, op: &str) -> Result<()> {
        if self.doomed.load(Ordering::Acquire) {
            return Err(CtError::invalid(format!(
                "{op} on removed file {} (deletion deferred to last handle)",
                self.path.display()
            )));
        }
        Ok(())
    }

    /// Reads page `pid` into `page`, recording a sequential or random read
    /// and verifying the page checksum when one is known. The first
    /// observation of a page (no prior write through this handle) records
    /// its checksum instead.
    pub fn read_page(&self, pid: PageId, page: &mut Page) -> Result<()> {
        self.check_live("read")?;
        if pid.0 >= self.page_count() {
            return Err(CtError::invalid(format!(
                "read past end of file: page {} of {}",
                pid.0,
                self.page_count()
            )));
        }
        let prev = self.last_read.swap(pid.0, Ordering::Relaxed);
        let sequential = prev != NO_PREV && (pid.0 == prev + 1 || pid.0 == prev);
        self.stats.record_read(sequential);
        {
            let mut f = self.file.lock();
            f.seek(SeekFrom::Start(pid.byte_offset()))?;
            // The file may be sparse past the last physical write; treat short
            // reads of allocated-but-unwritten pages as zeroes.
            let n = read_up_to(&mut f, page.bytes_mut())?;
            page.bytes_mut()[n..].fill(0);
        }
        let got = page.checksum();
        let mut sums = self.sums.lock();
        if sums.len() <= pid.0 as usize {
            sums.resize(pid.0 as usize + 1, None);
        }
        match sums[pid.0 as usize] {
            Some(want) if want != got => Err(CtError::corrupt(format!(
                "page checksum mismatch on {} page {} (want {want:016x}, got {got:016x})",
                self.path.display(),
                pid.0
            ))),
            Some(_) => Ok(()),
            None => {
                sums[pid.0 as usize] = Some(got);
                Ok(())
            }
        }
    }

    /// Reads the `bufs.len()` consecutive pages starting at `start` with a
    /// single seek — the batched-read path behind buffer-pool readahead.
    ///
    /// The first page is classified against the previous read position
    /// exactly like [`DiskFile::read_page`]; the remaining pages are
    /// sequential by construction, so a batch converts what would have been
    /// `bufs.len()` independently classified accesses into one seek plus a
    /// sequential run. Every page's checksum is verified (or recorded on
    /// first observation) as in `read_page`.
    pub fn read_pages(&self, start: PageId, bufs: &mut [Page]) -> Result<()> {
        if bufs.is_empty() {
            return Ok(());
        }
        self.check_live("read")?;
        let last = start.0 + bufs.len() as u64 - 1;
        if last >= self.page_count() {
            return Err(CtError::invalid(format!(
                "read past end of file: pages {}..={} of {}",
                start.0,
                last,
                self.page_count()
            )));
        }
        let prev = self.last_read.swap(last, Ordering::Relaxed);
        let sequential = prev != NO_PREV && (start.0 == prev + 1 || start.0 == prev);
        self.stats.record_read(sequential);
        for _ in 1..bufs.len() {
            self.stats.record_read(true);
        }
        {
            let mut f = self.file.lock();
            f.seek(SeekFrom::Start(start.byte_offset()))?;
            for page in bufs.iter_mut() {
                // Short reads of the sparse tail zero-fill, page by page.
                let n = read_up_to(&mut f, page.bytes_mut())?;
                page.bytes_mut()[n..].fill(0);
            }
        }
        let mut sums = self.sums.lock();
        if sums.len() <= last as usize {
            sums.resize(last as usize + 1, None);
        }
        for (k, page) in bufs.iter().enumerate() {
            let pid = start.0 as usize + k;
            let got = page.checksum();
            match sums[pid] {
                Some(want) if want != got => {
                    return Err(CtError::corrupt(format!(
                        "page checksum mismatch on {} page {pid} (want {want:016x}, got {got:016x})",
                        self.path.display()
                    )))
                }
                Some(_) => {}
                None => sums[pid] = Some(got),
            }
        }
        Ok(())
    }

    /// Writes `page` at `pid`, recording a sequential or random write and
    /// the page's checksum for later read verification. An armed
    /// [`FaultPlan`] may fail the write before any byte reaches the file.
    pub fn write_page(&self, pid: PageId, page: &Page) -> Result<()> {
        self.check_live("write")?;
        if pid.0 >= self.page_count() {
            return Err(CtError::invalid(format!(
                "write past end of file: page {} of {}",
                pid.0,
                self.page_count()
            )));
        }
        self.faults.before_write(&self.path)?;
        let prev = self.last_write.swap(pid.0, Ordering::Relaxed);
        let sequential = prev != NO_PREV && (pid.0 == prev + 1 || pid.0 == prev);
        self.stats.record_write(sequential);
        {
            let mut f = self.file.lock();
            f.seek(SeekFrom::Start(pid.byte_offset()))?;
            f.write_all(page.bytes())?;
        }
        let mut sums = self.sums.lock();
        if sums.len() <= pid.0 as usize {
            sums.resize(pid.0 as usize + 1, None);
        }
        sums[pid.0 as usize] = Some(page.checksum());
        Ok(())
    }

    /// Flushes OS buffers.
    pub fn sync(&self) -> Result<()> {
        self.check_live("sync")?;
        self.file.lock().sync_data()?;
        Ok(())
    }

    /// Deletes the underlying file. The handle must not be used afterwards.
    pub fn delete(&self) -> Result<()> {
        self.doomed.store(true, Ordering::Release);
        std::fs::remove_file(&self.path)?;
        Ok(())
    }

    /// Marks the file as logically deleted: every further read/write/sync
    /// through *any* clone of this handle fails, and the file is unlinked
    /// when the last `Arc<DiskFile>` drops. Used by the pool when a file is
    /// removed while other components still hold handles to it — which is
    /// also the reclamation half of generation MVCC: a replaced forest
    /// generation dooms its files, and readers still pinning that
    /// generation keep the bytes alive until their last handle drops.
    pub fn doom(&self) {
        self.doomed.store(true, Ordering::Release);
    }

    /// True once [`DiskFile::doom`] or [`DiskFile::delete`] has been called.
    pub fn is_doomed(&self) -> bool {
        self.doomed.load(Ordering::Acquire)
    }
}

impl Drop for DiskFile {
    fn drop(&mut self) {
        if self.doomed.load(Ordering::Acquire) {
            // Deferred deletion: the unlink may already have happened (via
            // `delete`) or the whole directory may be gone; neither needs
            // reporting.
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

fn read_up_to(f: &mut File, buf: &mut [u8]) -> Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match f.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(filled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::TempDir;

    fn setup() -> (TempDir, Arc<IoStats>, DiskFile) {
        let dir = TempDir::new("pager-test").unwrap();
        let stats = Arc::new(IoStats::new());
        let f = DiskFile::create(dir.path().join("t.db"), stats.clone()).unwrap();
        (dir, stats, f)
    }

    #[test]
    fn roundtrip_pages() {
        let (_d, _s, f) = setup();
        let p0 = f.allocate();
        let p1 = f.allocate();
        let mut page = Page::zeroed();
        page.put_u64(0, 111);
        f.write_page(p0, &page).unwrap();
        page.put_u64(0, 222);
        f.write_page(p1, &page).unwrap();
        let mut out = Page::zeroed();
        f.read_page(p0, &mut out).unwrap();
        assert_eq!(out.get_u64(0), 111);
        f.read_page(p1, &mut out).unwrap();
        assert_eq!(out.get_u64(0), 222);
        assert_eq!(f.page_count(), 2);
        assert_eq!(f.size_bytes(), 2 * PAGE_SIZE as u64);
    }

    #[test]
    fn sequential_vs_random_classification() {
        let (_d, stats, f) = setup();
        let page = Page::zeroed();
        for _ in 0..5 {
            let pid = f.allocate();
            f.write_page(pid, &page).unwrap();
        }
        let snap = stats.snapshot();
        // First write is random (no previous position), the rest sequential.
        assert_eq!(snap.rand_writes, 1);
        assert_eq!(snap.seq_writes, 4);

        let mut out = Page::zeroed();
        f.read_page(PageId(0), &mut out).unwrap(); // random (first)
        f.read_page(PageId(1), &mut out).unwrap(); // sequential
        f.read_page(PageId(4), &mut out).unwrap(); // random (jump)
        f.read_page(PageId(4), &mut out).unwrap(); // sequential (same page)
        let snap = stats.snapshot();
        assert_eq!(snap.rand_reads, 2);
        assert_eq!(snap.seq_reads, 2);
    }

    #[test]
    fn allocated_but_unwritten_pages_read_as_zero() {
        let (_d, _s, f) = setup();
        let pid = f.allocate();
        let mut out = Page::zeroed();
        out.put_u64(64, 77);
        f.read_page(pid, &mut out).unwrap();
        assert_eq!(out.get_u64(64), 0);
    }

    #[test]
    fn out_of_bounds_is_error() {
        let (_d, _s, f) = setup();
        let mut out = Page::zeroed();
        assert!(f.read_page(PageId(0), &mut out).is_err());
        assert!(f.write_page(PageId(0), &out).is_err());
    }

    #[test]
    fn delete_removes_file() {
        let (_d, _s, f) = setup();
        let path = f.path().to_path_buf();
        assert!(path.exists());
        f.delete().unwrap();
        assert!(!path.exists());
    }
}
