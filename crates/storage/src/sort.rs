//! External merge sort over fixed-width `u64` records.
//!
//! Sorting is the workhorse of the whole pipeline (paper Figure 11): the same
//! sort both computes the aggregate views (\[AAD+96\] sort-based cube
//! computation) and produces the streams the Cubetree packer consumes. Runs
//! are written and read strictly sequentially, so a sort's I/O is charged at
//! sequential rates — exactly the property the paper exploits ("this step can
//! be hardly considered as an overhead, since sorting is at the same time
//! used for computing the views", §3.2).
//!
//! A record is `width` consecutive `u64` words; records are ordered by
//! comparing the columns listed in `key_cols`, in order.
//!
//! When the environment's [`crate::env::Parallelism`] budget allows more than
//! one worker, run generation is dispatched to background threads (each
//! sorting and spilling one budget-slice while the producer keeps pushing)
//! and the k-way merge reads every run through a prefetching reader that
//! overlaps run I/O with merge CPU. Run files are created on the producer
//! thread in push order and each run is written/read strictly sequentially by
//! exactly one thread, so the sorted output *and* the per-file
//! sequential/random I/O accounting are identical for every worker count.

use crate::env::StorageEnv;
use crate::page::{Page, PageId, PAGE_SIZE};
use crate::pager::DiskFile;
use ct_common::{CtError, Result};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Compares two records column-by-column in `key_cols` order.
#[inline]
pub fn cmp_records(a: &[u64], b: &[u64], key_cols: &[usize]) -> Ordering {
    for &c in key_cols {
        match a[c].cmp(&b[c]) {
            Ordering::Equal => continue,
            ord => return ord,
        }
    }
    Ordering::Equal
}

/// Default in-memory budget: 2 MiB of record words per run, far below the
/// 32 MiB pool, forcing realistic spills at benchmark scale factors.
pub const DEFAULT_BUDGET_WORDS: usize = 256 * 1024;

/// An external merge sorter.
pub struct ExternalSorter<'a> {
    env: &'a StorageEnv,
    width: usize,
    key_cols: Vec<usize>,
    budget_records: usize,
    buf: Vec<u64>,
    runs: Vec<Run>,
    pushed: u64,
    /// Worker budget for spill threads and merge prefetch (1 = sequential).
    threads: usize,
    /// In-flight spill workers, oldest first.
    workers: Vec<JoinHandle<Result<()>>>,
    /// Metrics (inert when the env's recorder is disabled): run count,
    /// spilled records, records-per-run distribution.
    runs_counter: ct_obs::Counter,
    spilled_counter: ct_obs::Counter,
    run_hist: ct_obs::HistogramHandle,
}

struct Run {
    file: Arc<DiskFile>,
    records: u64,
}

/// Sorts one budget-slice of records, returning the reordered copy. Shared
/// by the inline and threaded spill paths so both produce identical runs.
fn sort_chunk(buf: &[u64], width: usize, key_cols: &[usize]) -> Vec<u64> {
    let n = buf.len() / width;
    let mut idx: Vec<u32> = (0..n as u32).collect();
    idx.sort_unstable_by(|&a, &b| {
        cmp_records(
            &buf[a as usize * width..a as usize * width + width],
            &buf[b as usize * width..b as usize * width + width],
            key_cols,
        )
    });
    let mut out = Vec::with_capacity(buf.len());
    for i in idx {
        let s = i as usize * width;
        out.extend_from_slice(&buf[s..s + width]);
    }
    out
}

/// Writes one sorted chunk to `file` as a sequential run.
fn write_run(sorted: &[u64], width: usize, file: Arc<DiskFile>) -> Result<()> {
    let mut writer = RunWriter::new(file, width);
    for rec in sorted.chunks_exact(width) {
        writer.push(rec)?;
    }
    writer.finish()
}

fn join_spill(handle: JoinHandle<Result<()>>) -> Result<()> {
    handle.join().map_err(|_| CtError::invalid("sort spill worker panicked"))?
}

impl<'a> ExternalSorter<'a> {
    /// A sorter for `width`-word records ordered by `key_cols`, spilling runs
    /// into `env` when the default memory budget fills.
    ///
    /// # Panics
    /// Panics if `width` is zero, a key column is out of range, or the width
    /// exceeds one page.
    pub fn new(env: &'a StorageEnv, width: usize, key_cols: Vec<usize>) -> Self {
        Self::with_budget(env, width, key_cols, DEFAULT_BUDGET_WORDS)
    }

    /// Like [`ExternalSorter::new`] with an explicit budget in words.
    pub fn with_budget(
        env: &'a StorageEnv,
        width: usize,
        key_cols: Vec<usize>,
        budget_words: usize,
    ) -> Self {
        assert!(width > 0, "records must have at least one column");
        assert!(width * 8 <= PAGE_SIZE, "record wider than a page");
        assert!(key_cols.iter().all(|&c| c < width), "key column out of range");
        let budget_records = (budget_words / width).max(2);
        let recorder = env.recorder();
        ExternalSorter {
            env,
            width,
            key_cols,
            budget_records,
            buf: Vec::with_capacity(budget_records.min(1 << 16) * width),
            runs: Vec::new(),
            pushed: 0,
            threads: env.parallelism().threads,
            workers: Vec::new(),
            runs_counter: recorder.counter("storage.sort.runs"),
            spilled_counter: recorder.counter("storage.sort.spilled_records"),
            run_hist: recorder.histogram("storage.sort.run_records"),
        }
    }

    /// Number of records pushed so far.
    pub fn len(&self) -> u64 {
        self.pushed
    }

    /// True if nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.pushed == 0
    }

    /// Adds one record.
    ///
    /// # Panics
    /// Panics if `record.len() != width`.
    pub fn push(&mut self, record: &[u64]) -> Result<()> {
        assert_eq!(record.len(), self.width, "record width mismatch");
        self.buf.extend_from_slice(record);
        self.pushed += 1;
        if self.buf.len() / self.width >= self.budget_records {
            self.spill()?;
        }
        Ok(())
    }

    /// Sorts the in-memory chunk and writes it out as a run file.
    ///
    /// The run file is created here, on the producer thread, so run order
    /// (and the merge's run-index tie-break) is the push order regardless of
    /// how many spill workers are running.
    fn spill(&mut self) -> Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let records = (self.buf.len() / self.width) as u64;
        self.env.stats().add_tuples(records);
        self.runs_counter.inc();
        self.spilled_counter.add(records);
        self.run_hist.record(records);
        let file = self.env.create_raw_file("sort-run")?;
        self.runs.push(Run { file: file.clone(), records });
        // Wall-only span; a run spill may complete on a worker thread, where
        // global-counter deltas could not be attributed safely anyway.
        let span = self.env.recorder().span("sort/spill_run");
        if self.threads > 1 {
            // Bound in-flight workers by retiring the oldest first.
            if self.workers.len() + 1 >= self.threads {
                join_spill(self.workers.remove(0))?;
            }
            let cap = self.buf.capacity();
            let chunk = std::mem::replace(&mut self.buf, Vec::with_capacity(cap));
            let width = self.width;
            let key_cols = self.key_cols.clone();
            self.workers.push(std::thread::spawn(move || {
                let res = write_run(&sort_chunk(&chunk, width, &key_cols), width, file);
                drop(span);
                res
            }));
        } else {
            let sorted = sort_chunk(&self.buf, self.width, &self.key_cols);
            self.buf.clear();
            write_run(&sorted, self.width, file)?;
            drop(span);
        }
        Ok(())
    }

    /// Sorts and drains the buffered chunk, charging CPU tuple costs.
    fn take_sorted_chunk(&mut self) -> Vec<u64> {
        let n = self.buf.len() / self.width;
        self.env.stats().add_tuples(n as u64);
        let out = sort_chunk(&self.buf, self.width, &self.key_cols);
        self.buf.clear();
        out
    }

    /// Finishes the sort and returns a stream of records in key order.
    pub fn finish(mut self) -> Result<SortedStream> {
        if self.runs.is_empty() {
            let chunk = self.take_sorted_chunk();
            return Ok(SortedStream::InMemory { data: chunk, width: self.width, pos: 0 });
        }
        self.spill()?;
        // All runs must be on disk before the merge starts reading them.
        for handle in self.workers.drain(..) {
            join_spill(handle)?;
        }
        let overlap = self.threads > 1;
        let mut readers = Vec::with_capacity(self.runs.len());
        for run in &self.runs {
            readers.push(if overlap {
                RunCursor::Prefetch(PrefetchRunReader::new(
                    run.file.clone(),
                    self.width,
                    run.records,
                )?)
            } else {
                RunCursor::Direct(RunReader::new(run.file.clone(), self.width, run.records)?)
            });
        }
        let mut heap = BinaryHeap::with_capacity(readers.len());
        for (i, r) in readers.iter_mut().enumerate() {
            if let Some(rec) = r.next_record()? {
                heap.push(HeapEntry::new(rec, i, &self.key_cols));
            }
        }
        Ok(SortedStream::Merge {
            readers,
            heap,
            key_cols: self.key_cols,
            stats: self.env.stats().clone(),
            merged: self.env.recorder().counter("storage.sort.merged_records"),
        })
    }
}

/// The output of a finished sort. Use [`SortedStream::next_record`] to pull
/// records; each call returns a borrowed record slice valid until the next
/// call.
pub enum SortedStream {
    /// The whole input fit in the budget.
    InMemory {
        /// Sorted, width-strided words.
        data: Vec<u64>,
        /// Record width.
        width: usize,
        /// Cursor (record index).
        pos: usize,
    },
    /// K-way merge over spilled runs.
    Merge {
        /// One reader per run.
        readers: Vec<RunCursor>,
        /// Min-heap of run heads.
        heap: BinaryHeap<HeapEntry>,
        /// Sort key.
        key_cols: Vec<usize>,
        /// For CPU accounting of merge work.
        stats: Arc<crate::io::IoStats>,
        /// Metrics: records emitted by the k-way merge (inert when disabled).
        merged: ct_obs::Counter,
    },
}

impl SortedStream {
    /// Pulls the next record in key order, or `None` at end of stream.
    pub fn next_record(&mut self) -> Result<Option<Vec<u64>>> {
        match self {
            SortedStream::InMemory { data, width, pos } => {
                if *pos * *width >= data.len() {
                    return Ok(None);
                }
                let s = *pos * *width;
                *pos += 1;
                Ok(Some(data[s..s + *width].to_vec()))
            }
            SortedStream::Merge { readers, heap, key_cols, stats, merged } => {
                let Some(top) = heap.pop() else { return Ok(None) };
                stats.add_tuples(1);
                merged.inc();
                if let Some(next) = readers[top.run].next_record()? {
                    heap.push(HeapEntry::new(next, top.run, key_cols));
                }
                Ok(Some(top.record))
            }
        }
    }

    /// Drains the stream into a flat vector (tests / small inputs).
    pub fn collect_all(mut self) -> Result<Vec<Vec<u64>>> {
        let mut out = Vec::new();
        while let Some(r) = self.next_record()? {
            out.push(r);
        }
        Ok(out)
    }
}

/// A run head in the merge heap. Ordering is inverted (max-heap → min-heap)
/// and tie-broken by run index for determinism.
pub struct HeapEntry {
    key: Vec<u64>,
    run: usize,
    record: Vec<u64>,
}

impl HeapEntry {
    fn new(record: Vec<u64>, run: usize, key_cols: &[usize]) -> Self {
        let key = key_cols.iter().map(|&c| record[c]).collect();
        HeapEntry { key, run, record }
    }
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.run == other.run
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we need the smallest key first.
        other.key.cmp(&self.key).then_with(|| other.run.cmp(&self.run))
    }
}

/// Sequential page-granular writer for run files.
pub struct RunWriter {
    file: Arc<DiskFile>,
    width: usize,
    per_page: usize,
    page: Page,
    in_page: usize,
}

impl RunWriter {
    /// A writer appending `width`-word records to `file`.
    pub fn new(file: Arc<DiskFile>, width: usize) -> Self {
        let per_page = PAGE_SIZE / 8 / width;
        RunWriter { file, width, per_page, page: Page::zeroed(), in_page: 0 }
    }

    /// Appends one record.
    pub fn push(&mut self, record: &[u64]) -> Result<()> {
        debug_assert_eq!(record.len(), self.width);
        self.page.put_u64s(self.in_page * self.width * 8, record);
        self.in_page += 1;
        if self.in_page == self.per_page {
            self.flush_page()?;
        }
        Ok(())
    }

    /// Flushes the trailing partial page.
    pub fn finish(mut self) -> Result<()> {
        if self.in_page > 0 {
            self.flush_page()?;
        }
        Ok(())
    }

    fn flush_page(&mut self) -> Result<()> {
        let pid = self.file.allocate();
        self.file.write_page(pid, &self.page)?;
        self.page.clear();
        self.in_page = 0;
        Ok(())
    }
}

/// One run's record source inside a merge: either read on demand or via a
/// background prefetcher. Both pull the run's pages in identical sequential
/// order, so the I/O accounting does not depend on the variant.
pub enum RunCursor {
    /// Pages are read in the merge thread when needed.
    Direct(RunReader),
    /// Pages are read ahead by a background thread (worker budget > 1).
    Prefetch(PrefetchRunReader),
}

impl RunCursor {
    /// The next record, or `None` at end of run.
    pub fn next_record(&mut self) -> Result<Option<Vec<u64>>> {
        match self {
            RunCursor::Direct(r) => r.next_record(),
            RunCursor::Prefetch(r) => r.next_record(),
        }
    }
}

/// How many pages a [`PrefetchRunReader`] may read ahead of the consumer.
const PREFETCH_DEPTH: usize = 4;

/// A run reader whose page reads are issued by a dedicated background
/// thread through a bounded channel, overlapping run I/O with merge CPU.
///
/// The thread reads the run's pages in the same strictly sequential order
/// [`RunReader`] would, so per-file access classification is unchanged. If
/// the reader is dropped before the run is drained the thread stops at the
/// next send (at most `PREFETCH_DEPTH` pages past the consumed prefix).
pub struct PrefetchRunReader {
    rx: Receiver<Result<Page>>,
    page: Page,
    width: usize,
    per_page: usize,
    in_page: usize,
    remaining: u64,
    loaded: bool,
}

impl PrefetchRunReader {
    /// Starts prefetching `records` records of `width` words from `file`.
    pub fn new(file: Arc<DiskFile>, width: usize, records: u64) -> Result<Self> {
        let per_page = PAGE_SIZE / 8 / width;
        if per_page == 0 {
            return Err(CtError::invalid("record wider than a page"));
        }
        let pages = records.div_ceil(per_page as u64);
        let (tx, rx) = sync_channel::<Result<Page>>(PREFETCH_DEPTH);
        std::thread::spawn(move || {
            for pid in 0..pages {
                let mut page = Page::zeroed();
                let res = file.read_page(PageId(pid), &mut page).map(|_| page);
                let stop = res.is_err();
                if tx.send(res).is_err() || stop {
                    break;
                }
            }
        });
        Ok(PrefetchRunReader {
            rx,
            page: Page::zeroed(),
            width,
            per_page,
            in_page: 0,
            remaining: records,
            loaded: false,
        })
    }

    /// The next record, or `None` at end of run.
    pub fn next_record(&mut self) -> Result<Option<Vec<u64>>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        if !self.loaded || self.in_page == self.per_page {
            self.page = self
                .rx
                .recv()
                .map_err(|_| CtError::invalid("run prefetch thread exited early"))??;
            self.in_page = 0;
            self.loaded = true;
        }
        let mut rec = vec![0u64; self.width];
        self.page.get_u64s(self.in_page * self.width * 8, &mut rec);
        self.in_page += 1;
        self.remaining -= 1;
        Ok(Some(rec))
    }
}

/// Sequential reader over a run file written by [`RunWriter`].
pub struct RunReader {
    file: Arc<DiskFile>,
    width: usize,
    per_page: usize,
    page: Page,
    next_pid: u64,
    in_page: usize,
    remaining: u64,
    loaded: bool,
}

impl RunReader {
    /// A reader over `records` records of `width` words each.
    pub fn new(file: Arc<DiskFile>, width: usize, records: u64) -> Result<Self> {
        let per_page = PAGE_SIZE / 8 / width;
        if per_page == 0 {
            return Err(CtError::invalid("record wider than a page"));
        }
        Ok(RunReader {
            file,
            width,
            per_page,
            page: Page::zeroed(),
            next_pid: 0,
            in_page: 0,
            remaining: records,
            loaded: false,
        })
    }

    /// The next record, or `None` at end of run.
    pub fn next_record(&mut self) -> Result<Option<Vec<u64>>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        if !self.loaded || self.in_page == self.per_page {
            self.file.read_page(PageId(self.next_pid), &mut self.page)?;
            self.next_pid += 1;
            self.in_page = 0;
            self.loaded = true;
        }
        let mut rec = vec![0u64; self.width];
        self.page.get_u64s(self.in_page * self.width * 8, &mut rec);
        self.in_page += 1;
        self.remaining -= 1;
        Ok(Some(rec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn env() -> StorageEnv {
        StorageEnv::new("sort-test").unwrap()
    }

    #[test]
    fn in_memory_sort_small_input() {
        let env = env();
        let mut s = ExternalSorter::new(&env, 2, vec![1, 0]);
        for rec in [[3u64, 1], [1, 1], [1, 3], [3, 3], [2, 1]] {
            s.push(&rec).unwrap();
        }
        assert_eq!(s.len(), 5);
        let out = s.finish().unwrap().collect_all().unwrap();
        // Sorted by col1 then col0 — the paper's Table 4 order.
        assert_eq!(out, vec![vec![1, 1], vec![2, 1], vec![3, 1], vec![1, 3], vec![3, 3]]);
    }

    #[test]
    fn spilled_sort_matches_std_sort() {
        let env = env();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 10_000usize;
        let width = 3;
        // Tiny budget to force many runs.
        let mut s = ExternalSorter::with_budget(&env, width, vec![2, 1, 0], width * 512);
        let mut expected: Vec<Vec<u64>> = Vec::with_capacity(n);
        for _ in 0..n {
            let rec = vec![rng.gen_range(0..50u64), rng.gen_range(0..50), rng.gen_range(0..50)];
            s.push(&rec).unwrap();
            expected.push(rec);
        }
        expected.sort_by(|a, b| cmp_records(a, b, &[2, 1, 0]));
        let got = s.finish().unwrap().collect_all().unwrap();
        assert_eq!(got.len(), n);
        // Keys must match exactly in order (duplicates may permute freely,
        // but whole-record multiset must be preserved).
        for (g, e) in got.iter().zip(&expected) {
            assert_eq!(
                [g[2], g[1], g[0]],
                [e[2], e[1], e[0]],
                "key order mismatch"
            );
        }
        let mut got_sorted = got.clone();
        got_sorted.sort();
        let mut exp_sorted = expected.clone();
        exp_sorted.sort();
        assert_eq!(got_sorted, exp_sorted, "records lost or duplicated");
    }

    #[test]
    fn run_io_is_sequential() {
        let env = env();
        let before = env.snapshot();
        // 2048-record runs of width 2 = 4 pages per run.
        let mut s = ExternalSorter::with_budget(&env, 2, vec![0], 2 * 2048);
        for i in 0..8192u64 {
            s.push(&[8192 - i, i]).unwrap();
        }
        let mut stream = s.finish().unwrap();
        while stream.next_record().unwrap().is_some() {}
        let d = env.snapshot().since(&before);
        assert!(d.seq_writes > 0, "expected spills");
        // First page of each run is a 'random' access (position reset), all
        // subsequent pages sequential: random accesses ≪ sequential ones.
        assert!(
            d.rand_writes + d.rand_reads <= d.seq_writes + d.seq_reads,
            "sort should be sequential-dominated: {d:?}"
        );
    }

    #[test]
    fn empty_sorter_yields_empty_stream() {
        let env = env();
        let s = ExternalSorter::new(&env, 4, vec![0]);
        assert!(s.is_empty());
        let out = s.finish().unwrap().collect_all().unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn run_writer_reader_roundtrip_partial_page() {
        let env = env();
        let file = env.create_raw_file("rw").unwrap();
        let width = 5;
        let mut w = RunWriter::new(file.clone(), width);
        let n = 300u64; // not a multiple of records-per-page
        for i in 0..n {
            let rec: Vec<u64> = (0..width as u64).map(|c| i * 10 + c).collect();
            w.push(&rec).unwrap();
        }
        w.finish().unwrap();
        let mut r = RunReader::new(file, width, n).unwrap();
        let mut count = 0u64;
        while let Some(rec) = r.next_record().unwrap() {
            assert_eq!(rec[0], count * 10);
            assert_eq!(rec[4], count * 10 + 4);
            count += 1;
        }
        assert_eq!(count, n);
    }

    #[test]
    fn parallel_sort_matches_sequential_bytes_and_stats() {
        use crate::env::Parallelism;
        use ct_common::CostModel;
        let run = |threads: usize| {
            let env = StorageEnv::with_config_parallel(
                "sort-par",
                64,
                CostModel::default(),
                Parallelism::new(threads),
            )
            .unwrap();
            let before = env.snapshot();
            let mut s = ExternalSorter::with_budget(&env, 3, vec![2, 0], 3 * 700);
            let mut x = 88172645463325252u64;
            for _ in 0..9000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                s.push(&[x % 97, x % 11, x % 53]).unwrap();
            }
            let out = s.finish().unwrap().collect_all().unwrap();
            (out, env.snapshot().since(&before))
        };
        let (seq_out, seq_stats) = run(1);
        let (par_out, par_stats) = run(4);
        assert_eq!(seq_out, par_out, "record order must not depend on worker count");
        assert_eq!(seq_stats, par_stats, "I/O totals must not depend on worker count");
    }

    #[test]
    fn prefetch_reader_matches_direct_reader() {
        let env = env();
        let file = env.create_raw_file("pf").unwrap();
        let width = 3;
        let n = 2000u64;
        let mut w = RunWriter::new(file.clone(), width);
        for i in 0..n {
            w.push(&[i, i * 2, i * 3]).unwrap();
        }
        w.finish().unwrap();
        let mut direct = RunReader::new(file.clone(), width, n).unwrap();
        let mut prefetch = PrefetchRunReader::new(file, width, n).unwrap();
        loop {
            let a = direct.next_record().unwrap();
            let b = prefetch.next_record().unwrap();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn dropping_prefetch_reader_mid_run_is_clean() {
        let env = env();
        let file = env.create_raw_file("pf-drop").unwrap();
        let width = 2;
        let n = 5000u64;
        let mut w = RunWriter::new(file.clone(), width);
        for i in 0..n {
            w.push(&[i, i]).unwrap();
        }
        w.finish().unwrap();
        let mut r = PrefetchRunReader::new(file, width, n).unwrap();
        assert!(r.next_record().unwrap().is_some());
        drop(r); // the background thread must unblock and exit
    }

    #[test]
    fn duplicate_keys_survive() {
        let env = env();
        let mut s = ExternalSorter::with_budget(&env, 2, vec![0], 2 * 8);
        for _ in 0..100 {
            s.push(&[7, 1]).unwrap();
        }
        let out = s.finish().unwrap().collect_all().unwrap();
        assert_eq!(out.len(), 100);
        assert!(out.iter().all(|r| r == &vec![7, 1]));
    }
}
