//! Deterministic fault injection for durability testing.
//!
//! A [`FaultPlan`] is a cheap, cloneable handle threaded from the
//! [`crate::env::StorageEnv`] into every [`crate::pager::DiskFile`] it
//! creates. An unarmed plan costs one relaxed atomic load per physical page
//! write; an armed plan fails writes (or fires named crash points)
//! deterministically, so `tests/crash_recovery.rs` can kill an update at
//! every interesting instant and assert the recovery contract.
//!
//! Three triggers compose:
//!
//! * **fail the Nth write** — the Nth subsequent physical page write (1-based,
//!   counted across all files of the environment) returns
//!   [`ct_common::CtError::Injected`];
//! * **fail by path** — any page write to a file whose path contains a given
//!   substring fails;
//! * **crash points** — named program points (e.g. `update/pre_commit`) call
//!   [`FaultPlan::crash_point`]; if that name is armed the call fails.
//!
//! Once any trigger fires the plan enters the *crashed* state: every further
//! write and crash point fails too, modeling a process that died mid-update
//! and touches nothing more until the environment is reopened.

use ct_common::{CtError, Result};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Sentinel for "no Nth-write trigger armed".
const NO_TRIGGER: u64 = u64::MAX;

#[derive(Debug, Default)]
struct FaultState {
    /// Physical page writes observed so far (armed plans only).
    writes: AtomicU64,
    /// Fail when `writes` reaches this value (1-based); `NO_TRIGGER` = off.
    fail_write_at: AtomicU64,
    /// Fail any write whose file path contains this substring.
    fail_path: Mutex<Option<String>>,
    /// Armed crash-point name.
    crash_at: Mutex<Option<String>>,
    /// Set once any trigger fired: the simulated process is dead.
    crashed: AtomicBool,
    /// Injected-failure tally (also mirrored to `storage.faults.*` counters
    /// by the environment's recorder when one is attached).
    injected_writes: AtomicU64,
    fired_crash_points: AtomicU64,
    obs_writes: Mutex<ct_obs::Counter>,
    obs_crash_points: Mutex<ct_obs::Counter>,
}

/// A deterministic fault plan (see module docs). The default plan is unarmed
/// and never fails anything.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan(Option<Arc<FaultState>>);

impl FaultPlan {
    /// A plan that never injects anything (zero-cost: no allocation, every
    /// probe is a branch on `None`).
    pub fn none() -> Self {
        FaultPlan(None)
    }

    /// An armed-able plan with no triggers set yet.
    pub fn new() -> Self {
        FaultPlan(Some(Arc::new(FaultState {
            fail_write_at: AtomicU64::new(NO_TRIGGER),
            ..FaultState::default()
        })))
    }

    /// Whether this plan can inject at all.
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// Mirrors injections into `storage.faults.*` counters of `recorder`.
    pub(crate) fn attach_recorder(&self, recorder: &ct_obs::Recorder) {
        if let Some(s) = &self.0 {
            *s.obs_writes.lock() = recorder.counter("storage.faults.injected_writes");
            *s.obs_crash_points.lock() = recorder.counter("storage.faults.crash_points");
        }
    }

    /// Arms the plan to fail the `n`th subsequent physical page write
    /// (1-based). `n = 0` disarms the trigger.
    pub fn fail_nth_write(&self, n: u64) {
        if let Some(s) = &self.0 {
            s.writes.store(0, Ordering::SeqCst);
            s.fail_write_at.store(if n == 0 { NO_TRIGGER } else { n }, Ordering::SeqCst);
        }
    }

    /// Arms the plan to fail every page write to a file whose path contains
    /// `substr`.
    pub fn fail_writes_matching(&self, substr: impl Into<String>) {
        if let Some(s) = &self.0 {
            *s.fail_path.lock() = Some(substr.into());
        }
    }

    /// Arms the named crash point: the next [`FaultPlan::crash_point`] call
    /// with this name fails (and crashes the plan).
    pub fn arm_crash_point(&self, name: impl Into<String>) {
        if let Some(s) = &self.0 {
            *s.crash_at.lock() = Some(name.into());
        }
    }

    /// Clears every trigger and the crashed state (for reuse across test
    /// iterations).
    pub fn reset(&self) {
        if let Some(s) = &self.0 {
            s.writes.store(0, Ordering::SeqCst);
            s.fail_write_at.store(NO_TRIGGER, Ordering::SeqCst);
            *s.fail_path.lock() = None;
            *s.crash_at.lock() = None;
            s.crashed.store(false, Ordering::SeqCst);
        }
    }

    /// Number of faults injected into page writes so far.
    pub fn injected_writes(&self) -> u64 {
        self.0.as_ref().map_or(0, |s| s.injected_writes.load(Ordering::SeqCst))
    }

    /// Number of crash points that fired so far.
    pub fn fired_crash_points(&self) -> u64 {
        self.0.as_ref().map_or(0, |s| s.fired_crash_points.load(Ordering::SeqCst))
    }

    /// True once any trigger has fired.
    pub fn is_crashed(&self) -> bool {
        self.0.as_ref().is_some_and(|s| s.crashed.load(Ordering::SeqCst))
    }

    fn fail(&self, s: &FaultState, what: String) -> CtError {
        s.crashed.store(true, Ordering::SeqCst);
        CtError::injected(what)
    }

    /// Called by the pager before every physical page write; returns the
    /// injected error if a trigger fires.
    pub(crate) fn before_write(&self, path: &std::path::Path) -> Result<()> {
        let Some(s) = &self.0 else { return Ok(()) };
        if s.crashed.load(Ordering::SeqCst) {
            s.injected_writes.fetch_add(1, Ordering::SeqCst);
            s.obs_writes.lock().inc();
            return Err(CtError::injected("write after simulated crash".to_string()));
        }
        let n = s.writes.fetch_add(1, Ordering::SeqCst) + 1;
        if n == s.fail_write_at.load(Ordering::SeqCst) {
            s.injected_writes.fetch_add(1, Ordering::SeqCst);
            s.obs_writes.lock().inc();
            return Err(self.fail(s, format!("write #{n} to {}", path.display())));
        }
        let matched = s
            .fail_path
            .lock()
            .as_ref()
            .is_some_and(|sub| path.to_string_lossy().contains(sub.as_str()));
        if matched {
            s.injected_writes.fetch_add(1, Ordering::SeqCst);
            s.obs_writes.lock().inc();
            return Err(self.fail(s, format!("write to {}", path.display())));
        }
        Ok(())
    }

    /// A named crash point. Call sites thread this through durability-
    /// critical sequences; an armed (or already crashed) plan fails here.
    pub fn crash_point(&self, name: &str) -> Result<()> {
        let Some(s) = &self.0 else { return Ok(()) };
        if s.crashed.load(Ordering::SeqCst) {
            return Err(CtError::injected(format!("crash point {name} after simulated crash")));
        }
        let armed = s.crash_at.lock().as_deref() == Some(name);
        if armed {
            s.fired_crash_points.fetch_add(1, Ordering::SeqCst);
            s.obs_crash_points.lock().inc();
            return Err(self.fail(s, format!("crash point {name}")));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    #[test]
    fn unarmed_plan_is_inert() {
        let p = FaultPlan::none();
        assert!(!p.is_active());
        assert!(p.before_write(Path::new("/x")).is_ok());
        assert!(p.crash_point("anything").is_ok());
        assert!(!p.is_crashed());
        let armed = FaultPlan::new();
        assert!(armed.is_active());
        assert!(armed.before_write(Path::new("/x")).is_ok());
        assert!(armed.crash_point("anything").is_ok());
    }

    #[test]
    fn nth_write_fires_once_then_crashes_everything() {
        let p = FaultPlan::new();
        p.fail_nth_write(3);
        assert!(p.before_write(Path::new("/a")).is_ok());
        assert!(p.before_write(Path::new("/a")).is_ok());
        let err = p.before_write(Path::new("/a")).unwrap_err();
        assert!(err.is_injected(), "{err}");
        assert!(p.is_crashed());
        // Everything after the crash fails too.
        assert!(p.before_write(Path::new("/b")).is_err());
        assert!(p.crash_point("later").is_err());
        assert_eq!(p.injected_writes(), 2);
    }

    #[test]
    fn path_matching_and_crash_points() {
        let p = FaultPlan::new();
        p.fail_writes_matching("cubetree-1");
        assert!(p.before_write(Path::new("/t/0001-cubetree-0.pages")).is_ok());
        assert!(p.before_write(Path::new("/t/0002-cubetree-1.pages")).is_err());
        p.reset();
        p.arm_crash_point("update/pre_commit");
        assert!(p.crash_point("update/post_commit").is_ok());
        assert!(p.crash_point("update/pre_commit").is_err());
        assert_eq!(p.fired_crash_points(), 1);
        p.reset();
        assert!(!p.is_crashed());
        assert!(p.crash_point("update/pre_commit").is_ok());
    }
}
