//! # ct-storage — paged storage substrate
//!
//! The storage layer both the conventional baseline and the Cubetrees build
//! on. It provides:
//!
//! * [`page`] — the fixed 8 KiB page with little-endian codec helpers.
//! * [`pager`] — file-backed page I/O that classifies every access as
//!   *sequential* or *random*, feeding the paper's cost argument (§3.2/§3.4:
//!   Cubetrees win because packing and merge-packing do only sequential
//!   writes, while relational updates do random I/O).
//! * [`io`] — shared atomic I/O counters and snapshots.
//! * [`buffer`] — a small LRU buffer pool (the paper's testbed had 32 MB of
//!   RAM; the buffer-hit-ratio argument of §2.4 depends on it).
//! * [`env`](mod@env) — a storage environment tying a temp directory, the pool and
//!   the counters together.
//! * [`sort`] — external merge sort over fixed-width records, used to compute
//!   views (\[AAD+96\]-style sort-based cube computation) and to prepare the
//!   sorted streams the R-tree packer consumes.
//! * [`manifest`] — the checksummed `MANIFEST` file naming each component's
//!   live file, committed atomically (write-temp → fsync → rename) so
//!   build-then-swap updates survive crashes; recovery-on-open verifies
//!   content checksums and deletes orphans.
//! * [`fault`] — deterministic fault injection ([`FaultPlan`]): fail the Nth
//!   page write, fail by path match, or crash at a named point, so the crash
//!   window of every update can be exercised in tests.
//!
//! Observability: every constructor defaults to a disabled `ct_obs` recorder
//! (zero cost); build the environment with [`StorageEnv::with_config_full`]
//! to attribute page I/O and wall time to phases ([`env::Phase`]) and to
//! light up the buffer/sorter counters documented in `OBSERVABILITY.md`.

// I/O error paths must propagate, not panic; test code is exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod buffer;
pub mod env;
pub mod fault;
pub mod io;
pub mod manifest;
pub mod page;
pub mod pager;
pub mod sort;

pub use buffer::BufferPool;
pub use env::{Parallelism, Phase, StorageEnv, TempDir};
pub use fault::FaultPlan;
pub use io::{IoSnapshot, IoStats};
pub use manifest::{Manifest, ManifestEntry, Recovery};
pub use page::{Page, PageId, PAGE_SIZE};
pub use pager::{DiskFile, FileId};
pub use sort::ExternalSorter;
