//! Fixed-size pages with little-endian field codecs.

/// Size of every on-disk page, in bytes.
pub const PAGE_SIZE: usize = 8192;

/// FNV-1a 64-bit hash — the workspace's page/manifest checksum.
///
/// Not cryptographic; the goal is catching torn page writes and truncated
/// files, where any avalanche-y 64-bit hash has a ~2⁻⁶⁴ miss rate. Chosen
/// over CRC for simplicity (no table) and over SipHash for having a stable,
/// keyless definition that can be written into the `MANIFEST` file format.
pub fn checksum(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Zero-based page number within one file.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct PageId(pub u64);

impl PageId {
    /// Byte offset of this page inside its file.
    #[inline]
    pub fn byte_offset(self) -> u64 {
        self.0 * PAGE_SIZE as u64
    }
}

/// An in-memory 8 KiB page.
///
/// Pages are plain byte buffers; each storage structure (heap, B-tree,
/// R-tree) defines its own layout on top using the typed accessors here.
#[derive(Clone)]
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl Page {
    /// A zeroed page.
    pub fn zeroed() -> Self {
        Page { data: Box::new([0u8; PAGE_SIZE]) }
    }

    /// Raw bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }

    /// Raw bytes, mutable.
    #[inline]
    pub fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.data
    }

    /// Resets the page to all zeros.
    pub fn clear(&mut self) {
        self.data.fill(0);
    }

    /// Checksum of the page contents (see [`checksum`]).
    pub fn checksum(&self) -> u64 {
        checksum(&self.data[..])
    }

    /// Reads a `u16` at byte offset `off`.
    #[inline]
    pub fn get_u16(&self, off: usize) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.data[off..off + 2]);
        u16::from_le_bytes(b)
    }

    /// Writes a `u16` at byte offset `off`.
    #[inline]
    pub fn put_u16(&mut self, off: usize, v: u16) {
        self.data[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads a `u32` at byte offset `off`.
    #[inline]
    pub fn get_u32(&self, off: usize) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.data[off..off + 4]);
        u32::from_le_bytes(b)
    }

    /// Writes a `u32` at byte offset `off`.
    #[inline]
    pub fn put_u32(&mut self, off: usize, v: u32) {
        self.data[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads a `u64` at byte offset `off`.
    #[inline]
    pub fn get_u64(&self, off: usize) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.data[off..off + 8]);
        u64::from_le_bytes(b)
    }

    /// Writes a `u64` at byte offset `off`.
    #[inline]
    pub fn put_u64(&mut self, off: usize, v: u64) {
        self.data[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads `n` consecutive `u64`s starting at `off` into `out`.
    pub fn get_u64s(&self, off: usize, out: &mut [u64]) {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.get_u64(off + i * 8);
        }
    }

    /// Writes all of `vals` as consecutive `u64`s starting at `off`.
    pub fn put_u64s(&mut self, off: usize, vals: &[u64]) {
        for (i, &v) in vals.iter().enumerate() {
            self.put_u64(off + i * 8, v);
        }
    }
}

impl Default for Page {
    fn default() -> Self {
        Page::zeroed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_accessors_roundtrip() {
        let mut p = Page::zeroed();
        p.put_u16(0, 0xBEEF);
        p.put_u32(2, 0xDEAD_BEEF);
        p.put_u64(6, u64::MAX - 3);
        assert_eq!(p.get_u16(0), 0xBEEF);
        assert_eq!(p.get_u32(2), 0xDEAD_BEEF);
        assert_eq!(p.get_u64(6), u64::MAX - 3);
    }

    #[test]
    fn u64_slices_roundtrip() {
        let mut p = Page::zeroed();
        let vals = [1u64, 2, u64::MAX, 0, 42];
        p.put_u64s(100, &vals);
        let mut out = [0u64; 5];
        p.get_u64s(100, &mut out);
        assert_eq!(out, vals);
    }

    #[test]
    fn clear_zeroes_everything() {
        let mut p = Page::zeroed();
        p.put_u64(8000, 7);
        p.clear();
        assert_eq!(p.get_u64(8000), 0);
    }

    #[test]
    fn checksum_is_stable_and_sensitive() {
        let mut p = Page::zeroed();
        let zero_sum = p.checksum();
        assert_eq!(zero_sum, Page::zeroed().checksum(), "deterministic");
        p.put_u64(4096, 1);
        assert_ne!(p.checksum(), zero_sum, "single-bit change detected");
        // Spot-check the FNV-1a definition against known vectors.
        assert_eq!(checksum(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(checksum(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn last_valid_offsets() {
        let mut p = Page::zeroed();
        p.put_u64(PAGE_SIZE - 8, 9);
        assert_eq!(p.get_u64(PAGE_SIZE - 8), 9);
        assert_eq!(PageId(3).byte_offset(), 3 * PAGE_SIZE as u64);
    }
}
