//! Shared I/O accounting.
//!
//! Every physical page access in the system flows through [`IoStats`],
//! classified by the pager as sequential or random. The counters are the raw
//! material for the simulated-time metric (see [`ct_common::cost`]): the
//! paper's performance claims hinge on the sequential/random distinction, not
//! on absolute device speed.

use ct_common::CostModel;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters for one storage environment.
#[derive(Debug, Default)]
pub struct IoStats {
    seq_reads: AtomicU64,
    rand_reads: AtomicU64,
    seq_writes: AtomicU64,
    rand_writes: AtomicU64,
    /// Page requests satisfied by the buffer pool without touching disk.
    buffer_hits: AtomicU64,
    /// Tuples processed by CPU-side operators (sorts, aggregations, probes).
    tuples: AtomicU64,
}

impl IoStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        IoStats::default()
    }

    pub(crate) fn record_read(&self, sequential: bool) {
        if sequential {
            self.seq_reads.fetch_add(1, Ordering::Relaxed);
        } else {
            self.rand_reads.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_write(&self, sequential: bool) {
        if sequential {
            self.seq_writes.fetch_add(1, Ordering::Relaxed);
        } else {
            self.rand_writes.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_buffer_hit(&self) {
        self.buffer_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Charges `n` tuples of CPU work.
    pub fn add_tuples(&self, n: u64) {
        self.tuples.fetch_add(n, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            seq_reads: self.seq_reads.load(Ordering::Relaxed),
            rand_reads: self.rand_reads.load(Ordering::Relaxed),
            seq_writes: self.seq_writes.load(Ordering::Relaxed),
            rand_writes: self.rand_writes.load(Ordering::Relaxed),
            buffer_hits: self.buffer_hits.load(Ordering::Relaxed),
            tuples: self.tuples.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of [`IoStats`], supporting interval arithmetic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Sequential page reads from disk.
    pub seq_reads: u64,
    /// Random page reads from disk.
    pub rand_reads: u64,
    /// Sequential page writes to disk.
    pub seq_writes: u64,
    /// Random page writes to disk.
    pub rand_writes: u64,
    /// Reads absorbed by the buffer pool.
    pub buffer_hits: u64,
    /// CPU-side tuples processed.
    pub tuples: u64,
}

impl IoSnapshot {
    /// Counter deltas since `earlier`.
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            seq_reads: self.seq_reads - earlier.seq_reads,
            rand_reads: self.rand_reads - earlier.rand_reads,
            seq_writes: self.seq_writes - earlier.seq_writes,
            rand_writes: self.rand_writes - earlier.rand_writes,
            buffer_hits: self.buffer_hits - earlier.buffer_hits,
            tuples: self.tuples - earlier.tuples,
        }
    }

    /// Total physical page accesses.
    pub fn total_io(&self) -> u64 {
        self.seq_reads + self.rand_reads + self.seq_writes + self.rand_writes
    }

    /// Simulated elapsed seconds under `model`.
    pub fn simulated_seconds(&self, model: &CostModel) -> f64 {
        model.seconds(self.seq_reads, self.rand_reads, self.seq_writes, self.rand_writes, self.tuples)
    }

    /// Buffer hit ratio over all logical reads (hits / (hits + physical
    /// reads)), or 1.0 when nothing was read — the §2.4 metric that
    /// motivates minimizing the number of Cubetrees.
    pub fn hit_ratio(&self) -> f64 {
        let logical = self.buffer_hits + self.seq_reads + self.rand_reads;
        if logical == 0 {
            1.0
        } else {
            self.buffer_hits as f64 / logical as f64
        }
    }

    /// This snapshot as the observability layer's neutral delta type, for
    /// attaching to a [`ct_obs::SpanGuard`]. (`ct-obs` sits below this crate
    /// in the dependency graph, so the conversion lives here.)
    pub fn to_delta(&self) -> ct_obs::IoDelta {
        ct_obs::IoDelta {
            seq_reads: self.seq_reads,
            rand_reads: self.rand_reads,
            seq_writes: self.seq_writes,
            rand_writes: self.rand_writes,
            buffer_hits: self.buffer_hits,
            tuples: self.tuples,
        }
    }
}

impl From<IoSnapshot> for ct_obs::IoDelta {
    fn from(s: IoSnapshot) -> ct_obs::IoDelta {
        s.to_delta()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_diff() {
        let s = IoStats::new();
        s.record_read(true);
        s.record_read(false);
        s.record_read(false);
        s.record_write(true);
        s.record_buffer_hit();
        s.add_tuples(10);
        let a = s.snapshot();
        assert_eq!(a.seq_reads, 1);
        assert_eq!(a.rand_reads, 2);
        assert_eq!(a.seq_writes, 1);
        assert_eq!(a.rand_writes, 0);
        assert_eq!(a.buffer_hits, 1);
        assert_eq!(a.tuples, 10);
        assert_eq!(a.total_io(), 4);

        s.record_write(false);
        s.add_tuples(5);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.rand_writes, 1);
        assert_eq!(d.tuples, 5);
        assert_eq!(d.seq_reads, 0);
    }

    #[test]
    fn hit_ratio_bounds() {
        let empty = IoSnapshot::default();
        assert_eq!(empty.hit_ratio(), 1.0);
        let some = IoSnapshot { buffer_hits: 3, rand_reads: 1, ..Default::default() };
        assert_eq!(some.hit_ratio(), 0.75);
    }

    #[test]
    fn simulated_seconds_uses_model() {
        let snap = IoSnapshot { rand_reads: 1000, ..Default::default() };
        let t = snap.simulated_seconds(&CostModel::DISK_1998);
        assert!((t - 12.0).abs() < 1e-9, "1000 random reads at 12ms = 12s, got {t}");
    }
}
