//! Batch query execution and measurement.
//!
//! [`run_batch`] executes through the engine's batch interface when the
//! engine's environment has a parallel worker budget — the Cubetree engine
//! then schedules the batch (per-tree groups, packed-order sweeps, shared
//! scans; see `cubetree::sched`) — and falls back to the historical
//! query-at-a-time loop otherwise, keeping `threads = 1` measurements
//! bit-identical to previous releases.

use ct_common::query::QueryRow;
use ct_common::stats::percentile_nearest_rank;
use ct_common::{CtError, Result, SliceQuery};
use cubetree::engine::{CubetreeEngine, RolapEngine};
use cubetree::query::execute_generation_query;
use cubetree::SchedSummary;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Measurements for one executed query.
#[derive(Clone, Copy, Debug)]
pub struct QueryStat {
    /// Wall-clock seconds.
    pub wall_secs: f64,
    /// Simulated seconds under the engine's I/O cost model.
    pub sim_secs: f64,
    /// Result rows.
    pub rows: usize,
}

/// Aggregate measurements for a batch.
///
/// Per-query stats are the single source of truth: batch totals are
/// *derived* (they used to be stored alongside, drifting from the I/O
/// counters whenever one accumulation path was touched and not the other).
#[derive(Clone, Debug, Default)]
pub struct BatchStats {
    /// Per-query stats in batch order.
    pub queries: Vec<QueryStat>,
    /// An order-insensitive checksum over all result rows, for verifying
    /// that two engines returned identical answers.
    pub checksum: u64,
    /// Scheduler statistics when the engine ran the batch through its
    /// scheduler (`None` for the sequential path).
    pub sched: Option<SchedSummary>,
}

impl BatchStats {
    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True if the batch was empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Total wall-clock seconds, summed over the per-query stats.
    pub fn total_wall(&self) -> f64 {
        self.queries.iter().map(|q| q.wall_secs).sum()
    }

    /// Total simulated seconds, summed over the per-query stats.
    pub fn total_sim(&self) -> f64 {
        self.queries.iter().map(|q| q.sim_secs).sum()
    }

    /// Mean throughput in queries/second over simulated time. An empty
    /// batch has throughput 0 (not NaN); a non-empty batch that cost no
    /// simulated time reports infinity.
    pub fn avg_throughput_sim(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let total = self.total_sim();
        if total > 0.0 {
            self.len() as f64 / total
        } else {
            f64::INFINITY
        }
    }

    /// The `p`-th percentile (0–100, nearest rank) of per-query wall-clock
    /// seconds; 0.0 on an empty batch.
    pub fn percentile_wall(&self, p: f64) -> f64 {
        percentile_nearest_rank(self.queries.iter().map(|q| q.wall_secs), p)
    }

    /// The `p`-th percentile (0–100, nearest rank) of per-query simulated
    /// seconds; 0.0 on an empty batch.
    pub fn percentile_sim(&self, p: f64) -> f64 {
        percentile_nearest_rank(self.queries.iter().map(|q| q.sim_secs), p)
    }

    /// `(min, max)` throughput in queries/second over windows of `window`
    /// queries of simulated time — the form of the paper's Figure 13.
    pub fn throughput_window_sim(&self, window: usize) -> (f64, f64) {
        let mut min = f64::INFINITY;
        let mut max: f64 = 0.0;
        for chunk in self.queries.chunks(window.max(1)) {
            if chunk.len() < window {
                break; // ignore the ragged tail
            }
            let t: f64 = chunk.iter().map(|q| q.sim_secs).sum();
            let qps = if t > 0.0 { chunk.len() as f64 / t } else { f64::INFINITY };
            min = min.min(qps);
            max = max.max(qps);
        }
        if min > max {
            (0.0, 0.0)
        } else {
            (min, max)
        }
    }
}

/// FNV-1a over the normalized result rows.
fn checksum_rows(rows: &[QueryRow]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    let mut eat = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x100000001b3);
    };
    for r in rows {
        for &k in &r.key {
            eat(k);
        }
        eat(r.agg.to_bits());
        eat(0xFEED);
    }
    h
}

/// Executes `queries` against `engine`, collecting wall-clock and
/// simulated-time statistics plus a result checksum.
///
/// With a parallel worker budget the whole batch goes through
/// [`RolapEngine::query_batch`] once (the Cubetree engine schedules it) and
/// the measured wall/simulated time is apportioned uniformly across the
/// queries; at `threads = 1` the historical per-query loop runs unchanged.
pub fn run_batch(engine: &dyn RolapEngine, queries: &[SliceQuery]) -> Result<BatchStats> {
    let mut stats = BatchStats::default();
    let model = *engine.env().cost_model();
    let recorder = engine.env().recorder().clone();
    let wall_hist = recorder.histogram("workload.query.wall_us");
    let sim_hist = recorder.histogram("workload.query.sim_us");
    let rows_hist = recorder.histogram("workload.query.result_rows");
    let mut checksum = 0u64;
    // One sort scratch reused across the whole batch instead of a fresh
    // clone + allocation per query.
    let mut scratch: Vec<QueryRow> = Vec::new();
    let eat = |rows: &[QueryRow], scratch: &mut Vec<QueryRow>| {
        scratch.clear();
        scratch.extend_from_slice(rows);
        scratch.sort_by(|a, b| a.key.cmp(&b.key));
        checksum_rows(scratch)
    };
    if engine.env().parallelism().is_parallel() && queries.len() > 1 {
        let before = engine.env().snapshot();
        let t0 = Instant::now();
        let batch = engine.query_batch(queries)?;
        let wall = t0.elapsed().as_secs_f64();
        let delta = engine.env().snapshot().since(&before);
        let sim = delta.simulated_seconds(&model);
        // Queries ran interleaved across workers; per-query timings are not
        // individually observable, so apportion the batch cost uniformly.
        let n = queries.len() as f64;
        let (wall_q, sim_q) = (wall / n, sim / n);
        for rows in &batch.results {
            wall_hist.record((wall_q * 1e6) as u64);
            sim_hist.record((sim_q * 1e6) as u64);
            rows_hist.record(rows.len() as u64);
            checksum = checksum.wrapping_add(eat(rows, &mut scratch));
            stats.queries.push(QueryStat {
                wall_secs: wall_q,
                sim_secs: sim_q,
                rows: rows.len(),
            });
        }
        stats.sched = batch.sched;
    } else {
        for q in queries {
            let before = engine.env().snapshot();
            let t0 = Instant::now();
            let rows = engine.query(q)?;
            let wall = t0.elapsed().as_secs_f64();
            let delta = engine.env().snapshot().since(&before);
            let sim = delta.simulated_seconds(&model);
            wall_hist.record((wall * 1e6) as u64);
            sim_hist.record((sim * 1e6) as u64);
            rows_hist.record(rows.len() as u64);
            checksum = checksum.wrapping_add(eat(&rows, &mut scratch));
            stats.queries.push(QueryStat { wall_secs: wall, sim_secs: sim, rows: rows.len() });
        }
    }
    stats.checksum = checksum;
    Ok(stats)
}

/// Results of one mixed read/refresh run (see [`run_mixed_refresh`]).
#[derive(Clone, Debug)]
pub struct MixedStats {
    /// Update cycles committed by the writer.
    pub cycles: usize,
    /// Reader probe batches completed across all reader threads.
    pub reads: u64,
    /// Distinct generation numbers the readers pinned, ascending.
    pub generations_seen: Vec<u64>,
    /// Batches whose answers did not match the committed generation they
    /// pinned. Any non-zero value is a snapshot-isolation violation.
    pub mismatches: u64,
}

/// Checksum of one probe batch's answers: the order-insensitive row
/// checksum summed across probes (the same scheme [`run_batch`] uses).
fn probe_checksum(
    gen: &cubetree::Generation,
    engine: &CubetreeEngine,
    probes: &[SliceQuery],
) -> Result<u64> {
    let mut sum = 0u64;
    for q in probes {
        let mut rows = execute_generation_query(gen, engine.env(), engine.catalog(), q)?;
        rows.sort_by(|a, b| a.key.cmp(&b.key));
        sum = sum.wrapping_add(checksum_rows(&rows));
    }
    Ok(sum)
}

/// Drives a mixed read/update workload: `readers` threads continuously pin
/// the forest and run the `probes` batch while this thread commits one
/// refresh per relation in `deltas` — queries run *during* the merge-pack,
/// the manifest flip and the old generation's reclamation.
///
/// After each commit the writer records the new generation's expected probe
/// checksum; every reader batch is validated against the checksum of the
/// generation it pinned. The writer paces itself so each generation is
/// observed at least once by every reader before the next cycle commits.
///
/// Run this with a disabled or dedicated recorder: concurrent root "query"
/// phases cannot split the shared I/O counters, so phase-level attribution
/// is smeared across readers in mixed mode (see OBSERVABILITY.md).
pub fn run_mixed_refresh(
    engine: &CubetreeEngine,
    probes: &[SliceQuery],
    deltas: &[ct_cube::Relation],
    readers: usize,
) -> Result<MixedStats> {
    let forest = engine
        .forest()
        .ok_or_else(|| CtError::invalid("run_mixed_refresh needs a loaded engine"))?;
    // expected[g] = probe checksum of generation g, filled by the writer
    // right after g commits. A reader can pin g before the writer finishes
    // computing the entry, so readers record observations and validate at
    // the end rather than racing the table.
    let expected: Mutex<std::collections::BTreeMap<u64, u64>> = Mutex::new(
        std::collections::BTreeMap::new(),
    );
    {
        let pin = forest.pin();
        let sum = probe_checksum(&pin, engine, probes)?;
        expected.lock().unwrap().insert(pin.number(), sum);
    }
    let done = AtomicBool::new(false);
    // 1 + the highest generation number any completed reader batch has
    // pinned (0 = none yet); the writer paces on it so every generation is
    // observed while current.
    let latest_read = AtomicU64::new(0);
    let observed: Mutex<Vec<(u64, u64)>> = Mutex::new(Vec::new());
    let cycles = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(readers.max(1));
        for _ in 0..readers.max(1) {
            handles.push(scope.spawn(|| -> Result<()> {
                let mut local: Vec<(u64, u64)> = Vec::new();
                while !done.load(Ordering::Acquire) {
                    let pin = forest.pin();
                    let sum = probe_checksum(&pin, engine, probes)?;
                    local.push((pin.number(), sum));
                    latest_read.fetch_max(pin.number() + 1, Ordering::AcqRel);
                }
                observed.lock().unwrap().extend(local);
                Ok(())
            }));
        }
        let writer = scope.spawn(|| -> Result<usize> {
            let mut cycles = 0usize;
            // Every generation, the initial one included, must be pinned by
            // at least one completed reader batch before it is replaced.
            while latest_read.load(Ordering::Acquire) <= forest.generation_number() {
                std::thread::yield_now();
            }
            for delta in deltas {
                engine.refresh(delta)?;
                cycles += 1;
                let pin = forest.pin();
                let sum = probe_checksum(&pin, engine, probes)?;
                let number = pin.number();
                expected.lock().unwrap().insert(number, sum);
                drop(pin);
                while latest_read.load(Ordering::Acquire) <= number {
                    std::thread::yield_now();
                }
            }
            Ok(cycles)
        });
        let cycles = writer.join().expect("writer thread must not panic");
        done.store(true, Ordering::Release);
        for h in handles {
            h.join().expect("reader thread must not panic")?;
        }
        cycles
    })?;
    let expected = expected.into_inner().unwrap();
    let observed = observed.into_inner().unwrap();
    let mut generations_seen: Vec<u64> = Vec::new();
    let mut mismatches = 0u64;
    for (gen, sum) in &observed {
        if !generations_seen.contains(gen) {
            generations_seen.push(*gen);
        }
        if expected.get(gen) != Some(sum) {
            mismatches += 1;
        }
    }
    generations_seen.sort_unstable();
    Ok(MixedStats { cycles, reads: observed.len() as u64, generations_seen, mismatches })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genq::QueryGenerator;
    use crate::paper::paper_configs;
    use ct_common::query::normalize_rows;
    use ct_tpcd::{TpcdConfig, TpcdWarehouse};
    use cubetree::engine::{ConventionalEngine, CubetreeEngine};

    /// Loads both engines over a tiny warehouse and checks the checksum
    /// machinery end to end.
    #[test]
    fn both_engines_agree_on_a_random_batch() {
        let w = TpcdWarehouse::new(TpcdConfig { scale_factor: 0.002, seed: 11 });
        let fact = w.generate_fact();
        let setup = paper_configs(&w);
        let mut conv =
            ConventionalEngine::new(w.catalog().clone(), setup.conventional.clone()).unwrap();
        conv.load(&fact).unwrap();
        let mut cube = CubetreeEngine::new(w.catalog().clone(), setup.cubetree.clone()).unwrap();
        cube.load(&fact).unwrap();

        let a = w.attrs();
        let mut generator =
            QueryGenerator::new(w.catalog(), vec![a.partkey, a.suppkey, a.custkey], 5);
        let queries = generator.batch(60);
        let s1 = run_batch(&conv, &queries).unwrap();
        let s2 = run_batch(&cube, &queries).unwrap();
        assert_eq!(s1.len(), 60);
        assert_eq!(
            s1.checksum, s2.checksum,
            "the two configurations must return identical answers"
        );
        assert!(s1.total_sim() > 0.0);
        assert!(s2.total_sim() > 0.0);
        assert!(s1.total_wall() > 0.0);
        let (min, max) = s2.throughput_window_sim(10);
        assert!(min <= max);
        assert!(s2.avg_throughput_sim() > 0.0);
    }

    #[test]
    fn checksum_is_order_insensitive_but_value_sensitive() {
        let rows1 = vec![
            QueryRow { key: vec![1], agg: 5.0 },
            QueryRow { key: vec![2], agg: 6.0 },
        ];
        let rows2 = vec![
            QueryRow { key: vec![2], agg: 6.0 },
            QueryRow { key: vec![1], agg: 5.0 },
        ];
        let c1 = checksum_rows(&normalize_rows(rows1.clone()));
        let c2 = checksum_rows(&normalize_rows(rows2));
        assert_eq!(c1, c2);
        let rows3 = vec![
            QueryRow { key: vec![1], agg: 5.0 },
            QueryRow { key: vec![2], agg: 7.0 },
        ];
        assert_ne!(c1, checksum_rows(&normalize_rows(rows3)));
    }

    #[test]
    fn empty_batch() {
        let stats = BatchStats::default();
        assert!(stats.is_empty());
        assert_eq!(stats.throughput_window_sim(10), (0.0, 0.0));
        assert_eq!(stats.avg_throughput_sim(), 0.0);
        assert_eq!(stats.percentile_wall(50.0), 0.0);
        assert_eq!(stats.percentile_sim(99.0), 0.0);
        assert!(stats.sched.is_none());
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let mut stats = BatchStats::default();
        for secs in [4.0, 1.0, 3.0, 2.0] {
            stats.queries.push(QueryStat { wall_secs: secs, sim_secs: secs * 10.0, rows: 0 });
        }
        assert_eq!(stats.percentile_wall(0.0), 1.0);
        assert_eq!(stats.percentile_wall(25.0), 1.0);
        assert_eq!(stats.percentile_wall(50.0), 2.0);
        assert_eq!(stats.percentile_wall(75.0), 3.0);
        assert_eq!(stats.percentile_wall(100.0), 4.0);
        assert_eq!(stats.percentile_sim(100.0), 40.0);
    }

    /// Readers querying *during* refresh cycles: every batch must match
    /// the generation it pinned, and every generation must get observed.
    #[test]
    fn mixed_reads_and_refreshes_are_snapshot_consistent() {
        let w = TpcdWarehouse::new(TpcdConfig { scale_factor: 0.002, seed: 21 });
        let fact = w.generate_fact();
        let setup = paper_configs(&w);
        let mut engine =
            CubetreeEngine::new(w.catalog().clone(), setup.cubetree.clone()).unwrap();
        engine.load(&fact).unwrap();

        let a = w.attrs();
        let mut generator =
            QueryGenerator::new(w.catalog(), vec![a.partkey, a.suppkey, a.custkey], 13);
        let probes = generator.batch(6);
        // Three refresh cycles over slices of a second generated fact.
        let extra = TpcdWarehouse::new(TpcdConfig { scale_factor: 0.002, seed: 22 })
            .generate_fact();
        let deltas: Vec<_> = (0..3)
            .map(|i| {
                let lo = i * 40;
                let keys: Vec<u64> = (lo..lo + 40)
                    .flat_map(|r| extra.key(r).to_vec())
                    .collect();
                let measures: Vec<i64> =
                    (lo..lo + 40).map(|r| extra.states[r].sum).collect();
                ct_cube::Relation::from_fact(extra.attrs.clone(), keys, &measures)
            })
            .collect();

        let stats = run_mixed_refresh(&engine, &probes, &deltas, 3).unwrap();
        assert_eq!(stats.cycles, 3);
        assert_eq!(stats.mismatches, 0, "a reader saw a torn generation");
        // The pacing guarantees every committed generation was pinned.
        assert_eq!(stats.generations_seen, vec![0, 1, 2, 3]);
        assert!(stats.reads >= 9);
    }

    /// The parallel dispatch path must produce the same checksum and row
    /// counts as the sequential loop, and expose scheduler statistics.
    #[test]
    fn parallel_batch_matches_sequential_loop() {
        let w = TpcdWarehouse::new(TpcdConfig { scale_factor: 0.002, seed: 7 });
        let fact = w.generate_fact();
        let setup = paper_configs(&w);
        let mut seq = CubetreeEngine::new(w.catalog().clone(), setup.cubetree.clone()).unwrap();
        seq.load(&fact).unwrap();
        let mut par = CubetreeEngine::new(
            w.catalog().clone(),
            setup.cubetree.clone().with_threads(4),
        )
        .unwrap();
        par.load(&fact).unwrap();

        let a = w.attrs();
        let mut generator =
            QueryGenerator::new(w.catalog(), vec![a.partkey, a.suppkey, a.custkey], 9);
        let queries = generator.batch(40);
        let s1 = run_batch(&seq, &queries).unwrap();
        let s2 = run_batch(&par, &queries).unwrap();
        assert_eq!(s1.checksum, s2.checksum);
        assert_eq!(
            s1.queries.iter().map(|q| q.rows).collect::<Vec<_>>(),
            s2.queries.iter().map(|q| q.rows).collect::<Vec<_>>(),
        );
        assert!(s1.sched.is_none(), "threads=1 must take the sequential path");
        let sched = s2.sched.expect("parallel path must report scheduler stats");
        assert!(sched.groups > 0);
    }
}
