//! # ct-workload — the paper's query workload and measurement harness
//!
//! * [`genq`] — the random slice-query generator of §3.3: uniform over the
//!   lattice views and over each view's query types, excluding no-predicate
//!   queries ("these queries generate a very large output, which dilutes the
//!   actual retrieval cost");
//! * [`runner`] — batch execution with wall-clock *and* simulated-time
//!   accounting, per-window throughput (Figure 13 reports min/max system
//!   throughput), and result checksums so both engines can be verified to
//!   return identical answers;
//! * [`paper`] — the exact configurations of the paper's §3 experiment: the
//!   selected view set `V`, index set `I` for the conventional engine, and
//!   the two extra sort-order replicas of the top view for the Cubetrees;
//! * [`serving`] — closed/open-loop HTTP load generation against a running
//!   ct-server, with coordinated-omission-free latency accounting.

pub mod genq;
pub mod paper;
pub mod runner;
pub mod serving;

pub use genq::QueryGenerator;
pub use paper::{paper_configs, PaperSetup};
pub use runner::{run_batch, run_mixed_refresh, BatchStats, MixedStats};
pub use serving::{run_serving, LoopMode, ServingConfig, ServingStats};
