//! The exact experimental setup of the paper's §3.
//!
//! * `V = {V{psc}, V{ps}, V{c}, V{s}, V{p}, V{none}}` — materialized in both
//!   configurations;
//! * `I = {I{c,s,p}, I{p,c,s}, I{s,p,c}}` — B-tree indexes for the
//!   conventional configuration;
//! * Cubetree replicas of the top view in sort orders matching the index
//!   set: `V{s,c,p}` (sorted p,c,s) and `V{c,p,s}` (sorted s,p,c) — "In
//!   order to compensate for the additional indices that were used by the
//!   conventional relational scheme, we used this replication feature for
//!   the top view" (§3).

use ct_common::{AggFn, ViewDef, ViewId};
use ct_tpcd::TpcdWarehouse;
use cubetree::engine::{ConventionalConfig, CubetreeConfig};

/// Handles to the paper setup's pieces.
pub struct PaperSetup {
    /// The six materialized views, in the paper's benefit order.
    pub views: Vec<ViewDef>,
    /// Conventional-engine configuration (views + index set `I`).
    pub conventional: ConventionalConfig,
    /// Cubetree-engine configuration (views + top-view replicas).
    pub cubetree: CubetreeConfig,
    /// The `ViewId` of the top view `V{partkey,suppkey,custkey}`.
    pub top: ViewId,
}

/// Builds the paper's §3 configurations for a TPC-D warehouse.
pub fn paper_configs(warehouse: &TpcdWarehouse) -> PaperSetup {
    let a = warehouse.attrs();
    let (p, s, c) = (a.partkey, a.suppkey, a.custkey);
    // Paper §3, in decreasing benefit order.
    let views = vec![
        ViewDef::new(0, vec![p, s, c], AggFn::Sum),
        ViewDef::new(1, vec![p, s], AggFn::Sum),
        ViewDef::new(2, vec![c], AggFn::Sum),
        ViewDef::new(3, vec![s], AggFn::Sum),
        ViewDef::new(4, vec![p], AggFn::Sum),
        ViewDef::new(5, vec![], AggFn::Sum),
    ];
    let top = ViewId(0);
    let conventional = ConventionalConfig::new(views.clone())
        .with_index(top, vec![c, s, p])
        .with_index(top, vec![p, c, s])
        .with_index(top, vec![s, p, c]);
    // Replica projections: physical sort order is the *reversed* projection
    // (§2.3), so projection (s,c,p) is sorted by (p,c,s) and (c,p,s) by
    // (s,p,c); the primary (p,s,c) is sorted by (c,s,p). Together the three
    // sort orders match the conventional index set I.
    let cubetree = CubetreeConfig::new(views.clone())
        .with_replica(top, vec![s, c, p])
        .with_replica(top, vec![c, p, s]);
    PaperSetup { views, conventional, cubetree, top }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_tpcd::TpcdConfig;

    #[test]
    fn setup_matches_paper_section_3() {
        let w = TpcdWarehouse::new(TpcdConfig { scale_factor: 0.01, seed: 1 });
        let setup = paper_configs(&w);
        assert_eq!(setup.views.len(), 6);
        let arities: Vec<usize> = setup.views.iter().map(|v| v.arity()).collect();
        assert_eq!(arities, vec![3, 2, 1, 1, 1, 0]);
        assert_eq!(setup.conventional.indexes.len(), 3);
        assert!(setup.conventional.indexes.iter().all(|(v, _)| *v == setup.top));
        assert_eq!(setup.cubetree.replicas.len(), 2);
        // Every index order is a rotation starting with a distinct attribute.
        let firsts: std::collections::BTreeSet<u16> =
            setup.conventional.indexes.iter().map(|(_, o)| o[0].0).collect();
        assert_eq!(firsts.len(), 3);
    }

    #[test]
    fn replica_sort_orders_mirror_index_set() {
        let w = TpcdWarehouse::new(TpcdConfig::default());
        let a = w.attrs();
        let setup = paper_configs(&w);
        // Physical sort order = reversed projection.
        let sort_orders: Vec<Vec<u16>> = std::iter::once(&setup.views[0].projection)
            .chain(setup.cubetree.replicas.iter().map(|(_, proj)| proj))
            .map(|proj| proj.iter().rev().map(|x| x.0).collect())
            .collect();
        let index_orders: Vec<Vec<u16>> = setup
            .conventional
            .indexes
            .iter()
            .map(|(_, o)| o.iter().map(|x| x.0).collect())
            .collect();
        for so in &sort_orders {
            assert!(
                index_orders.contains(so),
                "sort order {so:?} not in index set {index_orders:?}"
            );
        }
        let _ = a;
    }
}
