//! The random slice-query generator (paper §3.3).

use std::collections::HashMap;

use ct_common::{AttrId, Catalog, SliceQuery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Queries per hot pool when skew is enabled: the Zipf draw selects among
/// this many distinct (up to collision) uniformly generated queries.
const HOT_POOL: usize = 64;

/// Pool key for queries drawn over the whole lattice (masks are always
/// `< 2^MAX_DIMS`, so this value never collides with a real node mask).
const WHOLE_LATTICE: usize = usize::MAX;

/// Generates random slice queries over a cube lattice.
///
/// Mirrors the paper's generator: a lattice view is drawn uniformly, then a
/// query type (which subset of the view's attributes is sliced) uniformly,
/// then each sliced attribute gets a uniform constant from its domain.
/// No-predicate types are excluded by default.
///
/// With [`QueryGenerator::with_skew`], draws instead follow a Zipf
/// distribution over a fixed pool of uniformly generated queries — the
/// hot-set repeat pattern of real dashboard traffic. Skew `0` keeps the
/// uniform path byte-identical to a generator built without the knob.
pub struct QueryGenerator {
    base: Vec<AttrId>,
    cards: Vec<u64>,
    include_full_view: bool,
    rng: StdRng,
    skew: f64,
    /// Zipf CDF over pool ranks (empty when skew is 0).
    zipf_cdf: Vec<f64>,
    /// Lazily built hot pools, one per lattice node (plus the
    /// whole-lattice sentinel). Built with the shared RNG, so a seeded
    /// generator stays deterministic.
    hot_pools: HashMap<usize, Vec<SliceQuery>>,
}

impl QueryGenerator {
    /// A generator over the lattice of `base` attributes.
    pub fn new(catalog: &Catalog, base: Vec<AttrId>, seed: u64) -> Self {
        let cards = base.iter().map(|&a| catalog.attr(a).cardinality).collect();
        QueryGenerator {
            base,
            cards,
            include_full_view: false,
            rng: StdRng::seed_from_u64(seed),
            skew: 0.0,
            zipf_cdf: Vec::new(),
            hot_pools: HashMap::new(),
        }
    }

    /// Also generate no-predicate (whole-view) queries.
    pub fn with_full_view_queries(mut self) -> Self {
        self.include_full_view = true;
        self
    }

    /// Draws queries Zipf(`skew`)-distributed over a fixed-size (64) hot
    /// pool of uniform queries: rank `i` is drawn with weight
    /// `1/(i+1)^skew`, so higher skew concentrates traffic on fewer
    /// queries (`1.0` is the classic Zipf of web/OLAP traces). `0.0`
    /// disables the pool entirely — the generator remains byte-identical
    /// to one without the knob, not merely statistically uniform.
    pub fn with_skew(mut self, skew: f64) -> Self {
        assert!(skew >= 0.0 && skew.is_finite(), "skew must be a finite non-negative value");
        self.skew = skew;
        self.zipf_cdf = if skew == 0.0 {
            Vec::new()
        } else {
            let mut total = 0.0;
            (0..HOT_POOL)
                .map(|i| {
                    total += 1.0 / ((i + 1) as f64).powf(skew);
                    total
                })
                .collect()
        };
        self
    }

    /// The non-empty lattice nodes, as attribute lists (the 7 views of the
    /// paper's Figure 12 for a 3-attribute base).
    pub fn nodes(&self) -> Vec<Vec<AttrId>> {
        (1..(1usize << self.base.len())).map(|m| self.node_attrs(m)).collect()
    }

    fn node_attrs(&self, mask: usize) -> Vec<AttrId> {
        (0..self.base.len()).filter(|i| mask & (1 << i) != 0).map(|i| self.base[i]).collect()
    }

    /// The next random query over the whole lattice (Zipf-skewed over a
    /// hot pool when [`QueryGenerator::with_skew`] is set).
    pub fn next_query(&mut self) -> SliceQuery {
        if self.skew != 0.0 {
            return self.skewed_query(WHOLE_LATTICE);
        }
        let mask = self.rng.gen_range(1..(1usize << self.base.len()));
        self.uniform_query_on(mask)
    }

    /// The next random query on one lattice node (given as a bitmask over
    /// the base attributes) — Figure 12 batches 100 queries per node. With
    /// skew, draws come from the node's own hot pool.
    pub fn next_query_on(&mut self, mask: usize) -> SliceQuery {
        if self.skew != 0.0 {
            return self.skewed_query(mask);
        }
        self.uniform_query_on(mask)
    }

    /// A Zipf draw from the pool keyed by `key` (a node mask or
    /// [`WHOLE_LATTICE`]), building the pool on first use.
    fn skewed_query(&mut self, key: usize) -> SliceQuery {
        if !self.hot_pools.contains_key(&key) {
            let pool: Vec<SliceQuery> = (0..HOT_POOL)
                .map(|_| {
                    let mask = if key == WHOLE_LATTICE {
                        self.rng.gen_range(1..(1usize << self.base.len()))
                    } else {
                        key
                    };
                    self.uniform_query_on(mask)
                })
                .collect();
            self.hot_pools.insert(key, pool);
        }
        let rank = self.zipf_rank();
        self.hot_pools[&key][rank].clone()
    }

    /// Inverse-CDF Zipf rank draw. The uniform variate comes from an
    /// integer draw (the vendored RNG has no float ranges).
    fn zipf_rank(&mut self) -> usize {
        let total = *self.zipf_cdf.last().expect("skew enabled");
        let u = self.rng.gen_range(0..u64::MAX) as f64 / u64::MAX as f64 * total;
        self.zipf_cdf.partition_point(|&c| c <= u).min(HOT_POOL - 1)
    }

    fn uniform_query_on(&mut self, mask: usize) -> SliceQuery {
        let attrs: Vec<usize> =
            (0..self.base.len()).filter(|i| mask & (1 << i) != 0).collect();
        let k = attrs.len();
        loop {
            let fix_mask = self.rng.gen_range(0..(1usize << k));
            if fix_mask == 0 && !self.include_full_view && k > 0 {
                continue;
            }
            let mut group_by = Vec::new();
            let mut predicates = Vec::new();
            for (j, &i) in attrs.iter().enumerate() {
                if fix_mask & (1 << j) != 0 {
                    let v = self.rng.gen_range(1..=self.cards[i]);
                    predicates.push((self.base[i], v));
                } else {
                    group_by.push(self.base[i]);
                }
            }
            return SliceQuery::new(group_by, predicates);
        }
    }

    /// A batch of `n` random queries over the whole lattice.
    pub fn batch(&mut self, n: usize) -> Vec<SliceQuery> {
        (0..n).map(|_| self.next_query()).collect()
    }

    /// A batch of `n` random queries on one node.
    pub fn batch_on(&mut self, mask: usize, n: usize) -> Vec<SliceQuery> {
        (0..n).map(|_| self.next_query_on(mask)).collect()
    }

    /// A random *bounded-range* query on one node: one attribute gets an
    /// inclusive range covering roughly `span_frac` of its domain, the rest
    /// are grouped. This exercises the paper's §3.1 remark that "R-trees in
    /// general behave faster in bounded range queries".
    pub fn next_range_query_on(&mut self, mask: usize, span_frac: f64) -> SliceQuery {
        let attrs: Vec<usize> =
            (0..self.base.len()).filter(|i| mask & (1 << i) != 0).collect();
        assert!(!attrs.is_empty(), "range queries need a non-empty node");
        let pick = attrs[self.rng.gen_range(0..attrs.len())];
        let card = self.cards[pick];
        let span = ((card as f64 * span_frac).round() as u64).clamp(1, card);
        let lo = self.rng.gen_range(1..=card - span + 1);
        let hi = lo + span - 1;
        let group_by: Vec<AttrId> =
            attrs.iter().filter(|&&i| i != pick).map(|&i| self.base[i]).collect();
        SliceQuery::new(group_by, Vec::new()).with_range(self.base[pick], lo, hi)
    }

    /// A batch of `n` bounded-range queries on one node.
    pub fn range_batch_on(&mut self, mask: usize, n: usize, span_frac: f64) -> Vec<SliceQuery> {
        (0..n).map(|_| self.next_range_query_on(mask, span_frac)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_common::Catalog;

    fn generator(seed: u64) -> QueryGenerator {
        let mut c = Catalog::new();
        let p = c.add_attr("partkey", 100);
        let s = c.add_attr("suppkey", 10);
        let cu = c.add_attr("custkey", 50);
        QueryGenerator::new(&c, vec![p, s, cu], seed)
    }

    #[test]
    fn seven_nodes_for_three_attrs() {
        let g = generator(1);
        assert_eq!(g.nodes().len(), 7);
    }

    #[test]
    fn no_predicate_queries_excluded_by_default() {
        let mut g = generator(2);
        for q in g.batch(500) {
            assert!(!q.is_full_view(), "unexpected full-view query {q:?}");
        }
    }

    #[test]
    fn full_view_queries_appear_when_enabled() {
        let mut g = generator(3).with_full_view_queries();
        let batch = g.batch(500);
        assert!(batch.iter().any(|q| q.is_full_view()));
    }

    #[test]
    fn values_respect_domains() {
        let mut g = generator(4);
        for q in g.batch(300) {
            for (a, v) in &q.predicates {
                let card = match a.0 {
                    0 => 100,
                    1 => 10,
                    2 => 50,
                    _ => panic!("unknown attr"),
                };
                assert!((1..=card).contains(v));
            }
        }
    }

    #[test]
    fn node_batches_stay_on_node() {
        let mut g = generator(5);
        // mask 0b101 = {partkey, custkey}
        for q in g.batch_on(0b101, 200) {
            let node = q.node();
            assert_eq!(node, vec![AttrId(0), AttrId(2)]);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = generator(7).batch(50);
        let b = generator(7).batch(50);
        assert_eq!(a, b);
        let c = generator(8).batch(50);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_skew_is_byte_identical_to_no_skew() {
        let plain = generator(11).batch(200);
        let skewed = generator(11).with_skew(0.0).batch(200);
        assert_eq!(plain, skewed, "skew=0 must not perturb the uniform stream");
    }

    #[test]
    fn skew_concentrates_repeats() {
        let mut counts: HashMap<String, usize> = HashMap::new();
        let mut g = generator(12).with_skew(1.0);
        const N: usize = 2000;
        for q in g.batch(N) {
            *counts.entry(format!("{q:?}")).or_default() += 1;
        }
        assert!(counts.len() <= HOT_POOL, "draws stay inside the hot pool");
        let top = counts.values().copied().max().unwrap();
        // Zipf(1) over 64 ranks puts ~21% of mass on rank 0; a uniform
        // draw over the pool would give ~1.6%. Split the difference.
        assert!(top * 10 >= N, "hottest query should absorb ≥10% of draws, got {top}/{N}");
        // It is still a mix, not a single query.
        assert!(counts.len() >= 8, "expected a spread of hot queries, got {}", counts.len());
    }

    #[test]
    fn skewed_node_draws_stay_on_node() {
        let mut g = generator(13).with_skew(1.2);
        for _ in 0..200 {
            let q = g.next_query_on(0b101);
            assert_eq!(q.node(), vec![AttrId(0), AttrId(2)]);
        }
    }

    #[test]
    fn skew_is_deterministic_under_seed() {
        let a = generator(14).with_skew(0.8).batch(100);
        let b = generator(14).with_skew(0.8).batch(100);
        assert_eq!(a, b);
    }

    #[test]
    fn all_query_types_eventually_appear() {
        let mut g = generator(9);
        let mut seen = std::collections::HashSet::new();
        for q in g.batch(2000) {
            let node: Vec<u16> = q.node().iter().map(|a| a.0).collect();
            let fixed: Vec<u16> = {
                let mut f: Vec<u16> = q.predicates.iter().map(|(a, _)| a.0).collect();
                f.sort();
                f
            };
            seen.insert((node, fixed));
        }
        // 27 total types minus 7 excluded no-predicate types minus the
        // `none` node's single type (the generator draws non-empty nodes).
        assert_eq!(seen.len(), 19);
    }
}

#[cfg(test)]
mod range_tests {
    use super::*;
    use ct_common::Catalog;

    fn generator(seed: u64) -> QueryGenerator {
        let mut c = Catalog::new();
        let p = c.add_attr("partkey", 100);
        let s = c.add_attr("suppkey", 10);
        let cu = c.add_attr("custkey", 50);
        QueryGenerator::new(&c, vec![p, s, cu], seed)
    }

    #[test]
    fn range_queries_have_one_range_and_rest_grouped() {
        let mut g = generator(21);
        for q in g.range_batch_on(0b111, 100, 0.25) {
            assert_eq!(q.ranges.len(), 1);
            assert!(q.predicates.is_empty());
            assert_eq!(q.group_by.len(), 2);
            let (_, lo, hi) = q.ranges[0];
            assert!(lo <= hi);
        }
    }

    #[test]
    fn range_span_respects_fraction_and_domain() {
        let mut g = generator(22);
        for q in g.range_batch_on(0b001, 200, 0.1) {
            let (attr, lo, hi) = q.ranges[0];
            assert_eq!(attr, AttrId(0));
            assert!(lo >= 1 && hi <= 100);
            assert_eq!(hi - lo + 1, 10, "10% of partkey's 100-value domain");
        }
    }

    #[test]
    fn full_span_covers_domain() {
        let mut g = generator(23);
        let q = g.next_range_query_on(0b010, 1.0);
        assert_eq!(q.ranges[0].1, 1);
        assert_eq!(q.ranges[0].2, 10);
    }
}
