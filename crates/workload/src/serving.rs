//! Closed- and open-loop load generation against a running ct-server.
//!
//! Each simulated client owns one keep-alive HTTP/1.1 connection over
//! [`std::net::TcpStream`] and its own deterministic query stream. A
//! *closed-loop* client sends its next request as soon as the previous
//! answer arrives (throughput adapts to the server); an *open-loop* client
//! fires at a fixed arrival rate and measures latency from the *intended*
//! send time, so queueing delay is charged to the server rather than
//! silently absorbed (no coordinated omission).
//!
//! The generator deliberately does not depend on the `ct-server` crate —
//! it speaks the wire protocol, which keeps the crate graph acyclic and
//! means the load generator exercises the same path a real client would.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use ct_common::stats::percentile_nearest_rank;
use ct_common::{AttrId, Catalog, CtError, Result, SliceQuery};

use crate::genq::QueryGenerator;

/// Arrival discipline of the simulated clients.
#[derive(Clone, Copy, Debug)]
pub enum LoopMode {
    /// Send the next request when the previous answer returns.
    Closed,
    /// Fire at a fixed aggregate arrival rate (queries/second across all
    /// clients), measuring latency from the intended send time.
    Open {
        /// Aggregate arrival rate in queries per second.
        rate_qps: f64,
    },
}

/// Load-generator configuration.
#[derive(Clone, Debug)]
pub struct ServingConfig {
    /// Concurrent clients (threads, one connection each).
    pub clients: usize,
    /// Requests each client sends.
    pub requests_per_client: usize,
    /// Arrival discipline.
    pub mode: LoopMode,
    /// Fraction of requests that drill into the top lattice node (all base
    /// attributes) instead of a random slice elsewhere in the lattice.
    pub drilldown_frac: f64,
    /// Fraction of requests asking for CSV instead of JSON.
    pub csv_frac: f64,
    /// Fraction of requests that `POST /ingest` a batch of fresh fact rows
    /// instead of querying (`0.0` = pure read workload).
    pub ingest_frac: f64,
    /// Rows per ingested batch.
    pub ingest_rows: usize,
    /// Zipf skew of each client's query stream over its hot pool
    /// ([`QueryGenerator::with_skew`]); `0.0` keeps the historical uniform
    /// stream byte-identical.
    pub skew: f64,
    /// Workload seed; client `i` streams queries from `seed + i`.
    pub seed: u64,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig {
            clients: 4,
            requests_per_client: 50,
            mode: LoopMode::Closed,
            drilldown_frac: 0.5,
            csv_frac: 0.25,
            ingest_frac: 0.0,
            ingest_rows: 8,
            skew: 0.0,
            seed: 42,
        }
    }
}

/// Aggregate results of one serving run.
#[derive(Clone, Debug, Default)]
pub struct ServingStats {
    /// Requests sent.
    pub requests: u64,
    /// `200` answers.
    pub ok: u64,
    /// `429` admission refusals.
    pub rejected: u64,
    /// Transport failures and non-200/429 statuses.
    pub errors: u64,
    /// Fact rows acknowledged by `POST /ingest` (`200` answers only).
    pub ingested_rows: u64,
    /// Wall-clock duration of the whole run in seconds.
    pub wall_secs: f64,
    /// Per-success latency in seconds (closed: send→answer; open:
    /// intended-send→answer).
    pub latencies: Vec<f64>,
}

impl ServingStats {
    /// Successful answers per wall-clock second.
    pub fn qps(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.ok as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// The `p`-th latency percentile in seconds (nearest rank).
    pub fn percentile(&self, p: f64) -> f64 {
        percentile_nearest_rank(self.latencies.iter().copied(), p)
    }
}

/// Renders a slice query as a `POST /query` JSON body. Attribute names are
/// JSON-safe by construction (schema identifiers), so plain quoting works.
pub fn query_body(catalog: &Catalog, q: &SliceQuery, csv: bool) -> String {
    let name = |a: &AttrId| format!("\"{}\"", catalog.attr(*a).name);
    let group: Vec<String> = q.group_by.iter().map(&name).collect();
    let mut body = format!("{{\"group_by\": [{}]", group.join(", "));
    if !q.predicates.is_empty() {
        let preds: Vec<String> =
            q.predicates.iter().map(|(a, v)| format!("{}: {v}", name(a))).collect();
        body.push_str(&format!(", \"where\": {{{}}}", preds.join(", ")));
    }
    if !q.ranges.is_empty() {
        let ranges: Vec<String> =
            q.ranges.iter().map(|(a, lo, hi)| format!("{}: [{lo}, {hi}]", name(a))).collect();
        body.push_str(&format!(", \"ranges\": {{{}}}", ranges.join(", ")));
    }
    if csv {
        body.push_str(", \"format\": \"csv\"");
    }
    body.push('}');
    body
}

/// Renders a deterministic batch of fresh fact rows as a `POST /ingest`
/// (or `/refresh`) JSON body. Keys are drawn uniformly from each
/// attribute's domain off the caller's RNG state; measures are small
/// positive integers.
pub fn ingest_body(
    catalog: &Catalog,
    base: &[AttrId],
    rows: usize,
    rng: &mut u64,
) -> String {
    let next = |rng: &mut u64| {
        *rng ^= *rng << 13;
        *rng ^= *rng >> 7;
        *rng ^= *rng << 17;
        *rng
    };
    let names: Vec<String> =
        base.iter().map(|a| format!("\"{}\"", catalog.attr(*a).name)).collect();
    let mut body = format!("{{\"attrs\": [{}], \"rows\": [", names.join(", "));
    for r in 0..rows {
        if r > 0 {
            body.push_str(", ");
        }
        body.push('[');
        for a in base {
            let card = catalog.attr(*a).cardinality;
            body.push_str(&(next(rng) % card + 1).to_string());
            body.push_str(", ");
        }
        body.push_str(&(next(rng) % 50 + 1).to_string());
        body.push(']');
    }
    body.push_str("]}");
    body
}

/// One minimal HTTP/1.1 client connection (keep-alive, `Content-Length`
/// framing only — exactly what ct-server speaks).
pub struct HttpClient {
    reader: BufReader<TcpStream>,
}

/// Status code and body of one exchange.
#[derive(Debug)]
pub struct HttpReply {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: Vec<u8>,
    /// Response headers (lower-cased names).
    pub headers: Vec<(String, String)>,
}

impl HttpReply {
    /// First header value by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

impl HttpClient {
    /// Connects to the server.
    ///
    /// # Errors
    /// Propagates the connect failure.
    pub fn connect(addr: &str) -> Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(HttpClient { reader: BufReader::new(stream) })
    }

    /// Sends one request and reads the reply.
    ///
    /// # Errors
    /// [`CtError::Io`] on transport failure, [`CtError::Corrupt`] on a
    /// reply the framing parser cannot make sense of.
    pub fn request(&mut self, method: &str, path: &str, body: &str) -> Result<HttpReply> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: ct-server\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        let stream = self.reader.get_mut();
        stream.write_all(head.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        stream.flush()?;
        self.read_reply()
    }

    fn read_line(&mut self) -> Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(CtError::corrupt("server closed connection mid-reply"));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    fn read_reply(&mut self) -> Result<HttpReply> {
        let status_line = self.read_line()?;
        let status = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| CtError::corrupt(format!("bad status line {status_line:?}")))?;
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim().to_string();
                if name == "content-length" {
                    content_length = value
                        .parse()
                        .map_err(|_| CtError::corrupt(format!("bad content-length {value:?}")))?;
                }
                headers.push((name, value));
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok(HttpReply { status, body, headers })
    }
}

/// Runs the configured client fleet against `addr` and aggregates stats.
///
/// `base` is the base-attribute set queries draw from (the same set the
/// engine's views were selected over).
///
/// # Errors
/// Fails only if a client thread cannot connect at start-up; per-request
/// transport errors are counted in [`ServingStats::errors`].
pub fn run_serving(
    addr: &str,
    catalog: &Catalog,
    base: Vec<AttrId>,
    cfg: &ServingConfig,
) -> Result<ServingStats> {
    let started = Instant::now();
    let per_client_interval = match cfg.mode {
        LoopMode::Closed => None,
        LoopMode::Open { rate_qps } => {
            let per_client = (rate_qps / cfg.clients.max(1) as f64).max(1e-6);
            Some(Duration::from_secs_f64(1.0 / per_client))
        }
    };
    let mut stats = ServingStats::default();
    std::thread::scope(|scope| -> Result<()> {
        let mut handles = Vec::new();
        for client in 0..cfg.clients {
            let base = base.clone();
            handles.push(scope.spawn(move || -> Result<ServingStats> {
                client_loop(addr, catalog, base, cfg, client, per_client_interval)
            }));
        }
        for h in handles {
            let client_stats = h.join().expect("client thread panicked")?;
            stats.requests += client_stats.requests;
            stats.ok += client_stats.ok;
            stats.rejected += client_stats.rejected;
            stats.errors += client_stats.errors;
            stats.ingested_rows += client_stats.ingested_rows;
            stats.latencies.extend(client_stats.latencies);
        }
        Ok(())
    })?;
    stats.wall_secs = started.elapsed().as_secs_f64();
    Ok(stats)
}

fn client_loop(
    addr: &str,
    catalog: &Catalog,
    base: Vec<AttrId>,
    cfg: &ServingConfig,
    client: usize,
    interval: Option<Duration>,
) -> Result<ServingStats> {
    let mut stats = ServingStats::default();
    let mut client_conn = HttpClient::connect(addr)?;
    let top_mask = (1usize << base.len()) - 1;
    let base_attrs = base.clone();
    let mut generator =
        QueryGenerator::new(catalog, base, cfg.seed + client as u64).with_skew(cfg.skew);
    // A cheap deterministic stream for the drilldown/CSV mix decisions,
    // independent of the query stream so the mix is stable per request
    // index whatever the queries are.
    let mut mix = cfg.seed ^ (0x9E3779B97F4A7C15u64.wrapping_mul(client as u64 + 1));
    let mut next_mix = move || {
        mix ^= mix << 13;
        mix ^= mix >> 7;
        mix ^= mix << 17;
        (mix >> 11) as f64 / (1u64 << 53) as f64
    };
    // Separate stream for ingest row keys so adding writes to the mix does
    // not perturb the query stream at a given request index.
    let mut ingest_rng = cfg.seed ^ 0xA5A5_A5A5_A5A5_A5A5 ^ ((client as u64) << 32) | 1;
    let started = Instant::now();
    for i in 0..cfg.requests_per_client {
        // Guarded draw: a pure read workload (`ingest_frac` 0) consumes no
        // extra mix state, so its query stream is unchanged from before
        // ingestion existed.
        let ingesting = cfg.ingest_frac > 0.0 && next_mix() < cfg.ingest_frac;
        let (path, body, batch_rows) = if ingesting {
            let body = ingest_body(catalog, &base_attrs, cfg.ingest_rows, &mut ingest_rng);
            ("/ingest", body, cfg.ingest_rows as u64)
        } else {
            let q = if next_mix() < cfg.drilldown_frac {
                generator.next_query_on(top_mask)
            } else {
                generator.next_query()
            };
            let csv = next_mix() < cfg.csv_frac;
            ("/query", query_body(catalog, &q, csv), 0)
        };
        // Open loop: wait for the scheduled arrival; latency clock starts
        // at the *intended* send time even if the previous answer was late.
        let reference = match interval {
            Some(gap) => {
                let due = gap * i as u32;
                if let Some(sleep) = due.checked_sub(started.elapsed()) {
                    std::thread::sleep(sleep);
                }
                started + due
            }
            None => Instant::now(),
        };
        stats.requests += 1;
        match client_conn.request("POST", path, &body) {
            Ok(reply) if reply.status == 200 => {
                stats.ok += 1;
                stats.ingested_rows += batch_rows;
                stats.latencies.push(reference.elapsed().as_secs_f64());
            }
            Ok(reply) if reply.status == 429 => stats.rejected += 1,
            Ok(_) => stats.errors += 1,
            Err(_) => {
                stats.errors += 1;
                // One reconnect attempt; a second failure ends the client.
                match HttpClient::connect(addr) {
                    Ok(fresh) => client_conn = fresh,
                    Err(_) => break,
                }
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> (Catalog, Vec<AttrId>) {
        let mut c = Catalog::new();
        let p = c.add_attr("partkey", 10);
        let s = c.add_attr("suppkey", 5);
        (c, vec![p, s])
    }

    #[test]
    fn query_body_renders_every_clause() {
        let (c, base) = catalog();
        let q = SliceQuery::new(vec![base[1]], vec![(base[0], 3)]);
        assert_eq!(
            query_body(&c, &q, false),
            r#"{"group_by": ["suppkey"], "where": {"partkey": 3}}"#
        );
        let ranged = SliceQuery::new(vec![base[1]], vec![]).with_range(base[0], 2, 5);
        assert_eq!(
            query_body(&c, &ranged, true),
            r#"{"group_by": ["suppkey"], "ranges": {"partkey": [2, 5]}, "format": "csv"}"#
        );
    }

    #[test]
    fn ingest_body_is_deterministic_and_in_domain() {
        let (c, base) = catalog();
        let mut rng = 7;
        let body = ingest_body(&c, &base, 3, &mut rng);
        let mut rng2 = 7;
        assert_eq!(body, ingest_body(&c, &base, 3, &mut rng2), "same seed, same batch");
        let mut rng3 = 8;
        assert_ne!(body, ingest_body(&c, &base, 3, &mut rng3), "seed changes the batch");
        assert!(body.starts_with(r#"{"attrs": ["partkey", "suppkey"], "rows": ["#));
        // Every row is [p, s, m] with p in 1..=10, s in 1..=5, m in 1..=50.
        let rows: Vec<Vec<u64>> = body
            .split('[')
            .skip(2)
            .map(|r| {
                r.split(|ch: char| !ch.is_ascii_digit())
                    .filter(|t| !t.is_empty())
                    .map(|t| t.parse().unwrap())
                    .collect()
            })
            .filter(|r: &Vec<u64>| !r.is_empty())
            .collect();
        assert_eq!(rows.len(), 3);
        for row in rows {
            assert_eq!(row.len(), 3);
            assert!((1..=10).contains(&row[0]) && (1..=5).contains(&row[1]));
            assert!((1..=50).contains(&row[2]));
        }
    }

    #[test]
    fn stats_aggregate_and_percentiles() {
        let stats = ServingStats {
            requests: 4,
            ok: 4,
            rejected: 0,
            errors: 0,
            ingested_rows: 0,
            wall_secs: 2.0,
            latencies: vec![0.004, 0.001, 0.003, 0.002],
        };
        assert_eq!(stats.qps(), 2.0);
        assert_eq!(stats.percentile(50.0), 0.002);
        assert_eq!(stats.percentile(100.0), 0.004);
        assert_eq!(ServingStats::default().qps(), 0.0);
        assert_eq!(ServingStats::default().percentile(99.0), 0.0);
    }
}
