//! Bottom-up bulk loading ("packing") of an R-tree from a sorted stream.
//!
//! The packing algorithm is the \[RL85\] packed R-tree adapted per the paper:
//! the input stream is sorted by the `x_d, …, x_1` packing order (§2.3),
//! leaves are filled to capacity and written in one sequential pass, then
//! each upper level is built from the level below, also sequentially. The
//! builder *enforces* the two invariants the Cubetree organization depends
//! on:
//!
//! 1. input order: points must arrive in non-decreasing packed order, with no
//!    duplicate (view, point) pairs — duplicates must have been aggregated
//!    upstream;
//! 2. view contiguity: once the stream moves past a view, that view may not
//!    reappear (each view owns "a distinct continuous string of leaf-nodes").

use crate::node::{
    internal_capacity, InternalRNode, LeafEncoder, TreeMeta, ViewExtent, ViewInfo, NO_LEAF,
};
use crate::tree::PackedRTree;
use ct_common::{AggState, CtError, Point, Rect, Result};
use ct_storage::{BufferPool, FileId, PageId};
use std::collections::HashMap;
use std::sync::Arc;

/// Physical leaf encoding.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LeafFormat {
    /// The paper's compression (§2.4): store only the view's `arity`
    /// coordinates as fixed-width words — the zero padding of the valid
    /// mapping is never written. This is the default.
    #[default]
    ZeroElided,
    /// Zero elision **plus** per-column delta varints — a modern extension
    /// measured in the compression ablation.
    Compressed,
    /// Fixed-width entries including padding zeros (ablation baseline — what
    /// a naive R-tree would store).
    Raw,
}

impl LeafFormat {
    fn code(self) -> u8 {
        match self {
            LeafFormat::Compressed => 0,
            LeafFormat::Raw => 1,
            LeafFormat::ZeroElided => 2,
        }
    }
}

/// The total order the packer expects its input in.
///
/// The paper packs in the low-coordinate sort (`x_d, …, x_1`) and explicitly
/// *rejects* space-filling curves (§2.4): the low-sort keeps every view in a
/// contiguous leaf run and makes merge-pack a linear merge. The Morton
/// (z-order) alternative is kept for the ablation benchmark that quantifies
/// that design choice on single-view trees.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PackOrder {
    /// The paper's `x_d, …, x_1` sort ([`ct_common::Point::packed_cmp`]).
    #[default]
    PackedLowSort,
    /// Z-order (bit-interleaved) curve order. Only valid for single-view
    /// trees — interleaving would destroy view contiguity, which is exactly
    /// the paper's argument against it. Trees packed this way cannot be
    /// merge-packed.
    Morton,
}

impl PackOrder {
    /// Stable byte tag stored in the tree meta page.
    pub fn code(self) -> u8 {
        match self {
            PackOrder::PackedLowSort => 0,
            PackOrder::Morton => 1,
        }
    }

    /// Compares two points under this order.
    pub fn cmp_points(self, a: &Point, b: &Point) -> std::cmp::Ordering {
        match self {
            PackOrder::PackedLowSort => a.packed_cmp(b),
            PackOrder::Morton => morton_cmp(a, b),
        }
    }
}

/// Chan's most-significant-differing-bit comparator for z-order: the point
/// ordering follows the Morton (bit-interleaved) curve without materializing
/// interleaved keys.
pub fn morton_cmp(a: &Point, b: &Point) -> std::cmp::Ordering {
    debug_assert_eq!(a.dims(), b.dims());
    let mut msd = 0usize;
    let mut max_xor = 0u64;
    for i in 0..a.dims() {
        let x = a.coord(i) ^ b.coord(i);
        if less_msb(max_xor, x) {
            msd = i;
            max_xor = x;
        }
    }
    a.coord(msd).cmp(&b.coord(msd))
}

#[inline]
fn less_msb(x: u64, y: u64) -> bool {
    x < y && x < (x ^ y)
}

/// Streaming packer for one R-tree.
pub struct TreeBuilder {
    pool: Arc<BufferPool>,
    fid: FileId,
    dims: usize,
    format: LeafFormat,
    order: PackOrder,
    views: Vec<(ViewInfo, ViewExtent)>,
    view_slot: HashMap<u32, usize>,
    /// Views whose contiguous run has ended.
    done: Vec<bool>,
    cur_view: Option<usize>,
    enc: LeafEncoder,
    cur_mbr: Rect,
    /// Sealed-but-unwritten previous leaf (waiting for its `next` pointer).
    pending: Option<(PageId, LeafEncoder, Rect)>,
    level0: Vec<(Rect, u64)>,
    last_point: Option<(Point, u32)>,
    entry_count: u64,
    first_leaf: u64,
    agg_scratch: Vec<u64>,
}

impl TreeBuilder {
    /// Starts a builder for a `dims`-dimensional tree storing `views`.
    ///
    /// # Panics
    /// Panics if a view's arity exceeds `dims` or views repeat.
    pub fn new(
        pool: Arc<BufferPool>,
        fid: FileId,
        dims: usize,
        views: Vec<ViewInfo>,
        format: LeafFormat,
    ) -> Result<Self> {
        Self::with_order(pool, fid, dims, views, format, PackOrder::PackedLowSort)
    }

    /// Like [`TreeBuilder::new`] with an explicit input order (the Morton
    /// ablation). Morton order requires a single-view tree.
    pub fn with_order(
        pool: Arc<BufferPool>,
        fid: FileId,
        dims: usize,
        views: Vec<ViewInfo>,
        format: LeafFormat,
        order: PackOrder,
    ) -> Result<Self> {
        assert!((1..=ct_common::MAX_DIMS).contains(&dims));
        if order == PackOrder::Morton && views.len() > 1 {
            return Err(CtError::invalid(
                "Morton packing interleaves views and is limited to single-view trees                  (the paper's argument against space-filling curves, §2.4)",
            ));
        }
        let meta = pool.new_page(fid)?;
        debug_assert_eq!(meta, PageId(0));
        let mut view_slot = HashMap::new();
        for (i, v) in views.iter().enumerate() {
            assert!(v.arity as usize <= dims, "view arity exceeds tree dims");
            assert!(view_slot.insert(v.view, i).is_none(), "duplicate view in tree");
        }
        let done = vec![false; views.len()];
        Ok(TreeBuilder {
            pool,
            fid,
            dims,
            format,
            order,
            views: views.into_iter().map(|v| (v, ViewExtent::default())).collect(),
            view_slot,
            done,
            cur_view: None,
            enc: LeafEncoder::new(format.code(), 0, 0, 0, dims),
            cur_mbr: Rect::empty(dims),
            pending: None,
            level0: Vec::new(),
            last_point: None,
            entry_count: 0,
            first_leaf: NO_LEAF,
            agg_scratch: Vec::new(),
        })
    }

    /// Appends one `(view, point, aggregate)` entry.
    ///
    /// # Errors
    /// [`CtError::InvalidArgument`] if the stream violates the packing order,
    /// duplicates a point, breaks view contiguity, or the point's padding
    /// coordinates are non-zero.
    pub fn push(&mut self, view: u32, point: Point, state: &AggState) -> Result<()> {
        let slot = *self
            .view_slot
            .get(&view)
            .ok_or_else(|| CtError::invalid(format!("view {view} not declared for this tree")))?;
        let info = self.views[slot].0;
        if point.dims() != self.dims {
            return Err(CtError::invalid("point dimensionality mismatch"));
        }
        if point.mapped_arity() > info.arity as usize {
            return Err(CtError::invalid(format!(
                "point {point:?} has non-zero padding beyond arity {}",
                info.arity
            )));
        }
        // Global packing order, including duplicate detection.
        if let Some((last, last_view)) = &self.last_point {
            match self.order.cmp_points(last, &point) {
                std::cmp::Ordering::Greater => {
                    return Err(CtError::invalid(format!(
                        "input not in packed order: {last:?} then {point:?}"
                    )))
                }
                std::cmp::Ordering::Equal if *last_view == view => {
                    return Err(CtError::invalid(format!(
                        "duplicate point {point:?} for view {view}; aggregate upstream"
                    )))
                }
                _ => {}
            }
        }
        // View contiguity.
        match self.cur_view {
            Some(cur) if cur == slot => {}
            other => {
                if self.done[slot] {
                    return Err(CtError::invalid(format!(
                        "view {view} reappeared after its run ended"
                    )));
                }
                if let Some(prev) = other {
                    self.done[prev] = true;
                    self.seal_leaf()?;
                }
                self.cur_view = Some(slot);
                self.enc =
                    LeafEncoder::new(self.format.code(), view, info.arity as usize, info.agg_width(), self.dims);
            }
        }
        if !self.enc.fits_one_more() {
            self.seal_leaf()?;
            self.enc =
                LeafEncoder::new(self.format.code(), view, info.arity as usize, info.agg_width(), self.dims);
        }
        self.agg_scratch.clear();
        state.encode(info.agg, &mut self.agg_scratch);
        let coords = &point.coords()[..info.arity as usize];
        self.enc.push(coords, &self.agg_scratch);
        self.cur_mbr.expand_point(&point);
        self.entry_count += 1;
        self.views[slot].1.entries += 1;
        self.last_point = Some((point, view));
        Ok(())
    }

    /// Seals the current leaf: allocates its page, links the previous leaf's
    /// `next` pointer to it, and records its MBR for the upper levels.
    fn seal_leaf(&mut self) -> Result<()> {
        if self.enc.is_empty() {
            return Ok(());
        }
        let pid = self.pool.new_page(self.fid)?;
        if self.first_leaf == NO_LEAF {
            self.first_leaf = pid.0;
        }
        // Record the per-view extent. Page 0 is always the meta page, so a
        // zero `first_leaf` means "not set yet".
        let slot = self
            .cur_view
            .ok_or_else(|| CtError::invalid("sealing a leaf without a current view"))?;
        let ext = &mut self.views[slot].1;
        if ext.first_leaf == 0 {
            ext.first_leaf = pid.0;
        }
        ext.last_leaf = pid.0;
        // Write out the *previous* leaf now that its successor is known.
        let enc = std::mem::replace(
            &mut self.enc,
            LeafEncoder::new(self.format.code(), 0, 0, 0, self.dims),
        );
        let mbr = std::mem::replace(&mut self.cur_mbr, Rect::empty(self.dims));
        if let Some((prev_pid, prev_enc, prev_mbr)) = self.pending.take() {
            self.pool.with_page_mut(self.fid, prev_pid, |p| prev_enc.write(p, pid.0))?;
            self.level0.push((prev_mbr, prev_pid.0));
        }
        self.pending = Some((pid, enc, mbr));
        Ok(())
    }

    /// Finishes the pack: flushes the last leaf, builds the internal levels
    /// bottom-up, writes the meta page and returns the finished tree.
    pub fn finish(mut self) -> Result<PackedRTree> {
        if !self.enc.is_empty() {
            self.seal_leaf()?;
        }
        if let Some((pid, enc, mbr)) = self.pending.take() {
            self.pool.with_page_mut(self.fid, pid, |p| enc.write(p, NO_LEAF))?;
            self.level0.push((mbr, pid.0));
        }
        if self.level0.is_empty() {
            // Empty tree: a single empty leaf as root.
            let pid = self.pool.new_page(self.fid)?;
            let enc = LeafEncoder::new(self.format.code(), u32::MAX, 0, 0, self.dims);
            self.pool.with_page_mut(self.fid, pid, |p| enc.write(p, NO_LEAF))?;
            self.level0.push((Rect::empty(self.dims), pid.0));
            self.first_leaf = pid.0;
        }
        let leaf_count = self.level0.len() as u64;
        let cap = internal_capacity(self.dims);
        let mut level = std::mem::take(&mut self.level0);
        let mut height = 1u32;
        while level.len() > 1 {
            height += 1;
            let mut next = Vec::with_capacity(level.len() / cap + 1);
            for chunk in level.chunks(cap) {
                let node = InternalRNode { entries: chunk.to_vec() };
                let mut mbr = Rect::empty(self.dims);
                for (r, _) in chunk {
                    if !r.is_empty() {
                        mbr.expand(r);
                    }
                }
                let pid = self.pool.new_page(self.fid)?;
                self.pool.with_page_mut(self.fid, pid, |p| node.write(p, self.dims))?;
                next.push((mbr, pid.0));
            }
            level = next;
        }
        let meta = TreeMeta {
            dims: self.dims,
            order: self.order.code(),
            root: level[0].1,
            height,
            leaf_count,
            entry_count: self.entry_count,
            first_leaf: self.first_leaf,
            views: self.views.clone(),
        };
        self.pool.with_page_mut(self.fid, PageId(0), |p| meta.write(p))?;
        // Pack metrics (inert when the pool's recorder is disabled). Once per
        // finished tree, so the one-shot registry-locking calls are fine.
        let recorder = self.pool.recorder();
        recorder.add("rtree.pack.trees", 1);
        recorder.add("rtree.pack.entries", self.entry_count);
        recorder.add("rtree.pack.leaves", leaf_count);
        recorder.observe("rtree.pack.leaves_per_tree", leaf_count);
        PackedRTree::from_parts(self.pool.clone(), self.fid, meta)
    }

    /// Declared view infos (for callers that build merge streams).
    pub fn view_infos(&self) -> Vec<ViewInfo> {
        self.views.iter().map(|(v, _)| *v).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_common::{AggFn, COORD_MAX};
    use ct_storage::StorageEnv;

    /// Reference Morton key by explicit bit interleaving (16 bits/dim).
    fn morton_key(coords: &[u64]) -> u64 {
        let mut key = 0u64;
        for bit in (0..16).rev() {
            for &c in coords {
                key = (key << 1) | ((c >> bit) & 1);
            }
        }
        key
    }

    #[test]
    fn morton_cmp_matches_interleaved_keys() {
        let pts: Vec<Point> = (0..200u64)
            .map(|i| {
                let x = (i * 7919) % 101 + 1;
                let y = (i * 104729) % 97 + 1;
                Point::new(&[x, y], 2)
            })
            .collect();
        for a in pts.iter().take(40) {
            for b in pts.iter().take(40) {
                let expect = morton_key(a.coords()).cmp(&morton_key(b.coords()));
                assert_eq!(morton_cmp(a, b), expect, "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn morton_packed_tree_answers_like_low_sort() {
        let env = StorageEnv::new("morton-build").unwrap();
        let view = ViewInfo { view: 1, arity: 2, agg: AggFn::Sum };
        // 64x64 grid of points.
        let mut pts: Vec<Point> = Vec::new();
        for y in 1..=64u64 {
            for x in 1..=64u64 {
                pts.push(Point::new(&[x, y], 2));
            }
        }
        // Low-sort tree.
        let fid1 = env.create_file("low").unwrap();
        let mut low = TreeBuilder::new(
            env.pool().clone(),
            fid1,
            2,
            vec![view],
            LeafFormat::ZeroElided,
        )
        .unwrap();
        let mut sorted = pts.clone();
        sorted.sort_by(|a, b| a.packed_cmp(b));
        for p in &sorted {
            low.push(1, *p, &ct_common::AggState::from_measure((p.coord(0) + p.coord(1)) as i64))
                .unwrap();
        }
        let low = low.finish().unwrap();
        // Morton tree.
        let fid2 = env.create_file("morton").unwrap();
        let mut mz = TreeBuilder::with_order(
            env.pool().clone(),
            fid2,
            2,
            vec![view],
            LeafFormat::ZeroElided,
            PackOrder::Morton,
        )
        .unwrap();
        let mut zsorted = pts.clone();
        zsorted.sort_by(morton_cmp);
        for p in &zsorted {
            mz.push(1, *p, &ct_common::AggState::from_measure((p.coord(0) + p.coord(1)) as i64))
                .unwrap();
        }
        let mz = mz.finish().unwrap();
        assert_eq!(mz.pack_order_code(), 1);

        // Both trees answer every slice identically (order-insensitive).
        for region in [
            Rect::new(&[7, 1], &[7, COORD_MAX]),
            Rect::new(&[1, 33], &[COORD_MAX, 33]),
            Rect::new(&[10, 10], &[20, 20]),
        ] {
            let collect = |t: &crate::tree::PackedRTree| {
                let mut out = Vec::new();
                t.search(&region, |_, p, s| {
                    out.push((p.coord(0), p.coord(1), s.sum));
                    true
                })
                .unwrap();
                out.sort();
                out
            };
            assert_eq!(collect(&low), collect(&mz));
        }
    }

    #[test]
    fn morton_rejects_multi_view_trees_and_merge() {
        let env = StorageEnv::new("morton-reject").unwrap();
        let fid = env.create_file("multi").unwrap();
        let views = vec![
            ViewInfo { view: 1, arity: 1, agg: AggFn::Sum },
            ViewInfo { view: 2, arity: 2, agg: AggFn::Sum },
        ];
        assert!(TreeBuilder::with_order(
            env.pool().clone(),
            fid,
            2,
            views,
            LeafFormat::ZeroElided,
            PackOrder::Morton,
        )
        .is_err());

        // Single-view Morton tree refuses to merge-pack.
        let fid2 = env.create_file("single").unwrap();
        let mut b = TreeBuilder::with_order(
            env.pool().clone(),
            fid2,
            2,
            vec![ViewInfo { view: 1, arity: 2, agg: AggFn::Sum }],
            LeafFormat::ZeroElided,
            PackOrder::Morton,
        )
        .unwrap();
        b.push(1, Point::new(&[1, 1], 2), &ct_common::AggState::from_measure(1)).unwrap();
        let t = b.finish().unwrap();
        let fid3 = env.create_file("merged").unwrap();
        let mut delta = crate::merge::VecStream::new(vec![]);
        assert!(crate::merge::merge_pack(
            env.pool().clone(),
            &t,
            &mut delta,
            fid3,
            vec![ViewInfo { view: 1, arity: 2, agg: AggFn::Sum }],
            LeafFormat::ZeroElided,
        )
        .is_err());
    }

    #[test]
    fn less_msb_basics() {
        assert!(less_msb(0, 1));
        assert!(less_msb(1, 2));
        assert!(!less_msb(2, 1));
        assert!(!less_msb(3, 2), "same msb");
        assert!(less_msb(0b0111, 0b1000));
    }

    #[test]
    fn builder_and_tree_cross_thread_contract() {
        // The parallel forest pipeline moves builders into per-tree worker
        // threads and shares finished trees across them; both must stay Send
        // (and the read-only tree Sync). A compile-time contract check.
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<TreeBuilder>();
        assert_send::<crate::tree::PackedRTree>();
        assert_sync::<crate::tree::PackedRTree>();
    }
}
