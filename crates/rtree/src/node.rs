//! On-page layouts for the packed R-tree.
//!
//! ```text
//! meta page (page 0):
//!   0  u32 magic          4  u8 dims        5  u8 pack order
//!   6  u16 view count
//!   8  u64 root pid       16 u32 height     24 u64 leaf count
//!   32 u64 entry count    40 u64 first leaf pid
//!   48.. view table, 32 bytes per view:
//!        u32 view id, u8 agg tag, u8 arity, u16 pad,
//!        u64 entries, u64 first leaf, u64 last leaf
//!
//! internal page:
//!   0 u8 tag=4   2 u16 entry count
//!   16.. entries: lo[dims] ++ hi[dims] ++ child pid   (u64 words)
//!
//! leaf page:
//!   0 u8 tag=5   1 u8 format (0 = varint-compressed, 1 = raw, 2 = zero-elided)
//!   2 u16 entry count     4 u32 view id     8 u64 next leaf pid
//!   16 u8 arity           17 u8 agg width   18 u16 data bytes
//!   20 u8 stored coordinate width (= arity for formats 0/2 — the zero
//!        padding of the valid mapping is *not* stored, §2.4; = tree dims
//!        for the naive raw format)
//!   24.. entry data (format-dependent)
//! ```

use crate::varint::{read_delta, write_delta};
use ct_common::{AggFn, CtError, Rect, Result};
use ct_storage::{Page, PAGE_SIZE};

/// Magic number of an R-tree meta page.
pub const MAGIC: u32 = 0x5254_5245; // "RTRE"
/// Internal node tag.
pub const TAG_INTERNAL: u8 = 4;
/// Leaf node tag.
pub const TAG_LEAF: u8 = 5;
/// Byte offset where leaf entry data starts.
pub const LEAF_DATA: usize = 24;
/// Byte offset where internal entries start.
pub const INT_DATA: usize = 16;
/// "No next leaf" sentinel.
pub const NO_LEAF: u64 = u64::MAX;
/// Byte offset of the view table in the meta page.
pub const VIEW_TABLE: usize = 48;
/// Bytes per view-table slot.
pub const VIEW_SLOT: usize = 32;
/// Maximum views per tree (bounded by the meta page size; SelectMapping
/// produces at most `dims` views per tree, far below this).
pub const MAX_VIEWS: usize = (PAGE_SIZE - VIEW_TABLE) / VIEW_SLOT;

/// Static description of one view stored in a tree.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ViewInfo {
    /// The view's id (matches `ct_common::ViewId`).
    pub view: u32,
    /// The view's arity (coordinates actually stored per point).
    pub arity: u8,
    /// The aggregate function; fixes the aggregate word width.
    pub agg: AggFn,
}

impl ViewInfo {
    /// Aggregate word width.
    pub fn agg_width(&self) -> usize {
        self.agg.width()
    }
}

/// Per-view placement statistics kept in the meta page.
#[derive(Clone, Copy, Debug, Default)]
pub struct ViewExtent {
    /// Entries stored for the view.
    pub entries: u64,
    /// First leaf page holding the view.
    pub first_leaf: u64,
    /// Last leaf page holding the view.
    pub last_leaf: u64,
}

/// Maximum entries of an internal node for a given dimensionality.
pub fn internal_capacity(dims: usize) -> usize {
    (PAGE_SIZE - INT_DATA) / ((2 * dims + 1) * 8)
}

/// A decoded internal node.
#[derive(Clone, Debug, PartialEq)]
pub struct InternalRNode {
    /// `(mbr, child page id)` in packed order.
    pub entries: Vec<(Rect, u64)>,
}

impl InternalRNode {
    /// Decodes from a page.
    pub fn read(page: &Page, dims: usize) -> Result<Self> {
        if page.bytes()[0] != TAG_INTERNAL {
            return Err(CtError::corrupt("expected R-tree internal node"));
        }
        let n = page.get_u16(2) as usize;
        let stride = (2 * dims + 1) * 8;
        let mut entries = Vec::with_capacity(n);
        let mut lo = vec![0u64; dims];
        let mut hi = vec![0u64; dims];
        for i in 0..n {
            let off = INT_DATA + i * stride;
            page.get_u64s(off, &mut lo);
            page.get_u64s(off + dims * 8, &mut hi);
            let child = page.get_u64(off + 2 * dims * 8);
            entries.push((Rect::new(&lo, &hi), child));
        }
        Ok(InternalRNode { entries })
    }

    /// Encodes into a page.
    pub fn write(&self, page: &mut Page, dims: usize) {
        page.clear();
        page.bytes_mut()[0] = TAG_INTERNAL;
        page.put_u16(2, self.entries.len() as u16);
        let stride = (2 * dims + 1) * 8;
        for (i, (mbr, child)) in self.entries.iter().enumerate() {
            let off = INT_DATA + i * stride;
            page.put_u64s(off, mbr.lo());
            page.put_u64s(off + dims * 8, mbr.hi());
            page.put_u64(off + 2 * dims * 8, *child);
        }
    }
}

/// A fully decoded leaf: `count` entries of `arity` coordinates and
/// `agg_width` aggregate words each, flattened.
#[derive(Clone, Debug, PartialEq)]
pub struct DecodedLeaf {
    /// Owning view id.
    pub view: u32,
    /// Coordinates stored per entry.
    pub arity: usize,
    /// Aggregate words per entry.
    pub agg_width: usize,
    /// Right-sibling leaf or [`NO_LEAF`].
    pub next: u64,
    /// Entry count.
    pub count: usize,
    /// `count * arity` coordinates.
    pub coords: Vec<u64>,
    /// `count * agg_width` aggregate words.
    pub aggs: Vec<u64>,
}

impl DecodedLeaf {
    /// Coordinates of entry `i`.
    pub fn coords_of(&self, i: usize) -> &[u64] {
        &self.coords[i * self.arity..(i + 1) * self.arity]
    }

    /// Aggregate words of entry `i`.
    pub fn aggs_of(&self, i: usize) -> &[u64] {
        &self.aggs[i * self.agg_width..(i + 1) * self.agg_width]
    }
}

/// Decodes a leaf page (any format).
pub fn read_leaf(page: &Page) -> Result<DecodedLeaf> {
    if page.bytes()[0] != TAG_LEAF {
        return Err(CtError::corrupt("expected R-tree leaf node"));
    }
    let format = page.bytes()[1];
    let count = page.get_u16(2) as usize;
    let view = page.get_u32(4);
    let next = page.get_u64(8);
    let arity = page.bytes()[16] as usize;
    let agg_width = page.bytes()[17] as usize;
    let data_bytes = page.get_u16(18) as usize;
    let coord_width = page.bytes()[20] as usize;
    let mut coords = vec![0u64; count * arity];
    let mut aggs = vec![0u64; count * agg_width];
    match format {
        1 | 2 => {
            // Fixed-width entries: `coord_width` coordinates (= arity for the
            // zero-elided format, = tree dims for raw) + aggregate words. The
            // padding coordinates beyond `arity` are zero by construction and
            // are dropped here.
            let stride = (coord_width + agg_width) * 8;
            let mut full = vec![0u64; coord_width];
            for i in 0..count {
                let off = LEAF_DATA + i * stride;
                page.get_u64s(off, &mut full);
                coords[i * arity..(i + 1) * arity].copy_from_slice(&full[..arity]);
                page.get_u64s(
                    off + coord_width * 8,
                    &mut aggs[i * agg_width..(i + 1) * agg_width],
                );
            }
        }
        0 => {
            // Compressed: per-column zigzag deltas against the previous entry.
            let data = &page.bytes()[LEAF_DATA..LEAF_DATA + data_bytes];
            let mut pos = 0usize;
            let mut prev = vec![0u64; arity + agg_width];
            for i in 0..count {
                for (c, slot) in prev.iter_mut().enumerate() {
                    let v = read_delta(data, &mut pos, *slot)
                        .ok_or_else(|| CtError::corrupt("truncated leaf entry"))?;
                    *slot = v;
                    if c < arity {
                        coords[i * arity + c] = v;
                    } else {
                        aggs[i * agg_width + (c - arity)] = v;
                    }
                }
            }
        }
        other => return Err(CtError::corrupt(format!("unknown leaf format {other}"))),
    }
    Ok(DecodedLeaf { view, arity, agg_width, next, count, coords, aggs })
}

/// Incremental leaf encoder used by the packer. Entries are appended until
/// [`LeafEncoder::fits_one_more`] says the page is full; the encoder is then written
/// out and reset for the next leaf.
pub struct LeafEncoder {
    /// 0 = varint-compressed, 1 = raw, 2 = zero-elided.
    pub format: u8,
    view: u32,
    arity: usize,
    agg_width: usize,
    /// Coordinates physically stored per entry (arity, or tree dims for raw).
    coord_width: usize,
    count: usize,
    /// Compressed byte stream (format 0 only).
    buf: Vec<u8>,
    /// Fixed-width words (formats 1 and 2).
    words: Vec<u64>,
    prev: Vec<u64>,
    budget: usize,
}

impl LeafEncoder {
    /// A fresh encoder for one view's leaf in a `dims`-dimensional tree.
    pub fn new(format: u8, view: u32, arity: usize, agg_width: usize, dims: usize) -> Self {
        let coord_width = if format == 1 { dims } else { arity };
        LeafEncoder {
            format,
            view,
            arity,
            agg_width,
            coord_width,
            count: 0,
            buf: Vec::with_capacity(PAGE_SIZE),
            words: Vec::new(),
            prev: vec![0u64; arity + agg_width],
            budget: PAGE_SIZE - LEAF_DATA,
        }
    }

    /// Entries encoded so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The view this leaf belongs to.
    pub fn view(&self) -> u32 {
        self.view
    }

    /// True if the encoder holds no entries.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Conservatively checks whether one more entry can be appended.
    pub fn fits_one_more(&self) -> bool {
        if self.count >= u16::MAX as usize {
            return false;
        }
        match self.format {
            0 => {
                // Worst case: every column takes a max-size varint.
                self.buf.len() + (self.arity + self.agg_width) * crate::varint::MAX_VARINT
                    <= self.budget
            }
            _ => (self.words.len() + self.coord_width + self.agg_width) * 8 <= self.budget,
        }
    }

    /// Appends one entry (`coords` must have exactly `arity` values).
    pub fn push(&mut self, coords: &[u64], aggs: &[u64]) {
        debug_assert_eq!(coords.len(), self.arity);
        debug_assert_eq!(aggs.len(), self.agg_width);
        debug_assert!(self.fits_one_more(), "leaf overflow");
        match self.format {
            0 => {
                for (c, &v) in coords.iter().chain(aggs.iter()).enumerate() {
                    write_delta(&mut self.buf, self.prev[c], v);
                    self.prev[c] = v;
                }
            }
            _ => {
                self.words.extend_from_slice(coords);
                // Raw format writes the valid mapping's zero padding too.
                for _ in self.arity..self.coord_width {
                    self.words.push(0);
                }
                self.words.extend_from_slice(aggs);
            }
        }
        self.count += 1;
    }

    /// Writes the finished leaf into a page.
    pub fn write(&self, page: &mut Page, next: u64) {
        page.clear();
        page.bytes_mut()[0] = TAG_LEAF;
        page.bytes_mut()[1] = self.format;
        page.put_u16(2, self.count as u16);
        page.put_u32(4, self.view);
        page.put_u64(8, next);
        page.bytes_mut()[16] = self.arity as u8;
        page.bytes_mut()[17] = self.agg_width as u8;
        page.bytes_mut()[20] = self.coord_width as u8;
        match self.format {
            0 => {
                page.put_u16(18, self.buf.len() as u16);
                page.bytes_mut()[LEAF_DATA..LEAF_DATA + self.buf.len()]
                    .copy_from_slice(&self.buf);
            }
            _ => {
                page.put_u16(18, (self.words.len() * 8) as u16);
                page.put_u64s(LEAF_DATA, &self.words);
            }
        }
    }
}

/// Meta-page state of a finished tree.
#[derive(Clone, Debug)]
pub struct TreeMeta {
    /// Dimensionality.
    pub dims: usize,
    /// Pack-order tag (see `crate::build::PackOrder::code`): 0 = the
    /// paper's low sort, 1 = Morton (ablation only; not merge-packable).
    pub order: u8,
    /// Root page id.
    pub root: u64,
    /// Height (1 = root is a leaf).
    pub height: u32,
    /// Total leaf pages.
    pub leaf_count: u64,
    /// Total entries across all views.
    pub entry_count: u64,
    /// Leftmost leaf (start of the sequential chain).
    pub first_leaf: u64,
    /// The views stored, with their placement extents.
    pub views: Vec<(ViewInfo, ViewExtent)>,
}

impl TreeMeta {
    /// Encodes into the meta page.
    pub fn write(&self, page: &mut Page) {
        assert!(self.views.len() <= MAX_VIEWS, "too many views for one tree");
        page.clear();
        page.put_u32(0, MAGIC);
        page.bytes_mut()[4] = self.dims as u8;
        page.bytes_mut()[5] = self.order;
        page.put_u16(6, self.views.len() as u16);
        page.put_u64(8, self.root);
        page.put_u32(16, self.height);
        page.put_u64(24, self.leaf_count);
        page.put_u64(32, self.entry_count);
        page.put_u64(40, self.first_leaf);
        for (i, (info, ext)) in self.views.iter().enumerate() {
            let off = VIEW_TABLE + i * VIEW_SLOT;
            page.put_u32(off, info.view);
            page.bytes_mut()[off + 4] = info.agg.tag();
            page.bytes_mut()[off + 5] = info.arity;
            page.put_u64(off + 8, ext.entries);
            page.put_u64(off + 16, ext.first_leaf);
            page.put_u64(off + 24, ext.last_leaf);
        }
    }

    /// Decodes from the meta page.
    pub fn read(page: &Page) -> Result<Self> {
        if page.get_u32(0) != MAGIC {
            return Err(CtError::corrupt("not an R-tree file"));
        }
        let dims = page.bytes()[4] as usize;
        let n = page.get_u16(6) as usize;
        let mut views = Vec::with_capacity(n);
        for i in 0..n {
            let off = VIEW_TABLE + i * VIEW_SLOT;
            let info = ViewInfo {
                view: page.get_u32(off),
                agg: AggFn::from_tag(page.bytes()[off + 4])?,
                arity: page.bytes()[off + 5],
            };
            let ext = ViewExtent {
                entries: page.get_u64(off + 8),
                first_leaf: page.get_u64(off + 16),
                last_leaf: page.get_u64(off + 24),
            };
            views.push((info, ext));
        }
        Ok(TreeMeta {
            dims,
            order: page.bytes()[5],
            root: page.get_u64(8),
            height: page.get_u32(16),
            leaf_count: page.get_u64(24),
            entry_count: page.get_u64(32),
            first_leaf: page.get_u64(40),
            views,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn internal_node_roundtrip() {
        let mut node = InternalRNode { entries: Vec::new() };
        for i in 0..10u64 {
            node.entries.push((Rect::new(&[i, i * 2, 0], &[i + 5, i * 2 + 5, 1]), 100 + i));
        }
        let mut page = Page::zeroed();
        node.write(&mut page, 3);
        let back = InternalRNode::read(&page, 3).unwrap();
        assert_eq!(back, node);
    }

    #[test]
    fn internal_capacity_shrinks_with_dims() {
        assert!(internal_capacity(2) > internal_capacity(4));
        assert!(internal_capacity(8) >= 60);
    }

    #[test]
    fn leaf_roundtrip_all_formats() {
        for format in [0u8, 1u8, 2u8] {
            let mut enc = LeafEncoder::new(format, 7, 2, 1, 4);
            let entries: Vec<([u64; 2], [u64; 1])> = (0..50u64)
                .map(|i| ([i * 3 + 1, 1000 - i], [i64::from_le_bytes((-((i as i64) * 7)).to_le_bytes()) as u64]))
                .collect();
            for (c, a) in &entries {
                assert!(enc.fits_one_more());
                enc.push(c, a);
            }
            let mut page = Page::zeroed();
            enc.write(&mut page, 42);
            let leaf = read_leaf(&page).unwrap();
            assert_eq!(leaf.view, 7);
            assert_eq!(leaf.next, 42);
            assert_eq!(leaf.count, 50);
            assert_eq!(leaf.arity, 2);
            for (i, (c, a)) in entries.iter().enumerate() {
                assert_eq!(leaf.coords_of(i), c, "format {format} entry {i}");
                assert_eq!(leaf.aggs_of(i), a, "format {format} entry {i}");
            }
        }
    }

    #[test]
    fn denser_formats_hold_more_entries() {
        // An arity-3 view in a 6-dimensional tree, sorted small-delta data.
        // The paper's zero elision (§2.4) roughly halves the naive raw
        // entry; varint deltas compress further still.
        let mut raw = LeafEncoder::new(1, 0, 3, 1, 6);
        let mut elided = LeafEncoder::new(2, 0, 3, 1, 6);
        let mut comp = LeafEncoder::new(0, 0, 3, 1, 6);
        let mut counts = [0u64; 3];
        let mut i = 0u64;
        loop {
            let coords = [i % 100 + 1, (i / 100) % 100 + 1, i / 10_000 + 1];
            let aggs = [i % 50 + 1];
            let mut progressed = false;
            for (n, enc) in counts.iter_mut().zip([&mut raw, &mut elided, &mut comp]) {
                if enc.fits_one_more() {
                    enc.push(&coords, &aggs);
                    *n += 1;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
            i += 1;
        }
        let [raw_n, elided_n, comp_n] = counts;
        assert!(
            elided_n as f64 >= 1.5 * raw_n as f64,
            "zero elision {elided_n} vs raw {raw_n}"
        );
        assert!(
            comp_n as f64 > 2.0 * elided_n as f64,
            "varint {comp_n} vs zero-elided {elided_n}"
        );
    }

    #[test]
    fn meta_roundtrip() {
        let meta = TreeMeta {
            dims: 4,
            order: 0,
            root: 9,
            height: 3,
            leaf_count: 120,
            entry_count: 54_321,
            first_leaf: 1,
            views: vec![
                (
                    ViewInfo { view: 3, arity: 3, agg: AggFn::Sum },
                    ViewExtent { entries: 50_000, first_leaf: 1, last_leaf: 100 },
                ),
                (
                    ViewInfo { view: 8, arity: 1, agg: AggFn::Avg },
                    ViewExtent { entries: 4_321, first_leaf: 101, last_leaf: 120 },
                ),
            ],
        };
        let mut page = Page::zeroed();
        meta.write(&mut page);
        let back = TreeMeta::read(&page).unwrap();
        assert_eq!(back.dims, 4);
        assert_eq!(back.root, 9);
        assert_eq!(back.views.len(), 2);
        assert_eq!(back.views[0].0, meta.views[0].0);
        assert_eq!(back.views[1].1.entries, 4_321);
    }

    #[test]
    fn corrupt_pages_are_rejected() {
        let page = Page::zeroed();
        assert!(read_leaf(&page).is_err());
        assert!(InternalRNode::read(&page, 2).is_err());
        assert!(TreeMeta::read(&page).is_err());
    }
}
