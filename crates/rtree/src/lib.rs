//! # ct-rtree — packed, compressed R-trees
//!
//! The storage structure at the heart of the paper: a Cubetree is "a
//! collection of packed and compressed R-trees" used as the *primary*
//! storage organization for ROLAP aggregate views (one R-tree of this crate
//! per member of the collection; the forest logic lives in the `cubetree`
//! crate).
//!
//! The distinguishing properties, all implemented here:
//!
//! * **Packed bulk load** (\[RL85\]): leaves are filled to capacity from a
//!   stream sorted in the paper's `x_d, …, x_1` order and written strictly
//!   sequentially; upper levels are built bottom-up. No inserts, no splits,
//!   no dead space.
//! * **View-contiguous leaves** (§2.4): every materialized view occupies "a
//!   distinct continuous string of leaf-nodes"; a leaf never mixes views.
//! * **Compression** (§2.4): because a leaf belongs to exactly one view, the
//!   padding zero coordinates are never stored; entries are further
//!   delta/varint encoded against their predecessor ("about 90% of the pages
//!   of every index correspond to compressed leaf nodes"). An uncompressed
//!   leaf format is kept for the ablation benchmark.
//! * **Merge-pack incremental update** (\[RKR97\], §3.4): an update merges the
//!   always-sorted old tree with a sorted delta stream into a freshly packed
//!   tree, in linear time and with only sequential writes.
//! * **Slice-query search** (Figure 4): standard R-tree region search; a
//!   view's slice becomes a rectangle with its padding coordinates pinned to
//!   zero, so views never produce false positives against each other.

// I/O error paths must propagate, not panic; test code is exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod build;
pub mod merge;
pub mod node;
pub mod tree;
pub mod varint;

pub use build::{morton_cmp, LeafFormat, PackOrder, TreeBuilder};
pub use merge::{merge_pack, EntryStream, VecStream};
pub use node::ViewInfo;
pub use tree::{PackedRTree, TreeScanner, TreeStats};
