//! LEB128 varints and zigzag coding for compressed leaf entries.
//!
//! Within one leaf all points belong to one view and arrive in packed sort
//! order, so consecutive entries differ little: coordinates are stored as
//! zigzag-encoded deltas against the previous entry, then LEB128-encoded.
//! Aggregate words get the same treatment (sums of neighbouring groups are
//! of similar magnitude, so deltas stay short).

/// Appends `v` as an LEB128 varint.
#[inline]
pub fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads an LEB128 varint starting at `buf[*pos]`, advancing `pos`.
/// Returns `None` on truncated input or on a 10-byte encoding whose final
/// byte carries payload bits beyond bit 63 (which a shift would silently
/// truncate into a wrong value).
#[inline]
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = buf.get(*pos)?;
        *pos += 1;
        let payload = (byte & 0x7F) as u64;
        // At shift 63 only the u64's top bit remains; any higher payload bit
        // overflows the value.
        if shift == 63 && payload > 1 {
            return None;
        }
        v |= payload << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
}

/// Zigzag-encodes a signed delta so small magnitudes of either sign become
/// small unsigned values.
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends the zigzag varint of the difference `new - prev` (wrapping).
#[inline]
pub fn write_delta(buf: &mut Vec<u8>, prev: u64, new: u64) {
    write_varint(buf, zigzag(new.wrapping_sub(prev) as i64));
}

/// Reads a delta written by [`write_delta`] and applies it to `prev`.
#[inline]
pub fn read_delta(buf: &[u8], pos: &mut usize, prev: u64) -> Option<u64> {
    let d = read_varint(buf, pos)?;
    Some(prev.wrapping_add(unzigzag(d) as u64))
}

/// Worst-case encoded size of one varint.
pub const MAX_VARINT: usize = 10;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_edges() {
        for v in [0u64, 1, 127, 128, 255, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            assert!(buf.len() <= MAX_VARINT);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn truncated_varint_is_none() {
        let mut buf = Vec::new();
        write_varint(&mut buf, u64::MAX);
        buf.pop();
        let mut pos = 0;
        assert_eq!(read_varint(&buf, &mut pos), None);
    }

    #[test]
    fn non_canonical_overflow_is_none() {
        // Nine continuation bytes put the tenth byte at shift 63, where only
        // its low bit fits in a u64. Any higher payload bit must be rejected
        // rather than silently truncated.
        let mut buf = vec![0x80u8; 9];
        buf.push(0x7F);
        let mut pos = 0;
        assert_eq!(read_varint(&buf, &mut pos), None);
        let mut buf = vec![0x80u8; 9];
        buf.push(0x02);
        let mut pos = 0;
        assert_eq!(read_varint(&buf, &mut pos), None);
        // The canonical 10-byte encodings still decode.
        let mut buf = vec![0x80u8; 9];
        buf.push(0x01);
        let mut pos = 0;
        assert_eq!(read_varint(&buf, &mut pos), Some(1u64 << 63));
        let mut buf = vec![0xFFu8; 9];
        buf.push(0x01);
        let mut pos = 0;
        assert_eq!(read_varint(&buf, &mut pos), Some(u64::MAX));
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN, 12345, -98765] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes stay small.
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn delta_roundtrip_including_wrap() {
        let cases = [(5u64, 9u64), (9, 5), (0, u64::MAX), (u64::MAX, 0), (7, 7)];
        for (prev, new) in cases {
            let mut buf = Vec::new();
            write_delta(&mut buf, prev, new);
            let mut pos = 0;
            assert_eq!(read_delta(&buf, &mut pos, prev), Some(new));
        }
    }

    #[test]
    fn sorted_streams_compress_well() {
        // 1000 consecutive coordinates should take ~1 byte each.
        let mut buf = Vec::new();
        let mut prev = 0u64;
        for v in 1..=1000u64 {
            write_delta(&mut buf, prev, v);
            prev = v;
        }
        assert!(buf.len() <= 1100, "got {} bytes", buf.len());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Round-trip over arbitrary values and arbitrary deltas.
        #[test]
        fn varint_roundtrip(v in proptest::num::u64::ANY) {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            prop_assert_eq!(read_varint(&buf, &mut pos), Some(v));
            prop_assert_eq!(pos, buf.len());
        }

        #[test]
        fn delta_roundtrip(prev in proptest::num::u64::ANY, new in proptest::num::u64::ANY) {
            let mut buf = Vec::new();
            write_delta(&mut buf, prev, new);
            let mut pos = 0;
            prop_assert_eq!(read_delta(&buf, &mut pos, prev), Some(new));
        }

        /// A random byte soup never panics the reader — it either decodes or
        /// returns None.
        #[test]
        fn reader_is_total(bytes in proptest::collection::vec(proptest::num::u8::ANY, 0..24)) {
            let mut pos = 0;
            let _ = read_varint(&bytes, &mut pos);
            prop_assert!(pos <= bytes.len());
        }
    }
}
