//! Read access to a finished packed R-tree: region search and sorted scans.

use crate::node::{read_leaf, InternalRNode, TreeMeta, ViewExtent, ViewInfo, NO_LEAF, TAG_LEAF};
use ct_common::{AggState, CtError, Point, Rect, Result};
use ct_storage::{BufferPool, FileId, PageId, PAGE_SIZE};
use std::sync::Arc;

/// A finished (immutable) packed R-tree.
///
/// Packed trees are write-once: they are produced by
/// [`crate::build::TreeBuilder`] or [`crate::merge::merge_pack`] and only
/// queried afterwards, exactly like the paper's Cubetrees ("by creating a new
/// instance of the derived data" on each refresh is replaced by merge-pack
/// into a *new* packed file, §3.4).
pub struct PackedRTree {
    pool: Arc<BufferPool>,
    fid: FileId,
    meta: TreeMeta,
}

/// Leaf-run readahead state threaded through one search.
///
/// At each leaf-parent internal node the search records the ascending list
/// of leaf children that intersect the region — depth-first order visits
/// exactly these pages next — and keeps up to `window` of the not-yet-read
/// ones resident via batched pool prefetch. Planning from the parent's
/// entry table makes readahead waste-free: every prefetched page is one the
/// search is guaranteed to consume.
struct ReadAhead {
    /// Max pages to keep prefetched ahead of the sweep cursor; 0 disables.
    window: usize,
    /// Intersecting leaf pids under the current leaf-parent, ascending.
    upcoming: Vec<u64>,
    /// Index of the next unvisited entry in `upcoming`.
    pos: usize,
    /// Entries below this index are covered by an issued prefetch.
    fetched: usize,
}

impl ReadAhead {
    fn new(window: usize) -> Self {
        ReadAhead { window, upcoming: Vec::new(), pos: 0, fetched: 0 }
    }

    fn disabled() -> Self {
        ReadAhead::new(0)
    }
}

/// Size/shape statistics for reports and the storage-comparison experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreeStats {
    /// Leaf pages.
    pub leaf_pages: u64,
    /// Internal pages (excluding the meta page).
    pub internal_pages: u64,
    /// Entries across all views.
    pub entries: u64,
    /// Allocated bytes (all pages).
    pub bytes: u64,
    /// Tree height (1 = root is a leaf).
    pub height: u32,
}

impl PackedRTree {
    pub(crate) fn from_parts(pool: Arc<BufferPool>, fid: FileId, meta: TreeMeta) -> Result<Self> {
        Ok(PackedRTree { pool, fid, meta })
    }

    /// Opens a tree previously packed into `fid`.
    pub fn open(pool: Arc<BufferPool>, fid: FileId) -> Result<Self> {
        let meta = pool.with_page(fid, PageId(0), TreeMeta::read)??;
        Ok(PackedRTree { pool, fid, meta })
    }

    /// Dimensionality of the index space.
    pub fn dims(&self) -> usize {
        self.meta.dims
    }

    /// The pack-order tag the tree was built with (see
    /// [`crate::build::PackOrder`]). Only low-sort trees can be merge-packed.
    pub fn pack_order_code(&self) -> u8 {
        self.meta.order
    }

    /// The file holding the tree.
    pub fn file_id(&self) -> FileId {
        self.fid
    }

    /// The views stored in this tree with their extents.
    pub fn views(&self) -> &[(ViewInfo, ViewExtent)] {
        &self.meta.views
    }

    /// Placement info for one view.
    pub fn view_extent(&self, view: u32) -> Option<(ViewInfo, ViewExtent)> {
        self.meta.views.iter().find(|(v, _)| v.view == view).copied()
    }

    /// Total entries.
    pub fn entry_count(&self) -> u64 {
        self.meta.entry_count
    }

    /// Size/shape statistics.
    pub fn stats(&self) -> TreeStats {
        let total_pages = self.pool.file(self.fid).map_or(0, |f| f.page_count());
        TreeStats {
            leaf_pages: self.meta.leaf_count,
            internal_pages: total_pages.saturating_sub(self.meta.leaf_count + 1),
            entries: self.meta.entry_count,
            bytes: total_pages * PAGE_SIZE as u64,
            height: self.meta.height,
        }
    }

    /// Region search: calls `f(view, point, aggregate)` for every entry whose
    /// point lies in `region`, in packed order. `f` returns `false` to stop.
    ///
    /// A slice query on view `V{a1..ak}` is the rectangle with each sliced
    /// axis pinned to its constant, each open axis spanning `[1, COORD_MAX]`,
    /// and every padding axis `k+1..=d` pinned to zero (paper Figure 4).
    pub fn search(
        &self,
        region: &Rect,
        mut f: impl FnMut(u32, &Point, &AggState) -> bool,
    ) -> Result<()> {
        if region.dims() != self.meta.dims {
            return Err(CtError::invalid("query region dimensionality mismatch"));
        }
        let mut ra = ReadAhead::disabled();
        self.search_node(PageId(self.meta.root), region, &mut ra, &mut f)?;
        Ok(())
    }

    /// Like [`PackedRTree::search`], prefetching ahead of the leaf sweep.
    ///
    /// Each leaf-parent internal node names the exact ascending set of leaf
    /// pages the search will visit beneath it, so readahead pulls in up to
    /// `window` of those pages with one batched read per contiguous pid run
    /// ([`BufferPool::prefetch_run`]) — random leaf I/O becomes near-
    /// sequential sweeps, and no page is ever prefetched that the search
    /// will not consume. Pages of other views (or internal pages) are never
    /// touched: they are not children of the leaf-parents the region
    /// intersects. `window == 0` is exactly `search`.
    pub fn search_with_readahead(
        &self,
        region: &Rect,
        window: usize,
        mut f: impl FnMut(u32, &Point, &AggState) -> bool,
    ) -> Result<()> {
        if region.dims() != self.meta.dims {
            return Err(CtError::invalid("query region dimensionality mismatch"));
        }
        let mut ra = ReadAhead::new(window);
        self.search_node(PageId(self.meta.root), region, &mut ra, &mut f)?;
        Ok(())
    }

    fn search_node(
        &self,
        pid: PageId,
        region: &Rect,
        ra: &mut ReadAhead,
        f: &mut impl FnMut(u32, &Point, &AggState) -> bool,
    ) -> Result<bool> {
        let is_leaf = self.pool.with_page(self.fid, pid, |p| p.bytes()[0] == TAG_LEAF)?;
        if is_leaf {
            let leaf = self.pool.with_page(self.fid, pid, read_leaf)??;
            if ra.window > 0 {
                self.advance_readahead(pid, ra)?;
            }
            if leaf.count == 0 {
                return Ok(true);
            }
            let info = self
                .view_extent(leaf.view)
                .ok_or_else(|| CtError::corrupt("leaf for unknown view"))?
                .0;
            for i in 0..leaf.count {
                let point = Point::new(leaf.coords_of(i), self.meta.dims);
                if region.contains_point(&point) {
                    let state = AggState::decode(info.agg, leaf.aggs_of(i))?;
                    if !f(leaf.view, &point, &state) {
                        return Ok(false);
                    }
                }
            }
            Ok(true)
        } else {
            let node = self.pool.with_page(self.fid, pid, |p| InternalRNode::read(p, self.meta.dims))??;
            if ra.window > 0 {
                self.plan_readahead(&node, region, ra)?;
            }
            for (mbr, child) in &node.entries {
                if !mbr.is_empty()
                    && mbr.intersects(region)
                    && !self.search_node(PageId(*child), region, ra, f)?
                {
                    return Ok(false);
                }
            }
            Ok(true)
        }
    }

    /// If `node` is a leaf-parent, records the exact list of intersecting
    /// leaf children the depth-first search is about to visit and issues the
    /// initial prefetch window over it.
    fn plan_readahead(&self, node: &InternalRNode, region: &Rect, ra: &mut ReadAhead) -> Result<()> {
        if self.meta.leaf_count == 0 {
            return Ok(());
        }
        let leaf_end = self.meta.first_leaf + self.meta.leaf_count - 1;
        let mut pids: Vec<u64> = Vec::new();
        for (mbr, child) in &node.entries {
            if !mbr.is_empty() && mbr.intersects(region) {
                if *child < self.meta.first_leaf || *child > leaf_end {
                    // Children are internal nodes; each leaf-parent below
                    // will plan its own window.
                    return Ok(());
                }
                pids.push(*child);
            }
        }
        if pids.is_empty() {
            return Ok(());
        }
        // Packed construction emits children in ascending page order, but
        // sort defensively — the contiguous-run grouping relies on it.
        pids.sort_unstable();
        ra.upcoming = pids;
        ra.pos = 0;
        ra.fetched = 0;
        self.top_up_readahead(ra)
    }

    /// Marks `pid` visited and keeps the next `window` upcoming leaves
    /// prefetched ahead of the sweep cursor.
    fn advance_readahead(&self, pid: PageId, ra: &mut ReadAhead) -> Result<()> {
        if ra.upcoming.get(ra.pos) == Some(&pid.0) {
            ra.pos += 1;
        }
        self.top_up_readahead(ra)
    }

    /// Issues prefetch for upcoming leaves through `pos + window`, batching
    /// contiguous pid runs into single pool requests.
    fn top_up_readahead(&self, ra: &mut ReadAhead) -> Result<()> {
        let target = (ra.pos + ra.window).min(ra.upcoming.len());
        ra.fetched = ra.fetched.max(ra.pos);
        while ra.fetched < target {
            let mut end = ra.fetched;
            while end + 1 < target && ra.upcoming[end + 1] == ra.upcoming[end] + 1 {
                end += 1;
            }
            let start = PageId(ra.upcoming[ra.fetched]);
            self.pool.prefetch_run(self.fid, start, end - ra.fetched + 1)?;
            ra.fetched = end + 1;
        }
        Ok(())
    }

    /// Sequential scanner over the full tree in packed order (used by
    /// merge-pack and by full-view reads).
    pub fn scanner(&self) -> TreeScanner<'_> {
        TreeScanner {
            tree: self,
            next_leaf: self.meta.first_leaf,
            leaf: None,
            idx: 0,
        }
    }

    /// Scans only the leaf run of one view, in packed order.
    pub fn scan_view(
        &self,
        view: u32,
        mut f: impl FnMut(&Point, &AggState) -> bool,
    ) -> Result<()> {
        let Some((info, ext)) = self.view_extent(view) else {
            return Err(CtError::invalid(format!("view {view} not in this tree")));
        };
        if ext.entries == 0 {
            return Ok(());
        }
        let mut pid = ext.first_leaf;
        loop {
            let leaf = self.pool.with_page(self.fid, PageId(pid), read_leaf)??;
            if leaf.view == view {
                for i in 0..leaf.count {
                    let point = Point::new(leaf.coords_of(i), self.meta.dims);
                    let state = AggState::decode(info.agg, leaf.aggs_of(i))?;
                    if !f(&point, &state) {
                        return Ok(());
                    }
                }
            }
            if pid == ext.last_leaf || leaf.next == NO_LEAF {
                return Ok(());
            }
            pid = leaf.next;
        }
    }
}

/// Streaming cursor over all entries of a tree, leaf chain order (= packed
/// order). Implements the merge-side interface of
/// [`crate::merge::EntryStream`].
pub struct TreeScanner<'a> {
    tree: &'a PackedRTree,
    next_leaf: u64,
    leaf: Option<crate::node::DecodedLeaf>,
    idx: usize,
}

impl TreeScanner<'_> {
    /// The next `(view, point, state)` in packed order.
    pub fn next_entry(&mut self) -> Result<Option<(u32, Point, AggState)>> {
        loop {
            if let Some(leaf) = &self.leaf {
                if self.idx < leaf.count {
                    let i = self.idx;
                    self.idx += 1;
                    let point = Point::new(leaf.coords_of(i), self.tree.meta.dims);
                    let info = self
                        .tree
                        .view_extent(leaf.view)
                        .ok_or_else(|| CtError::corrupt("leaf for unknown view"))?
                        .0;
                    let state = AggState::decode(info.agg, leaf.aggs_of(i))?;
                    return Ok(Some((leaf.view, point, state)));
                }
                self.next_leaf = leaf.next;
                self.leaf = None;
            }
            if self.next_leaf == NO_LEAF {
                return Ok(None);
            }
            let leaf = self
                .tree
                .pool
                .with_page(self.tree.fid, PageId(self.next_leaf), read_leaf)??;
            self.leaf = Some(leaf);
            self.idx = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{LeafFormat, TreeBuilder};
    use ct_common::{AggFn, COORD_MAX};
    use ct_storage::StorageEnv;

    fn sum_view(view: u32, arity: u8) -> ViewInfo {
        ViewInfo { view, arity, agg: AggFn::Sum }
    }

    /// Builds the paper's §2.4 example tree R3{x,y}: V8 (arity 1) and V9
    /// (arity 2), Tables 1–4.
    fn paper_tree(env: &StorageEnv, format: LeafFormat) -> PackedRTree {
        let fid = env.create_file("r3").unwrap();
        let mut b = TreeBuilder::new(
            env.pool().clone(),
            fid,
            2,
            vec![sum_view(8, 1), sum_view(9, 2)],
            format,
        )
        .unwrap();
        // Table 2: V8 sorted points.
        for (x, q) in [(1u64, 102i64), (2, 84), (3, 67), (4, 15), (5, 24), (6, 42)] {
            b.push(8, Point::new(&[x], 2), &AggState::from_measure(q)).unwrap();
        }
        // Table 4: V9 sorted points (y, x).
        for ((x, y), q) in [
            ((1u64, 1u64), 24i64),
            ((2, 1), 6),
            ((3, 1), 2),
            ((1, 3), 11),
            ((3, 3), 17),
        ] {
            b.push(9, Point::new(&[x, y], 2), &AggState::from_measure(q)).unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn paper_example_full_scan_order() {
        let env = StorageEnv::new("rtree-paper").unwrap();
        let t = paper_tree(&env, LeafFormat::Compressed);
        assert_eq!(t.entry_count(), 11);
        let mut scanner = t.scanner();
        let mut got = Vec::new();
        while let Some((v, p, s)) = scanner.next_entry().unwrap() {
            got.push((v, p.coords().to_vec(), s.sum));
        }
        // Figure 8 content: V8 then V9, each in packed order.
        assert_eq!(
            got,
            vec![
                (8, vec![1, 0], 102),
                (8, vec![2, 0], 84),
                (8, vec![3, 0], 67),
                (8, vec![4, 0], 15),
                (8, vec![5, 0], 24),
                (8, vec![6, 0], 42),
                (9, vec![1, 1], 24),
                (9, vec![2, 1], 6),
                (9, vec![3, 1], 2),
                (9, vec![1, 3], 11),
                (9, vec![3, 3], 17),
            ]
        );
    }

    #[test]
    fn view_slices_do_not_cross_talk() {
        let env = StorageEnv::new("rtree-slice").unwrap();
        let t = paper_tree(&env, LeafFormat::Compressed);
        // Whole-V8 slice: y pinned to 0.
        let mut v8 = Vec::new();
        t.search(&Rect::new(&[1, 0], &[COORD_MAX, 0]), |v, p, s| {
            v8.push((v, p.coord(0), s.sum));
            true
        })
        .unwrap();
        assert_eq!(v8.len(), 6);
        assert!(v8.iter().all(|&(v, _, _)| v == 8));
        // V9 slice custkey(y)=1.
        let mut v9 = Vec::new();
        t.search(&Rect::new(&[1, 1], &[COORD_MAX, 1]), |v, p, s| {
            v9.push((v, p.coord(0), s.sum));
            true
        })
        .unwrap();
        assert_eq!(v9, vec![(9, 1, 24), (9, 2, 6), (9, 3, 2)]);
        // Point query on V9.
        let mut pt = Vec::new();
        t.search(&Rect::new(&[3, 3], &[3, 3]), |_, _, s| {
            pt.push(s.sum);
            true
        })
        .unwrap();
        assert_eq!(pt, vec![17]);
    }

    #[test]
    fn scan_view_isolates_one_view() {
        let env = StorageEnv::new("rtree-scanview").unwrap();
        let t = paper_tree(&env, LeafFormat::Raw);
        let mut sum = 0i64;
        let mut n = 0;
        t.scan_view(9, |_, s| {
            sum += s.sum;
            n += 1;
            true
        })
        .unwrap();
        assert_eq!(n, 5);
        assert_eq!(sum, 60);
    }

    #[test]
    fn builder_rejects_out_of_order_and_duplicates() {
        let env = StorageEnv::new("rtree-order").unwrap();
        let fid = env.create_file("t").unwrap();
        let mut b = TreeBuilder::new(
            env.pool().clone(),
            fid,
            2,
            vec![sum_view(1, 2)],
            LeafFormat::Compressed,
        )
        .unwrap();
        b.push(1, Point::new(&[5, 5], 2), &AggState::from_measure(1)).unwrap();
        // Going backwards in packed order fails.
        assert!(b.push(1, Point::new(&[4, 4], 2), &AggState::from_measure(1)).is_err());
        // Duplicate point fails.
        assert!(b.push(1, Point::new(&[5, 5], 2), &AggState::from_measure(1)).is_err());
        // Undeclared view fails.
        assert!(b.push(2, Point::new(&[6, 6], 2), &AggState::from_measure(1)).is_err());
    }

    #[test]
    fn builder_rejects_view_reappearance() {
        let env = StorageEnv::new("rtree-contig").unwrap();
        let fid = env.create_file("t").unwrap();
        let mut b = TreeBuilder::new(
            env.pool().clone(),
            fid,
            2,
            vec![sum_view(1, 1), sum_view(2, 2)],
            LeafFormat::Compressed,
        )
        .unwrap();
        b.push(1, Point::new(&[1], 2), &AggState::from_measure(1)).unwrap();
        b.push(2, Point::new(&[1, 1], 2), &AggState::from_measure(1)).unwrap();
        // View 1's run ended when view 2 started.
        assert!(b.push(1, Point::new(&[2], 2), &AggState::from_measure(1)).is_err());
    }

    #[test]
    fn builder_rejects_nonzero_padding() {
        let env = StorageEnv::new("rtree-pad").unwrap();
        let fid = env.create_file("t").unwrap();
        let mut b = TreeBuilder::new(
            env.pool().clone(),
            fid,
            3,
            vec![sum_view(1, 1)],
            LeafFormat::Compressed,
        )
        .unwrap();
        // Arity-1 view with a non-zero y coordinate.
        assert!(b.push(1, Point::new(&[1, 2], 3), &AggState::from_measure(1)).is_err());
    }

    #[test]
    fn large_tree_queries_and_reopen() {
        let env = StorageEnv::new("rtree-large").unwrap();
        let fid = env.create_file("big").unwrap();
        let mut b = TreeBuilder::new(
            env.pool().clone(),
            fid,
            3,
            vec![sum_view(1, 3)],
            LeafFormat::Compressed,
        )
        .unwrap();
        // 40x40x25 grid in packed (z,y,x) order.
        let mut n = 0u64;
        for z in 1..=25u64 {
            for y in 1..=40u64 {
                for x in 1..=40u64 {
                    b.push(1, Point::new(&[x, y, z], 3), &AggState::from_measure((x + y + z) as i64))
                        .unwrap();
                    n += 1;
                }
            }
        }
        let t = b.finish().unwrap();
        assert_eq!(t.entry_count(), n);
        let stats = t.stats();
        assert!(stats.height >= 2);
        assert!(stats.internal_pages >= 1);
        // Slice x=7 (non-leading sort attribute): expect 40*25 points.
        let mut count = 0u64;
        let mut sum = 0i64;
        t.search(&Rect::new(&[7, 1, 1], &[7, COORD_MAX, COORD_MAX]), |_, p, s| {
            assert_eq!(p.coord(0), 7);
            count += 1;
            sum += s.sum;
            true
        })
        .unwrap();
        assert_eq!(count, 40 * 25);
        let expected: i64 = (1..=40).map(|y| (1..=25).map(|z| 7 + y + z).sum::<i64>()).sum();
        assert_eq!(sum, expected);

        // Reopen from disk and repeat a point query.
        env.pool().flush_all().unwrap();
        let t2 = PackedRTree::open(env.pool().clone(), fid).unwrap();
        let mut hit = None;
        t2.search(&Rect::new(&[40, 40, 25], &[40, 40, 25]), |_, _, s| {
            hit = Some(s.sum);
            true
        })
        .unwrap();
        assert_eq!(hit, Some(105));
    }

    #[test]
    fn empty_tree_works() {
        let env = StorageEnv::new("rtree-empty").unwrap();
        let fid = env.create_file("e").unwrap();
        let b = TreeBuilder::new(
            env.pool().clone(),
            fid,
            2,
            vec![sum_view(1, 2)],
            LeafFormat::Compressed,
        )
        .unwrap();
        let t = b.finish().unwrap();
        assert_eq!(t.entry_count(), 0);
        let mut any = false;
        t.search(&Rect::new(&[1, 1], &[COORD_MAX, COORD_MAX]), |_, _, _| {
            any = true;
            true
        })
        .unwrap();
        assert!(!any);
        assert!(t.scanner().next_entry().unwrap().is_none());
    }

    #[test]
    fn early_stop_propagates() {
        let env = StorageEnv::new("rtree-stop").unwrap();
        let t = paper_tree(&env, LeafFormat::Compressed);
        let mut n = 0;
        t.search(&Rect::new(&[1, 0], &[COORD_MAX, COORD_MAX]), |_, _, _| {
            n += 1;
            n < 3
        })
        .unwrap();
        assert_eq!(n, 3);
    }

    /// A two-view tree big enough that each view spans several leaves, built
    /// in its own environment so I/O deltas are isolated.
    fn two_view_tree(env: &StorageEnv) -> PackedRTree {
        let fid = env.create_file("two").unwrap();
        let mut b = TreeBuilder::new(
            env.pool().clone(),
            fid,
            2,
            vec![sum_view(1, 1), sum_view(2, 2)],
            LeafFormat::Compressed,
        )
        .unwrap();
        for x in 1..=20_000u64 {
            b.push(1, Point::new(&[x], 2), &AggState::from_measure(x as i64)).unwrap();
        }
        for y in 1..=60u64 {
            for x in 1..=100u64 {
                b.push(2, Point::new(&[x, y], 2), &AggState::from_measure(1)).unwrap();
            }
        }
        b.finish().unwrap()
    }

    #[test]
    fn readahead_matches_plain_search_results() {
        let env = StorageEnv::new("rtree-ra-eq").unwrap();
        let t = two_view_tree(&env);
        let mut plain = Vec::new();
        t.search(&Rect::new(&[1, 0], &[COORD_MAX, 0]), |v, p, s| {
            plain.push((v, p.coord(0), s.sum));
            true
        })
        .unwrap();
        let mut ra = Vec::new();
        t.search_with_readahead(&Rect::new(&[1, 0], &[COORD_MAX, 0]), 8, |v, p, s| {
            ra.push((v, p.coord(0), s.sum));
            true
        })
        .unwrap();
        assert_eq!(plain, ra);
        assert_eq!(ra.len(), 20_000);
    }

    #[test]
    fn readahead_never_crosses_the_view_run_boundary() {
        let env = StorageEnv::new("rtree-ra-bound").unwrap();
        let t = two_view_tree(&env);
        let (_, ext_a) = t.view_extent(1).unwrap();
        let run_a = ext_a.last_leaf - ext_a.first_leaf + 1;
        assert!(run_a >= 4, "view 1 must span several leaves");
        env.pool().flush_all().unwrap();

        // Reopen through a cold pool over the same file so every page the
        // search touches is a physical read we can count.
        let cold = env.new_private_pool(4096);
        let file = env.pool().file(t.file_id()).unwrap();
        let cold_fid = cold.register(file);
        let t2 = PackedRTree::open(cold.clone(), cold_fid).unwrap();
        let before = env.snapshot();
        // Full sweep of view 1 with a window far larger than the run tail.
        let mut n = 0u64;
        t2.search_with_readahead(&Rect::new(&[1, 0], &[COORD_MAX, 0]), 64, |_, _, _| {
            n += 1;
            true
        })
        .unwrap();
        let d = env.snapshot().since(&before);
        assert_eq!(n, 20_000);
        let internal = t2.stats().internal_pages + 1; // + meta page
        // Every page read is view 1's run or an internal/meta page: the
        // window clamped at last_leaf instead of spilling into view 2.
        assert!(
            d.seq_reads + d.rand_reads <= run_a + internal,
            "readahead leaked past the view boundary: {} reads for a {}-leaf run + {} internals",
            d.seq_reads + d.rand_reads,
            run_a,
            internal
        );
    }

    #[test]
    fn readahead_clamps_when_run_ends_mid_window() {
        let env = StorageEnv::new("rtree-ra-short").unwrap();
        // Single short view: a couple of leaves, window much larger.
        let fid = env.create_file("short").unwrap();
        let mut b = TreeBuilder::new(
            env.pool().clone(),
            fid,
            2,
            vec![sum_view(1, 1)],
            LeafFormat::Compressed,
        )
        .unwrap();
        for x in 1..=900u64 {
            b.push(1, Point::new(&[x], 2), &AggState::from_measure(1)).unwrap();
        }
        let t = b.finish().unwrap();
        let (_, ext) = t.view_extent(1).unwrap();
        let run = ext.last_leaf - ext.first_leaf + 1;
        env.pool().flush_all().unwrap();

        let cold = env.new_private_pool(4096);
        let file = env.pool().file(fid).unwrap();
        let cold_fid = cold.register(file);
        let t2 = PackedRTree::open(cold.clone(), cold_fid).unwrap();
        let before = env.snapshot();
        let mut n = 0u64;
        t2.search_with_readahead(&Rect::new(&[1, 0], &[COORD_MAX, 0]), 1000, |_, _, _| {
            n += 1;
            true
        })
        .unwrap();
        let d = env.snapshot().since(&before);
        assert_eq!(n, 900);
        let total_pages = run + t2.stats().internal_pages + 1;
        assert!(
            d.seq_reads + d.rand_reads <= total_pages,
            "window overshot the end of the file/run: {} reads, {} pages total",
            d.seq_reads + d.rand_reads,
            total_pages
        );
    }

    #[test]
    fn zero_window_readahead_is_plain_search() {
        let env = StorageEnv::new("rtree-ra-zero").unwrap();
        let t = paper_tree(&env, LeafFormat::Compressed);
        let before = env.snapshot();
        let mut a = Vec::new();
        t.search_with_readahead(&Rect::new(&[1, 1], &[COORD_MAX, 1]), 0, |v, p, s| {
            a.push((v, p.coord(0), s.sum));
            true
        })
        .unwrap();
        let d_ra = env.snapshot().since(&before);
        let before = env.snapshot();
        let mut b = Vec::new();
        t.search(&Rect::new(&[1, 1], &[COORD_MAX, 1]), |v, p, s| {
            b.push((v, p.coord(0), s.sum));
            true
        })
        .unwrap();
        let d_plain = env.snapshot().since(&before);
        assert_eq!(a, b);
        assert_eq!(d_ra, d_plain, "window 0 must be I/O-identical to search()");
    }

    #[test]
    fn origin_point_holds_the_none_view() {
        // The scalar "none" view maps to the origin (paper §3).
        let env = StorageEnv::new("rtree-none").unwrap();
        let fid = env.create_file("t").unwrap();
        let mut b = TreeBuilder::new(
            env.pool().clone(),
            fid,
            2,
            vec![sum_view(0, 0), sum_view(1, 1)],
            LeafFormat::Compressed,
        )
        .unwrap();
        b.push(0, Point::origin(2), &AggState::from_measure(999)).unwrap();
        b.push(1, Point::new(&[1], 2), &AggState::from_measure(5)).unwrap();
        let t = b.finish().unwrap();
        let mut got = None;
        t.search(&Rect::new(&[0, 0], &[0, 0]), |v, _, s| {
            got = Some((v, s.sum));
            true
        })
        .unwrap();
        assert_eq!(got, Some((0, 999)));
    }
}
