//! Merge-pack: the Cubetree bulk-incremental update (\[RKR97\], paper §3.4).
//!
//! Because a packed tree keeps "the stored tuples sorted at all times", a
//! refresh is a single linear merge of the old tree's sequential scan with a
//! sorted delta stream, producing a *new* packed tree with only sequential
//! writes — "this operation requires linear time in the total number of
//! tuples" and is what delivers the paper's ~100:1 refresh speedup over
//! row-at-a-time view maintenance.

use crate::build::{LeafFormat, TreeBuilder};
use crate::node::ViewInfo;
use crate::tree::PackedRTree;
use ct_common::{AggState, Point, Result};
use ct_storage::{BufferPool, FileId};
use std::cmp::Ordering;
use std::sync::Arc;

/// A sorted stream of `(view, point, aggregate)` entries.
pub trait EntryStream {
    /// The next entry in packed order, or `None` at end of stream.
    fn next_entry(&mut self) -> Result<Option<(u32, Point, AggState)>>;
}

impl EntryStream for crate::tree::TreeScanner<'_> {
    fn next_entry(&mut self) -> Result<Option<(u32, Point, AggState)>> {
        crate::tree::TreeScanner::next_entry(self)
    }
}

/// An [`EntryStream`] over an in-memory vector (deltas, tests).
pub struct VecStream {
    items: std::vec::IntoIter<(u32, Point, AggState)>,
}

impl VecStream {
    /// Wraps pre-sorted items.
    pub fn new(items: Vec<(u32, Point, AggState)>) -> Self {
        VecStream { items: items.into_iter() }
    }
}

impl EntryStream for VecStream {
    fn next_entry(&mut self) -> Result<Option<(u32, Point, AggState)>> {
        Ok(self.items.next())
    }
}

/// Merge order: packed point order first; ties broken by view id so that the
/// merge is deterministic. Equal `(point, view)` pairs are combined.
fn entry_cmp(a: &(u32, Point, AggState), b: &(u32, Point, AggState)) -> Ordering {
    a.1.packed_cmp(&b.1).then(a.0.cmp(&b.0))
}

/// Merges `old`'s contents with a sorted `delta` stream into a freshly packed
/// tree in `new_fid`. Entries with equal `(view, point)` have their aggregate
/// states merged; everything else is copied through. The caller removes the
/// old tree's file afterwards.
pub fn merge_pack(
    pool: Arc<BufferPool>,
    old: &PackedRTree,
    delta: &mut dyn EntryStream,
    new_fid: FileId,
    views: Vec<ViewInfo>,
    format: LeafFormat,
) -> Result<PackedRTree> {
    if old.pack_order_code() != 0 {
        return Err(ct_common::CtError::unsupported(
            "merge-pack requires the paper's low-sort pack order; Morton-packed \
             trees have no mergeable total order aligned with aggregation",
        ));
    }
    // For deletion-safe aggregates (faithful on-disk counts), a merge that
    // drives a group's count to zero annihilates the entry: it is dropped
    // from the new packed tree ([GL95]-style counting maintenance).
    let drop_annihilated: std::collections::HashMap<u32, bool> =
        views.iter().map(|v| (v.view, v.agg.deletion_safe())).collect();
    // Merge metrics (inert when disabled): totals are accumulated locally and
    // added once at the end, keeping the merge loop counter-free.
    let recorder = pool.recorder().clone();
    let (mut old_n, mut delta_n, mut annihilated_n) = (0u64, 0u64, 0u64);
    let mut builder = TreeBuilder::new(pool, new_fid, old.dims(), views, format)?;
    let mut old_scan = old.scanner();
    let mut a = old_scan.next_entry()?;
    let mut b = delta.next_entry()?;
    // The linear merge is only correct over a strictly increasing delta; an
    // out-of-order (or duplicated) delta entry would be spliced into the
    // wrong leaf run. Guard every pull rather than trusting the caller.
    let mut prev_delta: Option<(u32, Point)> = None;
    let mut check_delta = move |e: &Option<(u32, Point, AggState)>| -> Result<()> {
        if let Some((view, point, _)) = e {
            if let Some((pv, pp)) = &prev_delta {
                if pp.packed_cmp(point).then(pv.cmp(view)) != Ordering::Less {
                    return Err(ct_common::CtError::invalid(
                        "merge-pack delta stream is not strictly increasing in packed \
                         (point, view) order",
                    ));
                }
            }
            prev_delta = Some((*view, *point));
        }
        Ok(())
    };
    check_delta(&b)?;
    loop {
        match (&a, &b) {
            (None, None) => break,
            (Some(ea), None) => {
                builder.push(ea.0, ea.1, &ea.2)?;
                old_n += 1;
                a = old_scan.next_entry()?;
            }
            (None, Some(eb)) => {
                builder.push(eb.0, eb.1, &eb.2)?;
                delta_n += 1;
                b = delta.next_entry()?;
                check_delta(&b)?;
            }
            (Some(ea), Some(eb)) => match entry_cmp(ea, eb) {
                Ordering::Less => {
                    builder.push(ea.0, ea.1, &ea.2)?;
                    old_n += 1;
                    a = old_scan.next_entry()?;
                }
                Ordering::Greater => {
                    builder.push(eb.0, eb.1, &eb.2)?;
                    delta_n += 1;
                    b = delta.next_entry()?;
                    check_delta(&b)?;
                }
                Ordering::Equal => {
                    let mut merged = ea.2;
                    merged.merge(&eb.2);
                    let annihilated = merged.is_annihilated()
                        && drop_annihilated.get(&ea.0).copied().unwrap_or(false);
                    if !annihilated {
                        builder.push(ea.0, ea.1, &merged)?;
                    } else {
                        annihilated_n += 1;
                    }
                    old_n += 1;
                    delta_n += 1;
                    a = old_scan.next_entry()?;
                    b = delta.next_entry()?;
                    check_delta(&b)?;
                }
            },
        }
    }
    let merged = builder.finish()?;
    recorder.add("rtree.merge.merges", 1);
    recorder.add("rtree.merge.old_entries", old_n);
    recorder.add("rtree.merge.delta_entries", delta_n);
    recorder.add("rtree.merge.out_entries", merged.entry_count());
    recorder.add("rtree.merge.annihilated_entries", annihilated_n);
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_common::{AggFn, Rect, COORD_MAX};
    use ct_storage::StorageEnv;

    fn sum_view(view: u32, arity: u8) -> ViewInfo {
        ViewInfo { view, arity, agg: AggFn::Sum }
    }

    fn build(env: &StorageEnv, name: &str, entries: &[(u32, Vec<u64>, i64)], views: Vec<ViewInfo>, dims: usize) -> PackedRTree {
        let fid = env.create_file(name).unwrap();
        let mut b =
            TreeBuilder::new(env.pool().clone(), fid, dims, views, LeafFormat::Compressed).unwrap();
        for (v, coords, q) in entries {
            b.push(*v, Point::new(coords, dims), &AggState::from_measure(*q)).unwrap();
        }
        b.finish().unwrap()
    }

    fn dump(t: &PackedRTree) -> Vec<(u32, Vec<u64>, i64)> {
        let mut s = t.scanner();
        let mut out = Vec::new();
        while let Some((v, p, st)) = s.next_entry().unwrap() {
            out.push((v, p.coords().to_vec(), st.sum));
        }
        out
    }

    #[test]
    fn merge_combines_and_interleaves() {
        let env = StorageEnv::new("merge-basic").unwrap();
        let views = vec![sum_view(1, 2)];
        let old = build(
            &env,
            "old",
            &[(1, vec![1, 1], 10), (1, vec![3, 1], 30), (1, vec![2, 2], 20)],
            views.clone(),
            2,
        );
        let mut delta = VecStream::new(vec![
            (1, Point::new(&[2, 1], 2), AggState::from_measure(5)), // new point
            (1, Point::new(&[3, 1], 2), AggState::from_measure(7)), // existing → merge
            (1, Point::new(&[1, 3], 2), AggState::from_measure(9)), // new, after all old
        ]);
        let new_fid = env.create_file("new").unwrap();
        let merged = merge_pack(
            env.pool().clone(),
            &old,
            &mut delta,
            new_fid,
            views,
            LeafFormat::Compressed,
        )
        .unwrap();
        assert_eq!(
            dump(&merged),
            vec![
                (1, vec![1, 1], 10),
                (1, vec![2, 1], 5),
                (1, vec![3, 1], 37),
                (1, vec![2, 2], 20),
                (1, vec![1, 3], 9),
            ]
        );
        assert_eq!(merged.entry_count(), 5);
    }

    #[test]
    fn merge_multi_view_keeps_contiguity() {
        let env = StorageEnv::new("merge-multi").unwrap();
        let views = vec![sum_view(0, 0), sum_view(8, 1), sum_view(9, 2)];
        let old = build(
            &env,
            "old",
            &[
                (0, vec![], 100),
                (8, vec![2], 5),
                (8, vec![4], 7),
                (9, vec![1, 1], 1),
                (9, vec![2, 3], 3),
            ],
            views.clone(),
            2,
        );
        let mut delta = VecStream::new(vec![
            (0, Point::origin(2), AggState::from_measure(11)),
            (8, Point::new(&[3], 2), AggState::from_measure(6)),
            (9, Point::new(&[2, 1], 2), AggState::from_measure(2)),
            (9, Point::new(&[2, 3], 2), AggState::from_measure(4)),
        ]);
        let new_fid = env.create_file("new").unwrap();
        let merged = merge_pack(
            env.pool().clone(),
            &old,
            &mut delta,
            new_fid,
            views,
            LeafFormat::Compressed,
        )
        .unwrap();
        assert_eq!(
            dump(&merged),
            vec![
                (0, vec![0, 0], 111),
                (8, vec![2, 0], 5),
                (8, vec![3, 0], 6),
                (8, vec![4, 0], 7),
                (9, vec![1, 1], 1),
                (9, vec![2, 1], 2),
                (9, vec![2, 3], 7),
            ]
        );
    }

    #[test]
    fn out_of_order_delta_is_rejected() {
        let env = StorageEnv::new("merge-order").unwrap();
        let views = vec![sum_view(1, 2)];
        let old = build(&env, "old", &[(1, vec![1, 1], 10)], views.clone(), 2);
        // (2,2) precedes (1,2) in packed (y,x) order — the stream regresses.
        let mut delta = VecStream::new(vec![
            (1, Point::new(&[2, 2], 2), AggState::from_measure(1)),
            (1, Point::new(&[1, 2], 2), AggState::from_measure(1)),
        ]);
        let new_fid = env.create_file("new").unwrap();
        let err = match merge_pack(
            env.pool().clone(),
            &old,
            &mut delta,
            new_fid,
            views,
            LeafFormat::Compressed,
        ) {
            Ok(_) => panic!("out-of-order delta must be rejected"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("strictly increasing"), "got: {err}");
    }

    #[test]
    fn duplicate_delta_entry_is_rejected() {
        let env = StorageEnv::new("merge-dup").unwrap();
        let views = vec![sum_view(1, 2)];
        let old = build(&env, "old", &[(1, vec![1, 1], 10)], views.clone(), 2);
        let mut delta = VecStream::new(vec![
            (1, Point::new(&[2, 2], 2), AggState::from_measure(1)),
            (1, Point::new(&[2, 2], 2), AggState::from_measure(1)),
        ]);
        let new_fid = env.create_file("new").unwrap();
        assert!(merge_pack(
            env.pool().clone(),
            &old,
            &mut delta,
            new_fid,
            views,
            LeafFormat::Compressed,
        )
        .is_err());
    }

    #[test]
    fn merge_into_empty_tree() {
        let env = StorageEnv::new("merge-empty").unwrap();
        let views = vec![sum_view(1, 1)];
        let old = build(&env, "old", &[], views.clone(), 2);
        let mut delta = VecStream::new(vec![
            (1, Point::new(&[1], 2), AggState::from_measure(4)),
            (1, Point::new(&[2], 2), AggState::from_measure(8)),
        ]);
        let new_fid = env.create_file("new").unwrap();
        let merged =
            merge_pack(env.pool().clone(), &old, &mut delta, new_fid, views, LeafFormat::Compressed)
                .unwrap();
        assert_eq!(merged.entry_count(), 2);
    }

    #[test]
    fn merge_with_empty_delta_copies() {
        let env = StorageEnv::new("merge-nodelta").unwrap();
        let views = vec![sum_view(1, 1)];
        let old = build(&env, "old", &[(1, vec![5], 50)], views.clone(), 2);
        let mut delta = VecStream::new(vec![]);
        let new_fid = env.create_file("new").unwrap();
        let merged =
            merge_pack(env.pool().clone(), &old, &mut delta, new_fid, views, LeafFormat::Compressed)
                .unwrap();
        assert_eq!(dump(&merged), vec![(1, vec![5, 0], 50)]);
    }

    #[test]
    fn merge_io_is_sequential_dominated() {
        let env = StorageEnv::new("merge-seqio").unwrap();
        let views = vec![sum_view(1, 2)];
        // Build a tree big enough to span many leaves.
        let mut entries = Vec::new();
        for y in 1..=200u64 {
            for x in 1..=200u64 {
                entries.push((1u32, vec![x, y], (x + y) as i64));
            }
        }
        let old = build(&env, "old", &entries, views.clone(), 2);
        env.pool().flush_all().unwrap();
        let before = env.snapshot();
        let delta_items: Vec<_> = (1..=200u64)
            .map(|x| (1u32, Point::new(&[x, 201], 2), AggState::from_measure(1)))
            .collect();
        let mut delta = VecStream::new(delta_items);
        let new_fid = env.create_file("new").unwrap();
        let merged =
            merge_pack(env.pool().clone(), &old, &mut delta, new_fid, views, LeafFormat::Compressed)
                .unwrap();
        env.pool().flush_all().unwrap();
        let d = env.snapshot().since(&before);
        assert_eq!(merged.entry_count(), 200 * 200 + 200);
        let seq = d.seq_reads + d.seq_writes;
        let rand = d.rand_reads + d.rand_writes;
        assert!(
            seq as f64 >= 5.0 * rand as f64,
            "merge-pack must be sequential-dominated: {d:?}"
        );
    }

    #[test]
    fn merged_tree_answers_queries() {
        let env = StorageEnv::new("merge-query").unwrap();
        let views = vec![sum_view(1, 2)];
        let old = build(&env, "old", &[(1, vec![1, 1], 1), (1, vec![2, 2], 2)], views.clone(), 2);
        let mut delta = VecStream::new(vec![(1, Point::new(&[1, 2], 2), AggState::from_measure(9))]);
        let new_fid = env.create_file("new").unwrap();
        let merged =
            merge_pack(env.pool().clone(), &old, &mut delta, new_fid, views, LeafFormat::Compressed)
                .unwrap();
        let mut got = Vec::new();
        merged
            .search(&Rect::new(&[1, 1], &[1, COORD_MAX]), |_, p, s| {
                got.push((p.coord(1), s.sum));
                true
            })
            .unwrap();
        assert_eq!(got, vec![(1, 1), (2, 9)]);
    }
}
