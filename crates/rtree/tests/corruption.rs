//! Failure injection: corrupted pages must surface as `CtError::Corrupt`,
//! never as panics or silent wrong answers.

use ct_common::{AggFn, AggState, Point, Rect, COORD_MAX};
use ct_rtree::{LeafFormat, PackedRTree, TreeBuilder, ViewInfo};
use ct_storage::{Page, PageId, StorageEnv};

fn build(env: &StorageEnv) -> (ct_storage::FileId, PackedRTree) {
    let fid = env.create_file("t").unwrap();
    let mut b = TreeBuilder::new(
        env.pool().clone(),
        fid,
        2,
        vec![ViewInfo { view: 1, arity: 2, agg: AggFn::Sum }],
        LeafFormat::Compressed,
    )
    .unwrap();
    for y in 1..=50u64 {
        for x in 1..=50u64 {
            b.push(1, Point::new(&[x, y], 2), &AggState::from_measure((x * y) as i64)).unwrap();
        }
    }
    let t = b.finish().unwrap();
    env.pool().flush_all().unwrap();
    (fid, t)
}

fn clobber(env: &StorageEnv, fid: ct_storage::FileId, pid: u64, byte: usize, value: u8) {
    let file = env.pool().file(fid).unwrap();
    let mut page = Page::zeroed();
    file.read_page(PageId(pid), &mut page).unwrap();
    page.bytes_mut()[byte] = value;
    file.write_page(PageId(pid), &page).unwrap();
}

#[test]
fn corrupt_meta_magic_fails_open() {
    let env = StorageEnv::new("corrupt-meta").unwrap();
    let (fid, t) = build(&env);
    drop(t);
    clobber(&env, fid, 0, 0, 0xFF);
    // Copy the clobbered meta page into a fresh file/pool so no cached
    // frame can mask the corruption.
    let env2 = StorageEnv::new("corrupt-meta2").unwrap();
    let file = env.pool().file(fid).unwrap();
    let mut page = Page::zeroed();
    file.read_page(PageId(0), &mut page).unwrap();
    let f2 = env2.create_file("copy").unwrap();
    let p = env2.pool().new_page(f2).unwrap();
    env2.pool()
        .with_page_mut(f2, p, |dst| dst.bytes_mut().copy_from_slice(page.bytes()))
        .unwrap();
    env2.pool().flush_all().unwrap();
    assert!(PackedRTree::open(env2.pool().clone(), f2).is_err());
}

#[test]
fn corrupt_leaf_tag_fails_search_without_panic() {
    let env = StorageEnv::new("corrupt-leaf").unwrap();
    let (fid, t) = build(&env);
    drop(t);
    // Page 1 is the first leaf; smash its tag. Use a fresh pool-free read
    // path by reopening after flushing (the pool may still hold the frame,
    // so clobber through the pool instead).
    env.pool().with_page_mut(fid, PageId(1), |p| p.bytes_mut()[0] = 0x77).unwrap();
    let t2 = PackedRTree::open(env.pool().clone(), fid).unwrap();
    let r = t2.search(&Rect::new(&[1, 1], &[COORD_MAX, COORD_MAX]), |_, _, _| true);
    assert!(r.is_err(), "corrupted node must be reported");
}

#[test]
fn truncated_compressed_leaf_is_detected() {
    let env = StorageEnv::new("corrupt-trunc").unwrap();
    let (fid, t) = build(&env);
    drop(t);
    // Inflate the recorded entry count of the first leaf beyond its data.
    env.pool()
        .with_page_mut(fid, PageId(1), |p| {
            let n = p.get_u16(2);
            p.put_u16(2, n + 500);
        })
        .unwrap();
    let t2 = PackedRTree::open(env.pool().clone(), fid).unwrap();
    let mut scanner = t2.scanner();
    let mut saw_error = false;
    loop {
        match scanner.next_entry() {
            Ok(Some(_)) => continue,
            Ok(None) => break,
            Err(_) => {
                saw_error = true;
                break;
            }
        }
    }
    assert!(saw_error, "truncated leaf must be reported, not mis-read");
}
