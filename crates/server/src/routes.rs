//! Route dispatch, request validation and response formatting.
//!
//! Every handler validates its input against the loaded schema *before*
//! touching the engine: unknown attribute names, out-of-domain values,
//! group-by/predicate overlap and underivable group-by sets all come back
//! as `400` with a JSON error body — never a panic, never a wedged worker.

use std::panic::{catch_unwind, AssertUnwindSafe};

use ct_common::query::{normalize_rows, QueryRow};
use ct_common::{AttrId, Catalog, CtError, SliceQuery};
use ct_cube::Relation;
use cubetree::ServingEngine;

use crate::admission::Admission;
use crate::compactor::IngestConfig;
use crate::http::{Request, Response};
use crate::json::{self, Json};

/// A handler failure: status + message, rendered as `{"error": "..."}`.
#[derive(Debug)]
pub struct ApiError {
    /// HTTP status (4xx for caller mistakes, 5xx for server faults).
    pub status: u16,
    /// Explanation sent to the client.
    pub message: String,
}

impl ApiError {
    /// A 400 Bad Request.
    pub fn bad_request(message: impl Into<String>) -> Self {
        ApiError { status: 400, message: message.into() }
    }

    /// A 500 Internal Server Error.
    pub fn internal(message: impl Into<String>) -> Self {
        ApiError { status: 500, message: message.into() }
    }

    /// Renders the error as a JSON response.
    pub fn into_response(self) -> Response {
        Response::json(
            self.status,
            format!("{{\"error\": {}}}", json::escape(&self.message)),
        )
    }
}

/// Requested response format for `POST /query`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Format {
    /// JSON object with `columns`/`rows` (the default).
    Json,
    /// RFC-4180-style CSV with a header row.
    Csv,
}

/// A validated query request: the typed query plus the response format.
#[derive(Debug)]
pub struct ValidatedQuery {
    /// The schema-checked slice query.
    pub query: SliceQuery,
    /// Group-by attribute names, for the response header/columns.
    pub columns: Vec<String>,
    /// Requested response format.
    pub format: Format,
}

/// Dispatches one request to its handler. Unknown paths get 404, known
/// paths with the wrong verb get 405. `refresh_lock` serializes writers:
/// reads proceed concurrently under MVCC, but only one merge-pack may run
/// at a time.
pub fn dispatch(
    engine: &dyn ServingEngine,
    admission: &Admission,
    refresh_lock: &std::sync::Mutex<()>,
    ingest: &IngestConfig,
    req: &Request,
) -> Response {
    let result = match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => handle_healthz(engine),
        ("GET", "/views") => handle_views(engine),
        ("GET", "/metrics") => handle_metrics(engine),
        ("POST", "/query") => return handle_query(engine, admission, req),
        ("POST", "/refresh") => {
            // A writer that panicked mid-refresh poisons this mutex. The
            // engine below it stays sound (generation MVCC commits via
            // atomic manifest rename, so a torn refresh never publishes),
            // which makes the poison flag pure noise: recover the guard and
            // keep serializing writers instead of panicking every later
            // /refresh on a long-dead failure.
            let _writer = refresh_lock.lock().unwrap_or_else(|e| e.into_inner());
            catch_unwind(AssertUnwindSafe(|| handle_refresh(engine, req))).unwrap_or_else(
                |_| Err(ApiError::internal("refresh panicked; no generation was published")),
            )
        }
        ("POST", "/ingest") => return handle_ingest(engine, admission, ingest, req),
        (_, "/healthz" | "/views" | "/metrics") => Err(ApiError {
            status: 405,
            message: format!("{} is GET-only", req.path),
        }),
        (_, "/query" | "/refresh" | "/ingest") => Err(ApiError {
            status: 405,
            message: format!("{} is POST-only", req.path),
        }),
        _ => Err(ApiError { status: 404, message: format!("no such path {}", req.path) }),
    };
    match result {
        Ok(resp) => resp,
        Err(e) => e.into_response(),
    }
}

fn handle_healthz(engine: &dyn ServingEngine) -> Result<Response, ApiError> {
    if !engine.loaded() {
        return Err(ApiError::internal("engine not loaded"));
    }
    let generation = engine.generation();
    Ok(Response::json(
        200,
        format!("{{\"status\": \"ok\", \"generation\": {generation}}}"),
    ))
}

fn handle_views(engine: &dyn ServingEngine) -> Result<Response, ApiError> {
    let (generation, infos) = engine
        .views()
        .map_err(|_| ApiError::internal("engine not loaded"))?;
    let mut views = Vec::new();
    for v in infos {
        let projection: Vec<String> =
            v.projection.iter().map(|n| json::escape(n)).collect();
        views.push(format!(
            "{{\"id\": {}, \"name\": {}, \"projection\": [{}], \"agg\": {}, \"entries\": {}, \"replica\": {}}}",
            v.id,
            json::escape(&v.name),
            projection.join(", "),
            json::escape(&format!("{:?}", v.agg)),
            v.entries,
            v.replica,
        ));
    }
    Ok(Response::json(
        200,
        format!("{{\"generation\": {generation}, \"views\": [{}]}}", views.join(", ")),
    ))
}

fn handle_metrics(engine: &dyn ServingEngine) -> Result<Response, ApiError> {
    Ok(Response::json(200, engine.metrics_json()))
}

/// The query path: parse → validate → admission queue → wait → format.
fn handle_query(
    engine: &dyn ServingEngine,
    admission: &Admission,
    req: &Request,
) -> Response {
    let validated = match validate_query_request(engine, req) {
        Ok(v) => v,
        Err(e) => return e.into_response(),
    };
    let rx = match admission.submit(validated.query) {
        Ok(rx) => rx,
        Err(crate::admission::SubmitError::Overloaded { retry_after_secs }) => {
            return Response::json(
                429,
                "{\"error\": \"admission queue full, retry later\"}".to_string(),
            )
            .with_header("retry-after", retry_after_secs.to_string());
        }
        Err(crate::admission::SubmitError::ShuttingDown) => {
            return Response::json(
                503,
                "{\"error\": \"server is shutting down\"}".to_string(),
            );
        }
    };
    match rx.recv() {
        Ok(Ok(answer)) => {
            let rows = normalize_rows(answer.rows);
            match validated.format {
                Format::Json => Response::json(
                    200,
                    query_rows_json(answer.generation, &validated.columns, &rows),
                ),
                Format::Csv => Response::csv(query_rows_csv(&validated.columns, &rows))
                    .with_header("x-generation", answer.generation.to_string()),
            }
        }
        Ok(Err(message)) => ApiError::internal(message).into_response(),
        Err(_) => ApiError::internal("batch executor went away").into_response(),
    }
}

/// Renders the JSON body for a query answer. Rows are emitted as arrays
/// `[key..., agg]` aligned with `columns` + a trailing `"agg"` column.
fn query_rows_json(generation: u64, columns: &[String], rows: &[QueryRow]) -> String {
    let mut cols: Vec<String> = columns.iter().map(|c| json::escape(c)).collect();
    cols.push("\"agg\"".to_string());
    let mut body = format!(
        "{{\"generation\": {generation}, \"columns\": [{}], \"row_count\": {}, \"rows\": [",
        cols.join(", "),
        rows.len()
    );
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            body.push_str(", ");
        }
        body.push('[');
        for k in &row.key {
            body.push_str(&k.to_string());
            body.push_str(", ");
        }
        body.push_str(&json::number(row.agg));
        body.push(']');
    }
    body.push_str("]}");
    body
}

/// Quotes one CSV field per RFC 4180: fields containing a comma, a double
/// quote, or a line break are wrapped in double quotes with inner quotes
/// doubled; anything else passes through verbatim.
fn csv_field(field: &str) -> String {
    if field.contains(['"', ',', '\r', '\n']) {
        let mut out = String::with_capacity(field.len() + 2);
        out.push('"');
        for ch in field.chars() {
            if ch == '"' {
                out.push('"');
            }
            out.push(ch);
        }
        out.push('"');
        out
    } else {
        field.to_string()
    }
}

/// Renders the CSV body: a header of group-by names + `agg`, then one line
/// per row. Data cells are integers and shortest-round-trip floats, which
/// never need quoting; header cells are attribute names, which may (the
/// schema does not forbid commas or quotes in names), so each one goes
/// through the RFC-4180 escaper.
fn query_rows_csv(columns: &[String], rows: &[QueryRow]) -> String {
    let mut body = String::new();
    for c in columns {
        body.push_str(&csv_field(c));
        body.push(',');
    }
    body.push_str("agg\r\n");
    for row in rows {
        for k in &row.key {
            body.push_str(&k.to_string());
            body.push(',');
        }
        body.push_str(&json::number(row.agg));
        body.push_str("\r\n");
    }
    body
}

/// Parses and validates a `POST /query` body against the loaded schema.
///
/// Accepted shape:
/// ```json
/// {"group_by": ["suppkey"], "where": {"partkey": 3},
///  "ranges": {"timekey": [5, 10]}, "format": "csv"}
/// ```
/// Format precedence: body `"format"` > `?format=` query parameter >
/// `Accept: text/csv` header; default JSON.
///
/// # Errors
/// 400 for malformed JSON, unknown keys/attributes, out-of-domain values,
/// grouped-and-sliced overlap, or a group-by no materialized view derives.
pub fn validate_query_request(
    engine: &dyn ServingEngine,
    req: &Request,
) -> Result<ValidatedQuery, ApiError> {
    let catalog = engine.catalog();
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| ApiError::bad_request("body is not UTF-8"))?;
    let doc = Json::parse(text)
        .map_err(|e| ApiError::bad_request(format!("body is not valid JSON: {e}")))?;
    let members = doc
        .as_object()
        .ok_or_else(|| ApiError::bad_request("body must be a JSON object"))?;
    for (key, _) in members {
        if !matches!(key.as_str(), "group_by" | "where" | "ranges" | "format") {
            return Err(ApiError::bad_request(format!(
                "unknown key {key:?} (expected group_by, where, ranges, format)"
            )));
        }
    }

    let mut used: Vec<AttrId> = Vec::new();
    let mut claim = |id: AttrId, name: &str| -> Result<(), ApiError> {
        if used.contains(&id) {
            return Err(ApiError::bad_request(format!(
                "attribute {name:?} appears more than once across group_by/where/ranges"
            )));
        }
        used.push(id);
        Ok(())
    };

    let mut group_by = Vec::new();
    let mut columns = Vec::new();
    if let Some(g) = doc.get("group_by") {
        let items = g
            .as_array()
            .ok_or_else(|| ApiError::bad_request("group_by must be an array of names"))?;
        for item in items {
            let name = item
                .as_str()
                .ok_or_else(|| ApiError::bad_request("group_by entries must be strings"))?;
            let id = resolve_attr(catalog, name)?;
            claim(id, name)?;
            group_by.push(id);
            columns.push(name.to_string());
        }
    }

    let mut predicates = Vec::new();
    if let Some(w) = doc.get("where") {
        let members = w
            .as_object()
            .ok_or_else(|| ApiError::bad_request("where must be an object of name: value"))?;
        for (name, value) in members {
            let id = resolve_attr(catalog, name)?;
            claim(id, name)?;
            let v = value.as_u64().ok_or_else(|| {
                ApiError::bad_request(format!("predicate on {name:?} must be an integer"))
            })?;
            check_domain(catalog, id, name, v)?;
            predicates.push((id, v));
        }
    }

    let mut ranges = Vec::new();
    if let Some(r) = doc.get("ranges") {
        let members = r
            .as_object()
            .ok_or_else(|| ApiError::bad_request("ranges must be an object of name: [lo, hi]"))?;
        for (name, value) in members {
            let id = resolve_attr(catalog, name)?;
            claim(id, name)?;
            let pair = value.as_array().filter(|a| a.len() == 2).ok_or_else(|| {
                ApiError::bad_request(format!("range on {name:?} must be a [lo, hi] pair"))
            })?;
            let (lo, hi) = match (pair[0].as_u64(), pair[1].as_u64()) {
                (Some(lo), Some(hi)) => (lo, hi),
                _ => {
                    return Err(ApiError::bad_request(format!(
                        "range bounds on {name:?} must be integers"
                    )))
                }
            };
            if lo > hi {
                return Err(ApiError::bad_request(format!(
                    "range on {name:?} has lo {lo} > hi {hi}"
                )));
            }
            check_domain(catalog, id, name, lo)?;
            check_domain(catalog, id, name, hi)?;
            ranges.push((id, lo, hi));
        }
    }

    if group_by.is_empty() && predicates.is_empty() && ranges.is_empty() {
        return Err(ApiError::bad_request(
            "query must name at least one attribute in group_by, where or ranges",
        ));
    }

    // Fields are pre-checked disjoint (the `claim` pass), so the struct
    // literal upholds SliceQuery::new's contract without its panics.
    let query = SliceQuery { group_by, predicates, ranges };

    // Planability check (covers "bad dimension arity": a group-by set no
    // materialized view derives). Planned against the current generation;
    // views are never dropped by refresh, so a plan that exists now exists
    // in the generation(s) the batch eventually pins.
    if let Err(e) = engine.plan_check(&query) {
        return Err(match e {
            CtError::Unsupported(msg) => ApiError::bad_request(msg),
            other => ApiError::internal(format!("planning failed: {other}")),
        });
    }

    let format = requested_format(req, &doc)?;
    Ok(ValidatedQuery { query, columns, format })
}

fn resolve_attr(catalog: &Catalog, name: &str) -> Result<AttrId, ApiError> {
    catalog.attr_by_name(name).ok_or_else(|| {
        let known: Vec<&str> = (0..catalog.attr_count())
            .map(|i| catalog.attr(AttrId(i as u16)).name.as_str())
            .collect();
        ApiError::bad_request(format!(
            "unknown attribute {name:?} (schema has: {})",
            known.join(", ")
        ))
    })
}

fn check_domain(catalog: &Catalog, id: AttrId, name: &str, v: u64) -> Result<(), ApiError> {
    let card = catalog.attr(id).cardinality;
    if v < 1 || v > card {
        return Err(ApiError::bad_request(format!(
            "value {v} out of domain for {name:?} (1..={card})"
        )));
    }
    Ok(())
}

fn requested_format(req: &Request, doc: &Json) -> Result<Format, ApiError> {
    if let Some(f) = doc.get("format") {
        return match f.as_str() {
            Some("json") => Ok(Format::Json),
            Some("csv") => Ok(Format::Csv),
            _ => Err(ApiError::bad_request("format must be \"json\" or \"csv\"")),
        };
    }
    if let Some(f) = req.query_param("format") {
        return match f {
            "json" => Ok(Format::Json),
            "csv" => Ok(Format::Csv),
            _ => Err(ApiError::bad_request("?format= must be json or csv")),
        };
    }
    if req.header("accept").is_some_and(|a| a.contains("text/csv")) {
        return Ok(Format::Csv);
    }
    Ok(Format::Json)
}

/// Handles `POST /refresh`: parse the delta, merge-pack the next generation
/// concurrently with in-flight reads (generation MVCC), report the new
/// generation number.
///
/// Accepted shape:
/// ```json
/// {"attrs": ["partkey", "suppkey", "timekey"],
///  "rows": [[1, 2, 3, 40], [2, 2, 3, 5]]}
/// ```
/// where each row lists one key per attribute followed by the measure.
fn handle_refresh(engine: &dyn ServingEngine, req: &Request) -> Result<Response, ApiError> {
    let delta = parse_fact_body(engine.catalog(), req, "refresh")?;
    let applied = delta.len();
    engine.refresh(&delta).map_err(|e| match e {
        CtError::InvalidArgument(msg) | CtError::Unsupported(msg) => ApiError::bad_request(msg),
        other => ApiError::internal(format!("refresh failed: {other}")),
    })?;
    if !engine.loaded() {
        return Err(ApiError::internal("engine not loaded"));
    }
    let generation = engine.generation();
    Ok(Response::json(
        200,
        format!("{{\"generation\": {generation}, \"applied_rows\": {applied}}}"),
    ))
}

/// Parses the fact-row body shared by `POST /refresh` and `POST /ingest`:
/// `{"attrs": [names...], "rows": [[keys..., measure], ...]}` where each
/// row lists one key per attribute followed by the measure.
fn parse_fact_body(
    catalog: &Catalog,
    req: &Request,
    what: &str,
) -> Result<Relation, ApiError> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| ApiError::bad_request("body is not UTF-8"))?;
    let doc = Json::parse(text)
        .map_err(|e| ApiError::bad_request(format!("body is not valid JSON: {e}")))?;

    let attr_names = doc
        .get("attrs")
        .and_then(Json::as_array)
        .ok_or_else(|| ApiError::bad_request(format!("{what} body needs an \"attrs\" array")))?;
    let mut attrs = Vec::new();
    for a in attr_names {
        let name =
            a.as_str().ok_or_else(|| ApiError::bad_request("attrs entries must be strings"))?;
        let id = resolve_attr(catalog, name)?;
        if attrs.contains(&id) {
            return Err(ApiError::bad_request(format!("duplicate attribute {name:?} in attrs")));
        }
        attrs.push(id);
    }
    if attrs.is_empty() {
        return Err(ApiError::bad_request("attrs must not be empty"));
    }

    let rows = doc
        .get("rows")
        .and_then(Json::as_array)
        .ok_or_else(|| ApiError::bad_request(format!("{what} body needs a \"rows\" array")))?;
    let mut keys = Vec::with_capacity(rows.len() * attrs.len());
    let mut measures = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let cells = row.as_array().filter(|c| c.len() == attrs.len() + 1).ok_or_else(|| {
            ApiError::bad_request(format!(
                "row {i} must be an array of {} keys plus one measure",
                attrs.len()
            ))
        })?;
        for (j, cell) in cells[..attrs.len()].iter().enumerate() {
            let v = cell.as_u64().ok_or_else(|| {
                ApiError::bad_request(format!("row {i} key {j} must be an integer"))
            })?;
            let name = &catalog.attr(attrs[j]).name;
            check_domain(catalog, attrs[j], name, v)?;
            keys.push(v);
        }
        let m = cells[attrs.len()]
            .as_i64()
            .ok_or_else(|| ApiError::bad_request(format!("row {i} measure must be an integer")))?;
        measures.push(m);
    }

    Ok(Relation::from_fact(attrs, keys, &measures))
}

/// Handles `POST /ingest`: stream fact rows into the in-memory delta tier.
/// Accepted rows are visible to queries immediately (merged on top of the
/// pinned generation) and move into the packed trees at the next background
/// compaction. Body shape is identical to `POST /refresh`.
///
/// Backpressure mirrors the read path's admission control: `503` while the
/// server is shutting down (no new rows once the final drain may have
/// started), `429` + `Retry-After` once the resident tier exceeds
/// [`IngestConfig::hard_max_rows`] — the compactor is behind, so the client
/// should back off rather than grow the memtables without bound.
fn handle_ingest(
    engine: &dyn ServingEngine,
    admission: &Admission,
    config: &IngestConfig,
    req: &Request,
) -> Response {
    if admission.is_shutting_down() {
        return Response::json(503, "{\"error\": \"server is shutting down\"}".to_string());
    }
    let resident =
        engine.delta_stats().map_or(0, |s| s.resident_rows());
    if resident >= config.hard_max_rows {
        return Response::json(
            429,
            format!(
                "{{\"error\": \"delta tier full ({resident} rows resident), retry later\"}}"
            ),
        )
        .with_header("retry-after", config.retry_after_secs.to_string());
    }
    let rows = match parse_fact_body(engine.catalog(), req, "ingest") {
        Ok(rows) => rows,
        Err(e) => return e.into_response(),
    };
    let accepted = match engine.ingest(&rows) {
        Ok(n) => n,
        Err(e) => {
            return match e {
                CtError::InvalidArgument(msg) | CtError::Unsupported(msg) => {
                    ApiError::bad_request(msg)
                }
                other => ApiError::internal(format!("ingest failed: {other}")),
            }
            .into_response()
        }
    };
    let stats = engine.delta_stats();
    let (resident, sealed) =
        stats.map_or((0, 0), |s| (s.resident_rows(), s.sealed_tiers as u64));
    let generation = engine.generation();
    Response::json(
        200,
        format!(
            "{{\"accepted_rows\": {accepted}, \"resident_rows\": {resident}, \
             \"sealed_tiers\": {sealed}, \"generation\": {generation}}}"
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_common::{AggFn, ViewDef};
    use cubetree::engine::{CubetreeConfig, CubetreeEngine, RolapEngine};
    use std::sync::Arc;

    fn engine() -> CubetreeEngine {
        let mut catalog = Catalog::new();
        let p = catalog.add_attr("partkey", 10);
        let s = catalog.add_attr("suppkey", 5);
        let views = vec![
            ViewDef::new(0, vec![p, s], AggFn::Sum),
            ViewDef::new(1, vec![s], AggFn::Sum),
        ];
        let mut engine = CubetreeEngine::new(catalog, CubetreeConfig::new(views)).unwrap();
        let fact =
            Relation::from_fact(vec![p, s], vec![1, 1, 2, 2, 3, 1], &[10, 20, 30]);
        engine.load(&fact).unwrap();
        engine
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".to_string(),
            path: path.to_string(),
            query_string: String::new(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn post_query(body: &str) -> Request {
        post("/query", body)
    }

    struct Ctx {
        engine: Arc<CubetreeEngine>,
        admission: crate::admission::Admission,
        refresh_lock: std::sync::Mutex<()>,
        ingest: IngestConfig,
    }

    fn ctx() -> Ctx {
        let engine = Arc::new(engine());
        let admission = crate::admission::Admission::start(
            engine.clone(),
            crate::admission::AdmissionConfig::default(),
            None,
        );
        Ctx { engine, admission, refresh_lock: std::sync::Mutex::new(()), ingest: IngestConfig::default() }
    }

    impl Ctx {
        fn dispatch(&self, req: &Request) -> Response {
            dispatch(
                self.engine.as_ref(),
                &self.admission,
                &self.refresh_lock,
                &self.ingest,
                req,
            )
        }
    }

    fn body_text(resp: &Response) -> String {
        String::from_utf8(resp.body.clone()).unwrap()
    }

    #[test]
    fn valid_request_produces_a_typed_query() {
        let e = engine();
        let v = validate_query_request(
            &e,
            &post_query(r#"{"group_by": ["suppkey"], "where": {"partkey": 3}}"#),
        )
        .unwrap();
        assert_eq!(v.columns, vec!["suppkey".to_string()]);
        assert_eq!(v.query.group_by.len(), 1);
        assert_eq!(v.query.predicates, vec![(AttrId(0), 3)]);
        assert_eq!(v.format, Format::Json);
    }

    #[test]
    fn format_precedence_body_over_query_param_over_accept() {
        let e = engine();
        let mut req = post_query(r#"{"group_by": ["suppkey"], "format": "csv"}"#);
        req.query_string = "format=json".to_string();
        assert_eq!(validate_query_request(&e, &req).unwrap().format, Format::Csv);
        let mut req = post_query(r#"{"group_by": ["suppkey"]}"#);
        req.query_string = "format=csv".to_string();
        req.headers.push(("accept".to_string(), "application/json".to_string()));
        assert_eq!(validate_query_request(&e, &req).unwrap().format, Format::Csv);
        let mut req = post_query(r#"{"group_by": ["suppkey"]}"#);
        req.headers.push(("accept".to_string(), "text/csv".to_string()));
        assert_eq!(validate_query_request(&e, &req).unwrap().format, Format::Csv);
    }

    #[test]
    fn invalid_requests_are_400_with_reasons() {
        let e = engine();
        for (body, expect) in [
            ("not json at all", "not valid JSON"),
            ("[1, 2]", "must be a JSON object"),
            ("{}", "at least one attribute"),
            (r#"{"bogus_key": 1}"#, "unknown key"),
            (r#"{"group_by": ["nope"]}"#, "unknown attribute"),
            (r#"{"group_by": "suppkey"}"#, "must be an array"),
            (r#"{"group_by": [7]}"#, "must be strings"),
            (r#"{"where": {"partkey": 99}}"#, "out of domain"),
            (r#"{"where": {"partkey": 0}}"#, "out of domain"),
            (r#"{"where": {"partkey": 1.5}}"#, "must be an integer"),
            (r#"{"group_by": ["suppkey"], "where": {"suppkey": 1}}"#, "more than once"),
            (r#"{"ranges": {"partkey": [5, 2]}}"#, "lo 5 > hi 2"),
            (r#"{"ranges": {"partkey": [1]}}"#, "[lo, hi] pair"),
            (r#"{"group_by": ["suppkey"], "format": "xml"}"#, "format must be"),
        ] {
            let err = validate_query_request(&e, &post_query(body)).unwrap_err();
            assert_eq!(err.status, 400, "body {body:?} → {}", err.message);
            assert!(err.message.contains(expect), "body {body:?} → {}", err.message);
        }
    }

    #[test]
    fn underivable_group_by_is_400_not_panic() {
        // partkey alone: V{partkey,suppkey} derives it, so that plans; but a
        // view set without a covering parent must 400. Build an engine whose
        // only view is V{suppkey}.
        let mut catalog = Catalog::new();
        let p = catalog.add_attr("partkey", 10);
        let s = catalog.add_attr("suppkey", 5);
        let views = vec![ViewDef::new(0, vec![s], AggFn::Sum)];
        let mut e = CubetreeEngine::new(catalog, CubetreeConfig::new(views)).unwrap();
        e.load(&Relation::from_fact(vec![p, s], vec![1, 1], &[10])).unwrap();
        let err = validate_query_request(&e, &post_query(r#"{"group_by": ["partkey"]}"#))
            .unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("no materialized view"));
    }

    #[test]
    fn csv_rendering_is_plain_and_crlf() {
        let rows = vec![
            QueryRow { key: vec![1], agg: 30.0 },
            QueryRow { key: vec![2], agg: 0.5 },
        ];
        let csv = query_rows_csv(&["suppkey".to_string()], &rows);
        assert_eq!(csv, "suppkey,agg\r\n1,30\r\n2,0.5\r\n");
    }

    #[test]
    fn refresh_survives_a_poisoned_writer_lock() {
        let c = ctx();
        // Poison the writer lock the way a panicking handler thread would.
        {
            let lock_ref: &std::sync::Mutex<()> = &c.refresh_lock;
            std::thread::scope(|s| {
                let _ = s
                    .spawn(|| {
                        let _guard = lock_ref.lock().unwrap();
                        panic!("simulated writer panic");
                    })
                    .join();
            });
        }
        assert!(c.refresh_lock.lock().is_err(), "test setup must actually poison the lock");
        // Old code: `.expect("refresh lock poisoned")` panics here, killing
        // the connection thread. New code: the guard is recovered and the
        // refresh applies normally.
        let resp = c.dispatch(&post(
            "/refresh",
            r#"{"attrs": ["partkey", "suppkey"], "rows": [[4, 4, 7]]}"#,
        ));
        assert_eq!(resp.status, 200, "{}", body_text(&resp));
        assert!(body_text(&resp).contains("\"applied_rows\": 1"));
        // And it keeps serving: a second refresh also succeeds.
        let resp = c.dispatch(&post(
            "/refresh",
            r#"{"attrs": ["partkey", "suppkey"], "rows": [[5, 5, 8]]}"#,
        ));
        assert_eq!(resp.status, 200, "{}", body_text(&resp));
    }

    #[test]
    fn ingest_accepts_rows_and_reports_residency() {
        let c = ctx();
        let resp = c.dispatch(&post(
            "/ingest",
            r#"{"attrs": ["partkey", "suppkey"], "rows": [[4, 4, 7], [5, 5, 8]]}"#,
        ));
        assert_eq!(resp.status, 200, "{}", body_text(&resp));
        let body = body_text(&resp);
        assert!(body.contains("\"accepted_rows\": 2"), "{body}");
        assert!(body.contains("\"resident_rows\": 2"), "{body}");
        // The rows are visible to the very next query, pre-compaction.
        let q = c.dispatch(&post_query(r#"{"where": {"partkey": 4}}"#));
        assert_eq!(q.status, 200, "{}", body_text(&q));
        assert!(body_text(&q).contains("[7]"), "{}", body_text(&q));
        // Bad rows still 400 like /refresh.
        let bad = c.dispatch(&post(
            "/ingest",
            r#"{"attrs": ["partkey"], "rows": [[99, 1]]}"#,
        ));
        assert_eq!(bad.status, 400, "{}", body_text(&bad));
        // GET /ingest is 405.
        let mut get = post("/ingest", "");
        get.method = "GET".to_string();
        assert_eq!(c.dispatch(&get).status, 405);
    }

    #[test]
    fn ingest_backpressure_and_shutdown() {
        let mut c = ctx();
        c.ingest.hard_max_rows = 1;
        let ok = c.dispatch(&post(
            "/ingest",
            r#"{"attrs": ["partkey", "suppkey"], "rows": [[4, 4, 7]]}"#,
        ));
        assert_eq!(ok.status, 200, "{}", body_text(&ok));
        // Resident rows now ≥ hard_max_rows: the next ingest is refused
        // with backpressure, not absorbed.
        let full = c.dispatch(&post(
            "/ingest",
            r#"{"attrs": ["partkey", "suppkey"], "rows": [[5, 5, 8]]}"#,
        ));
        assert_eq!(full.status, 429, "{}", body_text(&full));
        assert!(
            full.extra_headers.iter().any(|(k, _)| k == "retry-after"),
            "429 advertises retry-after"
        );
        // After shutdown begins, ingest answers 503 regardless of capacity.
        c.admission.shutdown();
        let down = c.dispatch(&post(
            "/ingest",
            r#"{"attrs": ["partkey", "suppkey"], "rows": [[6, 1, 9]]}"#,
        ));
        assert_eq!(down.status, 503, "{}", body_text(&down));
    }

    #[test]
    fn csv_field_quotes_per_rfc4180() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field(""), "");
        assert_eq!(csv_field("has,comma"), "\"has,comma\"");
        assert_eq!(csv_field("has\"quote"), "\"has\"\"quote\"");
        assert_eq!(csv_field("line\nbreak"), "\"line\nbreak\"");
        assert_eq!(csv_field("cr\rfield"), "\"cr\rfield\"");
        assert_eq!(csv_field("\"already\""), "\"\"\"already\"\"\"");
    }

    /// A strict RFC-4180 reader for one line, used to prove the writer and
    /// a conforming consumer agree.
    fn parse_csv_line(line: &str) -> Vec<String> {
        let mut fields = Vec::new();
        let mut chars = line.chars().peekable();
        loop {
            let mut field = String::new();
            if chars.peek() == Some(&'"') {
                chars.next();
                loop {
                    match chars.next() {
                        Some('"') if chars.peek() == Some(&'"') => {
                            chars.next();
                            field.push('"');
                        }
                        Some('"') => break,
                        Some(ch) => field.push(ch),
                        None => panic!("unterminated quoted field"),
                    }
                }
            } else {
                while let Some(&ch) = chars.peek() {
                    if ch == ',' {
                        break;
                    }
                    field.push(ch);
                    chars.next();
                }
            }
            fields.push(field);
            match chars.next() {
                Some(',') => continue,
                None => return fields,
                Some(ch) => panic!("unexpected {ch:?} after field"),
            }
        }
    }

    #[test]
    fn hostile_column_names_round_trip_csv_and_match_json() {
        // Attribute names with CSV metacharacters: commas, quotes, and a
        // line break. Old code emitted them raw, splitting the header into
        // the wrong number of columns.
        let columns = vec![
            "region, detail".to_string(),
            "the \"supp\" key".to_string(),
            "two\nlines".to_string(),
        ];
        let rows = vec![QueryRow { key: vec![1, 2, 3], agg: 4.5 }];
        let csv = query_rows_csv(&columns, &rows);
        let mut lines = csv.split("\r\n");
        let header = parse_csv_line(lines.next().unwrap());
        assert_eq!(header.len(), columns.len() + 1, "header keeps one field per column");
        assert_eq!(&header[..columns.len()], &columns[..], "names survive the round trip");
        assert_eq!(header[columns.len()], "agg");
        // The header carries exactly the same column names as the JSON
        // rendering of the same answer (JSON has its own escaping).
        let json_body = query_rows_json(0, &columns, &rows);
        let doc = Json::parse(&json_body).unwrap();
        let json_cols: Vec<String> = doc
            .get("columns")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .map(|c| c.as_str().unwrap().to_string())
            .collect();
        assert_eq!(&json_cols[..columns.len()], &header[..columns.len()]);
        let data = parse_csv_line(lines.next().unwrap());
        assert_eq!(data, vec!["1", "2", "3", "4.5"]);
    }

    #[test]
    fn json_rendering_matches_shape() {
        let rows = vec![QueryRow { key: vec![1, 2], agg: 7.25 }];
        let body = query_rows_json(3, &["a".to_string(), "b".to_string()], &rows);
        assert_eq!(
            body,
            "{\"generation\": 3, \"columns\": [\"a\", \"b\", \"agg\"], \
             \"row_count\": 1, \"rows\": [[1, 2, 7.25]]}"
        );
        Json::parse(&body).expect("emitted JSON parses");
    }
}
