//! # ct-server — HTTP serving layer for the Cubetree engine
//!
//! A long-lived binary front end over the typed [`cubetree`] engine API:
//! hand-rolled HTTP/1.1 on [`std::net`] (the workspace is offline — no
//! tokio, no hyper), JSON and CSV response formats, and an
//! admission-controlled batching query path.
//!
//! ## Endpoints
//!
//! | method | path | purpose |
//! |---|---|---|
//! | `GET` | `/healthz` | liveness + current generation |
//! | `GET` | `/views` | materialized views of the pinned generation |
//! | `GET` | `/metrics` | [`ct_obs`] metrics snapshot as JSON |
//! | `POST` | `/query` | one slice query (JSON or CSV answer) |
//! | `POST` | `/refresh` | merge-pack a delta; readers keep answering |
//! | `POST` | `/ingest` | stream fact rows into the in-memory delta tier |
//!
//! ## Architecture
//!
//! Connections are handled thread-per-connection with keep-alive. Query
//! requests are validated against the loaded schema, then enqueued into a
//! bounded [`admission`] queue; a single batch-former thread drains the
//! queue into batches and executes each against one pinned generation via
//! the engine's scheduler, so concurrent clients share leaf passes and
//! packed-order sweeps. A full queue answers `429` + `Retry-After` instead
//! of queueing without bound. `POST /refresh` runs the generation-MVCC
//! merge-pack concurrently with in-flight reads: queries admitted before
//! the flip answer from the old generation, queries after from the new,
//! and every response is stamped with the generation it answered from.
//!
//! `POST /ingest` is the streaming write path: rows land in the engine's
//! in-memory delta tier and are visible to the very next query (merged on
//! top of the pinned generation's tree answers), long before any
//! merge-pack runs. A background [`compactor`] thread folds the tier into
//! the packed trees when it exceeds size/age thresholds, and a hard cap on
//! resident rows turns a lagging compactor into `429` backpressure instead
//! of unbounded memory growth. Shutdown drains: the compactor's final
//! merge-pack persists every acknowledged ingest.
//!
//! ```no_run
//! use std::sync::Arc;
//! use ct_common::{AggFn, Catalog, ViewDef};
//! use ct_cube::Relation;
//! use cubetree::engine::{CubetreeConfig, CubetreeEngine, RolapEngine};
//! use ct_server::{CtServer, ServerConfig};
//!
//! let mut catalog = Catalog::new();
//! let p = catalog.add_attr("partkey", 100);
//! let s = catalog.add_attr("suppkey", 10);
//! let views = vec![ViewDef::new(0, vec![p, s], AggFn::Sum)];
//! let mut engine = CubetreeEngine::new(catalog, CubetreeConfig::new(views)).unwrap();
//! engine.load(&Relation::from_fact(vec![p, s], vec![1, 1], &[10])).unwrap();
//! let server = CtServer::start(Arc::new(engine), ServerConfig::default()).unwrap();
//! println!("serving on http://{}", server.addr());
//! server.shutdown();
//! ```

pub mod admission;
pub mod cache;
pub mod compactor;
pub mod http;
pub mod json;
pub mod routes;

use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ct_common::{CtError, Result};
use cubetree::ServingEngine;

use admission::{Admission, AdmissionConfig};
use cache::{AnswerCache, CacheConfig};
use compactor::{Compactor, IngestConfig};
use http::{read_request, Response};

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port `0` asks the OS for an ephemeral port (the bound
    /// address is reported by [`ServerHandle::addr`]).
    pub addr: String,
    /// Admission-queue and batch-former tuning.
    pub admission: AdmissionConfig,
    /// Streaming-ingestion thresholds and backpressure tuning.
    pub ingest: IngestConfig,
    /// Generation-keyed answer-cache tuning (disable switch, byte budget,
    /// admission threshold).
    pub cache: CacheConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            admission: AdmissionConfig::default(),
            ingest: IngestConfig::default(),
            cache: CacheConfig::default(),
        }
    }
}

struct ServerState {
    engine: Arc<dyn ServingEngine>,
    admission: Admission,
    compactor: Compactor,
    ingest: IngestConfig,
    refresh_lock: Mutex<()>,
    stop: AtomicBool,
}

/// The serving layer. [`CtServer::start`] binds, spawns the accept loop and
/// the batch former, and returns a handle; [`ServerHandle::shutdown`] (or
/// dropping the handle) stops everything.
pub struct CtServer;

/// Handle to a running server.
pub struct ServerHandle {
    state: Arc<ServerState>,
    addr: std::net::SocketAddr,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl CtServer {
    /// Binds `config.addr` and starts serving `engine` — the single
    /// [`cubetree::CubetreeEngine`] or a [`cubetree::ShardedEngine`]
    /// (`Arc<ConcreteEngine>` coerces at the call site); routes fan out
    /// across shards and merge before serialization.
    ///
    /// # Errors
    /// [`CtError::InvalidArgument`] if the engine has not been loaded;
    /// [`CtError::Io`] if the listener cannot bind.
    pub fn start(engine: Arc<dyn ServingEngine>, config: ServerConfig) -> Result<ServerHandle> {
        if !engine.loaded() {
            return Err(CtError::invalid("load the engine before starting the server"));
        }
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let cache = AnswerCache::from_config(&config.cache, engine.recorder());
        let admission = Admission::start(Arc::clone(&engine), config.admission, cache);
        let compactor = Compactor::start(Arc::clone(&engine), config.ingest.clone());
        let state = Arc::new(ServerState {
            engine,
            admission,
            compactor,
            ingest: config.ingest,
            refresh_lock: Mutex::new(()),
            stop: AtomicBool::new(false),
        });
        let accept_state = Arc::clone(&state);
        let accept_thread = std::thread::Builder::new()
            .name("ct-server-accept".to_string())
            .spawn(move || accept_loop(listener, accept_state))
            .map_err(|e| CtError::invalid(format!("spawn accept thread: {e}")))?;
        Ok(ServerHandle { state, addr, accept_thread: Some(accept_thread) })
    }
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stops accepting, drains the admission queue, and joins the accept
    /// loop. Idempotent.
    pub fn shutdown(&self) {
        if self.state.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Order matters: stopping admission first flips the shared shutdown
        // flag, so /ingest starts answering 503 before the compactor's
        // final drain runs — no acknowledged row can slip in behind the
        // drain and be lost on exit.
        self.state.admission.shutdown();
        self.state.compactor.shutdown();
        // The accept loop blocks in accept(); poke it awake with a
        // throwaway connection so it observes the stop flag.
        let _ = TcpStream::connect(self.addr);
    }

    /// Like [`ServerHandle::shutdown`], but also joins the accept thread
    /// (consumes the handle).
    pub fn join(mut self) {
        self.shutdown();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: TcpListener, state: Arc<ServerState>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(_) => {
                if state.stop.load(Ordering::SeqCst) {
                    return;
                }
                // Back off before retrying: accept errors can be persistent
                // (EMFILE under thread-per-connection), and an immediate
                // retry would busy-spin a core at 100%.
                std::thread::sleep(Duration::from_millis(20));
                continue;
            }
        };
        if state.stop.load(Ordering::SeqCst) {
            return;
        }
        let conn_state = Arc::clone(&state);
        // Thread-per-connection: clients keep their connection alive for
        // many requests, so thread churn is per-client, not per-request.
        let _ = std::thread::Builder::new()
            .name("ct-server-conn".to_string())
            .spawn(move || connection_loop(stream, conn_state));
    }
}

/// Serves one keep-alive connection until the peer closes, asks to close,
/// sends something malformed, or the server stops.
fn connection_loop(stream: TcpStream, state: Arc<ServerState>) {
    // A read timeout lets the loop notice server shutdown even while a
    // client holds its connection open idle.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_nodelay(true);
    let recorder = state.engine.recorder().clone();
    let requests = recorder.counter("server.http.requests");
    let latency_us = recorder.histogram("server.http.latency_us");
    let mut reader = BufReader::new(stream);
    loop {
        if state.stop.load(Ordering::SeqCst) {
            return;
        }
        let req = match read_request(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => return, // clean EOF between requests
            // Idle keep-alive poll (read timeout before any request byte):
            // loop around so the stop flag is rechecked.
            Err(e) if e.is_idle_timeout() => continue,
            // Other stream failures (reset, broken pipe): the peer is gone,
            // so answering is pointless — just drop the connection.
            Err(http::HttpError::Io(_)) => return,
            Err(e) => {
                requests.inc();
                recorder.add("server.http.status_4xx", 1);
                let resp = Response::json(
                    e.status(),
                    format!("{{\"error\": {}}}", json::escape(&e.message())),
                );
                let _ = resp.write(reader.get_mut(), false);
                return;
            }
        };
        requests.inc();
        let started = Instant::now();
        let response = routes::dispatch(
            state.engine.as_ref(),
            &state.admission,
            &state.refresh_lock,
            &state.ingest,
            &req,
        );
        latency_us.record(started.elapsed().as_micros() as u64);
        if recorder.is_enabled() {
            let class = match response.status {
                429 => "server.http.status_429",
                s if s < 300 => "server.http.status_2xx",
                s if s < 500 => "server.http.status_4xx",
                _ => "server.http.status_5xx",
            };
            recorder.add(class, 1);
        }
        let keep_alive = !req.wants_close();
        if response.write(reader.get_mut(), keep_alive).is_err() || !keep_alive {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_common::{AggFn, Catalog, ViewDef};
    use ct_cube::Relation;
    use cubetree::engine::{CubetreeConfig, CubetreeEngine, RolapEngine};
    use std::io::{Read, Write};

    fn tiny_engine() -> Arc<CubetreeEngine> {
        let mut catalog = Catalog::new();
        let p = catalog.add_attr("partkey", 4);
        let s = catalog.add_attr("suppkey", 3);
        let views = vec![ViewDef::new(0, vec![p, s], AggFn::Sum)];
        let mut engine = CubetreeEngine::new(catalog, CubetreeConfig::new(views)).unwrap();
        let fact = Relation::from_fact(vec![p, s], vec![1, 1, 2, 2], &[10, 20]);
        engine.load(&fact).unwrap();
        Arc::new(engine)
    }

    fn roundtrip(addr: std::net::SocketAddr, request: &str) -> String {
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(request.as_bytes()).unwrap();
        let mut out = String::new();
        conn.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn starting_an_unloaded_engine_fails() {
        let mut catalog = Catalog::new();
        let p = catalog.add_attr("p", 4);
        let views = vec![ViewDef::new(0, vec![p], AggFn::Sum)];
        let engine =
            Arc::new(CubetreeEngine::new(catalog, CubetreeConfig::new(views)).unwrap());
        assert!(CtServer::start(engine, ServerConfig::default()).is_err());
    }

    #[test]
    fn healthz_views_and_shutdown() {
        let server = CtServer::start(tiny_engine(), ServerConfig::default()).unwrap();
        let health = roundtrip(
            server.addr(),
            "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(health.starts_with("HTTP/1.1 200 OK"), "{health}");
        assert!(health.contains("\"generation\": 0"), "{health}");
        let views =
            roundtrip(server.addr(), "GET /views HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(views.contains("V{partkey,suppkey}"), "{views}");
        let missing =
            roundtrip(server.addr(), "GET /nope HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        let wrong_verb =
            roundtrip(server.addr(), "GET /query HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(wrong_verb.starts_with("HTTP/1.1 405"), "{wrong_verb}");
        server.join();
    }

    #[test]
    fn malformed_http_is_answered_not_crashed() {
        let server = CtServer::start(tiny_engine(), ServerConfig::default()).unwrap();
        let garbage = roundtrip(server.addr(), "GARBAGE\r\n\r\n");
        assert!(garbage.starts_with("HTTP/1.1 400"), "{garbage}");
        // Server is still healthy afterwards.
        let health = roundtrip(
            server.addr(),
            "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(health.starts_with("HTTP/1.1 200"), "{health}");
        server.join();
    }
}
