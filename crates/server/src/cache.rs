//! Generation-keyed answer cache: memoizing hot slice answers across
//! batches.
//!
//! The admission layer probes this cache for every query of a formed batch
//! before the batch is dispatched; hits replay a stored answer with zero
//! planning, pinning, or page I/O, and misses execute normally and populate
//! the cache on the way out. Correctness rests on *structural* freshness,
//! not TTLs: entries are stored with the [`AnswerStamp`] vector of the
//! pinned state they were computed from, and a probe compares those against
//! the engine's current stamps ([`ServingEngine::answer_stamps`]). Both
//! stamp components — generation number and delta epoch — are strictly
//! monotone, so equality proves the visible state is identical to the one
//! the answer was read under: a hit is MVCC-equivalent to a fresh pinned
//! execution. A refresh flip or a delta ingest bumps a component, the
//! stamps stop matching, and the stale entry is removed at first probe
//! (counted as `cache.invalidations`) or reclaimed by eviction.
//!
//! The cache is sharded by query-key digest to keep the lock cheap, bounded
//! by a byte budget with second-chance (clock) eviction, and guarded by a
//! frequency-gated admission filter so one-off queries never displace hot
//! entries: a query's first arrival is observed but not cached, and only a
//! repeat within the doorkeeper's memory is admitted.
//!
//! [`ServingEngine::answer_stamps`]: cubetree::ServingEngine::answer_stamps

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ct_common::query::QueryRow;
use ct_common::QueryKey;
use cubetree::AnswerStamp;

/// Frequency-doorkeeper slots per cache shard. Collisions only ever admit
/// early (two queries sharing a slot pool their counts), never reject a
/// genuinely hot query, so a small table suffices.
const FREQ_SLOTS: usize = 512;

/// After this many doorkeeper observations in a shard, every slot count is
/// halved — an aging scheme that lets yesterday's hot set decay instead of
/// saturating the counters forever.
const FREQ_HALVE_AT: u32 = 8192;

/// Fixed per-entry bookkeeping charge (map node, ring slot, stamp vector,
/// `Arc` header) added on top of the measured key/row payload bytes.
const ENTRY_OVERHEAD: u64 = 160;

/// Answer-cache tuning knobs (surfaced as `ServerConfig::cache`).
#[derive(Clone, Debug)]
pub struct CacheConfig {
    /// Disable switch: `false` routes every query down the execute path
    /// untouched — bit-identical to a server built without the cache.
    pub enabled: bool,
    /// Total byte budget across all cache shards. Entries are charged
    /// their approximate key + row payload plus a fixed overhead; eviction
    /// keeps each shard within its `max_bytes / shards` slice.
    pub max_bytes: u64,
    /// A query is cached only once the doorkeeper has seen it this many
    /// times (the arrival that would be cached counts). `1` caches on
    /// first sight; the default `2` keeps one-off queries out.
    pub admission_threshold: u32,
    /// Lock shards (clamped to at least 1). Probes hash the query key to a
    /// shard, so concurrent batch formers rarely contend.
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            enabled: true,
            max_bytes: 32 * 1024 * 1024,
            admission_threshold: 2,
            shards: 8,
        }
    }
}

/// Outcome of [`AnswerCache::probe`].
pub enum Probe {
    /// A stored answer whose stamps match the engine's current state; the
    /// rows are shared, not copied.
    Hit(Arc<Vec<QueryRow>>),
    /// No current entry. `admit` is the doorkeeper's verdict for this
    /// arrival: pass it to [`AnswerCache::populate`] so the filter is
    /// consulted once per miss, not once per probe and once per insert.
    Miss {
        /// True when this query is hot enough to cache on the way out.
        admit: bool,
    },
}

struct Entry {
    /// Stamps of the pinned state the rows were computed from.
    stamps: Vec<AnswerStamp>,
    /// The memoized answer, shared with in-flight hit responses.
    rows: Arc<Vec<QueryRow>>,
    /// Second-chance bit: set on hit, cleared when the clock hand passes.
    referenced: bool,
    /// Matches the entry's live ring slot; older slots for the same key are
    /// dangling and skipped by the eviction hand.
    slot_epoch: u64,
    /// Approximate bytes charged against the shard budget.
    cost: u64,
}

struct CacheShard {
    map: HashMap<QueryKey, Entry>,
    /// Clock ring of (key, slot_epoch) candidates, oldest at the front.
    ring: VecDeque<(QueryKey, u64)>,
    bytes: u64,
    next_slot_epoch: u64,
    freq: [u8; FREQ_SLOTS],
    freq_observations: u32,
}

impl CacheShard {
    fn new() -> CacheShard {
        CacheShard {
            map: HashMap::new(),
            ring: VecDeque::new(),
            bytes: 0,
            next_slot_epoch: 0,
            freq: [0; FREQ_SLOTS],
            freq_observations: 0,
        }
    }

    /// Observes one arrival of `digest` and reports whether the query has
    /// now been seen at least `threshold` times (approximately — slots are
    /// shared, so collisions can only admit early).
    fn observe(&mut self, digest: u64, threshold: u32) -> bool {
        let slot = (digest >> 9) as usize % FREQ_SLOTS;
        self.freq[slot] = self.freq[slot].saturating_add(1);
        self.freq_observations += 1;
        if self.freq_observations >= FREQ_HALVE_AT {
            for c in &mut self.freq {
                *c >>= 1;
            }
            self.freq_observations = 0;
        }
        u32::from(self.freq[slot]) >= threshold
    }
}

/// The sharded, byte-bounded, generation-keyed answer cache.
pub struct AnswerCache {
    shards: Vec<Mutex<CacheShard>>,
    /// Per-shard byte budget (`max_bytes / shards`).
    shard_budget: u64,
    admission_threshold: u32,
    /// Total resident bytes across shards (feeds the `cache.bytes` gauge).
    bytes: AtomicU64,
    hits: ct_obs::Counter,
    misses: ct_obs::Counter,
    inserts: ct_obs::Counter,
    evictions: ct_obs::Counter,
    invalidations: ct_obs::Counter,
    bytes_gauge: ct_obs::Gauge,
    hit_rate: ct_obs::Gauge,
}

impl AnswerCache {
    /// Builds a cache from `config`, registering its `cache.*` metrics on
    /// `recorder`. Returns `None` when the cache is disabled, so callers
    /// carry an `Option<Arc<AnswerCache>>` and a disabled cache costs
    /// nothing on the query path.
    pub fn from_config(config: &CacheConfig, recorder: &ct_obs::Recorder) -> Option<Arc<AnswerCache>> {
        if !config.enabled || config.max_bytes == 0 {
            return None;
        }
        let shards = config.shards.max(1);
        Some(Arc::new(AnswerCache {
            shards: (0..shards).map(|_| Mutex::new(CacheShard::new())).collect(),
            shard_budget: (config.max_bytes / shards as u64).max(1),
            admission_threshold: config.admission_threshold.max(1),
            bytes: AtomicU64::new(0),
            hits: recorder.counter("cache.hits"),
            misses: recorder.counter("cache.misses"),
            inserts: recorder.counter("cache.inserts"),
            evictions: recorder.counter("cache.evictions"),
            invalidations: recorder.counter("cache.invalidations"),
            bytes_gauge: recorder.gauge("cache.bytes"),
            hit_rate: recorder.gauge("cache.hit_rate"),
        }))
    }

    fn shard_of(&self, digest: u64) -> &Mutex<CacheShard> {
        &self.shards[digest as usize % self.shards.len()]
    }

    /// Looks up `key` against the engine's current `stamps`. A stored entry
    /// with different stamps is structurally stale — it is removed here
    /// (counted as an invalidation) and the probe reports a miss. An empty
    /// `stamps` (unloaded engine) can never match and is never admitted.
    pub fn probe(&self, key: &QueryKey, stamps: &[AnswerStamp]) -> Probe {
        let digest = key.digest();
        let mut shard = self.shard_of(digest).lock().unwrap_or_else(|p| p.into_inner());
        if let Some(entry) = shard.map.get_mut(key) {
            if !stamps.is_empty() && entry.stamps == stamps {
                entry.referenced = true;
                let rows = Arc::clone(&entry.rows);
                drop(shard);
                self.hits.inc();
                self.publish_rates();
                return Probe::Hit(rows);
            }
            let cost = entry.cost;
            shard.map.remove(key);
            shard.bytes -= cost;
            self.bytes.fetch_sub(cost, Ordering::Relaxed);
            self.invalidations.inc();
            // The ring slot dangles; the eviction hand skips it.
        }
        let admit = !stamps.is_empty() && shard.observe(digest, self.admission_threshold);
        drop(shard);
        self.misses.inc();
        self.publish_rates();
        Probe::Miss { admit }
    }

    /// Stores an answer computed under `stamps`. Call only when the miss
    /// that produced it reported `admit: true`. Oversized answers (cost
    /// above one shard's whole budget) are skipped rather than flushing a
    /// shard to hold one entry.
    pub fn populate(&self, key: QueryKey, stamps: Vec<AnswerStamp>, rows: Arc<Vec<QueryRow>>) {
        if stamps.is_empty() {
            return;
        }
        let cost = entry_cost(&key, &stamps, &rows);
        if cost > self.shard_budget {
            return;
        }
        let digest = key.digest();
        let mut shard = self.shard_of(digest).lock().unwrap_or_else(|p| p.into_inner());
        let mut evicted = 0u64;
        if let Some(old) = shard.map.remove(&key) {
            // Concurrent batches answered the same query; keep the newer
            // stamps (monotone, so "newer" is whichever arrives last —
            // either way the next probe validates against live stamps).
            shard.bytes -= old.cost;
            self.bytes.fetch_sub(old.cost, Ordering::Relaxed);
        }
        // Second-chance hand: advance until the budget fits, giving each
        // referenced entry one reprieve per lap.
        while shard.bytes + cost > self.shard_budget {
            let Some((victim_key, slot_epoch)) = shard.ring.pop_front() else {
                break;
            };
            let reprieve = match shard.map.get_mut(&victim_key) {
                // Dangling slot (entry replaced or invalidated): skip.
                None => continue,
                Some(e) if e.slot_epoch != slot_epoch => continue,
                Some(e) if e.referenced => {
                    e.referenced = false;
                    true
                }
                Some(_) => false,
            };
            if reprieve {
                let epoch = shard.next_slot_epoch;
                shard.next_slot_epoch += 1;
                if let Some(e) = shard.map.get_mut(&victim_key) {
                    e.slot_epoch = epoch;
                }
                shard.ring.push_back((victim_key, epoch));
            } else {
                let e = shard.map.remove(&victim_key).expect("entry present");
                shard.bytes -= e.cost;
                self.bytes.fetch_sub(e.cost, Ordering::Relaxed);
                evicted += 1;
            }
        }
        let epoch = shard.next_slot_epoch;
        shard.next_slot_epoch += 1;
        shard.ring.push_back((key.clone(), epoch));
        shard.map.insert(
            key,
            Entry { stamps, rows, referenced: false, slot_epoch: epoch, cost },
        );
        shard.bytes += cost;
        self.bytes.fetch_add(cost, Ordering::Relaxed);
        drop(shard);
        self.inserts.inc();
        if evicted > 0 {
            self.evictions.add(evicted);
        }
        self.bytes_gauge.set(self.bytes.load(Ordering::Relaxed) as f64);
    }

    /// Resident bytes across every shard.
    pub fn resident_bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    fn publish_rates(&self) {
        let hits = self.hits.get();
        let total = hits + self.misses.get();
        if total > 0 {
            self.hit_rate.set(hits as f64 / total as f64);
        }
        self.bytes_gauge.set(self.bytes.load(Ordering::Relaxed) as f64);
    }
}

/// Approximate resident bytes of one entry: measured key bytes, row
/// payload (`key` coordinates + aggregate + `Vec` headers), stamps, and the
/// fixed bookkeeping overhead.
fn entry_cost(key: &QueryKey, stamps: &[AnswerStamp], rows: &[QueryRow]) -> u64 {
    let row_bytes: u64 =
        rows.iter().map(|r| 32 + 8 * r.key.len() as u64 + 8).sum();
    key.approx_bytes() + 16 * stamps.len() as u64 + row_bytes + ENTRY_OVERHEAD
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_common::SliceQuery;

    fn stamp(generation: u64, delta_epoch: u64) -> AnswerStamp {
        AnswerStamp { generation, delta_epoch }
    }

    fn rows(n: u64) -> Arc<Vec<QueryRow>> {
        Arc::new((0..n).map(|i| QueryRow { key: vec![i], agg: i as f64 }).collect())
    }

    fn cache(config: CacheConfig) -> (Arc<AnswerCache>, ct_obs::Recorder) {
        let recorder = ct_obs::Recorder::enabled();
        let cache = AnswerCache::from_config(&config, &recorder).expect("enabled");
        (cache, recorder)
    }

    fn key_of(preds: &[(u16, u64)]) -> QueryKey {
        let q = SliceQuery::new(
            vec![],
            preds.iter().map(|&(a, v)| (ct_common::AttrId(a), v)).collect(),
        );
        q.cache_key()
    }

    #[test]
    fn hit_after_admitted_populate() {
        let (cache, _) = cache(CacheConfig { admission_threshold: 1, ..CacheConfig::default() });
        let key = key_of(&[(0, 1)]);
        let stamps = vec![stamp(3, 7)];
        let Probe::Miss { admit } = cache.probe(&key, &stamps) else {
            panic!("first probe must miss")
        };
        assert!(admit, "threshold 1 admits on first sight");
        cache.populate(key.clone(), stamps.clone(), rows(4));
        match cache.probe(&key, &stamps) {
            Probe::Hit(r) => assert_eq!(r.len(), 4),
            Probe::Miss { .. } => panic!("stamped entry must hit"),
        }
    }

    #[test]
    fn stamp_mismatch_invalidates() {
        let (cache, recorder) =
            cache(CacheConfig { admission_threshold: 1, ..CacheConfig::default() });
        let key = key_of(&[(0, 1)]);
        cache.probe(&key, &[stamp(3, 7)]);
        cache.populate(key.clone(), vec![stamp(3, 7)], rows(2));
        // Generation moved (refresh): the entry must not serve.
        assert!(matches!(cache.probe(&key, &[stamp(4, 7)]), Probe::Miss { .. }));
        assert_eq!(recorder.counter("cache.invalidations").get(), 1);
        // Delta epoch moved (ingest): same story.
        cache.populate(key.clone(), vec![stamp(4, 7)], rows(2));
        assert!(matches!(cache.probe(&key, &[stamp(4, 8)]), Probe::Miss { .. }));
        assert_eq!(recorder.counter("cache.invalidations").get(), 2);
        // Invalidation released the bytes.
        assert_eq!(cache.resident_bytes(), 0);
    }

    #[test]
    fn doorkeeper_blocks_one_off_queries() {
        let (cache, _) = cache(CacheConfig { admission_threshold: 2, ..CacheConfig::default() });
        let key = key_of(&[(0, 9)]);
        let stamps = vec![stamp(1, 1)];
        let Probe::Miss { admit } = cache.probe(&key, &stamps) else { panic!("miss") };
        assert!(!admit, "first sight is observed, not admitted");
        let Probe::Miss { admit } = cache.probe(&key, &stamps) else { panic!("miss") };
        assert!(admit, "second sight passes threshold 2");
    }

    #[test]
    fn eviction_respects_byte_budget_and_second_chance() {
        let (cache, recorder) = cache(CacheConfig {
            max_bytes: 2048,
            shards: 1,
            admission_threshold: 1,
            ..CacheConfig::default()
        });
        let stamps = vec![stamp(1, 0)];
        // Touch key 0 so it carries the referenced bit, then overflow the
        // budget with fresh keys.
        let hot = key_of(&[(0, 0)]);
        cache.probe(&hot, &stamps);
        cache.populate(hot.clone(), stamps.clone(), rows(8));
        for v in 1..8u64 {
            // A genuinely hot entry keeps getting probed between fills;
            // each hit re-arms its second-chance bit.
            assert!(matches!(cache.probe(&hot, &stamps), Probe::Hit(_)));
            let k = key_of(&[(0, v)]);
            cache.probe(&k, &stamps);
            cache.populate(k, stamps.clone(), rows(8));
        }
        assert!(cache.resident_bytes() <= 2048, "budget held: {}", cache.resident_bytes());
        assert!(recorder.counter("cache.evictions").get() > 0, "something was evicted");
        // The referenced entry survived its first clock lap.
        assert!(
            matches!(cache.probe(&hot, &stamps), Probe::Hit(_)),
            "second chance kept the hot entry"
        );
    }

    #[test]
    fn oversized_answers_are_not_cached() {
        let (cache, _) = cache(CacheConfig {
            max_bytes: 1024,
            shards: 1,
            admission_threshold: 1,
            ..CacheConfig::default()
        });
        let key = key_of(&[(0, 1)]);
        let stamps = vec![stamp(1, 0)];
        cache.probe(&key, &stamps);
        cache.populate(key.clone(), stamps.clone(), rows(1000));
        assert!(matches!(cache.probe(&key, &stamps), Probe::Miss { .. }));
        assert_eq!(cache.resident_bytes(), 0);
    }

    #[test]
    fn empty_stamps_never_match_or_admit() {
        let (cache, _) = cache(CacheConfig { admission_threshold: 1, ..CacheConfig::default() });
        let key = key_of(&[(0, 1)]);
        let Probe::Miss { admit } = cache.probe(&key, &[]) else { panic!("miss") };
        assert!(!admit, "unloaded-engine probes are never admitted");
        cache.populate(key.clone(), vec![], rows(2));
        assert!(matches!(cache.probe(&key, &[]), Probe::Miss { .. }));
    }

    #[test]
    fn disabled_config_builds_no_cache() {
        let recorder = ct_obs::Recorder::enabled();
        let off = CacheConfig { enabled: false, ..CacheConfig::default() };
        assert!(AnswerCache::from_config(&off, &recorder).is_none());
    }

    #[test]
    fn sharded_stamps_match_only_in_full() {
        let (cache, _) = cache(CacheConfig { admission_threshold: 1, ..CacheConfig::default() });
        let key = key_of(&[(0, 2)]);
        let stored = vec![stamp(2, 5), stamp(9, 0)]; // shard stamp + plan guard
        cache.probe(&key, &stored);
        cache.populate(key.clone(), stored.clone(), rows(1));
        assert!(matches!(cache.probe(&key, &stored), Probe::Hit(_)));
        // Guard moved (a refresh on a non-consulted shard): must miss.
        assert!(matches!(cache.probe(&key, &[stamp(2, 5), stamp(10, 0)]), Probe::Miss { .. }));
    }
}
