//! Admission-controlled batching for the query path.
//!
//! Incoming queries land in a bounded queue. A single batch-former thread
//! drains the queue into batches — flushing when either `max_batch` queries
//! have accumulated or the oldest waiter has been queued for `max_delay` —
//! and executes each batch against **one pinned generation** through the
//! engine's batched scheduler ([`cubetree::query::execute_generation_query_batch`]).
//! Under concurrency this turns N point dispatches into one scheduled sweep
//! (packed-order sorting, shared scans, readahead), so the server reads
//! *fewer* pages per query as load rises. When the queue is already
//! `max_depth` deep, [`Admission::submit`] refuses immediately; the HTTP
//! layer translates that into `429 Too Many Requests` + `Retry-After`,
//! keeping latency bounded instead of letting the queue grow without limit.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use ct_common::query::QueryRow;
use ct_common::SliceQuery;
use cubetree::ServingEngine;

use crate::cache::{AnswerCache, Probe};

/// Tuning knobs for the admission queue and batch former.
#[derive(Clone, Debug)]
pub struct AdmissionConfig {
    /// Queue-depth bound; a submit against a full queue is refused (429).
    pub max_depth: usize,
    /// Flush a batch as soon as this many queries have accumulated.
    pub max_batch: usize,
    /// Flush a batch once the oldest queued query has waited this long.
    pub max_delay: Duration,
    /// Advertised `Retry-After` (seconds) on refused submissions.
    pub retry_after_secs: u64,
    /// Flush a forming batch immediately when the scheduler is idle instead
    /// of waiting out `max_delay`. The batcher thread alternates forming
    /// and executing, so arrivals during an execution still accumulate into
    /// full batches under load (page economy is kept); idle-flush only
    /// removes the forming delay when there is nothing to wait for, closing
    /// most of the light-load latency gap against sequential dispatch.
    pub flush_on_idle: bool,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_depth: 256,
            max_batch: 32,
            max_delay: Duration::from_millis(2),
            retry_after_secs: 1,
            flush_on_idle: true,
        }
    }
}

/// A successfully executed query: the rows plus the generation they were
/// answered from (both taken under the same pin, so they always agree).
#[derive(Debug)]
pub struct QueryAnswer {
    /// Generation number the batch was executed against.
    pub generation: u64,
    /// Result rows, in engine order.
    pub rows: Vec<QueryRow>,
}

/// Submission refused without enqueueing.
#[derive(Debug)]
pub enum SubmitError {
    /// The queue is at `max_depth`; the HTTP layer answers `429`.
    Overloaded {
        /// Seconds the client should wait before retrying.
        retry_after_secs: u64,
    },
    /// [`Admission::shutdown`] has been called: the batch former is (or
    /// soon will be) gone, so an enqueued query would never be answered and
    /// its submitter would block forever. The HTTP layer answers `503`.
    ShuttingDown,
}

struct Pending {
    query: SliceQuery,
    enqueued_at: Instant,
    reply: mpsc::Sender<Result<QueryAnswer, String>>,
}

struct Shared {
    queue: Mutex<VecDeque<Pending>>,
    nonempty: Condvar,
    shutdown: AtomicBool,
}

/// Handle for submitting queries into the admission queue.
pub struct Admission {
    shared: Arc<Shared>,
    config: AdmissionConfig,
    enqueued: ct_obs::Counter,
    rejected: ct_obs::Counter,
    depth: ct_obs::Gauge,
}

impl Admission {
    /// Creates the queue and spawns the batch-former thread, which executes
    /// batches against `engine` until [`Admission::shutdown`]. When `cache`
    /// is present, each formed batch is probed against it before dispatch —
    /// hits are answered from the cache, misses execute and populate it.
    pub fn start(
        engine: Arc<dyn ServingEngine>,
        config: AdmissionConfig,
        cache: Option<Arc<AnswerCache>>,
    ) -> Admission {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            nonempty: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let recorder = engine.recorder().clone();
        let admission = Admission {
            shared: Arc::clone(&shared),
            config: config.clone(),
            enqueued: recorder.counter("server.admission.enqueued"),
            rejected: recorder.counter("server.admission.rejected"),
            depth: recorder.gauge("server.admission.depth"),
        };
        std::thread::Builder::new()
            .name("ct-server-batcher".to_string())
            .spawn(move || batcher(engine, shared, config, cache))
            .expect("spawn batcher thread");
        admission
    }

    /// Enqueues one validated query. The receiver yields the answer (or an
    /// execution-error message) once the batch containing it has run.
    ///
    /// # Errors
    /// [`SubmitError::Overloaded`] when the queue is at `max_depth`;
    /// [`SubmitError::ShuttingDown`] after [`Admission::shutdown`].
    pub fn submit(
        &self,
        query: SliceQuery,
    ) -> Result<mpsc::Receiver<Result<QueryAnswer, String>>, SubmitError> {
        let (tx, rx) = mpsc::channel();
        {
            let mut queue = self.shared.queue.lock().expect("queue poisoned");
            // Checked under the queue lock: the batcher only exits after
            // observing shutdown && empty under this same lock, so any query
            // admitted here is guaranteed to be drained before exit (never
            // enqueued into a queue nobody will ever service).
            if self.shared.shutdown.load(Ordering::SeqCst) {
                self.rejected.inc();
                return Err(SubmitError::ShuttingDown);
            }
            if queue.len() >= self.config.max_depth {
                self.rejected.inc();
                return Err(SubmitError::Overloaded {
                    retry_after_secs: self.config.retry_after_secs,
                });
            }
            queue.push_back(Pending { query, enqueued_at: Instant::now(), reply: tx });
            self.depth.set(queue.len() as f64);
        }
        self.enqueued.inc();
        self.shared.nonempty.notify_one();
        Ok(rx)
    }

    /// Asks the batch former to drain the queue and exit.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.nonempty.notify_all();
    }

    /// True once [`Admission::shutdown`] has been called. The ingest route
    /// shares this signal so writes stop admitting alongside reads.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }
}

/// The batch-former loop: wait for work, form a batch (size or deadline
/// triggered), execute it, answer every waiter.
fn batcher(
    engine: Arc<dyn ServingEngine>,
    shared: Arc<Shared>,
    config: AdmissionConfig,
    cache: Option<Arc<AnswerCache>>,
) {
    let recorder = engine.recorder().clone();
    let flushes = recorder.counter("server.batch.flushes");
    let batch_size = recorder.histogram("server.batch.size");
    let formed_us = recorder.histogram("server.batch.formed_us");
    let depth = recorder.gauge("server.admission.depth");
    loop {
        let batch: Vec<Pending> = {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            loop {
                if queue.is_empty() {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    queue = shared.nonempty.wait(queue).expect("queue poisoned");
                    continue;
                }
                // Items are queued while the batch forms; the depth bound
                // therefore counts forming work too, which is what makes
                // overload refuse instead of stall.
                //
                // This thread alternates forming and executing, so reaching
                // this point means the scheduler is idle. With
                // `flush_on_idle`, dispatch whatever is queued immediately:
                // under load, arrivals accumulate while the previous batch
                // executes and batches stay full; at light load there is
                // nothing to wait for, so waiting out `max_delay` only adds
                // latency.
                let deadline = queue[0].enqueued_at + config.max_delay;
                let now = Instant::now();
                if config.flush_on_idle
                    || queue.len() >= config.max_batch
                    || now >= deadline
                    || shared.shutdown.load(Ordering::SeqCst)
                {
                    let n = queue.len().min(config.max_batch.max(1));
                    let drained = queue.drain(..n).collect();
                    depth.set(queue.len() as f64);
                    break drained;
                }
                let (q, _timeout) = shared
                    .nonempty
                    .wait_timeout(queue, deadline - now)
                    .expect("queue poisoned");
                queue = q;
            }
        };
        flushes.inc();
        batch_size.record(batch.len() as u64);
        formed_us.record(batch[0].enqueued_at.elapsed().as_micros() as u64);
        execute(engine.as_ref(), cache.as_deref(), batch);
    }
}

/// Executes one formed batch through [`ServingEngine::serve_batch`] — a
/// single pinned snapshot per storage environment (one pin, or one per
/// shard for a sharded engine) — and delivers per-query answers.
///
/// With a cache, every query is first probed against the engine's current
/// [`answer stamps`](ServingEngine::answer_stamps): hits are answered
/// straight from the memoized rows (no planning, no pin, no page I/O) and
/// only the misses are dispatched as a (smaller) batch; admitted misses
/// populate the cache with the stamps their answers were computed under.
/// A hit's reported generation is read at probe time — the stamp match
/// proves the visible state equals the one the rows were computed from, so
/// the current generation is the correct label.
///
/// Execution is panic-isolated by the engine: a panicking query (or batch)
/// is answered as an error to its waiters instead of killing the batcher
/// thread. Without this, one poisoned batch would strand every queued
/// waiter in `recv()` and permanently eat the queue's capacity — the depth
/// gauge would freeze above zero and every later submit would see spurious
/// 429s.
fn execute(engine: &dyn ServingEngine, cache: Option<&AnswerCache>, batch: Vec<Pending>) {
    let Some(cache) = cache else {
        let queries: Vec<SliceQuery> = batch.iter().map(|p| p.query.clone()).collect();
        let (generation, answers) = engine.serve_batch(&queries);
        for (p, answer) in batch.into_iter().zip(answers) {
            let _ = p
                .reply
                .send(answer.map(|served| QueryAnswer { generation, rows: served.rows }));
        }
        return;
    };
    // Probe phase: answer hits immediately, collect misses (with their
    // already-computed cache keys and admission verdicts) for dispatch.
    let mut misses: Vec<(Pending, ct_common::QueryKey, bool)> = Vec::new();
    for p in batch {
        let key = p.query.cache_key();
        let stamps = engine.answer_stamps(&p.query);
        match cache.probe(&key, &stamps) {
            Probe::Hit(rows) => {
                let answer =
                    QueryAnswer { generation: engine.generation(), rows: (*rows).clone() };
                let _ = p.reply.send(Ok(answer));
            }
            Probe::Miss { admit } => misses.push((p, key, admit)),
        }
    }
    if misses.is_empty() {
        return;
    }
    let queries: Vec<SliceQuery> = misses.iter().map(|(p, _, _)| p.query.clone()).collect();
    let (generation, answers) = engine.serve_batch(&queries);
    for ((p, key, admit), answer) in misses.into_iter().zip(answers) {
        let _ = p.reply.send(answer.map(|served| {
            if admit && !served.stamps.is_empty() {
                cache.populate(key, served.stamps, Arc::new(served.rows.clone()));
            }
            QueryAnswer { generation, rows: served.rows }
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_common::{AggFn, Catalog, ViewDef};
    use ct_cube::Relation;
    use cubetree::engine::{CubetreeConfig, CubetreeEngine, RolapEngine};

    fn tiny_engine(threads: usize) -> Arc<CubetreeEngine> {
        let mut catalog = Catalog::new();
        let p = catalog.add_attr("p", 4);
        let s = catalog.add_attr("s", 3);
        let views = vec![ViewDef::new(0, vec![p, s], AggFn::Sum)];
        let config = CubetreeConfig::new(views)
            .with_threads(threads)
            .with_recorder(ct_obs::Recorder::enabled());
        let mut engine = CubetreeEngine::new(catalog, config).unwrap();
        let fact =
            Relation::from_fact(vec![p, s], vec![1, 1, 2, 2, 3, 1, 1, 2], &[10, 20, 30, 40]);
        engine.load(&fact).unwrap();
        Arc::new(engine)
    }

    fn query_for(engine: &CubetreeEngine) -> SliceQuery {
        let p = RolapEngine::catalog(engine).attr_by_name("p").unwrap();
        SliceQuery::new(vec![p], vec![])
    }

    #[test]
    fn answers_match_the_sequential_engine() {
        let engine = tiny_engine(1);
        let admission = Admission::start(engine.clone(), AdmissionConfig::default(), None);
        let q = query_for(&engine);
        let rx = admission.submit(q.clone()).unwrap();
        let answer = rx.recv().unwrap().unwrap();
        assert_eq!(answer.generation, engine.forest().unwrap().generation_number());
        // Engine row order is an implementation detail; compare normalized.
        assert_eq!(
            ct_common::query::normalize_rows(answer.rows),
            ct_common::query::normalize_rows(engine.query(&q).unwrap())
        );
        admission.shutdown();
    }

    #[test]
    fn overload_is_refused_with_retry_after() {
        let engine = tiny_engine(1);
        // A long forming window and depth 2: the queue stays occupied while
        // the batch forms, so the third submit in the window is refused.
        // Idle-flush must be off — it would drain each submit immediately
        // and the queue would never fill.
        let cfg = AdmissionConfig {
            max_depth: 2,
            max_batch: 64,
            max_delay: Duration::from_millis(500),
            retry_after_secs: 7,
            flush_on_idle: false,
        };
        let admission = Admission::start(engine.clone(), cfg, None);
        let q = query_for(&engine);
        let rx1 = admission.submit(q.clone()).unwrap();
        let rx2 = admission.submit(q.clone()).unwrap();
        let refused = admission.submit(q.clone()).unwrap_err();
        assert!(
            matches!(refused, SubmitError::Overloaded { retry_after_secs: 7 }),
            "{refused:?}"
        );
        assert!(rx1.recv().unwrap().is_ok());
        assert!(rx2.recv().unwrap().is_ok());
        admission.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_work() {
        let engine = tiny_engine(2);
        let cfg = AdmissionConfig {
            max_delay: Duration::from_millis(200),
            ..AdmissionConfig::default()
        };
        let admission = Admission::start(engine.clone(), cfg, None);
        let q = query_for(&engine);
        let receivers: Vec<_> =
            (0..8).map(|_| admission.submit(q.clone()).unwrap()).collect();
        admission.shutdown();
        for rx in receivers {
            assert!(rx.recv().unwrap().is_ok(), "queued query dropped on shutdown");
        }
    }

    #[test]
    fn panicked_batch_answers_errors_and_keeps_serving() {
        let engine = tiny_engine(1);
        let recorder = engine.env().recorder().clone();
        let admission = Admission::start(engine.clone(), AdmissionConfig::default(), None);
        let p = RolapEngine::catalog(&*engine).attr_by_name("p").unwrap();
        // An inverted range never passes HTTP validation, but a struct
        // literal reaches the executor, where Rect::new panics. The batcher
        // must answer it as an error and survive.
        let poison = SliceQuery { group_by: vec![], predicates: vec![], ranges: vec![(p, 3, 1)] };
        let rx = admission.submit(poison).unwrap();
        let answer = rx.recv().expect("batcher died on a panicking query");
        assert!(answer.unwrap_err().contains("panicked"));
        // The queue drained and the depth gauge is back at zero, so no
        // capacity was permanently eaten.
        assert_eq!(recorder.gauge("server.admission.depth").get(), 0.0);
        // And the batcher still answers fresh work.
        let rx = admission.submit(query_for(&engine)).unwrap();
        assert!(rx.recv().unwrap().is_ok(), "batcher thread was killed by the panic");
        admission.shutdown();
    }

    #[test]
    fn scheduler_error_releases_depth_capacity() {
        let engine = tiny_engine(1);
        let recorder = engine.env().recorder().clone();
        let admission = Admission::start(engine.clone(), AdmissionConfig::default(), None);
        // An attribute outside every view's derivation set: planning fails
        // with a clean error, which must come back as Err, not eat a slot.
        let alien = ct_common::AttrId(2);
        let rx = admission.submit(SliceQuery::new(vec![alien], vec![])).unwrap();
        assert!(rx.recv().unwrap().is_err());
        assert_eq!(recorder.gauge("server.admission.depth").get(), 0.0);
        let rx = admission.submit(query_for(&engine)).unwrap();
        assert!(rx.recv().unwrap().is_ok());
        admission.shutdown();
    }

    #[test]
    fn submit_after_shutdown_is_refused_not_stranded() {
        let engine = tiny_engine(1);
        let admission = Admission::start(engine.clone(), AdmissionConfig::default(), None);
        admission.shutdown();
        // The batcher may already be gone; a submit that enqueued anyway
        // would block its caller in recv() forever. It must refuse instead.
        let refused = admission.submit(query_for(&engine)).unwrap_err();
        assert!(matches!(refused, SubmitError::ShuttingDown), "{refused:?}");
    }
}
