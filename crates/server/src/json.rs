//! A minimal JSON value model, parser and string escaper.
//!
//! The build is offline (no serde); request bodies are small and shallow,
//! so a hand-rolled recursive-descent parser over the full RFC 8259 grammar
//! is plenty: objects, arrays, strings with escapes (including `\uXXXX` and
//! surrogate pairs), numbers parsed as `f64`, booleans and `null`. Depth is
//! capped so a hostile body cannot blow the stack.

/// Maximum nesting depth accepted by [`Json::parse`].
pub const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses `input` as one JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    /// A human-readable message naming the byte offset of the problem.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Member lookup on an object (`None` for missing keys or non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if this is a number holding
    /// one exactly (rejects fractions, negatives and magnitudes beyond
    /// 2⁵³, where `f64` stops being exact).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (0.0..=9007199254740992.0).contains(&n) {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The number as a signed integer under the same exactness rules as
    /// [`Json::as_u64`].
    pub fn as_i64(&self) -> Option<i64> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (-9007199254740992.0..=9007199254740992.0).contains(&n) {
            Some(n as i64)
        } else {
            None
        }
    }
}

/// Escapes `s` as the contents of a JSON string literal (quotes included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number. Rust's shortest-round-trip `Display`
/// is already valid JSON for finite values; non-finite values become
/// `null` (JSON has no NaN/Infinity).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} at byte {}", self.pos));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected byte '{}' at {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        other => {
                            return Err(format!("bad escape '\\{}'", other as char));
                        }
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control byte in string at {}", self.pos));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // encoding is already valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| "bad \\u escape".to_string())?;
        let v = u32::from_str_radix(text, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos += 4;
        Ok(v)
    }

    fn unicode_escape(&mut self) -> Result<char, String> {
        let hi = self.hex4()?;
        if (0xD800..=0xDBFF).contains(&hi) {
            // Surrogate pair: must be followed by \uDC00..\uDFFF.
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xDC00..=0xDFFF).contains(&lo) {
                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(c).ok_or_else(|| "bad surrogate pair".to_string());
                }
            }
            return Err("lone surrogate in \\u escape".to_string());
        }
        char::from_u32(hi).ok_or_else(|| "bad \\u escape".to_string())
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_query_request_shape() {
        let v = Json::parse(
            r#"{"group_by": ["suppkey"], "where": {"partkey": 3}, "format": "csv"}"#,
        )
        .unwrap();
        assert_eq!(
            v.get("group_by").unwrap().as_array().unwrap()[0].as_str(),
            Some("suppkey")
        );
        assert_eq!(v.get("where").unwrap().get("partkey").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("format").unwrap().as_str(), Some("csv"));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn scalars_arrays_and_nesting() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-2.5e1").unwrap(), Json::Num(-25.0));
        assert_eq!(Json::parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(Json::parse("{}").unwrap(), Json::Obj(vec![]));
        let v = Json::parse(r#"[[1, 2], [3, 4]]"#).unwrap();
        assert_eq!(v.as_array().unwrap()[1].as_array().unwrap()[0].as_u64(), Some(3));
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Json::parse(r#""a\"b\\c\n\t\u0041\u00e9""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\n\tAé"));
        // Surrogate pair: U+1F600.
        let v = Json::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        assert!(Json::parse(r#""\ud83d""#).is_err(), "lone surrogate");
        assert_eq!(Json::parse(&escape("a\"b\\c\nx")).unwrap().as_str(), Some("a\"b\\c\nx"));
    }

    #[test]
    fn malformed_documents_are_rejected_not_panicked() {
        for bad in [
            "", "{", "[", "\"", "{\"a\"}", "{\"a\":}", "[1,]", "{\"a\":1,}", "tru",
            "1 2", "{} []", "\u{1}", "nul", "[1 2]", "--1", "1e", "\"\\q\"",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted malformed {bad:?}");
        }
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn integer_conversions_reject_inexact_values() {
        assert_eq!(Json::Num(3.0).as_u64(), Some(3));
        assert_eq!(Json::Num(3.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_i64(), Some(-1));
        assert_eq!(Json::Num(1e300).as_u64(), None);
        assert_eq!(Json::Str("3".into()).as_u64(), None);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(number(42.0), "42");
        assert_eq!(number(4.25), "4.25");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        // Round trip through our own parser is exact.
        let v = 1234.567891011e-3;
        assert_eq!(Json::parse(&number(v)).unwrap().as_f64(), Some(v));
    }
}
