//! A minimal HTTP/1.1 message layer over blocking [`std::io`] streams.
//!
//! The workspace is offline (no tokio/hyper), and the serving layer only
//! needs the subset of HTTP/1.1 its own clients speak: request line +
//! headers + optional `Content-Length` body, keep-alive by default, no
//! chunked transfer encoding. Parsing is strict and size-limited so a
//! malformed or hostile peer gets a 4xx (or a dropped connection), never a
//! panic or an unbounded allocation.

use std::io::{BufRead, Write};
use std::time::{Duration, Instant};

/// Maximum accepted request-line length in bytes.
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Maximum accepted header count.
pub const MAX_HEADERS: usize = 100;
/// Maximum accepted header line length in bytes.
pub const MAX_HEADER_LINE: usize = 8 * 1024;
/// Maximum accepted request-body length in bytes.
pub const MAX_BODY: usize = 32 * 1024 * 1024;
/// How long a request that has started arriving may stall (read timeouts
/// with no new bytes) before the server gives up with `408`.
pub const MAX_REQUEST_STALL: Duration = Duration::from_secs(10);

/// A failure while reading one request.
#[derive(Debug)]
pub enum HttpError {
    /// Protocol violation; answer with this status (`400`/`408`/`413`) and
    /// message, then close.
    Protocol {
        /// Status code to respond with.
        status: u16,
        /// Human-readable reason, sent back in the error body.
        message: String,
    },
    /// I/O failure on the underlying stream, with its [`std::io::ErrorKind`]
    /// preserved so the connection loop can tell an idle keep-alive poll
    /// (`WouldBlock`/`TimedOut` before any request byte) from a dead peer.
    Io(std::io::Error),
}

impl HttpError {
    fn bad(message: impl Into<String>) -> Self {
        HttpError::Protocol { status: 400, message: message.into() }
    }

    fn too_large(message: impl Into<String>) -> Self {
        HttpError::Protocol { status: 413, message: message.into() }
    }

    fn stalled(what: &str) -> Self {
        HttpError::Protocol {
            status: 408,
            message: format!(
                "gave up waiting for the rest of the {what} after {}s",
                MAX_REQUEST_STALL.as_secs()
            ),
        }
    }

    /// Whether this is a read timeout on an idle connection (no byte of the
    /// current request consumed yet). On Linux a socket read timeout
    /// surfaces as [`std::io::ErrorKind::WouldBlock`], on other platforms as
    /// `TimedOut`; both mean "no data yet", not "peer is gone".
    pub fn is_idle_timeout(&self) -> bool {
        matches!(self, HttpError::Io(e) if is_timeout_kind(e))
    }

    /// Status code the server should answer with, when answering is useful
    /// (I/O errors get the connection dropped instead).
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Protocol { status, .. } => *status,
            HttpError::Io(_) => 400,
        }
    }

    /// Human-readable reason.
    pub fn message(&self) -> String {
        match self {
            HttpError::Protocol { message, .. } => message.clone(),
            HttpError::Io(e) => format!("read error: {e}"),
        }
    }
}

fn is_timeout_kind(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

/// Read progress of the request currently being parsed, shared by the
/// request-line, header and body readers. Once any byte of the request has
/// been consumed, read timeouts are retried here (bounded by
/// [`MAX_REQUEST_STALL`]) instead of surfacing — surfacing would make the
/// connection loop restart parsing mid-stream and lose the consumed prefix.
struct ReadProgress {
    /// When the first byte of this request arrived; `None` while idle.
    started_at: Option<Instant>,
}

impl ReadProgress {
    fn new() -> Self {
        ReadProgress { started_at: None }
    }

    fn mark_started(&mut self) {
        self.started_at.get_or_insert_with(Instant::now);
    }

    /// Classifies a `fill_buf` error: `Ok(())` means "timeout mid-request,
    /// retry the read"; `Err` is fatal (idle-poll timeout, stall deadline
    /// exceeded, or a real I/O failure).
    fn on_read_error(&self, e: std::io::Error, what: &str) -> Result<(), HttpError> {
        if !is_timeout_kind(&e) {
            return Err(HttpError::Io(e));
        }
        match self.started_at {
            // Idle keep-alive poll: no request bytes yet, let the caller
            // check for shutdown and come back.
            None => Err(HttpError::Io(e)),
            Some(started) if started.elapsed() >= MAX_REQUEST_STALL => {
                Err(HttpError::stalled(what))
            }
            Some(_) => Ok(()),
        }
    }
}

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Method verb, e.g. `GET` or `POST`.
    pub method: String,
    /// Path component of the request target (before any `?`).
    pub path: String,
    /// Query string (after `?`), empty if absent.
    pub query_string: String,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// Value of a `k=v` pair in the query string, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query_string.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }
}

/// Reads one line terminated by `\n`, stripping the terminator and any
/// trailing `\r`. Returns `None` on clean EOF before any byte.
fn read_line(
    stream: &mut impl BufRead,
    progress: &mut ReadProgress,
    limit: usize,
    what: &str,
) -> Result<Option<String>, HttpError> {
    let mut buf = Vec::new();
    loop {
        let chunk = match stream.fill_buf() {
            Ok(chunk) => chunk,
            Err(e) => {
                progress.on_read_error(e, what)?;
                continue;
            }
        };
        if chunk.is_empty() {
            if buf.is_empty() && progress.started_at.is_none() {
                return Ok(None);
            }
            return Err(HttpError::bad(format!("connection closed mid-{what}")));
        }
        if let Some(nl) = chunk.iter().position(|&b| b == b'\n') {
            if buf.len() + nl > limit {
                return Err(HttpError::too_large(format!("{what} exceeds {limit} bytes")));
            }
            buf.extend_from_slice(&chunk[..nl]);
            stream.consume(nl + 1);
            progress.mark_started();
            if buf.last() == Some(&b'\r') {
                buf.pop();
            }
            let line = String::from_utf8(buf)
                .map_err(|_| HttpError::bad(format!("non-utf8 {what}")))?;
            return Ok(Some(line));
        }
        let n = chunk.len();
        buf.extend_from_slice(chunk);
        stream.consume(n);
        progress.mark_started();
        if buf.len() > limit {
            return Err(HttpError::too_large(format!("{what} exceeds {limit} bytes")));
        }
    }
}

/// Reads and parses one request from the stream.
///
/// Returns `Ok(None)` when the peer closed the connection cleanly between
/// requests (the normal end of a keep-alive session).
///
/// # Errors
/// [`HttpError::Protocol`] with status 400 for malformed framing, 408 for a
/// request that stalls mid-transfer, and 413 for over-limit request lines,
/// headers or bodies. [`HttpError::Io`] for stream failures — including
/// read timeouts before the first byte of a request, which callers should
/// treat as an idle keep-alive poll ([`HttpError::is_idle_timeout`]), not a
/// client mistake. A timeout *after* the first byte is retried internally
/// so a request whose bytes straddle a read-timeout window is never
/// half-discarded.
pub fn read_request(stream: &mut impl BufRead) -> Result<Option<Request>, HttpError> {
    let mut progress = ReadProgress::new();
    let Some(request_line) =
        read_line(stream, &mut progress, MAX_REQUEST_LINE, "request line")?
    else {
        return Ok(None);
    };
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().ok_or_else(|| HttpError::bad("missing request target"))?;
    let version = parts.next().ok_or_else(|| HttpError::bad("missing HTTP version"))?;
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Err(HttpError::bad(format!("malformed request line {request_line:?}")));
    }
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::bad(format!("malformed method {method:?}")));
    }
    let (path, query_string) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    if !path.starts_with('/') {
        return Err(HttpError::bad(format!("request target {target:?} is not a path")));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line(stream, &mut progress, MAX_HEADER_LINE, "header")?
            .ok_or_else(|| HttpError::bad("connection closed inside headers"))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::too_large(format!("more than {MAX_HEADERS} headers")));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::bad(format!("malformed header {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut body = Vec::new();
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::bad(format!("bad content-length {v:?}")))
        })
        .transpose()?;
    if let Some(len) = content_length {
        if len > MAX_BODY {
            return Err(HttpError::too_large(format!("body of {len} bytes exceeds {MAX_BODY}")));
        }
        body.resize(len, 0);
        let mut read = 0;
        while read < len {
            let chunk = match stream.fill_buf() {
                Ok(chunk) => chunk,
                Err(e) => {
                    progress.on_read_error(e, "body")?;
                    continue;
                }
            };
            if chunk.is_empty() {
                return Err(HttpError::bad("connection closed mid-body"));
            }
            let n = chunk.len().min(len - read);
            body[read..read + n].copy_from_slice(&chunk[..n]);
            stream.consume(n);
            read += n;
        }
    } else if headers.iter().any(|(k, _)| k == "transfer-encoding") {
        return Err(HttpError::bad("chunked transfer encoding is not supported"));
    }

    Ok(Some(Request { method, path, query_string, headers, body }))
}

/// One response, built by route handlers and serialized by the connection
/// loop.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra headers beyond the standard set, e.g. `Retry-After`.
    pub extra_headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given status and pre-serialized body.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A CSV response (status 200).
    pub fn csv(body: String) -> Self {
        Response {
            status: 200,
            content_type: "text/csv",
            extra_headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// Adds an extra header.
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.extra_headers.push((name.into(), value.into()));
        self
    }

    /// Serializes the response onto the stream.
    ///
    /// # Errors
    /// Propagates write errors (the connection loop drops the peer).
    pub fn write(&self, stream: &mut impl Write, keep_alive: bool) -> std::io::Result<()> {
        let reason = reason_phrase(self.status);
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
            self.status,
            reason,
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &self.extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// Canonical reason phrase for the status codes the server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(bytes))
    }

    #[test]
    fn parses_a_post_with_body_and_query_string() {
        let req = parse(
            b"POST /query?format=csv HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/query");
        assert_eq!(req.query_string, "format=csv");
        assert_eq!(req.query_param("format"), Some("csv"));
        assert_eq!(req.query_param("missing"), None);
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"abcd");
        assert!(!req.wants_close());
    }

    #[test]
    fn bare_lf_and_missing_body_are_tolerated() {
        let req = parse(b"GET /healthz HTTP/1.1\nConnection: close\n\n").unwrap().unwrap();
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
        assert!(req.wants_close());
    }

    #[test]
    fn clean_eof_between_requests_is_none() {
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn malformed_requests_are_400() {
        for bad in [
            b"GARBAGE\r\n\r\n".as_slice(),
            b"GET\r\n\r\n",
            b"GET /x\r\n\r\n",
            b"GET /x SPDY/9\r\n\r\n",
            b"get /x HTTP/1.1\r\n\r\n",
            b"GET x HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbadheader\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            b"GET /x HTTP/1.1\r\nincomplete",
        ] {
            let err = parse(bad).unwrap_err();
            assert_eq!(err.status(), 400, "wanted 400 for {:?}", String::from_utf8_lossy(bad));
        }
    }

    #[test]
    fn limits_yield_413() {
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE + 1));
        assert_eq!(parse(long_line.as_bytes()).unwrap_err().status(), 413);
        let huge_body =
            format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        assert_eq!(parse(huge_body.as_bytes()).unwrap_err().status(), 413);
        let mut many_headers = String::from("GET /x HTTP/1.1\r\n");
        for i in 0..=MAX_HEADERS {
            many_headers.push_str(&format!("h{i}: v\r\n"));
        }
        many_headers.push_str("\r\n");
        assert_eq!(parse(many_headers.as_bytes()).unwrap_err().status(), 413);
    }

    /// A scripted [`BufRead`] that interleaves data chunks with read
    /// timeouts, mimicking a socket whose request bytes straddle the
    /// connection loop's read-timeout window.
    enum Event {
        Timeout,
        Data(&'static [u8]),
    }

    struct StutteringStream {
        script: std::collections::VecDeque<Event>,
        current: Vec<u8>,
    }

    impl StutteringStream {
        fn new(script: Vec<Event>) -> Self {
            StutteringStream { script: script.into_iter().collect(), current: Vec::new() }
        }
    }

    impl std::io::Read for StutteringStream {
        fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
            unreachable!("read_request only uses fill_buf/consume")
        }
    }

    impl BufRead for StutteringStream {
        fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
            if self.current.is_empty() {
                match self.script.pop_front() {
                    Some(Event::Timeout) => {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::WouldBlock,
                            "Resource temporarily unavailable (os error 11)",
                        ));
                    }
                    Some(Event::Data(d)) => self.current = d.to_vec(),
                    None => {}
                }
            }
            Ok(&self.current)
        }

        fn consume(&mut self, n: usize) {
            self.current.drain(..n);
        }
    }

    #[test]
    fn timeouts_mid_request_do_not_lose_the_prefix() {
        // Timeouts strike mid-request-line, mid-headers and mid-body; the
        // parser must keep waiting (not restart and parse garbage).
        let mut stream = StutteringStream::new(vec![
            Event::Data(b"POST /q HT"),
            Event::Timeout,
            Event::Data(b"TP/1.1\r\nContent-"),
            Event::Timeout,
            Event::Data(b"Length: 4\r\n\r\nab"),
            Event::Timeout,
            Event::Data(b"cd"),
        ]);
        let req = read_request(&mut stream).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/q");
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn timeout_before_any_byte_is_an_idle_poll() {
        let mut stream = StutteringStream::new(vec![Event::Timeout]);
        let err = read_request(&mut stream).unwrap_err();
        assert!(err.is_idle_timeout(), "{err:?}");
        // The same kind mid-request is NOT an idle poll (it is retried
        // internally, so it never even surfaces as Io).
        let mut stream = StutteringStream::new(vec![
            Event::Data(b"GET /x HT"),
            Event::Timeout,
            Event::Data(b"TP/1.1\r\n\r\n"),
        ]);
        assert!(read_request(&mut stream).unwrap().is_some());
    }

    #[test]
    fn response_serialization() {
        let mut out = Vec::new();
        Response::json(429, "{\"error\":\"busy\"}".to_string())
            .with_header("retry-after", "1")
            .write(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("content-type: application/json\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"error\":\"busy\"}"));
    }
}
