//! Background delta-tier compaction for the serving layer.
//!
//! `POST /ingest` lands rows in the engine's in-memory delta tier; this
//! module's [`Compactor`] thread watches the tier's size/age against
//! [`IngestConfig`] thresholds and triggers the forest's merge-pack
//! ([`ServingEngine::compact_delta`]) when any is exceeded. Ingestion
//! never stalls behind a compaction — the tier rotates the active memtable
//! to an immutable tier and keeps absorbing — and a failed compaction
//! leaves the memtables resident (still answering queries) for the next
//! attempt. On shutdown the compactor drains: one final merge-pack moves
//! everything resident into the packed trees before the thread exits, so a
//! clean shutdown loses no acknowledged rows.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use cubetree::delta::DeltaConfig;
use cubetree::ServingEngine;

/// Streaming-ingestion tuning: when to compact, and when to push back.
#[derive(Clone, Debug)]
pub struct IngestConfig {
    /// Size/age thresholds that trigger a background compaction.
    pub delta: DeltaConfig,
    /// How often the compactor re-checks the thresholds.
    pub check_interval: Duration,
    /// Hard cap on resident delta rows: `/ingest` answers `429` +
    /// `Retry-After` above it, so a compactor that cannot keep up degrades
    /// into backpressure instead of unbounded memory growth (the write-side
    /// analogue of the admission queue's depth bound).
    pub hard_max_rows: u64,
    /// Advertised `Retry-After` (seconds) on refused ingests.
    pub retry_after_secs: u64,
}

impl Default for IngestConfig {
    fn default() -> Self {
        let delta = DeltaConfig::default();
        IngestConfig {
            hard_max_rows: delta.max_rows.saturating_mul(4),
            delta,
            check_interval: Duration::from_millis(100),
            retry_after_secs: 1,
        }
    }
}

struct Shared {
    stop: Mutex<bool>,
    wake: Condvar,
}

/// Handle to the background compaction thread.
pub struct Compactor {
    shared: Arc<Shared>,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Compactor {
    /// Spawns the compaction loop over `engine`.
    pub fn start(engine: Arc<dyn ServingEngine>, config: IngestConfig) -> Compactor {
        let shared = Arc::new(Shared { stop: Mutex::new(false), wake: Condvar::new() });
        let run_shared = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("ct-server-compactor".to_string())
            .spawn(move || run(engine, run_shared, config))
            .ok();
        Compactor { shared, thread: Mutex::new(thread) }
    }

    /// Stops the loop, runs the final drain compaction, and joins the
    /// thread. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut stop = self.shared.stop.lock().unwrap_or_else(|e| e.into_inner());
            *stop = true;
        }
        self.shared.wake.notify_all();
        let handle = self.thread.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(t) = handle {
            let _ = t.join();
        }
    }
}

fn run(engine: Arc<dyn ServingEngine>, shared: Arc<Shared>, config: IngestConfig) {
    let errors = engine.recorder().counter("ingest.compact.errors");
    loop {
        {
            let stop = shared.stop.lock().unwrap_or_else(|e| e.into_inner());
            if *stop {
                break;
            }
            let (stop, _timeout) = shared
                .wake
                .wait_timeout(stop, config.check_interval)
                .unwrap_or_else(|e| e.into_inner());
            if *stop {
                break;
            }
        }
        let due = engine.compaction_due(&config.delta);
        if due {
            if let Err(e) = engine.compact_delta() {
                // The memtables stay resident and queryable; log, count,
                // and let the next tick retry.
                errors.inc();
                eprintln!("ct-server: delta compaction failed (will retry): {e}");
            }
        }
    }
    // Shutdown drain: merge-pack whatever is still resident so a clean
    // shutdown persists every acknowledged ingest.
    if let Err(e) = engine.compact_delta() {
        errors.inc();
        eprintln!("ct-server: final delta drain failed: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_common::{AggFn, Catalog, SliceQuery, ViewDef};
    use ct_cube::Relation;
    use cubetree::engine::{CubetreeConfig, CubetreeEngine, RolapEngine};
    use std::time::Instant;

    fn engine() -> Arc<CubetreeEngine> {
        let mut catalog = Catalog::new();
        let p = catalog.add_attr("p", 6);
        let s = catalog.add_attr("s", 3);
        let views = vec![ViewDef::new(0, vec![p, s], AggFn::Sum)];
        let mut engine = CubetreeEngine::new(catalog, CubetreeConfig::new(views)).unwrap();
        engine.load(&Relation::from_fact(vec![p, s], vec![1, 1], &[10])).unwrap();
        Arc::new(engine)
    }

    #[test]
    fn compacts_when_thresholds_trip_and_drains_on_shutdown() {
        let e = engine();
        let p = RolapEngine::catalog(&*e).attr_by_name("p").unwrap();
        let s = RolapEngine::catalog(&*e).attr_by_name("s").unwrap();
        let config = IngestConfig {
            delta: DeltaConfig {
                max_rows: 2,
                max_bytes: u64::MAX,
                max_age: Duration::from_secs(3600),
            },
            check_interval: Duration::from_millis(5),
            ..IngestConfig::default()
        };
        let compactor = Compactor::start(e.clone(), config);
        e.ingest(&Relation::from_fact(vec![p, s], vec![2, 2, 3, 3], &[5, 7])).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while e.delta_stats().unwrap().resident_rows() > 0 {
            assert!(Instant::now() < deadline, "background compaction never triggered");
            std::thread::sleep(Duration::from_millis(5));
        }
        let gen_after = e.forest().unwrap().generation_number();
        assert!(gen_after >= 1, "compaction commits a new generation");
        // Rows below threshold stay resident until shutdown drains them.
        e.ingest(&Relation::from_fact(vec![p, s], vec![4, 1], &[9])).unwrap();
        compactor.shutdown();
        assert_eq!(e.delta_stats().unwrap().resident_rows(), 0, "shutdown drains the tier");
        let total = e.query(&SliceQuery::new(vec![], vec![])).unwrap();
        assert_eq!(total[0].agg, 31.0, "all ingested rows survive in the trees");
        compactor.shutdown(); // idempotent
    }
}
