//! # ct-heap — heap tables over the paged storage layer
//!
//! The table-storage half of the paper's *conventional* configuration: a
//! materialized ROLAP view stored "the straight forward" way is an unordered
//! heap of fixed-width rows plus external B-tree indexes. Rows are appended
//! in arrival order ("in the relational storage data is typically stored
//! unsorted, which prohibits efficient merge operations during the updates" —
//! paper §1); point access goes through a row id (RID) obtained from an
//! index, which is exactly the random-I/O pattern the paper blames for the
//! conventional configuration's slow refresh.
//!
//! Layout:
//!
//! ```text
//! meta page (page 0):   0 u32 magic   4 u16 row width (words)   8 u64 rows
//! data page:            0 u8 tag=3    2 u16 row count   16.. rows (width*8 B)
//! ```

use ct_common::{CtError, Result};
use ct_storage::{BufferPool, FileId, PageId, PAGE_SIZE};
use std::sync::Arc;

const MAGIC: u32 = 0x4845_4150; // "HEAP"
const TAG_DATA: u8 = 3;
const HEADER: usize = 16;
const META_PAGE: PageId = PageId(0);

/// Row identifier: data page number and slot within it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Rid {
    /// Data page id.
    pub page: u64,
    /// Slot index within the page.
    pub slot: u16,
}

impl Rid {
    /// Packs the RID into one `u64` (48-bit page, 16-bit slot) — the form
    /// stored as a B-tree index payload.
    pub fn to_u64(self) -> u64 {
        (self.page << 16) | self.slot as u64
    }

    /// Inverse of [`Rid::to_u64`].
    pub fn from_u64(v: u64) -> Self {
        Rid { page: v >> 16, slot: (v & 0xFFFF) as u16 }
    }
}

/// A heap table of fixed-width `u64` rows.
pub struct HeapTable {
    pool: Arc<BufferPool>,
    fid: FileId,
    width: usize,
    rows: u64,
    rows_per_page: usize,
    /// Current tail page, if it still has room.
    tail: Option<(PageId, usize)>,
}

impl HeapTable {
    /// Creates an empty table with `width`-word rows in a fresh file.
    pub fn create(pool: Arc<BufferPool>, fid: FileId, width: usize) -> Result<Self> {
        assert!(width >= 1, "rows must have at least one column");
        let rows_per_page = (PAGE_SIZE - HEADER) / (width * 8);
        assert!(rows_per_page >= 1, "row wider than a page");
        let meta = pool.new_page(fid)?;
        debug_assert_eq!(meta, META_PAGE);
        let mut t = HeapTable { pool, fid, width, rows: 0, rows_per_page, tail: None };
        t.write_meta()?;
        Ok(t)
    }

    /// Opens an existing table.
    pub fn open(pool: Arc<BufferPool>, fid: FileId) -> Result<Self> {
        let (magic, width, rows) = pool.with_page(fid, META_PAGE, |p| {
            (p.get_u32(0), p.get_u16(4) as usize, p.get_u64(8))
        })?;
        if magic != MAGIC {
            return Err(CtError::corrupt("not a heap table file"));
        }
        let rows_per_page = (PAGE_SIZE - HEADER) / (width * 8);
        let mut t = HeapTable { pool, fid, width, rows, rows_per_page, tail: None };
        // Recompute the tail from the row count.
        if rows > 0 {
            let full_pages = rows / rows_per_page as u64;
            let in_tail = (rows % rows_per_page as u64) as usize;
            if in_tail > 0 {
                t.tail = Some((PageId(full_pages + 1), in_tail));
            }
        }
        Ok(t)
    }

    fn write_meta(&mut self) -> Result<()> {
        let (width, rows) = (self.width, self.rows);
        self.pool.with_page_mut(self.fid, META_PAGE, |p| {
            p.put_u32(0, MAGIC);
            p.put_u16(4, width as u16);
            p.put_u64(8, rows);
        })
    }

    /// Persists the meta page; call after a batch of appends.
    pub fn flush_meta(&mut self) -> Result<()> {
        self.write_meta()
    }

    /// Row width in words.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows.
    pub fn len(&self) -> u64 {
        self.rows
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The file backing this table.
    pub fn file_id(&self) -> FileId {
        self.fid
    }

    /// Appends a row, returning its RID. Appends fill the tail page and then
    /// extend the file, so bulk appends are sequential I/O.
    pub fn append(&mut self, row: &[u64]) -> Result<Rid> {
        debug_assert_eq!(row.len(), self.width);
        let (pid, slot) = match self.tail {
            Some((pid, used)) if used < self.rows_per_page => (pid, used),
            _ => {
                let pid = self.pool.new_page(self.fid)?;
                self.pool.with_page_mut(self.fid, pid, |p| {
                    p.bytes_mut()[0] = TAG_DATA;
                    p.put_u16(2, 0);
                })?;
                (pid, 0usize)
            }
        };
        let width = self.width;
        self.pool.with_page_mut(self.fid, pid, |p| {
            p.put_u64s(HEADER + slot * width * 8, row);
            p.put_u16(2, (slot + 1) as u16);
        })?;
        self.tail = Some((pid, slot + 1));
        self.rows += 1;
        Ok(Rid { page: pid.0, slot: slot as u16 })
    }

    /// Reads the row at `rid`.
    pub fn get(&self, rid: Rid) -> Result<Vec<u64>> {
        let width = self.width;
        self.pool.with_page(self.fid, PageId(rid.page), |p| {
            if p.bytes()[0] != TAG_DATA || rid.slot as usize >= p.get_u16(2) as usize {
                return Err(CtError::invalid(format!("bad rid {rid:?}")));
            }
            let mut row = vec![0u64; width];
            p.get_u64s(HEADER + rid.slot as usize * width * 8, &mut row);
            Ok(row)
        })?
    }

    /// Overwrites the row at `rid` in place.
    pub fn update(&mut self, rid: Rid, row: &[u64]) -> Result<()> {
        debug_assert_eq!(row.len(), self.width);
        self.pool.with_page_mut(self.fid, PageId(rid.page), |p| {
            if p.bytes()[0] != TAG_DATA || rid.slot as usize >= p.get_u16(2) as usize {
                return Err(CtError::invalid(format!("bad rid {rid:?}")));
            }
            p.put_u64s(HEADER + rid.slot as usize * row.len() * 8, row);
            Ok(())
        })?
    }

    /// Full scan in physical order: `f(rid, row)`, return `false` to stop.
    pub fn scan(&self, mut f: impl FnMut(Rid, &[u64]) -> bool) -> Result<()> {
        let mut remaining = self.rows;
        let mut row = vec![0u64; self.width];
        let mut pid = 1u64;
        while remaining > 0 {
            let in_page = self.pool.with_page(self.fid, PageId(pid), |p| {
                let n = p.get_u16(2) as usize;
                let mut rows = Vec::with_capacity(n * self.width);
                for s in 0..n {
                    p.get_u64s(HEADER + s * self.width * 8, &mut row);
                    rows.extend_from_slice(&row);
                }
                rows
            })?;
            let n = in_page.len() / self.width;
            for s in 0..n {
                let r = &in_page[s * self.width..(s + 1) * self.width];
                if !f(Rid { page: pid, slot: s as u16 }, r) {
                    return Ok(());
                }
            }
            remaining = remaining.saturating_sub(n as u64);
            pid += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_storage::StorageEnv;

    fn table(width: usize) -> (StorageEnv, HeapTable) {
        let env = StorageEnv::new("heap-test").unwrap();
        let fid = env.create_file("table").unwrap();
        let t = HeapTable::create(env.pool().clone(), fid, width).unwrap();
        (env, t)
    }

    #[test]
    fn rid_packing_roundtrip() {
        let rid = Rid { page: 0x12_3456_789A, slot: 0xBEEF };
        assert_eq!(Rid::from_u64(rid.to_u64()), rid);
    }

    #[test]
    fn append_get_update() {
        let (_env, mut t) = table(3);
        let r1 = t.append(&[1, 2, 3]).unwrap();
        let r2 = t.append(&[4, 5, 6]).unwrap();
        assert_eq!(t.get(r1).unwrap(), vec![1, 2, 3]);
        assert_eq!(t.get(r2).unwrap(), vec![4, 5, 6]);
        t.update(r1, &[7, 8, 9]).unwrap();
        assert_eq!(t.get(r1).unwrap(), vec![7, 8, 9]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn scan_spans_pages_in_order() {
        let (_env, mut t) = table(4);
        let n = 5000u64;
        for i in 0..n {
            t.append(&[i, i * 2, i * 3, i * 4]).unwrap();
        }
        let mut expect = 0u64;
        t.scan(|_, row| {
            assert_eq!(row[0], expect);
            assert_eq!(row[3], expect * 4);
            expect += 1;
            true
        })
        .unwrap();
        assert_eq!(expect, n);
    }

    #[test]
    fn scan_early_stop() {
        let (_env, mut t) = table(1);
        for i in 0..100u64 {
            t.append(&[i]).unwrap();
        }
        let mut n = 0;
        t.scan(|_, _| {
            n += 1;
            n < 10
        })
        .unwrap();
        assert_eq!(n, 10);
    }

    #[test]
    fn bulk_append_is_sequential() {
        let env = StorageEnv::new("heap-seq").unwrap();
        let fid = env.create_file("t").unwrap();
        let mut t = HeapTable::create(env.pool().clone(), fid, 2).unwrap();
        let before = env.snapshot();
        for i in 0..50_000u64 {
            t.append(&[i, i]).unwrap();
        }
        t.flush_meta().unwrap();
        env.pool().flush_all().unwrap();
        let d = env.snapshot().since(&before);
        assert!(
            d.seq_writes as f64 >= 0.9 * (d.seq_writes + d.rand_writes) as f64,
            "bulk appends should be written sequentially: {d:?}"
        );
    }

    #[test]
    fn bad_rid_is_error() {
        let (_env, mut t) = table(1);
        t.append(&[1]).unwrap();
        assert!(t.get(Rid { page: 1, slot: 99 }).is_err());
        assert!(t.get(Rid { page: 0, slot: 0 }).is_err(), "meta page is not data");
        assert!(t.update(Rid { page: 1, slot: 99 }, &[0]).is_err());
    }

    #[test]
    fn reopen_preserves_rows_and_tail() {
        let env = StorageEnv::new("heap-reopen").unwrap();
        let fid = env.create_file("t").unwrap();
        let mut t = HeapTable::create(env.pool().clone(), fid, 2).unwrap();
        for i in 0..1000u64 {
            t.append(&[i, i + 1]).unwrap();
        }
        t.flush_meta().unwrap();
        drop(t);
        let mut t2 = HeapTable::open(env.pool().clone(), fid).unwrap();
        assert_eq!(t2.len(), 1000);
        let rid = t2.append(&[5000, 5001]).unwrap();
        assert_eq!(t2.get(rid).unwrap(), vec![5000, 5001]);
        let mut count = 0u64;
        t2.scan(|_, _| {
            count += 1;
            true
        })
        .unwrap();
        assert_eq!(count, 1001);
    }
}
