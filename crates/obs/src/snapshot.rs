//! Point-in-time registry copies: JSON serialization and the human-readable
//! phase tree.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metrics::{Histogram, HistogramSnapshot, IoDelta};

/// Accumulated measurements for one span path, frozen at snapshot time.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpanSnapshot {
    /// How many times the span was opened and closed.
    pub count: u64,
    /// Total wall-clock seconds across all invocations.
    pub wall_secs: f64,
    /// Accumulated page-I/O attributed via `SpanGuard::add_io`.
    pub io: IoDelta,
    /// Whether any I/O was ever attached (distinguishes "no I/O attributed"
    /// from "measured zero I/O").
    pub has_io: bool,
}

/// A frozen copy of a `Recorder`'s registry.
///
/// Maps are `BTreeMap`s so iteration (and the emitted JSON) is
/// deterministic. Span keys are full `/`-separated paths; the hierarchy is
/// implicit and rebuilt by [`MetricsSnapshot::render_tree`].
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Gauge name → value.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram name → frozen distribution.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Span path → accumulated stats.
    pub spans: BTreeMap<String, SpanSnapshot>,
}

impl MetricsSnapshot {
    /// Sum of the I/O deltas attributed to *root* spans (paths without a
    /// `/`). Root spans are recorded on the engine's main thread and are
    /// designed to tile the run, so this total should reconcile with the
    /// global `IoSnapshot` — the bench harness asserts exactly that.
    pub fn root_io_total(&self) -> IoDelta {
        let mut total = IoDelta::default();
        for (path, span) in &self.spans {
            if !path.contains('/') && span.has_io {
                total += span.io;
            }
        }
        total
    }

    /// Serializes the whole snapshot as deterministic, pretty-printed JSON.
    ///
    /// Hand-rolled (the build is offline, no serde). Histograms emit summary
    /// statistics plus only their non-empty buckets as
    /// `[bucket_lo, bucket_hi_exclusive, count]` triples.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"counters\": {");
        let mut first = true;
        for (k, v) in &self.counters {
            sep(&mut out, &mut first, "    ");
            let _ = write!(out, "{}: {}", json_str(k), v);
        }
        close(&mut out, first, "  ");
        out.push_str(",\n  \"gauges\": {");
        first = true;
        for (k, v) in &self.gauges {
            sep(&mut out, &mut first, "    ");
            let _ = write!(out, "{}: {}", json_str(k), json_f64(*v));
        }
        close(&mut out, first, "  ");
        out.push_str(",\n  \"histograms\": {");
        first = true;
        for (k, h) in &self.histograms {
            sep(&mut out, &mut first, "    ");
            let _ = write!(
                out,
                "{}: {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": {}, \
                 \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": [",
                json_str(k),
                h.count,
                h.sum,
                h.min,
                h.max,
                json_f64(h.mean()),
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99),
            );
            let mut bfirst = true;
            for (i, &n) in h.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                if !bfirst {
                    out.push_str(", ");
                }
                bfirst = false;
                let (lo, hi) = Histogram::bucket_bounds(i);
                let _ = write!(out, "[{lo}, {hi}, {n}]");
            }
            out.push_str("]}");
        }
        close(&mut out, first, "  ");
        out.push_str(",\n  \"spans\": {");
        first = true;
        for (k, s) in &self.spans {
            sep(&mut out, &mut first, "    ");
            let _ = write!(
                out,
                "{}: {{\"count\": {}, \"wall_secs\": {}",
                json_str(k),
                s.count,
                json_f64(s.wall_secs),
            );
            if s.has_io {
                let io = s.io;
                let _ = write!(
                    out,
                    ", \"io\": {{\"seq_reads\": {}, \"rand_reads\": {}, \"seq_writes\": {}, \
                     \"rand_writes\": {}, \"buffer_hits\": {}, \"tuples\": {}, \
                     \"total_io\": {}, \"hit_ratio\": {}}}",
                    io.seq_reads,
                    io.rand_reads,
                    io.seq_writes,
                    io.rand_writes,
                    io.buffer_hits,
                    io.tuples,
                    io.total_io(),
                    json_f64(io.hit_ratio()),
                );
            }
            out.push('}');
        }
        close(&mut out, first, "  ");
        out.push_str("\n}\n");
        out
    }

    /// Renders the span hierarchy as an indented text tree for stderr, e.g.
    ///
    /// ```text
    /// load                              12.345s  io=10234 (seq_w=9000 rand_w=34) hit=0.93
    ///   compute_views                    4.000s
    ///   pack                             8.100s
    ///     tree0 ×4                       2.020s
    /// ```
    ///
    /// The `BTreeMap` path order already places parents before children, so
    /// rendering is a single pass; depth is the number of `/` separators.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        for (path, span) in &self.spans {
            let depth = path.matches('/').count();
            let name = path.rsplit('/').next().unwrap_or(path);
            let mut label = format!("{}{}", "  ".repeat(depth), name);
            if span.count > 1 {
                let _ = write!(label, " \u{d7}{}", span.count);
            }
            let _ = write!(out, "{label:<34}{:>10.3}s", span.wall_secs);
            if span.has_io {
                let io = span.io;
                let _ = write!(
                    out,
                    "  io={} (seq_r={} rand_r={} seq_w={} rand_w={}) hit={:.3}",
                    io.total_io(),
                    io.seq_reads,
                    io.rand_reads,
                    io.seq_writes,
                    io.rand_writes,
                    io.hit_ratio(),
                );
            }
            out.push('\n');
        }
        out
    }
}

fn sep(out: &mut String, first: &mut bool, indent: &str) {
    if *first {
        out.push('\n');
    } else {
        out.push_str(",\n");
    }
    out.push_str(indent);
    *first = false;
}

fn close(out: &mut String, was_empty: bool, indent: &str) {
    if !was_empty {
        out.push('\n');
        out.push_str(indent);
    }
    out.push('}');
}

/// Escapes a string for JSON (quotes, backslashes, control characters).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float as valid JSON (no NaN/Inf — those become null).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` on a whole f64 prints "3" — keep it a JSON number either way,
        // but add ".0" so readers see a float.
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    #[test]
    fn root_io_sums_only_roots_with_io() {
        let r = Recorder::enabled();
        {
            let mut load = r.span("load");
            load.add_io(IoDelta { seq_writes: 10, ..Default::default() });
            let mut inner = load.child("pack");
            inner.add_io(IoDelta { seq_writes: 7, ..Default::default() });
        }
        {
            let mut update = r.span("update");
            update.add_io(IoDelta { rand_reads: 3, ..Default::default() });
        }
        {
            let _no_io = r.span("query");
        }
        let snap = r.snapshot();
        let total = snap.root_io_total();
        assert_eq!(total.seq_writes, 10); // child's 7 not double-counted
        assert_eq!(total.rand_reads, 3);
        assert_eq!(total.total_io(), 13);
    }

    #[test]
    fn json_is_well_formed_and_deterministic() {
        let r = Recorder::enabled();
        r.add("a.count", 5);
        r.gauge_set("b.ratio", 0.5);
        r.observe("c.lat", 0);
        r.observe("c.lat", 9);
        {
            let mut s = r.span("load");
            s.add_io(IoDelta { seq_reads: 2, buffer_hits: 2, ..Default::default() });
        }
        let j1 = r.snapshot().to_json();
        let j2 = r.snapshot().to_json();
        assert_eq!(j1, j2, "snapshot JSON must be deterministic");
        // Structural smoke checks (no JSON parser in the offline build).
        assert!(j1.contains("\"a.count\": 5"));
        assert!(j1.contains("\"b.ratio\": 0.5"));
        assert!(j1.contains("\"count\": 2, \"sum\": 9"));
        assert!(j1.contains("[0, 1, 1]"), "zero bucket present: {j1}");
        assert!(j1.contains("\"hit_ratio\": 0.5"));
        assert_eq!(j1.matches('{').count(), j1.matches('}').count());
        assert_eq!(j1.matches('[').count(), j1.matches(']').count());
    }

    #[test]
    fn empty_snapshot_serializes() {
        let s = MetricsSnapshot::default();
        let j = s.to_json();
        assert!(j.contains("\"counters\": {}"));
        assert_eq!(s.render_tree(), "");
        assert_eq!(s.root_io_total(), IoDelta::default());
    }

    #[test]
    fn tree_renders_depth_and_counts() {
        let r = Recorder::enabled();
        {
            let load = r.span("load");
            let _a = load.child("pack");
            let _b = load.child("pack");
        }
        let tree = r.snapshot().render_tree();
        let lines: Vec<&str> = tree.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("load"));
        assert!(lines[1].starts_with("  pack \u{d7}2"), "got: {}", lines[1]);
    }

    #[test]
    fn json_str_escapes() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_f64(2.0), "2.0");
        assert_eq!(json_f64(f64::NAN), "null");
    }
}
