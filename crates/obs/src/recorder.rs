//! The [`Recorder`] handle and hierarchical phase spans.

use std::collections::BTreeMap;
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::metrics::{Counter, Gauge, Histogram, HistogramHandle, IoDelta};
use crate::snapshot::{MetricsSnapshot, SpanSnapshot};

/// Accumulated statistics for one span path.
#[derive(Clone, Debug, Default)]
pub(crate) struct SpanStats {
    pub(crate) count: u64,
    pub(crate) wall: Duration,
    pub(crate) io: IoDelta,
    pub(crate) has_io: bool,
}

#[derive(Debug, Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    spans: Mutex<BTreeMap<String, SpanStats>>,
}

/// The cheap, cloneable handle threaded through the system.
///
/// A recorder is either *disabled* (the default — every operation is a
/// branch on `None`, making instrumentation zero-cost in production paths
/// and invisible to the `threads=1` bit-identical invariant) or *enabled*
/// (backed by a shared registry).
///
/// Instrument handles ([`Counter`], [`Gauge`], [`HistogramHandle`]) are
/// resolved **once** by name — a short registry lock — and then updated
/// lock-free with relaxed atomics, so they are safe and cheap to use from
/// worker threads in hot loops. The one-shot convenience methods
/// ([`Recorder::add`], [`Recorder::observe`], [`Recorder::gauge_set`]) take
/// the registry lock per call and suit cold paths.
#[derive(Clone, Debug, Default)]
pub struct Recorder(Option<Arc<Inner>>);

impl Recorder {
    /// The no-op recorder. All handles it vends are inert.
    pub fn disabled() -> Self {
        Recorder(None)
    }

    /// A live recorder backed by a fresh, empty registry.
    pub fn enabled() -> Self {
        Recorder(Some(Arc::new(Inner::default())))
    }

    /// Whether this recorder actually records. Use to skip *computing*
    /// expensive metric inputs; plain `add`/`record` calls don't need the
    /// check.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Resolves (creating on first use) the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        match &self.0 {
            None => Counter(None),
            Some(inner) => {
                let mut map = inner.counters.lock().unwrap();
                Counter(Some(Arc::clone(
                    map.entry(name.to_string()).or_default(),
                )))
            }
        }
    }

    /// Resolves (creating on first use) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.0 {
            None => Gauge(None),
            Some(inner) => {
                let mut map = inner.gauges.lock().unwrap();
                Gauge(Some(Arc::clone(map.entry(name.to_string()).or_default())))
            }
        }
    }

    /// Resolves (creating on first use) the histogram named `name`.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        match &self.0 {
            None => HistogramHandle(None),
            Some(inner) => {
                let mut map = inner.histograms.lock().unwrap();
                HistogramHandle(Some(Arc::clone(
                    map.entry(name.to_string()).or_default(),
                )))
            }
        }
    }

    /// One-shot `counter(name).add(v)`.
    pub fn add(&self, name: &str, v: u64) {
        if self.0.is_some() {
            self.counter(name).add(v);
        }
    }

    /// One-shot `histogram(name).record(v)`.
    pub fn observe(&self, name: &str, v: u64) {
        if self.0.is_some() {
            self.histogram(name).record(v);
        }
    }

    /// One-shot `gauge(name).set(v)`.
    pub fn gauge_set(&self, name: &str, v: f64) {
        if self.0.is_some() {
            self.gauge(name).set(v);
        }
    }

    /// Opens a phase span at `path` (`/`-separated, e.g. `"load/pack"`).
    ///
    /// The span measures wall time from now until the guard drops; the
    /// caller may attach page-I/O deltas with [`SpanGuard::add_io`].
    /// Re-opening the same path accumulates (count, wall, I/O) rather than
    /// overwriting, so per-item spans like `"update/tree3"` aggregate
    /// across batches.
    pub fn span(&self, path: &str) -> SpanGuard {
        SpanGuard(self.0.as_ref().map(|inner| ActiveSpan {
            inner: Arc::clone(inner),
            path: path.to_string(),
            start: Instant::now(),
            io: IoDelta::default(),
            has_io: false,
        }))
    }

    /// A point-in-time copy of every instrument and span.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(inner) = &self.0 else {
            return MetricsSnapshot::default();
        };
        use std::sync::atomic::Ordering;
        let counters = inner
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = inner
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
            .collect();
        let histograms = inner
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        let spans = inner
            .spans
            .lock()
            .unwrap()
            .iter()
            .map(|(k, s)| {
                (
                    k.clone(),
                    SpanSnapshot {
                        count: s.count,
                        wall_secs: s.wall.as_secs_f64(),
                        io: s.io,
                        has_io: s.has_io,
                    },
                )
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
            spans,
        }
    }
}

#[derive(Debug)]
struct ActiveSpan {
    inner: Arc<Inner>,
    path: String,
    start: Instant,
    io: IoDelta,
    has_io: bool,
}

/// An open phase span; closing (dropping) it folds the measured wall time
/// and any attached I/O into the recorder under the span's path.
///
/// Guards are plain values — move one into a worker closure to time work on
/// another thread. Hierarchy is by path: [`SpanGuard::child`] returns a new
/// guard at `parent_path/name`, and the snapshot layer rebuilds the tree
/// from the paths, so no thread-local ambient state is involved.
#[derive(Debug)]
#[must_use = "a span measures until dropped; binding it to _ closes it immediately"]
pub struct SpanGuard(Option<ActiveSpan>);

impl SpanGuard {
    /// An inert guard (what a disabled recorder vends).
    pub fn disabled() -> Self {
        SpanGuard(None)
    }

    /// Opens a child span at `self.path + "/" + name`, starting now.
    pub fn child(&self, name: &str) -> SpanGuard {
        SpanGuard(self.0.as_ref().map(|a| ActiveSpan {
            inner: Arc::clone(&a.inner),
            path: format!("{}/{}", a.path, name),
            start: Instant::now(),
            io: IoDelta::default(),
            has_io: false,
        }))
    }

    /// Attributes a page-I/O interval to this span. May be called multiple
    /// times; deltas accumulate.
    pub fn add_io(&mut self, delta: IoDelta) {
        if let Some(a) = &mut self.0 {
            a.io += delta;
            a.has_io = true;
        }
    }

    /// The span's full `/`-separated path (empty for an inert guard).
    pub fn path(&self) -> &str {
        self.0.as_ref().map_or("", |a| a.path.as_str())
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(a) = self.0.take() {
            let wall = a.start.elapsed();
            let mut spans = a.inner.spans.lock().unwrap();
            let stats = spans.entry(a.path).or_default();
            stats.count += 1;
            stats.wall += wall;
            stats.io += a.io;
            stats.has_io |= a.has_io;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_fully_inert() {
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        r.add("a", 1);
        r.observe("b", 2);
        r.gauge_set("c", 3.0);
        let mut s = r.span("load");
        s.add_io(IoDelta { seq_reads: 9, ..Default::default() });
        let c = s.child("pack");
        assert_eq!(c.path(), "");
        drop(c);
        drop(s);
        let snap = r.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn counters_resolve_to_shared_cells() {
        let r = Recorder::enabled();
        let c1 = r.counter("x");
        let c2 = r.counter("x");
        c1.add(3);
        c2.add(4);
        assert_eq!(r.counter("x").get(), 7);
        assert_eq!(r.snapshot().counters["x"], 7);
    }

    #[test]
    fn gauges_and_histograms_round_trip() {
        let r = Recorder::enabled();
        r.gauge_set("ratio", 0.25);
        r.observe("lat", 100);
        r.observe("lat", 200);
        let snap = r.snapshot();
        assert_eq!(snap.gauges["ratio"], 0.25);
        assert_eq!(snap.histograms["lat"].count, 2);
        assert_eq!(snap.histograms["lat"].sum, 300);
    }

    #[test]
    fn spans_nest_by_path_and_accumulate() {
        let r = Recorder::enabled();
        {
            let mut load = r.span("load");
            load.add_io(IoDelta { seq_writes: 10, ..Default::default() });
            for t in 0..2 {
                let _tree = load.child(&format!("tree{t}"));
            }
            // Re-enter the same child path: count accumulates to 2.
            let _again = load.child("tree0");
        }
        let snap = r.snapshot();
        assert_eq!(snap.spans["load"].count, 1);
        assert_eq!(snap.spans["load"].io.seq_writes, 10);
        assert!(snap.spans["load"].has_io);
        assert_eq!(snap.spans["load/tree0"].count, 2);
        assert_eq!(snap.spans["load/tree1"].count, 1);
        assert!(!snap.spans["load/tree0"].has_io);
    }

    #[test]
    fn span_guard_moves_across_threads() {
        let r = Recorder::enabled();
        let root = r.span("build");
        let guard = root.child("worker");
        std::thread::spawn(move || drop(guard)).join().unwrap();
        drop(root);
        let snap = r.snapshot();
        assert_eq!(snap.spans["build/worker"].count, 1);
    }

    #[test]
    fn multiple_add_io_calls_accumulate() {
        let r = Recorder::enabled();
        let mut s = r.span("p");
        s.add_io(IoDelta { rand_reads: 1, ..Default::default() });
        s.add_io(IoDelta { rand_reads: 2, seq_writes: 5, ..Default::default() });
        drop(s);
        let snap = r.snapshot();
        assert_eq!(snap.spans["p"].io.rand_reads, 3);
        assert_eq!(snap.spans["p"].io.seq_writes, 5);
    }
}
