//! # ct-obs — the observability layer
//!
//! The paper's evaluation (Tables 5–7, Figures 12–14) is an argument about
//! *where the I/O and time go*: sequential vs. random writes during packing
//! and merge-packing, buffer-pool hits during querying. This crate provides
//! the measurement substrate that lets every experiment (and every future
//! optimization) attribute cost instead of eyeballing wall-clock:
//!
//! * [`Recorder`] — the handle threaded through the system. A disabled
//!   recorder (the default) turns every call into a branch on `None`; no
//!   allocation, no locking, no counters. An enabled recorder feeds a
//!   process-local registry.
//! * [`Counter`] / [`Gauge`] / [`Histogram`] — lock-cheap instruments.
//!   Handles wrap an `Arc<AtomicU64>` (or bucket array) resolved once by
//!   name, so hot-path updates are a single relaxed atomic op.
//! * [`SpanGuard`] — hierarchical phase spans keyed by `/`-separated paths
//!   (`"load/pack/tree0"`). A span accumulates invocation count, wall time
//!   and — when the caller attaches one — an [`IoDelta`] of page-I/O
//!   counters, so phases can be reconciled against the global totals.
//! * [`MetricsSnapshot`] — a point-in-time copy of the registry that
//!   serializes to JSON (no serde; the build is offline) and renders a
//!   human-readable phase tree.
//!
//! The crate is dependency-free on purpose: `ct-storage` (and everything
//! above it) depends on `ct-obs`, never the other way around. Page-I/O
//! deltas therefore travel as the neutral [`IoDelta`] struct rather than
//! `ct_storage::IoSnapshot`; the storage crate converts.
//!
//! The metric and span names used across the workspace, their units, and
//! the paper table/figure each one supports are catalogued in the
//! repository's `OBSERVABILITY.md`.

mod metrics;
mod recorder;
mod snapshot;

pub use metrics::{Counter, Gauge, Histogram, HistogramHandle, HistogramSnapshot, IoDelta, HIST_BUCKETS};
pub use recorder::{Recorder, SpanGuard};
pub use snapshot::{MetricsSnapshot, SpanSnapshot};
