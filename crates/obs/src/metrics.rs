//! The individual instruments: counters, gauges, log-scale histograms and
//! the neutral page-I/O delta they attribute.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of histogram buckets: bucket 0 holds zero, bucket `i` (1..63)
/// holds values in `[2^(i-1), 2^i)`, bucket 63 is the overflow bucket.
pub const HIST_BUCKETS: usize = 64;

/// A monotonically increasing counter handle.
///
/// A handle from a disabled [`crate::Recorder`] is inert: every operation is
/// a branch on `None`. An enabled handle is an `Arc<AtomicU64>`, so
/// increments are single relaxed atomic adds — safe and cheap from worker
/// threads.
#[derive(Clone, Debug, Default)]
pub struct Counter(pub(crate) Option<Arc<AtomicU64>>);

impl Counter {
    /// An inert counter (what a disabled recorder hands out).
    pub fn disabled() -> Self {
        Counter(None)
    }

    /// Adds `v`.
    #[inline]
    pub fn add(&self, v: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (zero for an inert handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A last-value-wins gauge handle storing an `f64` (as its bit pattern).
#[derive(Clone, Debug, Default)]
pub struct Gauge(pub(crate) Option<Arc<AtomicU64>>);

impl Gauge {
    /// An inert gauge.
    pub fn disabled() -> Self {
        Gauge(None)
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(g) = &self.0 {
            g.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (zero for an inert handle).
    pub fn get(&self) -> f64 {
        self.0.as_ref().map_or(0.0, |g| f64::from_bits(g.load(Ordering::Relaxed)))
    }
}

/// A log₂-bucketed histogram of `u64` samples (latencies in microseconds,
/// run lengths, touched-entry counts, …).
///
/// Buckets grow exponentially, so 64 of them cover the full `u64` range with
/// ≤2× relative error — the right trade for latency-style distributions.
/// All state is atomic; recording is lock-free.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// The bucket index a value lands in: 0 for 0, otherwise
    /// `1 + floor(log2 v)` capped at the overflow bucket.
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// Inclusive-exclusive value range `[lo, hi)` of bucket `i` (the
    /// overflow bucket's `hi` saturates at `u64::MAX`).
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        assert!(i < HIST_BUCKETS);
        if i == 0 {
            (0, 1)
        } else if i == HIST_BUCKETS - 1 {
            (1u64 << (i - 1), u64::MAX)
        } else {
            (1u64 << (i - 1), 1u64 << i)
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A point-in-time copy.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { self.min.load(Ordering::Relaxed) },
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A histogram handle (inert when the recorder is disabled).
#[derive(Clone, Debug, Default)]
pub struct HistogramHandle(pub(crate) Option<Arc<Histogram>>);

impl HistogramHandle {
    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.record(v);
        }
    }
}

/// An immutable copy of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`Histogram::bucket_bounds`]).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile (`q` in `[0, 1]`), reported as the upper bound
    /// of the bucket containing the q-th sample — so the estimate errs high
    /// by at most 2×, never low.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return Self::upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    fn upper_bound(i: usize) -> u64 {
        let (_, hi) = Histogram::bucket_bounds(i);
        hi.saturating_sub(1).max(1)
    }
}

/// A neutral copy of the storage layer's page-I/O counter deltas.
///
/// Mirrors `ct_storage::IoSnapshot` field for field; `ct-storage` converts
/// (this crate sits below it in the dependency graph, so it cannot name the
/// original type).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoDelta {
    /// Sequential page reads from disk.
    pub seq_reads: u64,
    /// Random page reads from disk.
    pub rand_reads: u64,
    /// Sequential page writes to disk.
    pub seq_writes: u64,
    /// Random page writes to disk.
    pub rand_writes: u64,
    /// Reads absorbed by the buffer pool.
    pub buffer_hits: u64,
    /// CPU-side tuples processed.
    pub tuples: u64,
}

impl IoDelta {
    /// Total physical page accesses.
    pub fn total_io(&self) -> u64 {
        self.seq_reads + self.rand_reads + self.seq_writes + self.rand_writes
    }

    /// Buffer hit ratio over all logical reads, or 1.0 when nothing was
    /// read (same definition as `IoSnapshot::hit_ratio`).
    pub fn hit_ratio(&self) -> f64 {
        let logical = self.buffer_hits + self.seq_reads + self.rand_reads;
        if logical == 0 {
            1.0
        } else {
            self.buffer_hits as f64 / logical as f64
        }
    }
}

impl std::ops::Add for IoDelta {
    type Output = IoDelta;
    fn add(self, rhs: IoDelta) -> IoDelta {
        IoDelta {
            seq_reads: self.seq_reads + rhs.seq_reads,
            rand_reads: self.rand_reads + rhs.rand_reads,
            seq_writes: self.seq_writes + rhs.seq_writes,
            rand_writes: self.rand_writes + rhs.rand_writes,
            buffer_hits: self.buffer_hits + rhs.buffer_hits,
            tuples: self.tuples + rhs.tuples,
        }
    }
}

impl std::ops::AddAssign for IoDelta {
    fn add_assign(&mut self, rhs: IoDelta) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), HIST_BUCKETS - 1);
        // Bounds and index agree: every value is inside its bucket's range.
        for v in [0u64, 1, 2, 3, 7, 8, 1000, 1 << 40, u64::MAX] {
            let (lo, hi) = Histogram::bucket_bounds(Histogram::bucket_index(v));
            assert!(lo <= v, "lo {lo} > {v}");
            assert!(v < hi || hi == u64::MAX, "v {v} >= hi {hi}");
        }
    }

    #[test]
    fn histogram_aggregates() {
        let h = Histogram::default();
        for v in [0u64, 1, 1, 5, 100] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 107);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 100);
        assert_eq!(s.buckets[0], 1); // the zero
        assert_eq!(s.buckets[1], 2); // the ones
        assert_eq!(s.buckets[3], 1); // five ∈ [4, 8)
        assert_eq!(s.buckets[7], 1); // hundred ∈ [64, 128)
        assert!((s.mean() - 21.4).abs() < 1e-9);
    }

    #[test]
    fn quantiles_err_high_never_low() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        let p50 = s.quantile(0.5);
        assert!((500..=1023).contains(&p50), "p50 {p50}");
        let p99 = s.quantile(0.99);
        assert!((990..=1000).contains(&p99), "p99 {p99} (capped at max)");
        assert_eq!(s.quantile(0.0), 1);
        assert_eq!(HistogramSnapshot { ..s.clone() }.quantile(1.0), 1000);
        let empty = Histogram::default().snapshot();
        assert_eq!(empty.quantile(0.5), 0);
    }

    #[test]
    fn disabled_handles_are_inert() {
        let c = Counter::disabled();
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 0);
        let g = Gauge::disabled();
        g.set(3.5);
        assert_eq!(g.get(), 0.0);
        let h = HistogramHandle::default();
        h.record(42);
    }

    #[test]
    fn io_delta_arithmetic() {
        let a = IoDelta { seq_reads: 1, rand_writes: 2, tuples: 3, ..Default::default() };
        let b = IoDelta { seq_reads: 4, buffer_hits: 5, ..Default::default() };
        let c = a + b;
        assert_eq!(c.seq_reads, 5);
        assert_eq!(c.rand_writes, 2);
        assert_eq!(c.buffer_hits, 5);
        assert_eq!(c.total_io(), 7);
        assert_eq!(IoDelta::default().hit_ratio(), 1.0);
        let d = IoDelta { buffer_hits: 3, rand_reads: 1, ..Default::default() };
        assert_eq!(d.hit_ratio(), 0.75);
    }
}
