//! The warehouse schema, dimension data and fact generator.

use ct_common::{AttrId, Catalog};
use ct_cube::Relation;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// TPC-D: every part has exactly 4 (part, supplier) relationships.
pub const SUPPLIERS_PER_PART: u64 = 4;

/// Days in the 7-year TPC-D date range (1992-01-01 .. 1998-12-31).
pub const DAYS: u64 = 2_557;
/// Months in the date range.
pub const MONTHS: u64 = 84;
/// Years in the date range.
pub const YEARS: u64 = 7;
/// Distinct part brands.
pub const BRANDS: u64 = 25;
/// Distinct part types.
pub const TYPES: u64 = 150;
/// Distinct nations.
pub const NATIONS: u64 = 25;

/// Generator configuration.
#[derive(Clone, Copy, Debug)]
pub struct TpcdConfig {
    /// TPC-D scale factor: 1.0 is the paper's 1 GB dataset (6,001,215 fact
    /// rows). Benchmarks default to much smaller factors; the ratios stay.
    pub scale_factor: f64,
    /// RNG seed; a fixed seed reproduces the exact dataset.
    pub seed: u64,
}

impl Default for TpcdConfig {
    fn default() -> Self {
        TpcdConfig { scale_factor: 0.01, seed: 42 }
    }
}

/// The registered attribute ids of the warehouse catalog.
#[derive(Clone, Copy, Debug)]
pub struct TpcdAttrs {
    /// Fact foreign key to `part`.
    pub partkey: AttrId,
    /// Fact foreign key to `supplier`.
    pub suppkey: AttrId,
    /// Fact foreign key to `customer`.
    pub custkey: AttrId,
    /// Fact foreign key to `time`.
    pub timekey: AttrId,
    /// `part.brand`, determined by `partkey`.
    pub brand: AttrId,
    /// `part.type`, determined by `partkey`.
    pub ptype: AttrId,
    /// `time.month`, determined by `timekey`.
    pub month: AttrId,
    /// `time.year`, determined by `month`.
    pub year: AttrId,
    /// `supplier.nation`, determined by `suppkey`.
    pub s_nation: AttrId,
    /// `customer.nation`, determined by `custkey`.
    pub c_nation: AttrId,
}

/// A generated warehouse: catalog (attributes + hierarchies), dimension
/// sizes, and fact/increment generators.
pub struct TpcdWarehouse {
    config: TpcdConfig,
    catalog: Catalog,
    attrs: TpcdAttrs,
    parts: u64,
    suppliers: u64,
    customers: u64,
}

impl TpcdWarehouse {
    /// Builds the warehouse metadata (dimension tables are realized as
    /// hierarchy lookup maps; their payload columns are irrelevant to the
    /// experiments).
    pub fn new(config: TpcdConfig) -> Self {
        let sf = config.scale_factor;
        let parts = ((200_000.0 * sf) as u64).max(100);
        let suppliers = ((10_000.0 * sf) as u64).max(SUPPLIERS_PER_PART * 2);
        let customers = ((150_000.0 * sf) as u64).max(75);

        let mut catalog = Catalog::new();
        let partkey = catalog.add_attr("partkey", parts);
        let suppkey = catalog.add_attr("suppkey", suppliers);
        let custkey = catalog.add_attr("custkey", customers);
        let timekey = catalog.add_attr("timekey", DAYS);
        let brand = catalog.add_attr("part.brand", BRANDS);
        let ptype = catalog.add_attr("part.type", TYPES);
        let month = catalog.add_attr("time.month", MONTHS);
        let year = catalog.add_attr("time.year", YEARS);
        let s_nation = catalog.add_attr("supplier.nation", NATIONS);
        let c_nation = catalog.add_attr("customer.nation", NATIONS);

        // Dimension attribute maps. TPC-D assigns brand/type pseudo-randomly
        // per part; a mixed congruential hash keeps them deterministic.
        let mix = |v: u64, salt: u64, m: u64| {
            let x = v
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(salt)
                .rotate_left(31)
                .wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x % m + 1
        };
        let map = |n: u64, salt: u64, m: u64| -> Vec<u64> {
            (0..=n).map(|v| if v == 0 { 0 } else { mix(v, salt, m) }).collect()
        };
        catalog.add_hierarchy(partkey, brand, map(parts, 1, BRANDS));
        catalog.add_hierarchy(partkey, ptype, map(parts, 2, TYPES));
        catalog.add_hierarchy(suppkey, s_nation, map(suppliers, 3, NATIONS));
        catalog.add_hierarchy(custkey, c_nation, map(customers, 4, NATIONS));
        // Calendar hierarchies are structured, not random: day → month → year.
        let day_to_month: Vec<u64> =
            (0..=DAYS).map(|d| if d == 0 { 0 } else { (d - 1) / 31 + 1 }).collect();
        let month_to_year: Vec<u64> =
            (0..=MONTHS).map(|m| if m == 0 { 0 } else { (m - 1) / 12 + 1 }).collect();
        catalog.add_hierarchy(timekey, month, day_to_month);
        catalog.add_hierarchy(month, year, month_to_year);

        let attrs = TpcdAttrs {
            partkey,
            suppkey,
            custkey,
            timekey,
            brand,
            ptype,
            month,
            year,
            s_nation,
            c_nation,
        };
        TpcdWarehouse { config, catalog, attrs, parts, suppliers, customers }
    }

    /// The warehouse catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The registered attributes.
    pub fn attrs(&self) -> &TpcdAttrs {
        &self.attrs
    }

    /// Number of parts at this scale factor.
    pub fn parts(&self) -> u64 {
        self.parts
    }

    /// Number of suppliers.
    pub fn suppliers(&self) -> u64 {
        self.suppliers
    }

    /// Number of customers.
    pub fn customers(&self) -> u64 {
        self.customers
    }

    /// Fact rows of the base load at this scale factor.
    pub fn base_rows(&self) -> u64 {
        ((6_001_215.0 * self.config.scale_factor) as u64).max(1_000)
    }

    /// The `j`-th supplier of part `p` (TPC-D PARTSUPP formula): suppliers
    /// are spread deterministically so each part has exactly
    /// [`SUPPLIERS_PER_PART`] of them.
    pub fn supplier_of_part(&self, p: u64, j: u64) -> u64 {
        debug_assert!(j < SUPPLIERS_PER_PART);
        let s = self.suppliers;
        (p + j * (s / SUPPLIERS_PER_PART + (p - 1) / s)) % s + 1
    }

    /// Generates the base fact relation (projection: partkey, suppkey,
    /// custkey, timekey; measure: quantity).
    pub fn generate_fact(&self) -> Relation {
        self.generate_rows(self.base_rows(), self.config.seed)
    }

    /// Generates a refresh increment of `fraction` of the base size with an
    /// independent seed (the paper's §3.4 uses a 10% increment).
    pub fn generate_increment(&self, fraction: f64) -> Relation {
        let rows = ((self.base_rows() as f64) * fraction).round() as u64;
        self.generate_rows(rows, self.config.seed ^ 0xDE17A)
    }

    fn generate_rows(&self, rows: u64, seed: u64) -> Relation {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = &self.attrs;
        let mut keys = Vec::with_capacity(rows as usize * 4);
        let mut measures = Vec::with_capacity(rows as usize);
        for _ in 0..rows {
            let p = rng.gen_range(1..=self.parts);
            let j = rng.gen_range(0..SUPPLIERS_PER_PART);
            let s = self.supplier_of_part(p, j);
            let c = rng.gen_range(1..=self.customers);
            let t = rng.gen_range(1..=DAYS);
            keys.extend_from_slice(&[p, s, c, t]);
            measures.push(rng.gen_range(1..=50i64));
        }
        Relation::from_fact(vec![a.partkey, a.suppkey, a.custkey, a.timekey], keys, &measures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_cube::estimate::measure_size;

    fn small() -> TpcdWarehouse {
        TpcdWarehouse::new(TpcdConfig { scale_factor: 0.005, seed: 7 })
    }

    #[test]
    fn cardinalities_scale() {
        let w = small();
        assert_eq!(w.parts(), 1_000);
        assert_eq!(w.suppliers(), 50);
        assert_eq!(w.customers(), 750);
        assert_eq!(w.base_rows(), 30_006);
        let w1 = TpcdWarehouse::new(TpcdConfig { scale_factor: 1.0, seed: 7 });
        assert_eq!(w1.parts(), 200_000);
        assert_eq!(w1.base_rows(), 6_001_215);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small().generate_fact();
        let b = small().generate_fact();
        assert_eq!(a.keys, b.keys);
        assert_eq!(a.states.len(), b.states.len());
    }

    #[test]
    fn increment_differs_from_base() {
        let w = small();
        let base = w.generate_fact();
        let inc = w.generate_increment(0.1);
        assert_eq!(inc.len() as u64, (w.base_rows() as f64 * 0.1).round() as u64);
        assert_ne!(&base.keys[..inc.keys.len().min(base.keys.len())], &inc.keys[..]);
    }

    #[test]
    fn every_part_has_exactly_four_suppliers() {
        let w = small();
        for p in [1u64, 2, 499, 1000] {
            let mut ss: Vec<u64> = (0..SUPPLIERS_PER_PART).map(|j| w.supplier_of_part(p, j)).collect();
            ss.sort();
            ss.dedup();
            assert_eq!(ss.len(), 4, "part {p} suppliers {ss:?}");
            assert!(ss.iter().all(|&s| (1..=w.suppliers()).contains(&s)));
        }
    }

    #[test]
    fn partsupp_correlation_shapes_view_sizes() {
        let w = small();
        let fact = w.generate_fact();
        let a = w.attrs();
        let ps = measure_size(w.catalog(), &fact, &[a.partkey, a.suppkey]);
        // |{p,s}| is bounded by 4·parts, far below |F| and far below p×s.
        assert!(ps <= SUPPLIERS_PER_PART * w.parts());
        assert!(
            ps as f64 >= 0.8 * (SUPPLIERS_PER_PART * w.parts()) as f64,
            "almost all partsupp pairs appear at 30k rows: {ps}"
        );
        let pc = measure_size(w.catalog(), &fact, &[a.partkey, a.custkey]);
        assert!(pc as f64 > 0.9 * fact.len() as f64, "p×c is nearly row-distinct");
    }

    #[test]
    fn keys_are_in_domain() {
        let w = small();
        let fact = w.generate_fact();
        for i in 0..fact.len() {
            let k = fact.key(i);
            assert!((1..=w.parts()).contains(&k[0]));
            assert!((1..=w.suppliers()).contains(&k[1]));
            assert!((1..=w.customers()).contains(&k[2]));
            assert!((1..=DAYS).contains(&k[3]));
            let q = fact.states[i].sum;
            assert!((1..=50).contains(&q));
        }
    }

    #[test]
    fn hierarchies_are_consistent() {
        let w = small();
        let c = w.catalog();
        let a = w.attrs();
        // Every part maps to a brand and type in range.
        for p in 1..=w.parts() {
            let b = c.translate(&[a.partkey], &[p], a.brand).unwrap();
            assert!((1..=BRANDS).contains(&b));
            let t = c.translate(&[a.partkey], &[p], a.ptype).unwrap();
            assert!((1..=TYPES).contains(&t));
        }
        // day → month → year chains correctly.
        let y = c.translate(&[a.timekey], &[DAYS], a.year).unwrap();
        assert!((1..=YEARS).contains(&y));
        let m1 = c.translate(&[a.timekey], &[1], a.month).unwrap();
        assert_eq!(m1, 1);
        assert_eq!(c.translate(&[a.month], &[13], a.year).unwrap(), 2);
    }

    #[test]
    fn brands_cover_their_domain() {
        let w = TpcdWarehouse::new(TpcdConfig { scale_factor: 0.01, seed: 1 });
        let c = w.catalog();
        let a = w.attrs();
        let mut seen = std::collections::HashSet::new();
        for p in 1..=w.parts() {
            seen.insert(c.translate(&[a.partkey], &[p], a.brand).unwrap());
        }
        assert_eq!(seen.len() as u64, BRANDS, "2000 parts hit all 25 brands");
    }
}
