//! # ct-tpcd — a TPC-D-like warehouse generator (DBGEN substitute)
//!
//! The paper's evaluation (§3) populates its views "with data generated from
//! the TPC-D benchmark" using the DBGEN utility. TPC-D itself is proprietary
//! tooling; this crate is a deterministic substitute that reproduces the
//! *structural* properties the experiments depend on:
//!
//! * the star schema of paper Figure 1 — a fact (lineitem-like) table over
//!   `partkey`, `suppkey`, `custkey` (plus `timekey` for the §2.4 example),
//!   with a `quantity` measure in `1..=50`;
//! * TPC-D cardinality ratios at scale factor `SF`: 200,000·SF parts,
//!   10,000·SF suppliers, 150,000·SF customers, 6,001,215·SF fact rows;
//! * the **part–supplier correlation**: each part is supplied by exactly 4
//!   suppliers (TPC-D's PARTSUPP), which is what makes
//!   `|V{partkey,suppkey}| ≈ 4·|part| = 800,000·SF` instead of ~|F| and is
//!   why the paper's selection materializes `V{partkey,suppkey}`;
//! * dimension hierarchies: `partkey → part.brand` (25 brands),
//!   `partkey → part.type` (150 types), `timekey → month → year` (7 years of
//!   days), and supplier/customer nations — enough to express every view in
//!   the paper's Figures 6 and 9;
//! * a 10% *increment* generator for the refresh experiment (paper §3.4
//!   generated 598,964 rows against the 1 GB dataset).
//!
//! Everything is reproducible from a seed.

pub mod warehouse;

pub use warehouse::{TpcdAttrs, TpcdConfig, TpcdWarehouse, SUPPLIERS_PER_PART};
