//! Report formatting: aligned console tables plus optional JSON output.
//!
//! JSON is emitted by a small hand-rolled serializer (the build runs offline
//! with no serde available); the shape matches what serde's derive would
//! produce for these structs, so downstream tooling is unaffected.

/// A generic experiment report: header metadata plus named sections of rows.
#[derive(Debug, Default)]
pub struct Report {
    /// Experiment id, e.g. `"table6_load"`.
    pub experiment: String,
    /// Paper reference, e.g. `"Table 6"`.
    pub paper_ref: String,
    /// Scale factor used.
    pub sf: f64,
    /// Free-form key/value metadata.
    pub meta: Vec<(String, String)>,
    /// Result sections.
    pub sections: Vec<Section>,
}

/// One titled table of rows.
#[derive(Debug, Default)]
pub struct Section {
    /// Section title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Report {
    /// A new report.
    pub fn new(experiment: &str, paper_ref: &str, sf: f64) -> Self {
        Report {
            experiment: experiment.to_string(),
            paper_ref: paper_ref.to_string(),
            sf,
            ..Default::default()
        }
    }

    /// Adds a metadata line.
    pub fn meta(&mut self, key: &str, value: impl std::fmt::Display) {
        self.meta.push((key.to_string(), value.to_string()));
    }

    /// Adds a section and returns a handle for pushing rows.
    pub fn section(&mut self, title: &str, columns: &[&str]) -> &mut Section {
        self.sections.push(Section {
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        });
        self.sections.last_mut().unwrap()
    }

    /// Renders the report to stdout and optionally to a JSON file.
    pub fn emit(&self, json_path: Option<&str>) {
        println!("== {} ({}) — SF {} ==", self.experiment, self.paper_ref, self.sf);
        for (k, v) in &self.meta {
            println!("   {k}: {v}");
        }
        for s in &self.sections {
            println!("\n-- {} --", s.title);
            print_table(&s.columns, &s.rows);
        }
        if let Some(path) = json_path {
            std::fs::write(path, self.to_json()).expect("write json report");
            println!("\n(json written to {path})");
        }
        println!();
    }

    /// Serializes the report as pretty-printed JSON (serde-derive shape).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        json_kv(&mut out, 1, "experiment", &json_str(&self.experiment), false);
        json_kv(&mut out, 1, "paper_ref", &json_str(&self.paper_ref), false);
        json_kv(&mut out, 1, "sf", &json_f64(self.sf), false);
        let meta_items: Vec<String> = self
            .meta
            .iter()
            .map(|(k, v)| format!("[{}, {}]", json_str(k), json_str(v)))
            .collect();
        json_kv(&mut out, 1, "meta", &format!("[{}]", meta_items.join(", ")), false);
        let sections: Vec<String> = self.sections.iter().map(Section::to_json).collect();
        json_kv(&mut out, 1, "sections", &format!("[{}]", sections.join(", ")), true);
        out.push('}');
        out
    }
}

fn json_kv(out: &mut String, indent: usize, key: &str, value: &str, last: bool) {
    out.push_str(&"  ".repeat(indent));
    out.push_str(&json_str(key));
    out.push_str(": ");
    out.push_str(value);
    if !last {
        out.push(',');
    }
    out.push('\n');
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // Round-trippable, and integral values keep a trailing `.0` as JSON
        // number formatting conventions expect.
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{v:.1}")
        } else {
            format!("{v}")
        }
    } else {
        "null".to_string()
    }
}

impl Section {
    /// Pushes one row.
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.columns.len());
        self.rows.push(cells);
    }

    fn to_json(&self) -> String {
        let cols: Vec<String> = self.columns.iter().map(|c| json_str(c)).collect();
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                let cells: Vec<String> = r.iter().map(|c| json_str(c)).collect();
                format!("[{}]", cells.join(", "))
            })
            .collect();
        format!(
            "{{\"title\": {}, \"columns\": [{}], \"rows\": [{}]}}",
            json_str(&self.title),
            cols.join(", "),
            rows.join(", ")
        )
    }
}

fn print_table(columns: &[String], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = columns.iter().map(|c| c.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        let parts: Vec<String> =
            cells.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}", w = w)).collect();
        println!("  {}", parts.join("  "));
    };
    fmt_row(columns);
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    println!("  {}", "-".repeat(total));
    for row in rows {
        fmt_row(row);
    }
}

/// Appends a "query scheduler" section summarizing Cubetree batch-scheduling
/// statistics across `batches` (one [`ct_workload::BatchStats`] per executed
/// batch). Batches that ran the sequential path (no scheduler) contribute
/// nothing; a fully sequential run yields a single zero row, so the section
/// shape is stable across `--threads` settings.
pub fn sched_section(report: &mut Report, batches: &[&ct_workload::BatchStats]) {
    let total_queries: usize = batches.iter().map(|b| b.len()).sum();
    let mut scheduled = 0u64;
    let mut groups = 0u64;
    let mut reordered = 0u64;
    let mut shared = 0u64;
    for b in batches {
        if let Some(s) = b.sched {
            scheduled += 1;
            groups += s.groups;
            reordered += s.reordered;
            shared += s.shared_scans;
        }
    }
    let frac = if total_queries > 0 {
        reordered as f64 / total_queries as f64
    } else {
        0.0
    };
    let s = report.section(
        "query scheduler (cubetrees)",
        &["scheduled batches", "tree groups", "reordered", "reordered frac", "shared scans"],
    );
    s.row(vec![
        scheduled.to_string(),
        groups.to_string(),
        reordered.to_string(),
        format!("{frac:.3}"),
        shared.to_string(),
    ]);
}

/// Formats seconds in a human scale (`ms`, `s`, `m`, `h`).
pub fn fmt_secs(s: f64) -> String {
    if s.is_infinite() {
        "inf".to_string()
    } else if s < 1.0 {
        format!("{:.1}ms", s * 1e3)
    } else if s < 120.0 {
        format!("{s:.2}s")
    } else if s < 7200.0 {
        format!("{:.1}m", s / 60.0)
    } else {
        format!("{:.2}h", s / 3600.0)
    }
}

/// Formats bytes in MiB.
pub fn fmt_mb(bytes: u64) -> String {
    format!("{:.2}MB", bytes as f64 / (1024.0 * 1024.0))
}

/// Formats a ratio like `12.3x`.
pub fn fmt_ratio(a: f64, b: f64) -> String {
    if b == 0.0 {
        "inf".to_string()
    } else {
        format!("{:.1}x", a / b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_secs(0.0123), "12.3ms");
        assert_eq!(fmt_secs(1.5), "1.50s");
        assert_eq!(fmt_secs(600.0), "10.0m");
        assert_eq!(fmt_secs(7200.0), "2.00h");
        assert_eq!(fmt_mb(1024 * 1024), "1.00MB");
        assert_eq!(fmt_ratio(10.0, 2.0), "5.0x");
        assert_eq!(fmt_ratio(1.0, 0.0), "inf");
    }

    #[test]
    fn report_roundtrips_to_json() {
        let mut r = Report::new("t", "Table X", 0.01);
        r.meta("rows", 123);
        let s = r.section("sec", &["a", "b"]);
        s.row(vec!["1".into(), "2".into()]);
        let json = r.to_json();
        assert!(json.contains("\"Table X\""));
        assert!(json.contains("\"sec\""));
        assert!(json.contains("[\"1\", \"2\"]"));
        assert!(json.contains("\"sf\": 0.01"));
    }

    #[test]
    fn json_escapes_special_characters() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_f64(2.0), "2.0");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }
}
