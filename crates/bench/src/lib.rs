//! # ct-bench — the paper's experiment harness
//!
//! One binary per table/figure of the paper's evaluation (§3), plus
//! Criterion micro-benchmarks. Every binary accepts:
//!
//! ```text
//! --sf <f64>        TPC-D scale factor            (default 0.01)
//! --seed <u64>      generator seed                (default 42)
//! --queries <usize> queries per batch/node        (default 100)
//! --pool-frac <f64> buffer pool bytes as a fraction of the estimated view
//!                   data size (default 0.0533 — the paper's 32 MB against
//!                   its 602 MB conventional footprint)
//! --json <path>     also write the report as JSON
//! --metrics <path>  enable the ct-obs recorder and write its counters,
//!                   histograms and phase tree as JSON (see OBSERVABILITY.md)
//! ```
//!
//! Results are reported in **simulated seconds** under the 1998 disk cost
//! model (the paper's hardware; see `ct_common::cost`) alongside wall-clock
//! on the host. Shape comparisons against the paper use the simulated
//! metric; see DESIGN.md for the substitution argument.

pub mod args;
pub mod experiments;
pub mod metrics;
pub mod report;

pub use args::BenchArgs;
pub use experiments::{build_engines, Engines};
pub use metrics::{emit_metrics, emit_metrics_if_requested, MetricsReport};
pub use report::Report;
