//! Minimal CLI argument parsing shared by all bench binaries.

/// Parsed command-line options.
#[derive(Clone, Debug)]
pub struct BenchArgs {
    /// TPC-D scale factor.
    pub sf: f64,
    /// Generator seed.
    pub seed: u64,
    /// Queries per batch (Figure 12 uses 100 per lattice node).
    pub queries: usize,
    /// Buffer pool size as a fraction of the estimated data size.
    pub pool_frac: f64,
    /// Optional JSON output path.
    pub json: Option<String>,
    /// Optional metrics JSON output path. When set, the engines run with an
    /// enabled [`ct_obs::Recorder`]; counters, histograms and the phase tree
    /// are written here and a summary is printed to stderr.
    pub metrics: Option<String>,
    /// Worker threads for the Cubetree sort→pack pipeline (1 = sequential).
    pub threads: usize,
    /// Inject a failure on the Nth physical page write of the Cubetree
    /// refresh (0 = disabled). The update must fail cleanly and leave the
    /// on-disk state recoverable — a command-line probe of the crash-safety
    /// contract.
    pub faults: u64,
    /// Shard count for partitioned-forest runs (1 = unsharded).
    pub shards: usize,
    /// Zipf skew of the generated query stream (0 = the historical
    /// uniform workload, byte-identical).
    pub skew: f64,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            sf: 0.01,
            seed: 42,
            queries: 100,
            pool_frac: 32.0 / 602.0,
            json: None,
            metrics: None,
            threads: 1,
            faults: 0,
            shards: 1,
            skew: 0.0,
        }
    }
}

impl BenchArgs {
    /// Parses `std::env::args()`, exiting with a usage message on error.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit argument iterator.
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = BenchArgs::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next().unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    std::process::exit(2);
                })
            };
            match flag.as_str() {
                "--sf" => out.sf = value("--sf").parse().expect("--sf takes a float"),
                "--seed" => out.seed = value("--seed").parse().expect("--seed takes an int"),
                "--queries" => {
                    out.queries = value("--queries").parse().expect("--queries takes an int")
                }
                "--pool-frac" => {
                    out.pool_frac =
                        value("--pool-frac").parse().expect("--pool-frac takes a float")
                }
                "--json" => out.json = Some(value("--json")),
                "--metrics" => out.metrics = Some(value("--metrics")),
                "--threads" => {
                    out.threads = value("--threads")
                        .parse::<usize>()
                        .expect("--threads takes an int")
                        .max(1)
                }
                "--faults" => {
                    out.faults = value("--faults").parse().expect("--faults takes an int")
                }
                "--shards" => {
                    out.shards = value("--shards")
                        .parse::<usize>()
                        .expect("--shards takes an int")
                        .max(1)
                }
                "--skew" => {
                    out.skew = value("--skew").parse().expect("--skew takes a float");
                    assert!(
                        out.skew >= 0.0 && out.skew.is_finite(),
                        "--skew takes a finite non-negative float"
                    );
                }
                "--help" | "-h" => {
                    eprintln!(
                        "usage: [--sf F] [--seed N] [--queries N] [--pool-frac F] \
                         [--json PATH] [--metrics PATH] [--threads N] [--faults N] \
                         [--shards N] [--skew F]"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag {other}");
                    std::process::exit(2);
                }
            }
        }
        out
    }

    /// Buffer pool size in pages for an estimated dataset of `data_bytes`.
    pub fn pool_pages(&self, data_bytes: u64) -> usize {
        let bytes = (data_bytes as f64 * self.pool_frac) as usize;
        (bytes / ct_storage::PAGE_SIZE).max(128)
    }

    /// A fault plan matching the `--faults` flag: an active (but not yet
    /// armed) plan when injection was requested, the inert plan otherwise.
    pub fn fault_plan(&self) -> ct_storage::FaultPlan {
        if self.faults > 0 {
            ct_storage::FaultPlan::new()
        } else {
            ct_storage::FaultPlan::none()
        }
    }

    /// A recorder matching the `--metrics` flag: enabled when a path was
    /// given, disabled (zero-cost probes) otherwise.
    pub fn recorder(&self) -> ct_obs::Recorder {
        if self.metrics.is_some() {
            ct_obs::Recorder::enabled()
        } else {
            ct_obs::Recorder::disabled()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_overrides() {
        let d = BenchArgs::parse_from(Vec::<String>::new());
        assert_eq!(d.sf, 0.01);
        let a = BenchArgs::parse_from(
            ["--sf", "0.05", "--seed", "7", "--queries", "50", "--pool-frac", "0.1"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(a.sf, 0.05);
        assert_eq!(a.seed, 7);
        assert_eq!(a.queries, 50);
        assert_eq!(a.pool_frac, 0.1);
        assert!(a.json.is_none());
        assert!(a.metrics.is_none());
        assert!(!a.recorder().is_enabled());
        assert_eq!(a.threads, 1);
        assert_eq!(a.faults, 0);
        assert!(!a.fault_plan().is_active());
    }

    #[test]
    fn faults_flag_activates_plan() {
        let a = BenchArgs::parse_from(["--faults", "3"].iter().map(|s| s.to_string()));
        assert_eq!(a.faults, 3);
        assert!(a.fault_plan().is_active());
    }

    #[test]
    fn metrics_flag_enables_recorder() {
        let a = BenchArgs::parse_from(
            ["--metrics", "m.json"].iter().map(|s| s.to_string()),
        );
        assert_eq!(a.metrics.as_deref(), Some("m.json"));
        assert!(a.recorder().is_enabled());
    }

    #[test]
    fn threads_parse_and_clamp() {
        let a = BenchArgs::parse_from(["--threads", "4"].iter().map(|s| s.to_string()));
        assert_eq!(a.threads, 4);
        let z = BenchArgs::parse_from(["--threads", "0"].iter().map(|s| s.to_string()));
        assert_eq!(z.threads, 1, "zero clamps to sequential");
    }

    #[test]
    fn shards_parse_and_clamp() {
        let d = BenchArgs::parse_from(Vec::<String>::new());
        assert_eq!(d.shards, 1, "default is unsharded");
        let a = BenchArgs::parse_from(["--shards", "4"].iter().map(|s| s.to_string()));
        assert_eq!(a.shards, 4);
        let z = BenchArgs::parse_from(["--shards", "0"].iter().map(|s| s.to_string()));
        assert_eq!(z.shards, 1, "zero clamps to a single shard");
    }

    #[test]
    fn skew_parses_with_uniform_default() {
        let d = BenchArgs::parse_from(Vec::<String>::new());
        assert_eq!(d.skew, 0.0, "default is the uniform workload");
        let a = BenchArgs::parse_from(["--skew", "1.1"].iter().map(|s| s.to_string()));
        assert_eq!(a.skew, 1.1);
    }

    #[test]
    fn pool_pages_has_floor() {
        let a = BenchArgs::default();
        assert_eq!(a.pool_pages(0), 128);
        assert!(a.pool_pages(1 << 30) > 128);
    }
}
