//! Shared experiment setup: building both engines from one TPC-D dataset.

use crate::args::BenchArgs;
use ct_common::Result;
use ct_cube::Relation;
use ct_tpcd::{TpcdConfig, TpcdWarehouse};
use ct_workload::paper_configs;
use cubetree::engine::{ConventionalEngine, CubetreeEngine, RolapEngine};
use std::time::Instant;

/// Timing of one engine's initial load.
#[derive(Clone, Copy, Debug, Default)]
pub struct LoadTiming {
    /// Wall-clock seconds.
    pub wall: f64,
    /// Simulated seconds under the 1998 cost model.
    pub sim: f64,
}

/// Both engines loaded over the same dataset, with load measurements.
pub struct Engines {
    /// The generated warehouse.
    pub warehouse: TpcdWarehouse,
    /// The base fact relation.
    pub fact: Relation,
    /// Conventional engine (loaded).
    pub conventional: ConventionalEngine,
    /// Cubetree engine (loaded).
    pub cubetree: CubetreeEngine,
    /// Conventional load timing.
    pub conv_load: LoadTiming,
    /// Cubetree load timing.
    pub cube_load: LoadTiming,
}

/// Estimated on-disk bytes of the paper's view set for pool sizing
/// (~1.2 tuples of ~40 bytes per fact row, both configurations combined).
pub fn estimate_data_bytes(fact_rows: u64) -> u64 {
    fact_rows.saturating_mul(48)
}

/// Generates the dataset and loads both engines, measuring load costs.
pub fn build_engines(args: &BenchArgs) -> Result<Engines> {
    let warehouse = TpcdWarehouse::new(TpcdConfig { scale_factor: args.sf, seed: args.seed });
    let fact = warehouse.generate_fact();
    let mut setup = paper_configs(&warehouse);
    let pool = args.pool_pages(estimate_data_bytes(fact.len() as u64));
    setup.conventional.pool_pages = pool;
    setup.cubetree.pool_pages = pool;
    setup.cubetree.threads = args.threads;
    // Each engine gets its own registry so phase trees don't interleave.
    setup.conventional.recorder = args.recorder();
    setup.cubetree.recorder = args.recorder();
    // --faults arms write injection against the Cubetree engine only; the
    // plan stays trigger-free during the load (benches arm it afterwards).
    setup.cubetree.faults = args.fault_plan();

    let mut conventional =
        ConventionalEngine::new(warehouse.catalog().clone(), setup.conventional)?;
    let conv_load = timed_load(&mut conventional, &fact)?;
    let mut cubetree = CubetreeEngine::new(warehouse.catalog().clone(), setup.cubetree)?;
    let cube_load = timed_load(&mut cubetree, &fact)?;
    Ok(Engines { warehouse, fact, conventional, cubetree, conv_load, cube_load })
}

/// [`build_engines`] with a process-exit on failure (bench binaries).
pub fn build_engines_or_die(args: &BenchArgs) -> Engines {
    build_engines(args).unwrap_or_else(|e| {
        eprintln!("failed to build engines: {e}");
        std::process::exit(1);
    })
}

/// Loads one engine, returning wall and simulated time.
pub fn timed_load(engine: &mut dyn RolapEngine, fact: &Relation) -> Result<LoadTiming> {
    let io0 = engine.env().snapshot();
    let t0 = Instant::now();
    engine.load(fact)?;
    let wall = t0.elapsed().as_secs_f64();
    let sim = engine
        .env()
        .snapshot()
        .since(&io0)
        .simulated_seconds(engine.env().cost_model());
    Ok(LoadTiming { wall, sim })
}

/// Runs `f`, returning `(result, wall_secs, sim_secs)` measured on `engine`.
pub fn timed<R>(
    engine: &dyn RolapEngine,
    f: impl FnOnce() -> Result<R>,
) -> Result<(R, f64, f64)> {
    let io0 = engine.env().snapshot();
    let t0 = Instant::now();
    let r = f()?;
    let wall = t0.elapsed().as_secs_f64();
    let sim = engine
        .env()
        .snapshot()
        .since(&io0)
        .simulated_seconds(engine.env().cost_model());
    Ok((r, wall, sim))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_build_at_tiny_scale() {
        let args = BenchArgs { sf: 0.001, ..Default::default() };
        let e = build_engines(&args).unwrap();
        assert!(e.conv_load.sim > 0.0);
        assert!(e.cube_load.sim > 0.0);
        assert!(e.conventional.storage_bytes() > 0);
        assert!(e.cubetree.storage_bytes() > 0);
        // Load should already show the paper's direction: cubetrees cheaper.
        assert!(e.cube_load.sim < e.conv_load.sim);
    }
}
