//! Answer-cache benchmark: a skewed serving workload against two identical
//! ct-servers, one with the generation-keyed answer cache enabled and one
//! without. Both replay the same per-client query streams (same seed), so
//! their physical page counts compare like for like.
//!
//! The cache's whole value proposition is checked here:
//!
//! * **Page economy** — under a Zipf-skewed stream, hits skip planning and
//!   R-tree scans entirely, so the cache-on run must read no more pages per
//!   answered query than cache-off times the checked-in baseline ratio
//!   (`results/bench_cache_baseline.json`).
//! * **Transparency** — after the load, a deterministic verification pass
//!   asks both servers the same queries (twice each, so the second round on
//!   the cached server is served from memory) and requires byte-identical
//!   response bodies.
//! * **Liveness** — with skew, the cache must actually record hits; a zero
//!   hit count means the wiring is broken even if nothing else trips.
//!
//! Exits non-zero on any of the three. Default output `BENCH_cache.json`.

use ct_bench::experiments::estimate_data_bytes;
use ct_bench::report::{fmt_ratio, Report};
use ct_bench::BenchArgs;
use ct_server::json::Json;
use ct_server::{CtServer, ServerConfig, ServerHandle};
use ct_tpcd::{TpcdConfig, TpcdWarehouse};
use ct_workload::serving::{query_body, HttpClient, LoopMode, ServingConfig, ServingStats};
use ct_workload::{paper_configs, run_serving, QueryGenerator};
use cubetree::engine::{CubetreeEngine, RolapEngine};
use cubetree::{ServingEngine, ShardSpec, ShardedConfig, ShardedEngine};
use std::sync::Arc;
use std::time::Duration;

struct Side {
    label: &'static str,
    cache: bool,
    engine: Arc<dyn ServingEngine>,
    server: Option<ServerHandle>,
    stats: Option<ServingStats>,
    pages: u64,
}

fn main() {
    let args = BenchArgs::parse();
    let threads = args.threads.max(2);
    // A cache benchmark over a uniform stream would measure nothing; default
    // to a realistic hot-set skew, overridable with --skew.
    let skew = if args.skew == 0.0 { 1.1 } else { args.skew };
    let w = TpcdWarehouse::new(TpcdConfig { scale_factor: args.sf, seed: args.seed });
    let fact = w.generate_fact();
    let setup = paper_configs(&w);
    let pool = args.pool_pages(estimate_data_bytes(fact.len() as u64));
    let a = w.attrs();
    let base = vec![a.partkey, a.suppkey, a.custkey];
    let total_requests = args.queries.max(16);

    let build = |label: &'static str, cache: bool| -> Side {
        let mut cfg = setup.cubetree.clone().with_threads(threads);
        cfg.pool_pages = if args.shards > 1 { (pool / args.shards).max(128) } else { pool };
        cfg.recorder = ct_obs::Recorder::enabled();
        let engine: Arc<dyn ServingEngine> = if args.shards > 1 {
            let spec = ShardSpec::new(args.shards).with_partition_attr(a.partkey);
            let mut engine =
                ShardedEngine::new(w.catalog().clone(), ShardedConfig::new(cfg, spec))
                    .expect("sharded engine");
            engine.load(&fact).expect("sharded load");
            Arc::new(engine)
        } else {
            let mut engine =
                CubetreeEngine::new(w.catalog().clone(), cfg).expect("cubetree engine");
            engine.load(&fact).expect("cubetree load");
            Arc::new(engine)
        };
        let mut server_cfg = ServerConfig::default();
        server_cfg.admission.max_batch = 32;
        server_cfg.admission.max_delay = Duration::from_millis(2);
        server_cfg.cache.enabled = cache;
        // Threshold 1: every miss populates, so the warm-up cost of the
        // frequency doorkeeper doesn't blur a short benchmark run.
        server_cfg.cache.admission_threshold = 1;
        let server = CtServer::start(engine.clone(), server_cfg).expect("start server");
        Side { label, cache, engine, server: Some(server), stats: None, pages: 0 }
    };

    let mut sides = vec![build("cache off", false), build("cache on", true)];

    // Identical skewed load against each side (same seed → same per-client
    // query streams).
    for side in &mut sides {
        let load = ServingConfig {
            clients: 8,
            requests_per_client: total_requests / 8,
            mode: LoopMode::Closed,
            seed: args.seed,
            skew,
            ..ServingConfig::default()
        };
        let addr = side.server.as_ref().expect("running").addr().to_string();
        let before = side.engine.io_snapshot();
        let stats = run_serving(&addr, w.catalog(), base.clone(), &load)
            .expect("serving run");
        let io = side.engine.io_snapshot().since(&before);
        side.pages = io.seq_reads + io.rand_reads;
        side.stats = Some(stats);
    }

    // Transparency pass: the same deterministic queries to both servers,
    // twice each. The second round on the cached side replays memoized rows;
    // every body must still be byte-identical to the uncached server's.
    let mut generator =
        QueryGenerator::new(w.catalog(), base.clone(), args.seed ^ 0x5eed)
            .with_skew(skew);
    let probes: Vec<_> = (0..32).map(|_| generator.next_query()).collect();
    let mut mismatches = 0u64;
    let mut clients: Vec<HttpClient> = sides
        .iter()
        .map(|s| {
            let addr = s.server.as_ref().expect("running").addr().to_string();
            HttpClient::connect(&addr).expect("connect")
        })
        .collect();
    for round in 0..2 {
        for (qi, q) in probes.iter().enumerate() {
            let body = query_body(w.catalog(), q, false);
            let replies: Vec<String> = clients
                .iter_mut()
                .map(|c| {
                    let r = c.request("POST", "/query", &body).expect("query");
                    assert_eq!(r.status, 200, "probe query must succeed");
                    r.text()
                })
                .collect();
            if replies[1] != replies[0] {
                mismatches += 1;
                eprintln!("answer mismatch (round {round}, probe {qi}): {q:?}");
            }
        }
    }
    drop(clients);

    let cache_counter = |side: &Side, name: &str| side.engine.recorder().counter(name).get();
    let hits = cache_counter(&sides[1], "cache.hits");
    let misses = cache_counter(&sides[1], "cache.misses");
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;

    for side in &mut sides {
        side.server.take().expect("running").join();
    }

    let baseline_ratio = read_baseline_ratio("results/bench_cache_baseline.json");
    let per_query = |s: &Side| {
        s.pages as f64 / s.stats.as_ref().map_or(1, |st| st.ok.max(1)) as f64
    };
    let ratio = per_query(&sides[1]) / per_query(&sides[0]);

    let mut report = Report::new(
        "bench_cache",
        "generation-keyed answer cache: skewed serving, cache on vs off",
        args.sf,
    );
    report.meta("fact rows", fact.len());
    report.meta("threads", threads);
    report.meta("shards", args.shards);
    report.meta("skew", skew);
    report.meta("requests per side", total_requests);
    report.meta("baseline max pages/query ratio", baseline_ratio);

    let s = report.section(
        "serving",
        &["setting", "ok", "429", "errors", "qps", "p50 ms", "p99 ms", "pages", "pages/query"],
    );
    for side in &sides {
        let st = side.stats.as_ref().expect("ran");
        s.row(vec![
            side.label.to_string(),
            st.ok.to_string(),
            st.rejected.to_string(),
            st.errors.to_string(),
            format!("{:.1}", st.qps()),
            format!("{:.3}", st.percentile(50.0) * 1e3),
            format!("{:.3}", st.percentile(99.0) * 1e3),
            side.pages.to_string(),
            format!("{:.3}", per_query(side)),
        ]);
    }

    let s2 = report.section("cache", &["metric", "value"]);
    s2.row(vec!["cache.hits".into(), hits.to_string()]);
    s2.row(vec!["cache.misses".into(), misses.to_string()]);
    s2.row(vec!["hit rate".into(), format!("{hit_rate:.3}")]);
    s2.row(vec![
        "cache.inserts".into(),
        cache_counter(&sides[1], "cache.inserts").to_string(),
    ]);
    s2.row(vec![
        "cache.evictions".into(),
        cache_counter(&sides[1], "cache.evictions").to_string(),
    ]);
    s2.row(vec![
        "cache.invalidations".into(),
        cache_counter(&sides[1], "cache.invalidations").to_string(),
    ]);
    s2.row(vec![
        "cached / uncached pages per query".into(),
        fmt_ratio(per_query(&sides[1]), per_query(&sides[0])),
    ]);
    s2.row(vec!["probe mismatches".into(), mismatches.to_string()]);
    s2.row(vec!["within baseline".into(), (ratio <= baseline_ratio).to_string()]);

    let json = args.json.clone().unwrap_or_else(|| "BENCH_cache.json".into());
    report.emit(Some(&json));
    if let Some(path) = args.metrics.as_deref() {
        let docs: Vec<String> = sides
            .iter()
            .map(|side| {
                format!(
                    "{}: {}",
                    ct_server::json::escape(side.label),
                    side.engine.metrics_json()
                )
            })
            .collect();
        std::fs::write(path, format!("{{{}}}", docs.join(", "))).expect("write metrics");
        eprintln!("(metrics written to {path})");
    }

    let mut failed = false;
    for side in &sides {
        let st = side.stats.as_ref().expect("ran");
        if st.errors > 0 || st.ok == 0 {
            eprintln!(
                "regression: {} had {} errors, {} ok",
                side.label, st.errors, st.ok
            );
            failed = true;
        }
        assert!(side.cache || cache_counter(side, "cache.hits") == 0);
    }
    if mismatches > 0 {
        eprintln!("regression: {mismatches} cached answers differed from uncached");
        failed = true;
    }
    if hits == 0 {
        eprintln!("regression: cache recorded zero hits under skew {skew}");
        failed = true;
    }
    if ratio > baseline_ratio {
        eprintln!(
            "regression: cache-on read {:.3} pages/query vs {:.3} cache-off \
             (ratio {:.3} > baseline {baseline_ratio:.3})",
            per_query(&sides[1]),
            per_query(&sides[0]),
            ratio
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}

/// Reads `max_cached_pages_per_query_ratio` from the checked-in baseline,
/// falling back to 1.0 (a cache must never cost pages) if the file is
/// missing or unparsable.
fn read_baseline_ratio(path: &str) -> f64 {
    std::fs::read_to_string(path)
        .ok()
        .and_then(|text| Json::parse(&text).ok())
        .and_then(|doc| doc.get("max_cached_pages_per_query_ratio")?.as_f64())
        .unwrap_or(1.0)
}
