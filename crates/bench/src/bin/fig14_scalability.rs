//! Figure 14: Cubetree scalability — per-view query batches at SF and 2×SF,
//! plus a partitioned-forest shard sweep (build-time scale-out).
//!
//! Paper: "query performance is practically unaffected by the larger input";
//! small differences track output size only. The shard sweep extends the
//! scalability story sideways: the same fact relation is hash-partitioned
//! into {1, 2, 4, 8} independent forests that build in parallel, reporting
//! wall-clock speedup and partition skew (see `bench_shards` for the gated
//! page-economy and bit-identity checks).

use ct_bench::experiments::estimate_data_bytes;
use ct_bench::report::{fmt_ratio, fmt_secs, Report};
use ct_bench::BenchArgs;
use ct_tpcd::{TpcdConfig, TpcdWarehouse};
use ct_workload::{paper_configs, run_batch, QueryGenerator};
use cubetree::engine::{CubetreeEngine, RolapEngine};
use cubetree::{ShardSpec, ShardedConfig, ShardedEngine};
use std::time::Instant;

fn load_cubetrees(args: &BenchArgs, sf: f64) -> (TpcdWarehouse, CubetreeEngine) {
    let w = TpcdWarehouse::new(TpcdConfig { scale_factor: sf, seed: args.seed });
    let fact = w.generate_fact();
    let mut setup = paper_configs(&w);
    setup.cubetree.pool_pages = args.pool_pages(estimate_data_bytes(fact.len() as u64));
    setup.cubetree.recorder = args.recorder();
    let mut engine = CubetreeEngine::new(w.catalog().clone(), setup.cubetree)
        .expect("engine creation");
    engine.load(&fact).expect("load");
    (w, engine)
}

fn main() {
    let args = BenchArgs::parse();
    let (w1, small) = load_cubetrees(&args, args.sf);
    let (_w2, large) = load_cubetrees(&args, args.sf * 2.0);

    let mut report = Report::new("fig14_scalability", "Figure 14", args.sf);
    report.meta("datasets", format!("SF {} vs SF {}", args.sf, args.sf * 2.0));
    report.meta("queries per view", args.queries);
    let a = w1.attrs();
    let base = vec![a.partkey, a.suppkey, a.custkey];
    let names = |mask: usize| -> String {
        (0..3)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| w1.catalog().attr(base[i]).name.clone())
            .collect::<Vec<_>>()
            .join(",")
    };
    let s = report.section(
        "cubetrees only: total simulated seconds per view batch",
        &["view", "1x dataset", "2x dataset", "growth"],
    );
    let node_order = [0b111usize, 0b011, 0b101, 0b110, 0b001, 0b010, 0b100];
    for &mask in &node_order {
        // Same query stream for both datasets (domains scale, so values are
        // drawn per-warehouse with the same seed).
        let mut g1 = QueryGenerator::new(w1.catalog(), base.clone(), args.seed + mask as u64);
        let q1 = g1.batch_on(mask, args.queries);
        let s1 = run_batch(&small, &q1).expect("small batch");
        let mut g2 = QueryGenerator::new(_w2.catalog(), base.clone(), args.seed + mask as u64);
        let q2 = g2.batch_on(mask, args.queries);
        let s2 = run_batch(&large, &q2).expect("large batch");
        s.row(vec![
            names(mask),
            fmt_secs(s1.total_sim()),
            fmt_secs(s2.total_sim()),
            fmt_ratio(s2.total_sim(), s1.total_sim()),
        ]);
    }
    // Shard sweep: same 1x fact, partitioned into N forests built in
    // parallel on the worker pool. Shard builds do the same total work in
    // parallel slices, so the wall-clock speedup column is only meaningful
    // on hosts with at least as many cores as shards (bench_shards records
    // the same caveat in its report meta).
    let fact = w1.generate_fact();
    let pool = args.pool_pages(estimate_data_bytes(fact.len() as u64));
    let s2 = report.section(
        "partitioned forests: parallel build at shard counts",
        &["shards", "build s", "speedup", "skew max/mean rows"],
    );
    let mut build1 = None;
    for n in [1usize, 2, 4, 8] {
        let mut cfg = paper_configs(&w1).cubetree.with_threads(args.threads.max(n));
        cfg.pool_pages = (pool / n).max(128);
        let spec = ShardSpec::new(n).with_partition_attr(a.partkey);
        let mut engine =
            ShardedEngine::new(w1.catalog().clone(), ShardedConfig::new(cfg, spec))
                .expect("sharded engine");
        let t0 = Instant::now();
        engine.load(&fact).expect("sharded load");
        let secs = t0.elapsed().as_secs_f64();
        let base_secs = *build1.get_or_insert(secs);
        let rows = engine.shard_rows();
        let max = rows.iter().copied().max().unwrap_or(0);
        let mean = rows.iter().sum::<u64>() as f64 / rows.len().max(1) as f64;
        s2.row(vec![
            n.to_string(),
            fmt_secs(secs),
            fmt_ratio(base_secs, secs),
            format!("{max} / {mean:.1}"),
        ]);
    }

    report.emit(args.json.as_deref());
    ct_bench::metrics::emit_metrics_if_requested(
        args.metrics.as_deref(),
        &[("cubetrees_1x", small.env()), ("cubetrees_2x", large.env())],
    );
}
