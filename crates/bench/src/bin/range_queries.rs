//! Bounded-range query extension (paper §3.1's prediction: "in a more
//! general experiment where arbitrary range queries are allowed we expect
//! that the Cubetrees would be even faster").
//!
//! Sweeps the range span as a fraction of the attribute domain and compares
//! both configurations on each lattice node.

use ct_bench::experiments::build_engines_or_die;
use ct_bench::report::{fmt_ratio, fmt_secs, Report};
use ct_bench::BenchArgs;
use cubetree::engine::RolapEngine;
use ct_workload::{run_batch, QueryGenerator};

fn main() {
    let args = BenchArgs::parse();
    let engines = build_engines_or_die(&args);
    let w = &engines.warehouse;
    let a = w.attrs();
    let base = vec![a.partkey, a.suppkey, a.custkey];
    let mut report = Report::new("range_queries", "§3.1 range-query extension", args.sf);
    report.meta("queries per cell", args.queries);

    let s = report.section(
        "total simulated seconds (range over one attribute, group by the rest)",
        &["node", "span", "conventional", "cubetrees", "speedup", "agree"],
    );
    let names = |mask: usize| -> String {
        (0..3)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| w.catalog().attr(base[i]).name.clone())
            .collect::<Vec<_>>()
            .join(",")
    };
    for &mask in &[0b111usize, 0b011, 0b101] {
        for &span in &[0.01f64, 0.1, 0.5] {
            let mut g =
                QueryGenerator::new(w.catalog(), base.clone(), args.seed + mask as u64);
            let queries = g.range_batch_on(mask, args.queries, span);
            let conv = run_batch(&engines.conventional, &queries).expect("conventional");
            let cube = run_batch(&engines.cubetree, &queries).expect("cubetrees");
            s.row(vec![
                names(mask),
                format!("{:.0}%", span * 100.0),
                fmt_secs(conv.total_sim()),
                fmt_secs(cube.total_sim()),
                fmt_ratio(conv.total_sim(), cube.total_sim()),
                (conv.checksum == cube.checksum).to_string(),
            ]);
        }
    }
    report.emit(args.json.as_deref());
    ct_bench::metrics::emit_metrics_if_requested(
        args.metrics.as_deref(),
        &[
            ("conventional", engines.conventional.env()),
            ("cubetrees", engines.cubetree.env()),
        ],
    );
}
