//! Table 7: refreshing the warehouse with a 10% fact-table increment.
//!
//! Paper (SF 1, 598,964-row increment, 24h drop-dead deadline):
//!
//! | method                                   | total time |
//! |------------------------------------------|-----------|
//! | incremental update of materialized views | > 24 hours |
//! | re-computation of materialized views     | 12h 59m 11s |
//! | incremental update of Cubetrees          | 8m 24s |
//!
//! The Cubetree merge-pack wins by ~100:1 over the best conventional
//! strategy because it replaces random row-at-a-time index maintenance with
//! one linear, sequential merge.

use ct_bench::experiments::build_engines_or_die;
use ct_bench::report::{fmt_ratio, fmt_secs, Report};
use ct_bench::BenchArgs;
use ct_cube::Relation;
use cubetree::engine::RolapEngine;

fn main() {
    let args = BenchArgs::parse();
    let mut engines = build_engines_or_die(&args);
    let delta = engines.warehouse.generate_increment(0.1);
    let mut report = Report::new("table7_updates", "Table 7", args.sf);
    report.meta("base rows", engines.fact.len());
    report.meta("increment rows (10%)", delta.len());
    report.meta("threads", args.threads);

    // 1. Conventional incremental (row-at-a-time).
    let conv = &mut engines.conventional;
    let ((), inc_wall, inc_sim) = {
        let io0 = conv.env().snapshot();
        let t0 = std::time::Instant::now();
        conv.update(&delta).expect("conventional incremental update");
        let wall = t0.elapsed().as_secs_f64();
        let sim = conv.env().snapshot().since(&io0).simulated_seconds(conv.env().cost_model());
        ((), wall, sim)
    };

    // 2. Conventional re-computation from scratch over fact ∪ delta.
    let mut combined_keys = engines.fact.keys.clone();
    combined_keys.extend_from_slice(&delta.keys);
    let mut combined_measures: Vec<i64> =
        engines.fact.states.iter().map(|s| s.sum).collect();
    combined_measures.extend(delta.states.iter().map(|s| s.sum));
    let combined =
        Relation::from_fact(engines.fact.attrs.clone(), combined_keys, &combined_measures);
    let ((), rec_wall, rec_sim) = {
        let conv = &mut engines.conventional;
        let io0 = conv.env().snapshot();
        let t0 = std::time::Instant::now();
        conv.recompute(&combined).expect("conventional recompute");
        let wall = t0.elapsed().as_secs_f64();
        let sim = conv.env().snapshot().since(&io0).simulated_seconds(conv.env().cost_model());
        ((), wall, sim)
    };

    // 3. Cubetree merge-pack. With --faults N the Nth physical write of the
    // refresh fails: the update must surface a clean error (never a panic or
    // a torn state), exercising the crash-safety contract from the CLI.
    if args.faults > 0 {
        let cube = &mut engines.cubetree;
        let plan = cube.env().faults().clone();
        plan.reset();
        plan.fail_nth_write(args.faults);
        match cube.update(&delta) {
            Ok(()) => eprintln!(
                "--faults {}: refresh finished before write #{} — no fault fired",
                args.faults, args.faults
            ),
            Err(e) => eprintln!(
                "--faults {}: refresh failed cleanly ({}); manifest still names \
                 the pre-update generation",
                args.faults, e
            ),
        }
        report.meta("injected write faults", plan.injected_writes());
        report.emit(args.json.as_deref());
        return;
    }
    let cube = &mut engines.cubetree;
    let ((), cube_wall, cube_sim) = {
        let io0 = cube.env().snapshot();
        let t0 = std::time::Instant::now();
        cube.update(&delta).expect("cubetree merge-pack update");
        let wall = t0.elapsed().as_secs_f64();
        let sim = cube.env().snapshot().since(&io0).simulated_seconds(cube.env().cost_model());
        ((), wall, sim)
    };

    let s = report.section(
        "10% increment refresh (simulated 1998-disk seconds)",
        &["method", "simulated", "wall", "vs cubetrees"],
    );
    s.row(vec![
        "incremental updates of materialized views (paper >24h)".into(),
        fmt_secs(inc_sim),
        fmt_secs(inc_wall),
        fmt_ratio(inc_sim, cube_sim),
    ]);
    s.row(vec![
        "re-computation of materialized views (paper 12h59m)".into(),
        fmt_secs(rec_sim),
        fmt_secs(rec_wall),
        fmt_ratio(rec_sim, cube_sim),
    ]);
    s.row(vec![
        "incremental updates of Cubetrees (paper 8m24s)".into(),
        fmt_secs(cube_sim),
        fmt_secs(cube_wall),
        "1.0x".into(),
    ]);
    report.emit(args.json.as_deref());
    ct_bench::metrics::emit_metrics_if_requested(
        args.metrics.as_deref(),
        &[
            ("conventional", engines.conventional.env()),
            ("cubetrees", engines.cubetree.env()),
        ],
    );
}
