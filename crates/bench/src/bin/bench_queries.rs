//! Query-batch scaling baseline: the same batch against two identically
//! loaded Cubetree engines, one sequential (`threads = 1`) and one parallel
//! (`--threads`, floored at 2), recording wall time, page-I/O counters and
//! scheduler statistics. The default output is `BENCH_queries.json` so CI
//! can keep a machine-readable record that batch scheduling improves wall
//! time without regressing physical I/O.

use ct_bench::experiments::estimate_data_bytes;
use ct_bench::report::{fmt_ratio, sched_section, Report};
use ct_bench::BenchArgs;
use ct_tpcd::{TpcdConfig, TpcdWarehouse};
use ct_workload::{paper_configs, run_batch, BatchStats, QueryGenerator};
use cubetree::engine::{CubetreeEngine, RolapEngine};
use std::time::Instant;

struct Measured {
    stats: BatchStats,
    wall: f64,
    sim: f64,
    seq_reads: u64,
    rand_reads: u64,
    buffer_hits: u64,
}

fn measure(engine: &CubetreeEngine, queries: &[ct_common::SliceQuery]) -> Measured {
    let before = engine.env().snapshot();
    let t0 = Instant::now();
    let stats = run_batch(engine, queries).expect("query batch");
    let wall = t0.elapsed().as_secs_f64();
    let io = engine.env().snapshot().since(&before);
    Measured {
        stats,
        wall,
        sim: io.simulated_seconds(engine.env().cost_model()),
        seq_reads: io.seq_reads,
        rand_reads: io.rand_reads,
        buffer_hits: io.buffer_hits,
    }
}

fn main() {
    let args = BenchArgs::parse();
    let threads = args.threads.max(2);
    let w = TpcdWarehouse::new(TpcdConfig { scale_factor: args.sf, seed: args.seed });
    let fact = w.generate_fact();
    let setup = paper_configs(&w);
    let pool = args.pool_pages(estimate_data_bytes(fact.len() as u64));

    let build = |threads: usize| -> CubetreeEngine {
        let mut cfg = setup.cubetree.clone().with_threads(threads);
        cfg.pool_pages = pool;
        cfg.recorder = args.recorder();
        let mut engine =
            CubetreeEngine::new(w.catalog().clone(), cfg).expect("cubetree engine");
        engine.load(&fact).expect("cubetree load");
        engine
    };
    let seq = build(1);
    let par = build(threads);

    let a = w.attrs();
    let mut generator = QueryGenerator::new(
        w.catalog(),
        vec![a.partkey, a.suppkey, a.custkey],
        args.seed,
    );
    let queries = generator.batch(args.queries.max(2));

    let m1 = measure(&seq, &queries);
    let mn = measure(&par, &queries);
    assert_eq!(
        m1.stats.checksum, mn.stats.checksum,
        "thread counts disagreed on query answers"
    );

    let mut report = Report::new("bench_queries", "query-batch scaling baseline", args.sf);
    report.meta("queries", queries.len());
    report.meta("fact rows", fact.len());
    report.meta("threads", threads);
    report.meta("checksums equal", m1.stats.checksum == mn.stats.checksum);

    let s = report.section(
        "batch execution",
        &["configuration", "wall secs", "sim secs", "seq reads", "rand reads", "buffer hits"],
    );
    for (name, m) in [("threads=1", &m1), ("parallel", &mn)] {
        s.row(vec![
            if name == "parallel" { format!("threads={threads}") } else { name.into() },
            format!("{:.4}", m.wall),
            format!("{:.4}", m.sim),
            m.seq_reads.to_string(),
            m.rand_reads.to_string(),
            m.buffer_hits.to_string(),
        ]);
    }
    let pages_seq = m1.seq_reads + m1.rand_reads;
    let pages_par = mn.seq_reads + mn.rand_reads;
    let s2 = report.section("scaling", &["metric", "value"]);
    s2.row(vec!["wall speedup (threads=1 / parallel)".into(), fmt_ratio(m1.wall, mn.wall)]);
    s2.row(vec!["pages read, threads=1".into(), pages_seq.to_string()]);
    s2.row(vec!["pages read, parallel".into(), pages_par.to_string()]);
    s2.row(vec![
        "pages read non-regression".into(),
        (pages_par <= pages_seq).to_string(),
    ]);
    sched_section(&mut report, &[&mn.stats]);

    let json = args.json.clone().unwrap_or_else(|| "BENCH_queries.json".into());
    report.emit(Some(&json));
    ct_bench::metrics::emit_metrics_if_requested(
        args.metrics.as_deref(),
        &[("threads1", seq.env()), ("parallel", par.env())],
    );
    if pages_par > pages_seq {
        eprintln!(
            "warning: parallel batch read {pages_par} pages vs {pages_seq} sequential"
        );
        std::process::exit(1);
    }
}
