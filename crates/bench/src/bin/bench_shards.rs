//! Partitioned-forest benchmark: sharded scatter-gather build and query.
//!
//! Sweeps shard counts (default {1, 2, 4, 8}) over the same TPC-D fact
//! relation and the same query batch. For each shard count it reports the
//! parallel build wall time and speedup over the unsharded engine, the
//! physical pages read per query (the scatter-gather overhead), and the
//! partition skew (max/mean shard rows).
//!
//! Two properties are enforced, not just reported:
//!
//! * every shard count returns bit-identical answers to the unsharded
//!   engine (AggState merge is associative and commutative; finalization
//!   happens once, after the gather);
//! * the widest sweep point must not read more pages per query than the
//!   unsharded engine beyond the gather overhead allowed by the checked-in
//!   baseline (`results/bench_shards_baseline.json`) — fan-out without
//!   pruning would show up here. Exits non-zero on regression.
//!
//! Default JSON output `BENCH_shards.json`.

use ct_bench::experiments::estimate_data_bytes;
use ct_bench::report::{fmt_ratio, fmt_secs, Report};
use ct_bench::BenchArgs;
use ct_common::query::{normalize_rows, QueryRow};
use ct_server::json::Json;
use ct_tpcd::{TpcdConfig, TpcdWarehouse};
use ct_workload::{paper_configs, QueryGenerator};
use cubetree::engine::RolapEngine;
use cubetree::{ShardSpec, ShardedConfig, ShardedEngine};
use std::time::Instant;

struct Outcome {
    shards: usize,
    build_secs: f64,
    query_secs: f64,
    query_pages: u64,
    rows_max: u64,
    rows_mean: f64,
    answers: Vec<Vec<QueryRow>>,
}

fn main() {
    let args = BenchArgs::parse();
    let w = TpcdWarehouse::new(TpcdConfig { scale_factor: args.sf, seed: args.seed });
    let fact = w.generate_fact();
    let setup = paper_configs(&w);
    let total_pool = args.pool_pages(estimate_data_bytes(fact.len() as u64));
    let a = w.attrs();
    let base = vec![a.partkey, a.suppkey, a.custkey];

    // The same query stream for every shard count: a mix of every class the
    // routing layer has to handle (full group-bys prune to one shard on the
    // partition key, coarser group-bys fan out and gather).
    let mut queries = Vec::new();
    for (i, mask) in [0b111usize, 0b011, 0b101, 0b110, 0b001, 0b010, 0b100]
        .iter()
        .enumerate()
    {
        let mut g = QueryGenerator::new(w.catalog(), base.clone(), args.seed + i as u64);
        queries.extend(g.batch_on(*mask, (args.queries / 7).max(2)));
    }

    let mut sweep = vec![1usize, 2, 4, 8];
    if args.shards > 1 && !sweep.contains(&args.shards) {
        sweep.push(args.shards);
        sweep.sort_unstable();
    }

    let mut outcomes = Vec::new();
    for &n in &sweep {
        // Total buffer-pool budget is held constant across the sweep: each
        // shard's env gets an equal slice, so page counts compare storage
        // organizations rather than aggregate cache size.
        let mut cfg = setup.cubetree.clone().with_threads(args.threads.max(n));
        cfg.pool_pages = (total_pool / n).max(128);
        let spec = ShardSpec::new(n).with_partition_attr(a.partkey);

        // Build wall is the best of two fresh builds: the sweep compares
        // storage organizations, and a single load on a shared box can eat
        // an unrelated I/O stall that dwarfs the organizational difference.
        let mut build_secs = f64::INFINITY;
        let mut built = None;
        for _ in 0..2 {
            let mut engine = ShardedEngine::new(
                w.catalog().clone(),
                ShardedConfig::new(cfg.clone(), spec.clone()),
            )
            .expect("sharded engine");
            let t0 = Instant::now();
            engine.load(&fact).expect("sharded load");
            build_secs = build_secs.min(t0.elapsed().as_secs_f64());
            built = Some(engine);
        }
        let engine = built.expect("at least one build");

        let rows = engine.shard_rows().to_vec();
        let rows_max = rows.iter().copied().max().unwrap_or(0);
        let rows_mean = rows.iter().sum::<u64>() as f64 / rows.len().max(1) as f64;

        let before = engine.io_snapshot();
        let t1 = Instant::now();
        let batch = engine.query_batch(&queries).expect("sharded batch");
        let query_secs = t1.elapsed().as_secs_f64();
        let io = engine.io_snapshot().since(&before);

        let answers: Vec<Vec<QueryRow>> =
            batch.results.into_iter().map(normalize_rows).collect();
        outcomes.push(Outcome {
            shards: n,
            build_secs,
            query_secs,
            query_pages: io.seq_reads + io.rand_reads,
            rows_max,
            rows_mean,
            answers,
        });
    }

    // Bit-identity gate: every sweep point must answer exactly like the
    // unsharded engine.
    let mut failed = false;
    let baseline_answers = &outcomes[0].answers;
    for o in &outcomes[1..] {
        if &o.answers != baseline_answers {
            eprintln!(
                "regression: shards={} answers differ from the unsharded engine",
                o.shards
            );
            failed = true;
        }
    }

    let baseline_ratio = read_baseline_ratio("results/bench_shards_baseline.json");
    let per_query = |o: &Outcome| o.query_pages as f64 / queries.len() as f64;
    // The gated sweep point: shards=4 (the paper-scale acceptance point)
    // when the sweep includes it, else the widest point run.
    let gated = outcomes
        .iter()
        .find(|o| o.shards == 4)
        .unwrap_or_else(|| outcomes.last().expect("non-empty sweep"));
    let ratio = if per_query(&outcomes[0]) > 0.0 {
        per_query(gated) / per_query(&outcomes[0])
    } else if per_query(gated) > 0.0 {
        f64::INFINITY
    } else {
        1.0
    };

    let mut report = Report::new(
        "bench_shards",
        "Partitioned forests: sharded build, scatter-gather query",
        args.sf,
    );
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    report.meta("fact rows", fact.len());
    report.meta("queries", queries.len());
    report.meta("threads", args.threads.max(1));
    report.meta("cpu cores", cores);
    if cores < *sweep.last().unwrap_or(&1) {
        // Shard builds do the same total work in parallel slices; with
        // fewer cores than shards the wall-clock speedup column measures
        // host scheduling, not the organization. Page I/O and query wall
        // remain meaningful (pruning reduces *work*, not just concurrency).
        report.meta(
            "note",
            format!(
                "host has {cores} core(s) < {} shards: build speedup requires \
                 >= shards cores; query-side columns are core-independent",
                sweep.last().unwrap_or(&1)
            ),
        );
    }
    report.meta("partition attr", w.catalog().attr(a.partkey).name.clone());
    report.meta("total pool pages", total_pool);
    report.meta("baseline max pages/query ratio", baseline_ratio);

    let s = report.section(
        "shard sweep",
        &[
            "shards",
            "build s",
            "build speedup",
            "query s",
            "pages read",
            "pages/query",
            "skew max/mean",
        ],
    );
    let build1 = outcomes[0].build_secs;
    for o in &outcomes {
        s.row(vec![
            o.shards.to_string(),
            fmt_secs(o.build_secs),
            fmt_ratio(build1, o.build_secs),
            fmt_secs(o.query_secs),
            o.query_pages.to_string(),
            format!("{:.3}", per_query(o)),
            format!("{} / {:.1}", o.rows_max, o.rows_mean),
        ]);
    }

    let s2 = report.section("gather overhead", &["metric", "value"]);
    s2.row(vec![
        format!("pages/query, shards={}", outcomes[0].shards),
        format!("{:.3}", per_query(&outcomes[0])),
    ]);
    s2.row(vec![
        format!("pages/query, shards={}", gated.shards),
        format!("{:.3}", per_query(gated)),
    ]);
    s2.row(vec!["sharded / unsharded".into(), format!("{ratio:.3}")]);
    s2.row(vec![
        format!("query wall speedup, shards={}", gated.shards),
        fmt_ratio(outcomes[0].query_secs, gated.query_secs),
    ]);
    s2.row(vec!["within baseline".into(), (ratio <= baseline_ratio).to_string()]);
    s2.row(vec![
        "answers bit-identical".into(),
        outcomes[1..]
            .iter()
            .all(|o| &o.answers == baseline_answers)
            .to_string(),
    ]);

    let json = args.json.clone().unwrap_or_else(|| "BENCH_shards.json".into());
    report.emit(Some(&json));

    if ratio > baseline_ratio {
        eprintln!(
            "regression: shards={} read {:.3} pages/query vs {:.3} unsharded \
             (ratio {ratio:.3} > baseline {baseline_ratio:.3})",
            gated.shards,
            per_query(gated),
            per_query(&outcomes[0]),
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}

/// Reads `max_sharded_pages_per_query_ratio` from the checked-in baseline,
/// falling back to 1.0 (scatter-gather must not read more pages per query
/// than the unsharded engine) if the file is missing or unparsable.
fn read_baseline_ratio(path: &str) -> f64 {
    std::fs::read_to_string(path)
        .ok()
        .and_then(|text| Json::parse(&text).ok())
        .and_then(|doc| doc.get("max_sharded_pages_per_query_ratio")?.as_f64())
        .unwrap_or(1.0)
}
