//! End-to-end serving benchmark: a real ct-server on loopback, driven by
//! the ct-workload load generator at several client counts, comparing
//! admission-controlled batched dispatch against per-request sequential
//! dispatch (`max_batch = 1`).
//!
//! Reports qps and p50/p99/p999 latency per setting, plus the page economy
//! of batching: at high concurrency the batch former hands the scheduler
//! whole batches, which share leaf passes and sweep trees in packed order,
//! so physical pages read *per query* must not exceed sequential dispatch
//! times the checked-in baseline ratio (`results/bench_serving_baseline.json`).
//! Exits non-zero on regression. Default output `BENCH_serving.json`.

use ct_bench::experiments::estimate_data_bytes;
use ct_bench::report::{fmt_ratio, Report};
use ct_bench::BenchArgs;
use ct_server::json::Json;
use ct_server::{CtServer, ServerConfig};
use ct_tpcd::{TpcdConfig, TpcdWarehouse};
use ct_workload::serving::{LoopMode, ServingConfig, ServingStats};
use ct_workload::{paper_configs, run_serving};
use cubetree::engine::{CubetreeEngine, RolapEngine};
use cubetree::{ServingEngine, ShardSpec, ShardedConfig, ShardedEngine};
use std::sync::Arc;
use std::time::Duration;

struct Setting {
    label: &'static str,
    clients: usize,
    max_batch: usize,
}

struct Outcome {
    setting: Setting,
    stats: ServingStats,
    pages: u64,
    engine: Arc<dyn ServingEngine>,
}

fn main() {
    let args = BenchArgs::parse();
    // The batch scheduler only engages in a parallel environment; floor at
    // 2 workers so "batched" actually batches.
    let threads = args.threads.max(2);
    let w = TpcdWarehouse::new(TpcdConfig { scale_factor: args.sf, seed: args.seed });
    let fact = w.generate_fact();
    let setup = paper_configs(&w);
    let pool = args.pool_pages(estimate_data_bytes(fact.len() as u64));
    let a = w.attrs();
    let base = vec![a.partkey, a.suppkey, a.custkey];
    let total_requests = args.queries.max(16);

    // ≥ 2 client-count settings; the two 8-client runs replay the same
    // per-client query streams, so their page counts compare like for like.
    let settings = [
        Setting { label: "sequential dispatch", clients: 8, max_batch: 1 },
        Setting { label: "batched dispatch", clients: 8, max_batch: 32 },
        Setting { label: "batched dispatch", clients: 1, max_batch: 32 },
    ];

    let mut outcomes = Vec::new();
    for setting in settings {
        // A fresh engine per setting: every run starts from a cold buffer
        // pool, so page counts measure dispatch policy, not cache warmth.
        // With `--shards N` the same fact is served from a partitioned
        // forest: routes fan out across shards and gather transparently.
        let mut cfg = setup.cubetree.clone().with_threads(threads);
        cfg.pool_pages = if args.shards > 1 { (pool / args.shards).max(128) } else { pool };
        cfg.recorder = ct_obs::Recorder::enabled();
        let engine: Arc<dyn ServingEngine> = if args.shards > 1 {
            let spec = ShardSpec::new(args.shards).with_partition_attr(a.partkey);
            let mut engine =
                ShardedEngine::new(w.catalog().clone(), ShardedConfig::new(cfg, spec))
                    .expect("sharded engine");
            engine.load(&fact).expect("sharded load");
            Arc::new(engine)
        } else {
            let mut engine =
                CubetreeEngine::new(w.catalog().clone(), cfg).expect("cubetree engine");
            engine.load(&fact).expect("cubetree load");
            Arc::new(engine)
        };

        let mut server_cfg = ServerConfig::default();
        server_cfg.admission.max_batch = setting.max_batch;
        server_cfg.admission.max_delay = Duration::from_millis(2);
        let server =
            CtServer::start(engine.clone(), server_cfg).expect("start server");

        let load = ServingConfig {
            clients: setting.clients,
            requests_per_client: total_requests / setting.clients,
            mode: LoopMode::Closed,
            seed: args.seed,
            ..ServingConfig::default()
        };
        let before = engine.io_snapshot();
        let stats = run_serving(&server.addr().to_string(), w.catalog(), base.clone(), &load)
            .expect("serving run");
        let io = engine.io_snapshot().since(&before);
        server.join();
        outcomes.push(Outcome {
            setting,
            stats,
            pages: io.seq_reads + io.rand_reads,
            engine,
        });
    }

    let baseline_ratio = read_baseline_ratio("results/bench_serving_baseline.json");

    let mut report = Report::new(
        "bench_serving",
        "HTTP serving layer: admission-controlled batching vs per-request dispatch",
        args.sf,
    );
    report.meta("fact rows", fact.len());
    report.meta("threads", threads);
    report.meta("shards", args.shards);
    report.meta("requests per setting", total_requests);
    report.meta("baseline max pages/query ratio", baseline_ratio);

    let s = report.section(
        "serving",
        &[
            "setting", "clients", "max batch", "ok", "429", "errors", "qps", "p50 ms",
            "p99 ms", "p999 ms",
        ],
    );
    for o in &outcomes {
        s.row(vec![
            o.setting.label.to_string(),
            o.setting.clients.to_string(),
            o.setting.max_batch.to_string(),
            o.stats.ok.to_string(),
            o.stats.rejected.to_string(),
            o.stats.errors.to_string(),
            format!("{:.1}", o.stats.qps()),
            format!("{:.3}", o.stats.percentile(50.0) * 1e3),
            format!("{:.3}", o.stats.percentile(99.0) * 1e3),
            format!("{:.3}", o.stats.percentile(99.9) * 1e3),
        ]);
    }

    let per_query = |o: &Outcome| o.pages as f64 / o.stats.ok.max(1) as f64;
    let seq = &outcomes[0];
    let batched = &outcomes[1];
    let ratio = per_query(batched) / per_query(seq);
    let s2 = report.section("page economy at 8 clients", &["metric", "value"]);
    s2.row(vec!["pages read, sequential dispatch".into(), seq.pages.to_string()]);
    s2.row(vec!["pages read, batched dispatch".into(), batched.pages.to_string()]);
    s2.row(vec![
        "pages/query, sequential dispatch".into(),
        format!("{:.3}", per_query(seq)),
    ]);
    s2.row(vec![
        "pages/query, batched dispatch".into(),
        format!("{:.3}", per_query(batched)),
    ]);
    s2.row(vec![
        "batched / sequential".into(),
        fmt_ratio(per_query(batched), per_query(seq)),
    ]);
    s2.row(vec![
        "within baseline".into(),
        (ratio <= baseline_ratio).to_string(),
    ]);

    let json = args.json.clone().unwrap_or_else(|| "BENCH_serving.json".into());
    report.emit(Some(&json));
    if let Some(path) = args.metrics.as_deref() {
        // Per-env phase trees are only well-defined for a single env; under
        // sharding, all shard envs feed one shared recorder, so emit that
        // combined snapshot instead.
        let docs: Vec<String> = outcomes
            .iter()
            .map(|o| {
                let label =
                    format!("{} @ {} clients", o.setting.label, o.setting.clients);
                format!(
                    "{}: {}",
                    ct_server::json::escape(&label),
                    o.engine.metrics_json()
                )
            })
            .collect();
        std::fs::write(path, format!("{{{}}}", docs.join(", "))).expect("write metrics");
        eprintln!("(metrics written to {path})");
    }

    let mut failed = false;
    for o in &outcomes {
        if o.stats.errors > 0 || o.stats.ok == 0 {
            eprintln!(
                "regression: {} @ {} clients had {} errors, {} ok",
                o.setting.label, o.setting.clients, o.stats.errors, o.stats.ok
            );
            failed = true;
        }
    }
    if ratio > baseline_ratio {
        eprintln!(
            "regression: batched dispatch read {:.3} pages/query vs {:.3} sequential \
             (ratio {:.3} > baseline {baseline_ratio:.3})",
            per_query(batched),
            per_query(seq),
            ratio
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}

/// Reads `max_batched_pages_per_query_ratio` from the checked-in baseline,
/// falling back to 1.0 (batching must not read more pages per query than
/// sequential dispatch) if the file is missing or unparsable.
fn read_baseline_ratio(path: &str) -> f64 {
    std::fs::read_to_string(path)
        .ok()
        .and_then(|text| Json::parse(&text).ok())
        .and_then(|doc| doc.get("max_batched_pages_per_query_ratio")?.as_f64())
        .unwrap_or(1.0)
}
