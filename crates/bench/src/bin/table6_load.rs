//! Table 6 + §3.2 storage: initial load of both configurations and their
//! disk footprints.
//!
//! Paper (SF 1): conventional views 10h58m + indices 51m = 11h49m total;
//! Cubetrees 45m04s (~16:1). Storage: 602 MB conventional vs 293 MB
//! Cubetrees (51% less).

use ct_bench::report::{fmt_mb, fmt_ratio, fmt_secs, Report};
use ct_bench::BenchArgs;
use cubetree::engine::RolapEngine;

fn main() {
    let args = BenchArgs::parse();
    let engines = ct_bench::experiments::build_engines_or_die(&args);
    let mut report = Report::new("table6_load", "Table 6 + §3.2 storage", args.sf);
    report.meta("fact rows", engines.fact.len());
    report.meta(
        "buffer pool",
        format!("{} pages", engines.conventional.env().pool().capacity()),
    );
    report.meta("threads", args.threads);

    let bd = engines.conventional.load_breakdown();
    let s = report.section(
        "initial load (simulated 1998-disk seconds)",
        &["configuration", "views", "indices", "total", "wall"],
    );
    s.row(vec![
        "conventional".into(),
        fmt_secs(bd.views_sim),
        fmt_secs(bd.index_sim),
        fmt_secs(engines.conv_load.sim),
        fmt_secs(engines.conv_load.wall),
    ]);
    s.row(vec![
        "cubetrees".into(),
        fmt_secs(engines.cube_load.sim),
        "-".into(),
        fmt_secs(engines.cube_load.sim),
        fmt_secs(engines.cube_load.wall),
    ]);
    s.row(vec![
        "ratio (paper ~16:1)".into(),
        String::new(),
        String::new(),
        fmt_ratio(engines.conv_load.sim, engines.cube_load.sim),
        fmt_ratio(engines.conv_load.wall, engines.cube_load.wall),
    ]);

    let conv_bytes = engines.conventional.storage_bytes();
    let cube_bytes = engines.cubetree.storage_bytes();
    let s = report.section(
        "storage (paper: 602MB vs 293MB, 51% less)",
        &["configuration", "bytes", "vs conventional"],
    );
    s.row(vec!["conventional".into(), fmt_mb(conv_bytes), "100%".into()]);
    s.row(vec![
        "cubetrees".into(),
        fmt_mb(cube_bytes),
        format!("{:.0}%", 100.0 * cube_bytes as f64 / conv_bytes as f64),
    ]);

    // Forest shape for the record.
    if let Some(forest) = engines.cubetree.forest() {
        let s = report.section("cubetree forest", &["tree", "dims", "entries", "leaf pages", "height"]);
        let pin = forest.pin();
        for (i, t) in pin.trees().iter().enumerate() {
            let st = t.stats();
            s.row(vec![
                format!("R{}", i + 1),
                t.dims().to_string(),
                st.entries.to_string(),
                st.leaf_pages.to_string(),
                st.height.to_string(),
            ]);
        }
    }
    report.emit(args.json.as_deref());
    ct_bench::metrics::emit_metrics_if_requested(
        args.metrics.as_deref(),
        &[
            ("conventional", engines.conventional.env()),
            ("cubetrees", engines.cubetree.env()),
        ],
    );
}
