//! Figure 12: total time of `--queries` random slice queries per lattice
//! view, both configurations.
//!
//! Paper shape (SF 1, 100 queries per view): Cubetrees beat the conventional
//! organization on every view; the conventional bars are largest on the
//! nodes answered through the big top view.

use ct_bench::experiments::build_engines_or_die;
use ct_bench::report::{fmt_ratio, fmt_secs, sched_section, Report};
use ct_bench::BenchArgs;
use cubetree::engine::RolapEngine;
use ct_workload::{run_batch, QueryGenerator};

fn main() {
    let args = BenchArgs::parse();
    let engines = build_engines_or_die(&args);
    let w = &engines.warehouse;
    let a = w.attrs();
    let base = vec![a.partkey, a.suppkey, a.custkey];
    let mut report = Report::new("fig12_queries", "Figure 12", args.sf);
    report.meta("queries per view", args.queries);
    report.meta("fact rows", engines.fact.len());
    report.meta("threads", args.threads);

    let s = report.section(
        "total simulated seconds per view batch",
        &["view", "conventional", "cubetrees", "speedup", "checksums equal"],
    );
    let names = |mask: usize| -> String {
        (0..3)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| w.catalog().attr(base[i]).name.clone())
            .collect::<Vec<_>>()
            .join(",")
    };
    // Figure 12 orders views from the top of the lattice down.
    let node_order = [0b111usize, 0b011, 0b101, 0b110, 0b001, 0b010, 0b100];
    let mut cube_stats = Vec::new();
    for &mask in &node_order {
        let mut generator = QueryGenerator::new(w.catalog(), base.clone(), args.seed + mask as u64);
        let queries = generator.batch_on(mask, args.queries);
        let conv = run_batch(&engines.conventional, &queries).expect("conventional batch");
        let cube = run_batch(&engines.cubetree, &queries).expect("cubetree batch");
        s.row(vec![
            names(mask),
            fmt_secs(conv.total_sim()),
            fmt_secs(cube.total_sim()),
            fmt_ratio(conv.total_sim(), cube.total_sim()),
            (conv.checksum == cube.checksum).to_string(),
        ]);
        cube_stats.push(cube);
    }
    sched_section(&mut report, &cube_stats.iter().collect::<Vec<_>>());
    report.emit(args.json.as_deref());
    ct_bench::metrics::emit_metrics_if_requested(
        args.metrics.as_deref(),
        &[
            ("conventional", engines.conventional.env()),
            ("cubetrees", engines.cubetree.env()),
        ],
    );
}
