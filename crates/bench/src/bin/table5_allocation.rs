//! Table 5 + §3 view selection: runs the GHRU97 1-greedy selection over the
//! measured lattice sizes of the generated TPC-D data, then shows the
//! SelectMapping allocation of the selected views onto Cubetrees.

use ct_bench::report::Report;
use ct_bench::BenchArgs;
use ct_common::{AggFn, ViewDef};
use ct_cube::estimate::measure_size;
use ct_cube::{one_greedy, GreedyConfig, Lattice};
use ct_tpcd::{TpcdConfig, TpcdWarehouse};
use cubetree::select_mapping;

fn main() {
    let args = BenchArgs::parse();
    let w = TpcdWarehouse::new(TpcdConfig { scale_factor: args.sf, seed: args.seed });
    let fact = w.generate_fact();
    let a = w.attrs();
    let base = vec![a.partkey, a.suppkey, a.custkey];
    let catalog = w.catalog();

    let mut report = Report::new("table5_allocation", "Table 5 + §3 selection", args.sf);
    report.meta("fact rows", fact.len());

    // Measure every lattice node's true size (the honest greedy input).
    let mut lattice = Lattice::new(base.clone());
    let mut total_view_tuples = 0u64;
    for m in 0..lattice.len() {
        let attrs = lattice.nodes[m].attrs.clone();
        let size = measure_size(catalog, &fact, &attrs);
        lattice.set_size(m, size);
        total_view_tuples += size;
    }
    report.meta("total lattice tuples (paper: 7,110,464 at SF 1 for V)", total_view_tuples);

    let s = report.section("lattice sizes", &["node", "groups"]);
    for m in 0..lattice.len() {
        let names: Vec<&str> =
            lattice.nodes[m].attrs.iter().map(|&x| catalog.attr(x).name.as_str()).collect();
        let label = if names.is_empty() { "none".to_string() } else { names.join(",") };
        s.row(vec![label, lattice.nodes[m].size.to_string()]);
    }

    // 1-greedy selection (paper: V = {psc, ps, c, s, p, none},
    // I = {Icsp, Ipcs, Ispc}).
    let config = GreedyConfig { max_structures: 9, ..Default::default() };
    let result = one_greedy(catalog, &lattice, fact.len() as u64, &config);
    let s = report.section("1-greedy picks (paper §3)", &["#", "structure", "benefit"]);
    for (i, (pick, benefit)) in result.picks.iter().enumerate() {
        let label = match pick {
            ct_cube::Structure::View { node } => {
                let names: Vec<&str> = lattice.nodes[*node]
                    .attrs
                    .iter()
                    .map(|&x| catalog.attr(x).name.as_str())
                    .collect();
                if names.is_empty() {
                    "V{none}".to_string()
                } else {
                    format!("V{{{}}}", names.join(","))
                }
            }
            ct_cube::Structure::Index { order, .. } => {
                let names: Vec<&str> =
                    order.iter().map(|x| catalog.attr(*x).name.as_str()).collect();
                format!("I{{{}}}", names.join(","))
            }
        };
        s.row(vec![(i + 1).to_string(), label, format!("{benefit:.0}")]);
    }

    // SelectMapping allocation of the selected views (paper Table 5).
    let mut views: Vec<ViewDef> = result
        .views
        .iter()
        .enumerate()
        .map(|(i, &m)| ViewDef::new(i as u32, lattice.nodes[m].attrs.clone(), AggFn::Sum))
        .collect();
    // Keep the paper's benefit order: top view first.
    views.sort_by_key(|v| std::cmp::Reverse(v.arity()));
    let plan = select_mapping(&views);
    let s = report.section("SelectMapping allocation (Table 5)", &["Cubetree", "dims", "views"]);
    for (t, spec) in plan.trees.iter().enumerate() {
        let names: Vec<String> = spec
            .views
            .iter()
            .map(|id| {
                views
                    .iter()
                    .find(|v| v.id == *id)
                    .map(|v| v.display_name(catalog))
                    .unwrap_or_default()
            })
            .collect();
        s.row(vec![format!("R{}", t + 1), spec.dims.to_string(), names.join(" ")]);
    }
    report.emit(args.json.as_deref());
    // Table 5 is pure planning (no storage engine runs), so the metrics
    // document is empty — the flag is still honoured for uniform tooling.
    ct_bench::metrics::emit_metrics_if_requested(args.metrics.as_deref(), &[]);
}
