//! Reader-during-update smoke: drives the generation-MVCC serving path end
//! to end. A fleet of reader threads continuously runs a probe batch while
//! the main thread commits successive merge-pack refreshes; every reader
//! batch must answer exactly like the generation it pinned, and every
//! committed generation must be observed live. Exits non-zero (panics) on
//! any snapshot-isolation violation, so CI can gate on it.

use ct_bench::experiments::estimate_data_bytes;
use ct_bench::report::Report;
use ct_bench::BenchArgs;
use ct_tpcd::{TpcdConfig, TpcdWarehouse};
use ct_workload::{paper_configs, run_mixed_refresh, QueryGenerator};
use cubetree::engine::{CubetreeEngine, RolapEngine};
use std::time::Instant;

const READERS: usize = 3;
const CYCLES: usize = 3;

fn main() {
    let args = BenchArgs::parse();
    let w = TpcdWarehouse::new(TpcdConfig { scale_factor: args.sf, seed: args.seed });
    let fact = w.generate_fact();
    let setup = paper_configs(&w);

    let mut cfg = setup.cubetree.clone().with_threads(args.threads.max(2));
    cfg.pool_pages = args.pool_pages(estimate_data_bytes(fact.len() as u64));
    let mut engine =
        CubetreeEngine::new(w.catalog().clone(), cfg).expect("cubetree engine");
    engine.load(&fact).expect("cubetree load");

    let a = w.attrs();
    let mut generator = QueryGenerator::new(
        w.catalog(),
        vec![a.partkey, a.suppkey, a.custkey],
        args.seed,
    );
    let probes = generator.batch(args.queries.clamp(2, 16));

    // Refresh increments: disjoint slices of a second generated fact.
    let extra =
        TpcdWarehouse::new(TpcdConfig { scale_factor: args.sf, seed: args.seed + 1 })
            .generate_fact();
    let slice = (extra.len() / CYCLES).max(1);
    let deltas: Vec<_> = (0..CYCLES)
        .map(|i| {
            let lo = i * slice;
            let hi = (lo + slice).min(extra.len());
            let keys: Vec<u64> = (lo..hi).flat_map(|r| extra.key(r).to_vec()).collect();
            let measures: Vec<i64> = (lo..hi).map(|r| extra.states[r].sum).collect();
            ct_cube::Relation::from_fact(extra.attrs.clone(), keys, &measures)
        })
        .collect();

    let t0 = Instant::now();
    let stats = run_mixed_refresh(&engine, &probes, &deltas, READERS)
        .expect("mixed read/refresh run");
    let wall = t0.elapsed().as_secs_f64();

    assert_eq!(stats.mismatches, 0, "a reader batch saw a torn generation");
    assert_eq!(stats.cycles, CYCLES, "every refresh cycle must commit");
    assert_eq!(
        stats.generations_seen,
        (0..=CYCLES as u64).collect::<Vec<_>>(),
        "every committed generation must be observed by readers"
    );

    let mut report =
        Report::new("bench_mixed", "reader-during-update serving smoke", args.sf);
    report.meta("fact rows", fact.len());
    report.meta("probes per batch", probes.len());
    report.meta("readers", READERS);
    report.meta("refresh cycles", stats.cycles);
    report.meta("reader batches", stats.reads);
    report.meta("generations observed", format!("{:?}", stats.generations_seen));
    report.meta("mismatches", stats.mismatches);
    report.meta("wall secs", format!("{wall:.3}"));
    report.emit(args.json.as_deref());
}
