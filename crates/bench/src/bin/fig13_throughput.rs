//! Figure 13: system throughput (queries/second), min and max over windows,
//! for both configurations.
//!
//! Paper (SF 1): conventional averages ~1.1 q/s, Cubetrees ~10.1 q/s —
//! "the peak performance of the conventional approach barely matches the
//! system low for the Cubetrees implementation."

use ct_bench::experiments::build_engines_or_die;
use ct_bench::report::{fmt_ratio, sched_section, Report};
use ct_bench::BenchArgs;
use cubetree::engine::RolapEngine;
use ct_workload::{run_batch, QueryGenerator};

fn main() {
    let args = BenchArgs::parse();
    let engines = build_engines_or_die(&args);
    let w = &engines.warehouse;
    let a = w.attrs();
    let total_queries = args.queries * 7; // the paper ran 100 per view
    let window = 10usize;

    let mut generator = QueryGenerator::new(
        w.catalog(),
        vec![a.partkey, a.suppkey, a.custkey],
        args.seed,
    );
    let queries = generator.batch(total_queries);
    let conv = run_batch(&engines.conventional, &queries).expect("conventional batch");
    let cube = run_batch(&engines.cubetree, &queries).expect("cubetree batch");
    assert_eq!(conv.checksum, cube.checksum, "engines disagreed on answers");

    let mut report = Report::new("fig13_throughput", "Figure 13", args.sf);
    report.meta("queries", total_queries);
    report.meta("window (queries)", window);
    report.meta("threads", args.threads);
    let (conv_min, conv_max) = conv.throughput_window_sim(window);
    let (cube_min, cube_max) = cube.throughput_window_sim(window);
    let s = report.section(
        "throughput (queries/simulated-second)",
        &["configuration", "min", "max", "avg"],
    );
    s.row(vec![
        "conventional (paper avg 1.1)".into(),
        format!("{conv_min:.2}"),
        format!("{conv_max:.2}"),
        format!("{:.2}", conv.avg_throughput_sim()),
    ]);
    s.row(vec![
        "cubetrees (paper avg 10.1)".into(),
        format!("{cube_min:.2}"),
        format!("{cube_max:.2}"),
        format!("{:.2}", cube.avg_throughput_sim()),
    ]);
    let s2 = report.section("headline ratio (paper ~10:1)", &["metric", "value"]);
    s2.row(vec![
        "avg throughput ratio".into(),
        fmt_ratio(cube.avg_throughput_sim(), conv.avg_throughput_sim()),
    ]);
    s2.row(vec![
        "cubetree min vs conventional max".into(),
        fmt_ratio(cube_min, conv_max),
    ]);
    sched_section(&mut report, &[&cube]);
    report.emit(args.json.as_deref());
    ct_bench::metrics::emit_metrics_if_requested(
        args.metrics.as_deref(),
        &[
            ("conventional", engines.conventional.env()),
            ("cubetrees", engines.cubetree.env()),
        ],
    );
}
