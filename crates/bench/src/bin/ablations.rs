//! Ablations of the Cubetree design choices (DESIGN.md):
//!
//! 1. **Leaf compression** — compressed vs raw leaves: storage and query
//!    cost (§2.4's ">2:1 storage" mechanism);
//! 2. **Mapping policy** — SelectMapping vs one-tree-per-view: tree count,
//!    non-leaf overhead and query cost (§2.3/§2.4's minimality claim);
//! 3. **Replicas** — the §3 multi-sort-order replication: query cost on
//!    slices that fix a non-leading sort attribute.

use ct_bench::experiments::estimate_data_bytes;
use ct_bench::report::{fmt_mb, fmt_ratio, fmt_secs, Report};
use ct_bench::BenchArgs;
use ct_rtree::LeafFormat;
use ct_tpcd::{TpcdConfig, TpcdWarehouse};
use ct_workload::{paper_configs, run_batch, QueryGenerator};
use cubetree::engine::{CubetreeConfig, CubetreeEngine, RolapEngine};

fn engine_with(
    w: &TpcdWarehouse,
    mut config: CubetreeConfig,
    pool_pages: usize,
    recorder: ct_obs::Recorder,
) -> CubetreeEngine {
    config.pool_pages = pool_pages;
    config.recorder = recorder;
    let mut e = CubetreeEngine::new(w.catalog().clone(), config).expect("engine");
    e.load(&w.generate_fact()).expect("load");
    e
}

fn main() {
    let args = BenchArgs::parse();
    let w = TpcdWarehouse::new(TpcdConfig { scale_factor: args.sf, seed: args.seed });
    let fact_rows = w.generate_fact().len() as u64;
    let pool = args.pool_pages(estimate_data_bytes(fact_rows));
    let setup = paper_configs(&w);
    let a = w.attrs();
    let base = vec![a.partkey, a.suppkey, a.custkey];

    let mut report = Report::new("ablations", "design-choice ablations", args.sf);
    report.meta("fact rows", fact_rows);

    // --- 1. compression ---
    let compressed = engine_with(&w, setup.cubetree.clone(), pool, args.recorder()); // zero-elided (paper)
    let varint = engine_with(
        &w,
        CubetreeConfig { format: LeafFormat::Compressed, ..setup.cubetree.clone() },
        pool,
        args.recorder(),
    );
    let raw = engine_with(
        &w,
        CubetreeConfig { format: LeafFormat::Raw, ..setup.cubetree.clone() },
        pool,
        args.recorder(),
    );
    let mut g = QueryGenerator::new(w.catalog(), base.clone(), args.seed);
    let queries = g.batch(args.queries * 2);
    let qc = run_batch(&compressed, &queries).expect("zero-elided batch");
    let qv = run_batch(&varint, &queries).expect("varint batch");
    let qr = run_batch(&raw, &queries).expect("raw batch");
    assert_eq!(qc.checksum, qr.checksum);
    assert_eq!(qc.checksum, qv.checksum);
    let s = report.section(
        "leaf compression ablation",
        &["format", "storage", "query batch (sim)"],
    );
    s.row(vec![
        "raw (padding stored)".into(),
        fmt_mb(raw.storage_bytes()),
        fmt_secs(qr.total_sim()),
    ]);
    s.row(vec![
        "zero-elided (paper §2.4)".into(),
        fmt_mb(compressed.storage_bytes()),
        fmt_secs(qc.total_sim()),
    ]);
    s.row(vec![
        "varint deltas (extension)".into(),
        fmt_mb(varint.storage_bytes()),
        fmt_secs(qv.total_sim()),
    ]);
    s.row(vec![
        "raw/zero-elided".into(),
        fmt_ratio(raw.storage_bytes() as f64, compressed.storage_bytes() as f64),
        fmt_ratio(qr.total_sim(), qc.total_sim()),
    ]);

    // --- 2. replicas ---
    let no_replicas = engine_with(
        &w,
        CubetreeConfig { replicas: Vec::new(), ..setup.cubetree.clone() },
        pool,
        args.recorder(),
    );
    // Queries that slice on partkey/suppkey over unmaterialized nodes force
    // the top view; without replicas the only sort order is (c,s,p).
    let mut g = QueryGenerator::new(w.catalog(), base.clone(), args.seed + 1);
    let pc_queries = g.batch_on(0b101, args.queries); // {partkey, custkey}
    let with_r = run_batch(&compressed, &pc_queries).expect("with replicas");
    let without_r = run_batch(&no_replicas, &pc_queries).expect("without replicas");
    assert_eq!(with_r.checksum, without_r.checksum);
    let s = report.section(
        "top-view replicas (multi-sort-order)",
        &["configuration", "storage", "{p,c} batch (sim)"],
    );
    s.row(vec![
        "primary + 2 replicas".into(),
        fmt_mb(compressed.storage_bytes()),
        fmt_secs(with_r.total_sim()),
    ]);
    s.row(vec![
        "primary only".into(),
        fmt_mb(no_replicas.storage_bytes()),
        fmt_secs(without_r.total_sim()),
    ]);
    s.row(vec![
        "no-replica slowdown".into(),
        String::new(),
        fmt_ratio(without_r.total_sim(), with_r.total_sim()),
    ]);

    // --- 3. mapping policy ---
    // One-tree-per-view: emulate by giving every view a distinct arity-class
    // via per-view engines is invasive; instead measure the forest shape
    // SelectMapping produces vs the per-view alternative's page overhead.
    if let Some(forest) = compressed.forest() {
        let s = report.section(
            "SelectMapping forest shape",
            &["tree", "dims", "views", "entries", "internal pages"],
        );
        let pin = forest.pin();
        for (i, t) in pin.trees().iter().enumerate() {
            let st = t.stats();
            let views: Vec<String> =
                t.views().iter().map(|(v, _)| format!("V{}", v.view)).collect();
            s.row(vec![
                format!("R{}", i + 1),
                t.dims().to_string(),
                views.join("+"),
                st.entries.to_string(),
                st.internal_pages.to_string(),
            ]);
        }
    }
    // --- 4. pack order: low sort vs Morton (space-filling curve) ---
    // Paper §2.4 rejects space-filling curves; quantify on a single-view
    // tree: the top view packed both ways, sliced on each dimension.
    {
        use ct_common::{AggState, Point, Rect, COORD_MAX};
        use ct_cube::compute::packed_sort_cols;
        use ct_rtree::{morton_cmp, PackOrder, TreeBuilder, ViewInfo};
        use ct_storage::StorageEnv;

        let env = StorageEnv::with_config("pack-order", pool, ct_common::CostModel::DISK_1998)
            .expect("env");
        let fact = w.generate_fact();
        let top = ct_cube::compute_view(
            &env,
            w.catalog(),
            &fact,
            &[a.partkey, a.suppkey, a.custkey],
            &packed_sort_cols(3),
        )
        .expect("top view");
        let info = ViewInfo { view: 0, arity: 3, agg: ct_common::AggFn::Sum };
        // Low-sort tree (relation is already in packed order).
        let fid_low = env.create_file("low").expect("file");
        let mut b = TreeBuilder::new(env.pool().clone(), fid_low, 3, vec![info], LeafFormat::ZeroElided)
            .expect("builder");
        for i in 0..top.len() {
            b.push(0, Point::new(top.key(i), 3), &top.states[i]).expect("push");
        }
        let low = b.finish().expect("finish");
        // Morton tree (re-sort).
        let mut idx: Vec<usize> = (0..top.len()).collect();
        idx.sort_by(|&i, &j| morton_cmp(&Point::new(top.key(i), 3), &Point::new(top.key(j), 3)));
        let fid_z = env.create_file("morton").expect("file");
        let mut b = TreeBuilder::with_order(
            env.pool().clone(),
            fid_z,
            3,
            vec![info],
            LeafFormat::ZeroElided,
            PackOrder::Morton,
        )
        .expect("builder");
        for &i in &idx {
            b.push(0, Point::new(top.key(i), 3), &top.states[i]).expect("push");
        }
        let morton = b.finish().expect("finish");

        // Slice each axis 50 times, counting simulated I/O.
        let s = report.section(
            "pack order: low sort (paper) vs Morton curve — slice cost (sim)",
            &["sliced axis", "low sort", "morton", "morton/low"],
        );
        let card = [w.parts(), w.suppliers(), w.customers()];
        for axis in 0..3usize {
            let mut cost = [0.0f64; 2];
            for (ti, tree) in [&low, &morton].iter().enumerate() {
                let before = env.snapshot();
                for k in 1..=50u64 {
                    let v = k * card[axis] / 51 + 1;
                    let mut lo = [1u64, 1, 1];
                    let mut hi = [COORD_MAX; 3];
                    lo[axis] = v;
                    hi[axis] = v;
                    let mut acc = 0i64;
                    tree.search(&Rect::new(&lo, &hi), |_, _, st: &AggState| {
                        acc = acc.wrapping_add(st.sum);
                        true
                    })
                    .expect("search");
                }
                cost[ti] =
                    env.snapshot().since(&before).simulated_seconds(env.cost_model());
            }
            let axis_name = ["partkey", "suppkey", "custkey"][axis];
            s.row(vec![
                axis_name.into(),
                fmt_secs(cost[0]),
                fmt_secs(cost[1]),
                fmt_ratio(cost[1], cost[0]),
            ]);
        }
    }

    report.emit(args.json.as_deref());
    ct_bench::metrics::emit_metrics_if_requested(
        args.metrics.as_deref(),
        &[
            ("zero_elided", compressed.env()),
            ("varint", varint.env()),
            ("raw", raw.env()),
            ("no_replicas", no_replicas.env()),
        ],
    );
}
