//! Streaming ingestion benchmark: freshness vs throughput against the
//! batch-refresh baseline (the Table 7 merge-pack path).
//!
//! A real ct-server on loopback absorbs the Table 7 increment through
//! `POST /ingest` in small batches; every acknowledged row is queryable
//! immediately, while the forest generation stays untouched (no merge-pack
//! ran). The same increment applied to a second engine via the batch
//! `update()` path measures what the rows cost — and how stale they stay —
//! when freshness waits for a full merge-pack refresh.
//!
//! Gates (exit non-zero on violation):
//! * zero transport/5xx errors on the ingest path;
//! * acknowledged rows are visible *before* any compaction (generation 0),
//!   and the streamed grand total matches base ∪ increment exactly;
//! * after compaction, every probe answers bit-identically to the
//!   batch-refreshed engine (same merge-pack, different feeding);
//! * streaming row throughput ≥ the checked-in baseline ratio times the
//!   batch-refresh row throughput (`results/bench_ingest_baseline.json`).
//!
//! Default output `BENCH_ingest.json`.

use ct_bench::experiments::estimate_data_bytes;
use ct_bench::report::{fmt_ratio, fmt_secs, Report};
use ct_bench::BenchArgs;
use ct_common::query::{normalize_rows, QueryRow};
use ct_common::stats::percentile_nearest_rank;
use ct_common::{AttrId, SliceQuery};
use ct_server::compactor::IngestConfig;
use ct_server::json::Json;
use ct_server::{CtServer, ServerConfig};
use ct_workload::paper_configs;
use ct_workload::serving::{query_body, HttpClient};
use cubetree::delta::DeltaConfig;
use cubetree::engine::{CubetreeEngine, RolapEngine};
use ct_tpcd::{TpcdConfig, TpcdWarehouse};
use std::sync::Arc;
use std::time::{Duration, Instant};

const BATCHES: usize = 20;

fn main() {
    let args = BenchArgs::parse();
    let w = TpcdWarehouse::new(TpcdConfig { scale_factor: args.sf, seed: args.seed });
    let fact = w.generate_fact();
    let increment = w.generate_increment(0.1);
    let setup = paper_configs(&w);
    let pool = args.pool_pages(estimate_data_bytes(fact.len() as u64));
    let a = w.attrs();
    let probes: Vec<SliceQuery> = vec![
        SliceQuery::new(vec![a.partkey], vec![]),
        SliceQuery::new(vec![a.suppkey], vec![]),
        SliceQuery::new(vec![a.custkey], vec![]),
        SliceQuery::new(vec![a.partkey, a.suppkey], vec![]),
        SliceQuery::new(vec![a.suppkey], vec![(a.partkey, 3)]),
    ];

    let build = |label: &str| -> CubetreeEngine {
        let mut cfg = setup.cubetree.clone().with_threads(args.threads);
        cfg.pool_pages = pool;
        cfg.recorder = ct_obs::Recorder::enabled();
        let mut engine =
            CubetreeEngine::new(w.catalog().clone(), cfg).expect("cubetree engine");
        engine.load(&fact).unwrap_or_else(|e| panic!("{label} load: {e}"));
        engine
    };

    // Streaming engine behind a real server. Thresholds are set beyond the
    // run so *no* background compaction fires: phase 1 measures pure
    // memtable freshness.
    let streaming = Arc::new(build("streaming"));
    let server_cfg = ServerConfig {
        ingest: IngestConfig {
            delta: DeltaConfig {
                max_rows: u64::MAX,
                max_bytes: u64::MAX,
                max_age: Duration::from_secs(3600),
            },
            check_interval: Duration::from_millis(50),
            ..IngestConfig::default()
        },
        ..ServerConfig::default()
    };
    let server = CtServer::start(streaming.clone(), server_cfg).expect("start server");
    let addr = server.addr().to_string();
    let mut client = HttpClient::connect(&addr).expect("connect");

    // Batch-refresh reference: same engine, fed the same rows through the
    // Table 7 `update()` merge-pack instead of the wire.
    let mut batch = build("batch");

    // ---- Phase 1: stream the increment, measure ack latency. ----
    let arity = increment.attrs.len();
    let attr_names: Vec<String> =
        increment.attrs.iter().map(|id| format!("\"{}\"", w.catalog().attr(*id).name)).collect();
    let rows_total = increment.len();
    let per_batch = rows_total.div_ceil(BATCHES);
    let mut ack_secs: Vec<f64> = Vec::with_capacity(BATCHES);
    let mut ingest_errors = 0u64;
    let stream_started = Instant::now();
    for chunk in 0..BATCHES {
        let lo = chunk * per_batch;
        let hi = (lo + per_batch).min(rows_total);
        if lo >= hi {
            break;
        }
        let mut body =
            format!("{{\"attrs\": [{}], \"rows\": [", attr_names.join(", "));
        for r in lo..hi {
            if r > lo {
                body.push_str(", ");
            }
            body.push('[');
            for k in &increment.keys[r * arity..(r + 1) * arity] {
                body.push_str(&k.to_string());
                body.push_str(", ");
            }
            body.push_str(&increment.states[r].sum.to_string());
            body.push(']');
        }
        body.push_str("]}");
        let t0 = Instant::now();
        match client.request("POST", "/ingest", &body) {
            Ok(reply) if reply.status == 200 => ack_secs.push(t0.elapsed().as_secs_f64()),
            Ok(reply) => {
                eprintln!("ingest batch {chunk}: status {} {}", reply.status, reply.text());
                ingest_errors += 1;
            }
            Err(e) => {
                eprintln!("ingest batch {chunk}: transport error {e}");
                ingest_errors += 1;
            }
        }
    }
    let stream_wall = stream_started.elapsed().as_secs_f64();

    // ---- Freshness check: everything visible, zero merge-pack I/O. ----
    let generation_after_stream =
        streaming.forest().expect("loaded").generation_number();
    let expect_total: i64 = fact.states.iter().map(|s| s.sum).sum::<i64>()
        + increment.states.iter().map(|s| s.sum).sum::<i64>();
    let http_total = grand_total(&mut client, &w, a.suppkey);
    let visible_pre_compaction = http_total == expect_total as f64;
    // The batch engine is still stale: it answers base-only until refreshed.
    let stale_total: f64 = batch
        .query(&SliceQuery::new(vec![a.suppkey], vec![]))
        .expect("stale probe")
        .iter()
        .map(|r| r.agg)
        .sum();

    // ---- Phase 2: the batch-refresh baseline (Table 7 path). ----
    let refresh_started = Instant::now();
    batch.update(&increment).expect("batch refresh");
    let refresh_wall = refresh_started.elapsed().as_secs_f64();

    // ---- Phase 3: compact the delta tier; answers must be bit-identical
    // to the batch-refreshed engine on every probe. ----
    let compact_started = Instant::now();
    assert!(streaming.compact_delta().expect("compact"), "tier had rows to compact");
    let compact_wall = compact_started.elapsed().as_secs_f64();
    let mut mismatches = 0usize;
    for q in &probes {
        let over_http = http_rows(&mut client, &w, q);
        let reference = normalize_rows(batch.query(q).expect("batch probe"));
        if over_http != reference {
            eprintln!("post-compaction mismatch on {q:?}");
            mismatches += 1;
        }
    }
    let drained = streaming.delta_stats().expect("stats").resident_rows() == 0;
    server.join();

    // ---- Report. ----
    let streamed_rows = (ack_secs.len() * per_batch).min(rows_total) as u64;
    let stream_rps = streamed_rows as f64 / stream_wall.max(1e-9);
    let refresh_rps = rows_total as f64 / refresh_wall.max(1e-9);
    let baseline = read_baseline_ratio("results/bench_ingest_baseline.json");

    let mut report = Report::new(
        "bench_ingest",
        "streaming delta-tier ingestion vs Table 7 batch refresh",
        args.sf,
    );
    report.meta("base rows", fact.len());
    report.meta("increment rows", rows_total);
    report.meta("ingest batches", ack_secs.len());
    report.meta("threads", args.threads);
    report.meta("baseline min throughput ratio", baseline);

    let p = |v: &[f64], pc: f64| percentile_nearest_rank(v.iter().copied(), pc);
    let s = report.section(
        "freshness vs throughput",
        &["path", "rows/s", "visibility latency p50 ms", "p99 ms", "merge-pack I/O before visible"],
    );
    s.row(vec![
        "streaming /ingest".into(),
        format!("{stream_rps:.0}"),
        format!("{:.3}", p(&ack_secs, 50.0) * 1e3),
        format!("{:.3}", p(&ack_secs, 99.0) * 1e3),
        "none (generation unchanged)".into(),
    ]);
    s.row(vec![
        "batch refresh".into(),
        format!("{refresh_rps:.0}"),
        format!("{:.3}", refresh_wall * 1e3),
        format!("{:.3}", refresh_wall * 1e3),
        fmt_secs(refresh_wall),
    ]);

    let s2 = report.section("invariants", &["check", "value"]);
    s2.row(vec!["generation after streaming".into(), generation_after_stream.to_string()]);
    s2.row(vec![
        "streamed total visible pre-compaction".into(),
        visible_pre_compaction.to_string(),
    ]);
    s2.row(vec![
        "batch path stale before refresh (rows missing)".into(),
        format!("{:.0}", expect_total as f64 - stale_total),
    ]);
    s2.row(vec!["post-compaction probes bit-identical".into(), (mismatches == 0).to_string()]);
    s2.row(vec!["delta tier drained by compaction".into(), drained.to_string()]);
    s2.row(vec!["compaction wall".into(), fmt_secs(compact_wall)]);
    s2.row(vec![
        "streaming / refresh throughput".into(),
        fmt_ratio(stream_rps, refresh_rps),
    ]);

    let json = args.json.clone().unwrap_or_else(|| "BENCH_ingest.json".into());
    report.emit(Some(&json));
    let envs: Vec<(&str, &ct_storage::StorageEnv)> =
        vec![("streaming", streaming.env()), ("batch", batch.env())];
    ct_bench::metrics::emit_metrics_if_requested(args.metrics.as_deref(), &envs);

    let mut failed = false;
    if ingest_errors > 0 {
        eprintln!("regression: {ingest_errors} ingest batches failed");
        failed = true;
    }
    if generation_after_stream != 0 {
        eprintln!(
            "regression: generation moved to {generation_after_stream} during streaming \
             (compaction fired despite disabled thresholds)"
        );
        failed = true;
    }
    if !visible_pre_compaction {
        eprintln!(
            "regression: streamed total {http_total} != expected {expect_total} \
             before compaction — acknowledged rows are not fresh"
        );
        failed = true;
    }
    if mismatches > 0 {
        eprintln!("regression: {mismatches} probes diverged from the batch-refresh engine");
        failed = true;
    }
    if !drained {
        eprintln!("regression: compaction left rows resident in the delta tier");
        failed = true;
    }
    if stream_rps < baseline * refresh_rps {
        eprintln!(
            "regression: streaming ingested {stream_rps:.0} rows/s vs batch refresh \
             {refresh_rps:.0} rows/s (ratio {:.3} < baseline {baseline:.3})",
            stream_rps / refresh_rps.max(1e-9)
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}

/// Grand total over HTTP: sum of the per-suppkey SUM rows (a scalar query
/// is not expressible over the wire — at least one attribute is required).
fn grand_total(client: &mut HttpClient, w: &TpcdWarehouse, group: AttrId) -> f64 {
    http_rows(client, w, &SliceQuery::new(vec![group], vec![]))
        .iter()
        .map(|r| r.agg)
        .sum()
}

/// Runs one probe over the wire and parses the JSON answer into normalized
/// query rows (the wire is shortest-round-trip, so `f64`s survive exactly).
fn http_rows(client: &mut HttpClient, w: &TpcdWarehouse, q: &SliceQuery) -> Vec<QueryRow> {
    let body = query_body(w.catalog(), q, false);
    let reply = client.request("POST", "/query", &body).expect("query transport");
    assert_eq!(reply.status, 200, "probe failed: {}", reply.text());
    let doc = Json::parse(&reply.text()).expect("answer parses");
    let rows = doc
        .get("rows")
        .and_then(Json::as_array)
        .expect("rows")
        .iter()
        .map(|row| {
            let cells = row.as_array().expect("row array");
            let (key, agg) = cells.split_at(cells.len() - 1);
            QueryRow {
                key: key.iter().map(|c| c.as_u64().expect("key")).collect(),
                agg: agg[0].as_f64().expect("agg"),
            }
        })
        .collect();
    normalize_rows(rows)
}

/// Reads `min_streaming_vs_refresh_throughput_ratio` from the checked-in
/// baseline, falling back to 1.0 (streaming must at least match the batch
/// path per row) if the file is missing or unparsable.
fn read_baseline_ratio(path: &str) -> f64 {
    std::fs::read_to_string(path)
        .ok()
        .and_then(|text| Json::parse(&text).ok())
        .and_then(|doc| doc.get("min_streaming_vs_refresh_throughput_ratio")?.as_f64())
        .unwrap_or(1.0)
}
