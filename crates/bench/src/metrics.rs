//! `--metrics` output: one JSON document per run plus a human-readable
//! phase-tree summary on stderr.
//!
//! Every bench binary that accepts `--metrics <path>` funnels through
//! [`emit_metrics`]: each engine's [`ct_obs::Recorder`] is snapshotted,
//! rendered, and written under its label, together with the engine's global
//! [`ct_storage::IoSnapshot`] and a reconciliation verdict — the sum of the
//! root phases' I/O deltas must equal the global counters, otherwise some
//! page traffic escaped phase attribution. See OBSERVABILITY.md for the
//! full schema.

use ct_obs::IoDelta;
use ct_storage::StorageEnv;

/// One engine's metrics: the recorder snapshot, the engine-global I/O
/// counters, and whether the two reconcile.
pub struct MetricsReport {
    /// Section label (e.g. `"cubetrees"`).
    pub label: String,
    /// The recorder's counters/histograms/spans.
    pub snapshot: ct_obs::MetricsSnapshot,
    /// Engine-global I/O counters at emission time.
    pub global_io: IoDelta,
    /// True when the root phases' I/O deltas sum to `global_io`.
    pub reconciled: bool,
}

impl MetricsReport {
    /// Captures `env`'s recorder and global counters under `label`.
    pub fn capture(label: &str, env: &StorageEnv) -> MetricsReport {
        let snapshot = env.recorder().snapshot();
        let global_io = env.snapshot().to_delta();
        let roots = snapshot.root_io_total();
        let reconciled =
            roots.total_io() == global_io.total_io()
                && roots.buffer_hits == global_io.buffer_hits
                && roots.tuples == global_io.tuples;
        MetricsReport { label: label.to_string(), snapshot, global_io, reconciled }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"global_io\": {}, \"reconciled\": {}, \"metrics\": {}}}",
            io_json(&self.global_io),
            self.reconciled,
            self.snapshot.to_json()
        )
    }

    fn print_summary(&self) {
        eprintln!("== metrics: {} ==", self.label);
        eprint!("{}", self.snapshot.render_tree());
        let roots = self.snapshot.root_io_total();
        eprintln!(
            "phase/global I/O reconciliation: {} ({} page I/Os in root phases, {} global)",
            if self.reconciled { "OK" } else { "MISMATCH" },
            roots.total_io(),
            self.global_io.total_io(),
        );
    }
}

fn io_json(d: &IoDelta) -> String {
    format!(
        "{{\"seq_reads\": {}, \"rand_reads\": {}, \"seq_writes\": {}, \"rand_writes\": {}, \
         \"buffer_hits\": {}, \"tuples\": {}, \"total_io\": {}, \"hit_ratio\": {:.6}}}",
        d.seq_reads,
        d.rand_reads,
        d.seq_writes,
        d.rand_writes,
        d.buffer_hits,
        d.tuples,
        d.total_io(),
        d.hit_ratio(),
    )
}

/// Captures every `(label, env)` section, prints each phase tree to stderr,
/// and writes the combined JSON document to `path`.
pub fn emit_metrics(path: &str, sections: &[(&str, &StorageEnv)]) -> std::io::Result<()> {
    let reports: Vec<MetricsReport> =
        sections.iter().map(|(label, env)| MetricsReport::capture(label, env)).collect();
    let mut out = String::from("{");
    for (i, r) in reports.iter().enumerate() {
        r.print_summary();
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\": {}", r.label.replace('"', "\\\""), r.to_json()));
    }
    out.push_str("}\n");
    std::fs::write(path, out)?;
    eprintln!("metrics written to {path}");
    Ok(())
}

/// [`emit_metrics`] when `--metrics` was given; warns instead of dying on
/// I/O errors so a full bench run is never lost to an unwritable path.
pub fn emit_metrics_if_requested(path: Option<&str>, sections: &[(&str, &StorageEnv)]) {
    if let Some(path) = path {
        if let Err(e) = emit_metrics(path, sections) {
            eprintln!("failed to write metrics to {path}: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::build_engines;
    use crate::BenchArgs;
    use cubetree::engine::RolapEngine;

    #[test]
    fn load_phases_reconcile_with_global_io() {
        let args = BenchArgs {
            sf: 0.001,
            metrics: Some("unused.json".into()),
            ..Default::default()
        };
        let engines = build_engines(&args).unwrap();
        for (label, env) in [
            ("conventional", engines.conventional.env()),
            ("cubetrees", engines.cubetree.env()),
        ] {
            let r = MetricsReport::capture(label, env);
            assert!(r.global_io.total_io() > 0, "{label}: load did no I/O?");
            assert!(r.reconciled, "{label}: root phases must account for all I/O");
            assert!(r.snapshot.spans.contains_key("load"), "{label} has a load phase");
            let json = r.to_json();
            assert!(json.contains("\"reconciled\": true"));
        }
    }

    #[test]
    fn disabled_recorder_produces_empty_snapshot() {
        let args = BenchArgs { sf: 0.001, ..Default::default() };
        let engines = build_engines(&args).unwrap();
        let r = MetricsReport::capture("cubetrees", engines.cubetree.env());
        assert!(r.snapshot.spans.is_empty());
        assert!(r.snapshot.counters.is_empty());
        // Nothing attributed, so reconciliation trivially fails against a
        // non-zero global count — callers only emit when --metrics is set.
        assert!(!r.reconciled);
    }
}
