//! Refresh-path micro-benchmark: Cubetree merge-pack vs conventional
//! row-at-a-time maintenance as the increment size grows (Table 7's
//! mechanism, swept).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ct_bench::experiments::estimate_data_bytes;
use ct_bench::BenchArgs;
use ct_tpcd::{TpcdConfig, TpcdWarehouse};
use ct_workload::paper_configs;
use cubetree::engine::{ConventionalEngine, CubetreeEngine, RolapEngine};

fn bench_refresh(c: &mut Criterion) {
    let args = BenchArgs { sf: 0.003, ..Default::default() };
    let w = TpcdWarehouse::new(TpcdConfig { scale_factor: args.sf, seed: 9 });
    let fact = w.generate_fact();
    let pool = args.pool_pages(estimate_data_bytes(fact.len() as u64));

    let mut group = c.benchmark_group("refresh");
    group.sample_size(10);
    for &frac in &[0.01f64, 0.1] {
        let delta = w.generate_increment(frac);
        group.throughput(Throughput::Elements(delta.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("cubetree_merge_pack", frac),
            &frac,
            |b, _| {
                b.iter_with_setup(
                    || {
                        let mut setup = paper_configs(&w);
                        setup.cubetree.pool_pages = pool;
                        let mut e =
                            CubetreeEngine::new(w.catalog().clone(), setup.cubetree).unwrap();
                        e.load(&fact).unwrap();
                        e
                    },
                    |mut e| e.update(&delta).unwrap(),
                );
            },
        );
        group.bench_with_input(
            BenchmarkId::new("conventional_row_at_a_time", frac),
            &frac,
            |b, _| {
                b.iter_with_setup(
                    || {
                        let mut setup = paper_configs(&w);
                        setup.conventional.pool_pages = pool;
                        let mut e =
                            ConventionalEngine::new(w.catalog().clone(), setup.conventional)
                                .unwrap();
                        e.load(&fact).unwrap();
                        e
                    },
                    |mut e| e.update(&delta).unwrap(),
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_refresh);
criterion_main!(benches);
