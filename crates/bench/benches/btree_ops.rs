//! B+-tree micro-operations: the primitive costs behind the conventional
//! configuration's numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use ct_btree::BTree;
use ct_storage::StorageEnv;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_btree(c: &mut Criterion) {
    let mut group = c.benchmark_group("btree_ops");
    group.sample_size(20);

    // Build a 100k-entry tree once for lookup/scan benches.
    let env = StorageEnv::new("bench-btree").unwrap();
    let fid = env.create_file("t").unwrap();
    let n = 100_000u64;
    let mut i = 0u64;
    let tree = BTree::bulk_load(env.pool().clone(), fid, 3, 1, || {
        if i < n {
            let k = vec![i / 1000, (i / 10) % 100, i % 10];
            i += 1;
            Ok(Some((k, vec![i])))
        } else {
            Ok(None)
        }
    })
    .unwrap();

    group.bench_function("point_get", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| {
            let i = rng.gen_range(0..n);
            tree.get(&[i / 1000, (i / 10) % 100, i % 10]).unwrap()
        });
    });

    group.bench_function("prefix_scan_1000", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| {
            let p = rng.gen_range(0..n / 1000);
            let mut count = 0u64;
            tree.scan_prefix(&[p], |_, _| {
                count += 1;
                true
            })
            .unwrap();
            count
        });
    });

    group.bench_function("random_insert", |b| {
        b.iter_with_setup(
            || {
                let env = StorageEnv::new("bench-btree-ins").unwrap();
                let fid = env.create_file("t").unwrap();
                let t = BTree::create(env.pool().clone(), fid, 2, 1).unwrap();
                (env, t, StdRng::seed_from_u64(5))
            },
            |(_env, mut t, mut rng)| {
                for _ in 0..1000 {
                    let k = [rng.gen_range(0..1_000_000u64), rng.gen()];
                    t.insert(&k, &[1]).unwrap();
                }
            },
        );
    });
    group.finish();
}

criterion_group!(benches, bench_btree);
criterion_main!(benches);
