//! Per-query latency of both engines on the paper's slice workload
//! (the microscopic view of Figures 12/13).

use criterion::{criterion_group, criterion_main, Criterion};
use ct_bench::experiments::build_engines_or_die;
use ct_bench::BenchArgs;
use ct_workload::QueryGenerator;
use cubetree::engine::RolapEngine;

fn bench_queries(c: &mut Criterion) {
    let args = BenchArgs { sf: 0.005, ..Default::default() };
    let engines = build_engines_or_die(&args);
    let w = &engines.warehouse;
    let a = w.attrs();
    let base = vec![a.partkey, a.suppkey, a.custkey];

    let mut group = c.benchmark_group("query_latency");
    group.sample_size(30);
    // Exact-view point-ish slice: fix partkey, group by suppkey.
    let mut g = QueryGenerator::new(w.catalog(), base.clone(), 1);
    let point_queries = g.batch_on(0b011, 64);
    // Rollup slice on an unmaterialized node {partkey, custkey}.
    let rollup_queries = g.batch_on(0b101, 64);

    for (name, queries) in
        [("exact_view", &point_queries), ("rollup_node", &rollup_queries)]
    {
        group.bench_function(format!("conventional/{name}"), |b| {
            let mut i = 0;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                engines.conventional.query(q).unwrap()
            });
        });
        group.bench_function(format!("cubetrees/{name}"), |b| {
            let mut i = 0;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                engines.cubetree.query(q).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
