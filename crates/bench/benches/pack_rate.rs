//! Packing throughput (\[KR97\] reports 6 GB/hour on 1997 hardware; this
//! measures entries/second of the bulk packer on modern hardware).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ct_common::{AggFn, AggState, Point};
use ct_rtree::{LeafFormat, TreeBuilder, ViewInfo};
use ct_storage::StorageEnv;

fn pack_n(env: &StorageEnv, n: u64, format: LeafFormat) {
    let fid = env.create_file("pack").unwrap();
    let views = vec![ViewInfo { view: 1, arity: 3, agg: AggFn::Sum }];
    let mut b = TreeBuilder::new(env.pool().clone(), fid, 3, views, format).unwrap();
    let side = (n as f64).cbrt().ceil() as u64 + 1;
    let mut pushed = 0;
    'outer: for z in 1..=side {
        for y in 1..=side {
            for x in 1..=side {
                b.push(1, Point::new(&[x, y, z], 3), &AggState::from_measure((x + y) as i64))
                    .unwrap();
                pushed += 1;
                if pushed >= n {
                    break 'outer;
                }
            }
        }
    }
    let t = b.finish().unwrap();
    assert_eq!(t.entry_count(), n);
}

fn bench_pack(c: &mut Criterion) {
    let mut group = c.benchmark_group("pack_rate");
    group.sample_size(10);
    for &n in &[10_000u64, 100_000] {
        group.throughput(Throughput::Elements(n));
        for (name, format) in
            [("compressed", LeafFormat::Compressed), ("raw", LeafFormat::Raw)]
        {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, &n| {
                b.iter_with_setup(
                    || StorageEnv::new("bench-pack").unwrap(),
                    |env| pack_n(&env, n, format),
                );
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_pack);
criterion_main!(benches);
