//! In-memory columnar relations carrying mergeable aggregate states.
//!
//! A [`Relation`] is the transfer format between pipeline stages: the raw
//! fact table (one state per source row), a computed view (one state per
//! group), or a delta of either. The physical engines consume relations to
//! build their storage structures.

use ct_common::{AggState, AttrId};

/// A relation of `arity` key columns plus one aggregate state per row.
#[derive(Clone, Debug, Default)]
pub struct Relation {
    /// Column schema (group-by attributes, in projection order).
    pub attrs: Vec<AttrId>,
    /// Row keys, `attrs.len()`-strided.
    pub keys: Vec<u64>,
    /// One aggregate state per row.
    pub states: Vec<AggState>,
}

impl Relation {
    /// An empty relation with the given schema.
    pub fn empty(attrs: Vec<AttrId>) -> Self {
        Relation { attrs, keys: Vec::new(), states: Vec::new() }
    }

    /// Builds the fact relation: each row gets a fresh state from its
    /// measure.
    pub fn from_fact(attrs: Vec<AttrId>, keys: Vec<u64>, measures: &[i64]) -> Self {
        let arity = attrs.len();
        assert_eq!(keys.len(), measures.len() * arity, "key/measure length mismatch");
        let states = measures.iter().map(|&m| AggState::from_measure(m)).collect();
        Relation { attrs, keys, states }
    }

    /// Builds a *change* relation mixing insertions and deletions:
    /// `deleted[i]` marks row `i` as a retraction of a previously loaded fact
    /// row with the same key and measure (\[GL95\]-style counting
    /// maintenance). Engines only accept retraction deltas against
    /// deletion-safe views (see [`ct_common::AggFn::deletion_safe`]).
    pub fn from_changes(
        attrs: Vec<AttrId>,
        keys: Vec<u64>,
        measures: &[i64],
        deleted: &[bool],
    ) -> Self {
        let arity = attrs.len();
        assert_eq!(keys.len(), measures.len() * arity, "key/measure length mismatch");
        assert_eq!(measures.len(), deleted.len(), "measure/deleted length mismatch");
        let states = measures
            .iter()
            .zip(deleted)
            .map(|(&m, &d)| if d { AggState::retraction(m) } else { AggState::from_measure(m) })
            .collect();
        Relation { attrs, keys, states }
    }

    /// True if any row is a retraction (negative count).
    pub fn has_retractions(&self) -> bool {
        self.states.iter().any(|s| s.count < 0)
    }

    /// Number of key columns.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True if the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The key of row `i`.
    pub fn key(&self, i: usize) -> &[u64] {
        let a = self.arity();
        &self.keys[i * a..(i + 1) * a]
    }

    /// Appends a row.
    pub fn push(&mut self, key: &[u64], state: AggState) {
        debug_assert_eq!(key.len(), self.arity());
        self.keys.extend_from_slice(key);
        self.states.push(state);
    }

    /// Position of attribute `a` in the schema.
    pub fn col_of(&self, a: AttrId) -> Option<usize> {
        self.attrs.iter().position(|&x| x == a)
    }

    /// Serializes one aggregate state as 4 words (sum, count, min, max) —
    /// the intermediate wire format used by external sorts.
    pub fn state_to_words(s: &AggState) -> [u64; 4] {
        [s.sum as u64, s.count as u64, s.min as u64, s.max as u64]
    }

    /// Inverse of [`Relation::state_to_words`].
    pub fn words_to_state(w: &[u64]) -> AggState {
        AggState { sum: w[0] as i64, count: w[1] as i64, min: w[2] as i64, max: w[3] as i64 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fact_relation_shape() {
        let attrs = vec![AttrId(0), AttrId(1)];
        let r = Relation::from_fact(attrs, vec![1, 2, 3, 4, 5, 6], &[10, 20, 30]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.arity(), 2);
        assert_eq!(r.key(1), &[3, 4]);
        assert_eq!(r.states[2].sum, 30);
        assert_eq!(r.states[2].count, 1);
        assert_eq!(r.col_of(AttrId(1)), Some(1));
        assert_eq!(r.col_of(AttrId(9)), None);
    }

    #[test]
    fn state_word_roundtrip() {
        let mut s = AggState::from_measure(-5);
        s.merge(&AggState::from_measure(12));
        let w = Relation::state_to_words(&s);
        let back = Relation::words_to_state(&w);
        assert_eq!(back, s);
    }

    #[test]
    fn push_grows_rows() {
        let mut r = Relation::empty(vec![AttrId(0)]);
        assert!(r.is_empty());
        r.push(&[7], AggState::from_measure(1));
        r.push(&[8], AggState::from_measure(2));
        assert_eq!(r.len(), 2);
        assert_eq!(r.key(0), &[7]);
    }
}
