//! 1-greedy view **and** index selection (\[GHRU97\]; paper §3).
//!
//! "This algorithm computes the cost of answering a query q as the total
//! number of tuples that have to be accessed on every table and index that is
//! used to answer q. At every step the algorithm picks a view or an index
//! that gives the greatest benefit" (paper §3). The workload is the uniform
//! slice-query family over the lattice: for every node `W`, all `2^|W|`
//! subsets of `W` as the fixed (equality-sliced) attributes.
//!
//! Cost model, per \[GHRU97\]:
//! * the fact table is always available at cost `fact_rows` (full scan);
//! * a materialized view `V ⊇ W` answers `q` at cost `|V|` (scan), or — via a
//!   selected B-tree index on `V` — at `|V| / Π card(a)` over the longest
//!   index-key prefix of fixed attributes (expected matching tuples, ≥ 1);
//! * index candidates are the cyclic rotations of a view's attribute list,
//!   which is exactly the shape of the paper's selected set
//!   `I = {I(c,s,p), I(p,c,s), I(s,p,c)}`.
//!
//! Because an index is worthless without its view and a large view nearly
//! worthless without an index, a view candidate's benefit is evaluated
//! *jointly* with its best single index (the view–index interdependence
//! \[GHRU97\] addresses); only the view is added in that step — the index then
//! wins a later step on its own enormous standalone benefit.

use crate::lattice::Lattice;
use ct_common::{AttrId, Catalog};

/// A selectable physical structure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Structure {
    /// Materialize the view of lattice node `node`.
    View {
        /// Lattice node mask.
        node: usize,
    },
    /// A B-tree index on node `node`'s view with key order `order`.
    Index {
        /// Lattice node mask (must be a selected view).
        node: usize,
        /// Concatenated key order.
        order: Vec<AttrId>,
    },
}

/// Tuning knobs for the selection.
#[derive(Clone, Debug)]
pub struct GreedyConfig {
    /// Total tuple-space budget across selected structures (`u64::MAX` for
    /// unbounded).
    pub space_budget: u64,
    /// Hard cap on the number of structures.
    pub max_structures: usize,
    /// Stop when the best remaining benefit falls below this.
    pub min_benefit: f64,
    /// Include the no-predicate (whole view) query types in the workload.
    pub include_full_view_queries: bool,
}

impl Default for GreedyConfig {
    fn default() -> Self {
        GreedyConfig {
            space_budget: u64::MAX,
            max_structures: 16,
            min_benefit: 1.0,
            include_full_view_queries: true,
        }
    }
}

/// The selection outcome.
#[derive(Clone, Debug, Default)]
pub struct GreedyResult {
    /// Every pick in selection order with its benefit at pick time.
    pub picks: Vec<(Structure, f64)>,
    /// Selected view nodes (lattice masks) in pick order.
    pub views: Vec<usize>,
    /// Selected indexes `(node, key order)` in pick order.
    pub indexes: Vec<(usize, Vec<AttrId>)>,
    /// Space consumed, in tuples.
    pub space_used: u64,
}

impl GreedyResult {
    /// The selected views as attribute lists.
    pub fn view_attr_sets(&self, lattice: &Lattice) -> Vec<Vec<AttrId>> {
        self.views.iter().map(|&m| lattice.nodes[m].attrs.clone()).collect()
    }
}

/// One workload query: slice on `node` with `fixed ⊆ node` pinned.
#[derive(Clone, Copy, Debug)]
struct Query {
    node: usize,
    fixed: usize,
    weight: f64,
}

/// Runs the 1-greedy selection over `lattice` (whose node sizes must be
/// filled in) for a fact table of `fact_rows` rows.
pub fn one_greedy(
    catalog: &Catalog,
    lattice: &Lattice,
    fact_rows: u64,
    config: &GreedyConfig,
) -> GreedyResult {
    let queries = build_workload(lattice, config);
    let mut state = State {
        catalog,
        lattice,
        fact_rows: fact_rows as f64,
        views: Vec::new(),
        indexes: Vec::new(),
    };
    let mut result = GreedyResult::default();
    let mut current_cost: Vec<f64> = queries.iter().map(|q| state.query_cost(q)).collect();

    while result.picks.len() < config.max_structures {
        let mut best: Option<(Structure, f64, u64)> = None;
        // View candidates: unselected nodes (including the scalar `none`
        // node, mask 0), evaluated jointly with their best single rotation
        // index.
        for node in 0..lattice.len() {
            if state.views.contains(&node) {
                continue;
            }
            let space = lattice.nodes[node].size;
            if result.space_used.saturating_add(space) > config.space_budget {
                continue;
            }
            let benefit = state.view_benefit_with_lookahead(node, &queries, &current_cost);
            if benefit > config.min_benefit
                && best.as_ref().is_none_or(|(_, b, _)| benefit > *b)
            {
                best = Some((Structure::View { node }, benefit, space));
            }
        }
        // Index candidates: rotations over selected views.
        for &node in &state.views {
            let space = lattice.nodes[node].size;
            if result.space_used.saturating_add(space) > config.space_budget {
                continue;
            }
            for order in rotations(&lattice.nodes[node].attrs) {
                if state.indexes.iter().any(|(n, o)| *n == node && *o == order) {
                    continue;
                }
                let benefit = state.index_benefit(node, &order, &queries, &current_cost);
                if benefit > config.min_benefit
                    && best.as_ref().is_none_or(|(_, b, _)| benefit > *b)
                {
                    best = Some((Structure::Index { node, order }, benefit, space));
                }
            }
        }
        let Some((structure, benefit, space)) = best else { break };
        match &structure {
            Structure::View { node } => {
                state.views.push(*node);
                result.views.push(*node);
            }
            Structure::Index { node, order } => {
                state.indexes.push((*node, order.clone()));
                result.indexes.push((*node, order.clone()));
            }
        }
        result.space_used += space;
        result.picks.push((structure, benefit));
        for (i, q) in queries.iter().enumerate() {
            current_cost[i] = current_cost[i].min(state.query_cost(q));
        }
    }
    result
}

/// All cyclic rotations of an attribute list (the \[GHRU97\] "fat index"
/// candidates: one ordering starting with each attribute).
pub fn rotations(attrs: &[AttrId]) -> Vec<Vec<AttrId>> {
    let k = attrs.len();
    (0..k)
        .map(|r| (0..k).map(|i| attrs[(r + i) % k]).collect())
        .collect()
}

fn build_workload(lattice: &Lattice, config: &GreedyConfig) -> Vec<Query> {
    let mut queries = Vec::new();
    for node in 0..lattice.len() {
        let k = node.count_ones() as usize;
        let types = 1usize << k;
        // Equal total weight per lattice node, split across its query types
        // (the paper's generator draws views uniformly, then types uniformly).
        let mut node_queries = Vec::new();
        for fixed_bits in 0..types {
            let fixed = spread_bits(fixed_bits, node);
            if !config.include_full_view_queries && fixed == 0 {
                continue;
            }
            node_queries.push(fixed);
        }
        let w = 1.0 / node_queries.len().max(1) as f64;
        for fixed in node_queries {
            queries.push(Query { node, fixed, weight: w });
        }
    }
    queries
}

/// Spreads the low bits of `compact` onto the set bits of `mask`.
fn spread_bits(mut compact: usize, mask: usize) -> usize {
    let mut out = 0usize;
    let mut m = mask;
    while m != 0 {
        let bit = m & m.wrapping_neg();
        if compact & 1 != 0 {
            out |= bit;
        }
        compact >>= 1;
        m &= m - 1;
    }
    out
}

struct State<'a> {
    catalog: &'a Catalog,
    lattice: &'a Lattice,
    fact_rows: f64,
    views: Vec<usize>,
    indexes: Vec<(usize, Vec<AttrId>)>,
}

impl State<'_> {
    /// Cheapest way to answer `q` with the current structures.
    fn query_cost(&self, q: &Query) -> f64 {
        let mut best = self.fact_rows; // fact scan is always possible
        for &v in &self.views {
            if self.lattice.derives(q.node, v) {
                best = best.min(self.cost_via_view(q, v, None));
                for (n, order) in &self.indexes {
                    if *n == v {
                        best = best.min(self.cost_via_view(q, v, Some(order)));
                    }
                }
            }
        }
        best
    }

    /// Cost of answering `q` by scanning view `v`, optionally through an
    /// index with the given key order.
    fn cost_via_view(&self, q: &Query, v: usize, index_order: Option<&[AttrId]>) -> f64 {
        let size = self.lattice.nodes[v].size as f64;
        let Some(order) = index_order else { return size };
        let mut selectivity = 1.0f64;
        for a in order {
            let bit = match self.lattice.mask_of(std::slice::from_ref(a)) {
                Some(b) => b,
                None => break,
            };
            if q.fixed & bit != 0 {
                selectivity *= self.catalog.attr(*a).cardinality.max(1) as f64;
            } else {
                break; // prefix ends at the first non-fixed attribute
            }
        }
        (size / selectivity).max(1.0)
    }

    /// Benefit of materializing `node`, evaluated jointly with the best
    /// single rotation index on it (only the view is actually added).
    fn view_benefit_with_lookahead(
        &self,
        node: usize,
        queries: &[Query],
        current: &[f64],
    ) -> f64 {
        let orders = rotations(&self.lattice.nodes[node].attrs);
        let mut best = 0.0f64;
        // View alone...
        best = best.max(self.benefit_of(node, None, queries, current));
        // ...or view + one index.
        for order in &orders {
            best = best.max(self.benefit_of(node, Some(order), queries, current));
        }
        best
    }

    fn index_benefit(
        &self,
        node: usize,
        order: &[AttrId],
        queries: &[Query],
        current: &[f64],
    ) -> f64 {
        self.benefit_of(node, Some(order), queries, current)
    }

    fn benefit_of(
        &self,
        node: usize,
        order: Option<&[AttrId]>,
        queries: &[Query],
        current: &[f64],
    ) -> f64 {
        let mut total = 0.0;
        for (i, q) in queries.iter().enumerate() {
            if !self.lattice.derives(q.node, node) {
                continue;
            }
            let mut new_cost = self.cost_via_view(q, node, None);
            if let Some(order) = order {
                new_cost = new_cost.min(self.cost_via_view(q, node, Some(order)));
            }
            if new_cost < current[i] {
                total += q.weight * (current[i] - new_cost);
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// TPC-D SF-1 statistics (paper §3.2): 6,001,215 fact rows; measured
    /// view sizes consistent with the total of 7,110,464 view tuples.
    fn tpcd_lattice() -> (Catalog, Lattice, [AttrId; 3]) {
        let mut c = Catalog::new();
        let p = c.add_attr("partkey", 200_000);
        let s = c.add_attr("suppkey", 10_000);
        let cu = c.add_attr("custkey", 150_000);
        let mut l = Lattice::new(vec![p, s, cu]);
        let set = |l: &mut Lattice, attrs: &[AttrId], size: u64| {
            let m = l.mask_of(attrs).unwrap();
            l.set_size(m, size);
        };
        set(&mut l, &[], 1);
        set(&mut l, &[p], 200_000);
        set(&mut l, &[s], 10_000);
        set(&mut l, &[cu], 150_000);
        set(&mut l, &[p, s], 799_541);
        set(&mut l, &[p, cu], 5_993_105);
        set(&mut l, &[s, cu], 5_989_120);
        set(&mut l, &[p, s, cu], 5_950_922);
        (c, l, [p, s, cu])
    }

    #[test]
    fn rotations_shape() {
        let a = AttrId(0);
        let b = AttrId(1);
        let c = AttrId(2);
        assert_eq!(rotations(&[a, b, c]), vec![vec![a, b, c], vec![b, c, a], vec![c, a, b]]);
        assert_eq!(rotations(&[a]), vec![vec![a]]);
        assert!(rotations(&[]).is_empty());
    }

    #[test]
    fn spread_bits_maps_compact_to_mask() {
        assert_eq!(spread_bits(0b11, 0b101), 0b101);
        assert_eq!(spread_bits(0b01, 0b101), 0b001);
        assert_eq!(spread_bits(0b10, 0b101), 0b100);
        assert_eq!(spread_bits(0, 0b111), 0);
    }

    #[test]
    fn reproduces_paper_selected_sets() {
        // Paper §3: V = {psc, ps, c, s, p, none},
        //           I = {I(c,s,p), I(p,c,s), I(s,p,c)} — the three rotations
        // on the top view.
        let (c, l, [p, s, cu]) = tpcd_lattice();
        let config = GreedyConfig { max_structures: 9, ..Default::default() };
        let r = one_greedy(&c, &l, 6_001_215, &config);
        let views: std::collections::BTreeSet<usize> = r.views.iter().copied().collect();
        let expect: std::collections::BTreeSet<usize> = [
            l.mask_of(&[p, s, cu]).unwrap(),
            l.mask_of(&[p, s]).unwrap(),
            l.mask_of(&[cu]).unwrap(),
            l.mask_of(&[s]).unwrap(),
            l.mask_of(&[p]).unwrap(),
            l.mask_of(&[]).unwrap(),
        ]
        .into_iter()
        .collect();
        assert_eq!(views, expect, "selected views must match the paper's V");
        assert!(!views.contains(&l.mask_of(&[p, cu]).unwrap()), "pc must not be materialized");
        assert!(!views.contains(&l.mask_of(&[s, cu]).unwrap()), "sc must not be materialized");
        // All selected indexes sit on the top view, covering all rotations.
        let top = l.mask_of(&[p, s, cu]).unwrap();
        assert_eq!(r.indexes.len(), 3, "indexes {:?}", r.indexes);
        assert!(r.indexes.iter().all(|(n, _)| *n == top));
        let firsts: std::collections::BTreeSet<AttrId> =
            r.indexes.iter().map(|(_, o)| o[0]).collect();
        assert_eq!(firsts.len(), 3, "one rotation starting with each attribute");
    }

    #[test]
    fn budget_limits_selection() {
        let (c, l, _) = tpcd_lattice();
        let config = GreedyConfig {
            space_budget: 400_000, // can't afford any big structure
            max_structures: 20,
            ..Default::default()
        };
        let r = one_greedy(&c, &l, 6_001_215, &config);
        assert!(r.space_used <= 400_000);
        assert!(!r.views.is_empty(), "small views still fit");
        for &v in &r.views {
            assert!(l.nodes[v].size <= 400_000);
        }
    }

    #[test]
    fn zero_structures_when_budget_zero() {
        let (c, l, _) = tpcd_lattice();
        let config = GreedyConfig { space_budget: 0, ..Default::default() };
        let r = one_greedy(&c, &l, 6_001_215, &config);
        assert!(r.picks.is_empty());
    }

    #[test]
    fn benefits_are_monotonically_nonincreasing() {
        let (c, l, _) = tpcd_lattice();
        let config = GreedyConfig { max_structures: 9, ..Default::default() };
        let r = one_greedy(&c, &l, 6_001_215, &config);
        for w in r.picks.windows(2) {
            assert!(
                w[0].1 >= w[1].1 - 1e-6,
                "greedy benefits must not increase: {:?}",
                r.picks
            );
        }
    }
}
