//! The Data Cube lattice (\[HRU96\]; paper Figure 9).
//!
//! For a set of `k` base group-by attributes, the lattice has `2^k` nodes,
//! one per attribute subset; node `A` *derives from* node `B` when `A ⊆ B`.
//! The paper's TPC-D experiment uses the three-attribute lattice over
//! `{partkey, suppkey, custkey}` (8 nodes, 27 slice-query types).

use ct_common::AttrId;

/// One lattice node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatticeNode {
    /// The node's attribute set, sorted by `AttrId` (canonical form).
    pub attrs: Vec<AttrId>,
    /// Estimated or measured number of groups ("size" in \[HRU96\]).
    pub size: u64,
}

/// The full cube lattice over a base attribute set.
#[derive(Clone, Debug)]
pub struct Lattice {
    /// Base attributes, sorted.
    pub base: Vec<AttrId>,
    /// Nodes indexed by bitmask over `base` (node `m` contains attribute `i`
    /// iff bit `i` of `m` is set). `nodes[0]` is the `none` node;
    /// `nodes[2^k - 1]` is the top view.
    pub nodes: Vec<LatticeNode>,
}

impl Lattice {
    /// Builds the lattice skeleton (sizes zeroed).
    ///
    /// # Panics
    /// Panics for more than 16 base attributes (the lattice is exponential).
    pub fn new(mut base: Vec<AttrId>) -> Self {
        assert!(base.len() <= 16, "lattice over {} attrs is unreasonable", base.len());
        base.sort();
        base.dedup();
        let k = base.len();
        let nodes = (0..1usize << k)
            .map(|mask| LatticeNode { attrs: Self::attrs_of_mask(&base, mask), size: 0 })
            .collect();
        Lattice { base, nodes }
    }

    fn attrs_of_mask(base: &[AttrId], mask: usize) -> Vec<AttrId> {
        base.iter().enumerate().filter(|(i, _)| mask & (1 << i) != 0).map(|(_, &a)| a).collect()
    }

    /// Number of nodes (`2^k`).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True only for the degenerate zero-attribute lattice.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Bitmask of an attribute set, if all attributes belong to the base.
    pub fn mask_of(&self, attrs: &[AttrId]) -> Option<usize> {
        let mut mask = 0usize;
        for a in attrs {
            let i = self.base.iter().position(|b| b == a)?;
            mask |= 1 << i;
        }
        Some(mask)
    }

    /// Node index of the top view (all attributes).
    pub fn top(&self) -> usize {
        self.nodes.len() - 1
    }

    /// True if node `child` derives from node `parent` (subset relation).
    pub fn derives(&self, child: usize, parent: usize) -> bool {
        child & parent == child
    }

    /// Immediate parents of a node (one more attribute).
    pub fn parents(&self, node: usize) -> Vec<usize> {
        (0..self.base.len())
            .filter(|i| node & (1 << i) == 0)
            .map(|i| node | (1 << i))
            .collect()
    }

    /// All ancestors (strict supersets), any distance.
    pub fn ancestors(&self, node: usize) -> Vec<usize> {
        (0..self.nodes.len()).filter(|&m| m != node && self.derives(node, m)).collect()
    }

    /// Number of slice-query types over the whole lattice: `Σ 2^|W|` over
    /// all nodes including `none` — the paper's "total number of slice
    /// queries is 27" for 3 dimensions (`8 + 3·4 + 3·2 + 1`).
    pub fn total_query_types(&self) -> usize {
        (0..self.nodes.len()).map(|m| 1usize << (m.count_ones() as usize)).sum()
    }

    /// Sets a node's size.
    pub fn set_size(&mut self, node: usize, size: u64) {
        self.nodes[node].size = size;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l3() -> Lattice {
        Lattice::new(vec![AttrId(0), AttrId(1), AttrId(2)])
    }

    #[test]
    fn three_dim_lattice_matches_paper_figure_9() {
        let l = l3();
        assert_eq!(l.len(), 8);
        assert_eq!(l.nodes[0].attrs, vec![]);
        assert_eq!(l.nodes[7].attrs, vec![AttrId(0), AttrId(1), AttrId(2)]);
        assert_eq!(l.top(), 7);
        // "the total number of slice queries is 27" (§3.1)
        assert_eq!(l.total_query_types(), 27);
    }

    #[test]
    fn derives_is_subset() {
        let l = l3();
        let ps = l.mask_of(&[AttrId(0), AttrId(1)]).unwrap();
        let p = l.mask_of(&[AttrId(0)]).unwrap();
        let c = l.mask_of(&[AttrId(2)]).unwrap();
        assert!(l.derives(p, ps));
        assert!(l.derives(p, l.top()));
        assert!(!l.derives(ps, p));
        assert!(!l.derives(c, ps));
        assert!(l.derives(0, c), "none derives from everything");
    }

    #[test]
    fn parents_and_ancestors() {
        let l = l3();
        let p = l.mask_of(&[AttrId(0)]).unwrap();
        let parents = l.parents(p);
        assert_eq!(parents.len(), 2);
        assert!(parents.contains(&l.mask_of(&[AttrId(0), AttrId(1)]).unwrap()));
        assert!(parents.contains(&l.mask_of(&[AttrId(0), AttrId(2)]).unwrap()));
        assert_eq!(l.ancestors(p).len(), 3);
        assert_eq!(l.ancestors(l.top()), vec![]);
        assert_eq!(l.parents(l.top()), vec![]);
    }

    #[test]
    fn mask_of_unknown_attr_is_none() {
        let l = l3();
        assert_eq!(l.mask_of(&[AttrId(9)]), None);
        assert_eq!(l.mask_of(&[]), Some(0));
    }

    #[test]
    fn base_is_canonicalized() {
        let l = Lattice::new(vec![AttrId(2), AttrId(0), AttrId(2), AttrId(1)]);
        assert_eq!(l.base, vec![AttrId(0), AttrId(1), AttrId(2)]);
        assert_eq!(l.len(), 8);
    }
}
