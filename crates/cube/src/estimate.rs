//! View-size estimation for the selection algorithm.
//!
//! The number of groups of a view is the number of distinct key combinations
//! in the fact table. Without data we use Cardenas' formula
//! `D · (1 − e^(−n/D))` over the product of attribute cardinalities; where
//! key columns are *correlated* (TPC-D's part–supplier relationship gives
//! `|{partkey,suppkey}| = 4·|part|`, not `|part|·|supp|`) the caller
//! registers a domain override. Measured sizes from an actual relation are
//! also supported.

use crate::relation::Relation;
use ct_common::{AttrId, Catalog};
use std::collections::{BTreeSet, HashMap, HashSet};

/// Estimates group counts for arbitrary attribute sets.
#[derive(Clone, Debug)]
pub struct SizeEstimator {
    cards: HashMap<AttrId, u64>,
    fact_rows: u64,
    overrides: HashMap<BTreeSet<AttrId>, u64>,
}

impl SizeEstimator {
    /// An estimator over the catalog's attribute cardinalities.
    pub fn new(catalog: &Catalog, fact_rows: u64) -> Self {
        let mut cards = HashMap::new();
        for i in 0..catalog.attr_count() {
            let id = AttrId(i as u16);
            cards.insert(id, catalog.attr(id).cardinality);
        }
        SizeEstimator { cards, fact_rows, overrides: HashMap::new() }
    }

    /// Registers a correlated-domain override: the joint domain of exactly
    /// this attribute set is `domain` (not the cardinality product). The
    /// override also caps any superset's domain product.
    pub fn add_domain_override(&mut self, attrs: &[AttrId], domain: u64) {
        self.overrides.insert(attrs.iter().copied().collect(), domain);
    }

    /// Cardenas' estimate of distinct values: `D(1 − e^(−n/D))`.
    pub fn cardenas(domain: f64, n: f64) -> f64 {
        if domain <= 0.0 {
            return 0.0;
        }
        domain * (1.0 - (-n / domain).exp())
    }

    /// The joint key domain of an attribute set, honouring overrides.
    fn domain(&self, attrs: &[AttrId]) -> f64 {
        let set: BTreeSet<AttrId> = attrs.iter().copied().collect();
        if let Some(&d) = self.overrides.get(&set) {
            return d as f64;
        }
        // Apply the best decomposition: any override on a subset replaces
        // that subset's cardinality product.
        let mut best: f64 = attrs
            .iter()
            .map(|a| *self.cards.get(a).unwrap_or(&1) as f64)
            .product();
        for (ov_set, &d) in &self.overrides {
            if ov_set.is_subset(&set) && !ov_set.is_empty() {
                let rest: f64 = set
                    .iter()
                    .filter(|a| !ov_set.contains(a))
                    .map(|a| *self.cards.get(a).unwrap_or(&1) as f64)
                    .product();
                best = best.min(d as f64 * rest);
            }
        }
        best
    }

    /// Estimated group count of the view over `attrs`.
    pub fn estimate(&self, attrs: &[AttrId]) -> u64 {
        if attrs.is_empty() {
            return 1;
        }
        Self::cardenas(self.domain(attrs), self.fact_rows as f64).round() as u64
    }
}

/// Exact group count of `attrs` measured from a relation (used when the data
/// is in hand — the honest input to the selection algorithm at benchmark
/// scale).
pub fn measure_size(catalog: &Catalog, rel: &Relation, attrs: &[AttrId]) -> u64 {
    if attrs.is_empty() {
        return if rel.is_empty() { 0 } else { 1 };
    }
    let resolvers: Vec<(usize, Vec<&ct_common::Hierarchy>)> = attrs
        .iter()
        .map(|&t| {
            let (src, path) = catalog
                .derivation_path(&rel.attrs, t)
                .expect("attribute not derivable from relation");
            (rel.col_of(src).unwrap(), path)
        })
        .collect();
    let mut seen: HashSet<Vec<u64>> = HashSet::new();
    for i in 0..rel.len() {
        let key = rel.key(i);
        let mut k = Vec::with_capacity(attrs.len());
        for (col, path) in &resolvers {
            let mut v = key[*col];
            for h in path {
                v = h.apply(v);
            }
            k.push(v);
        }
        seen.insert(k);
    }
    seen.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_common::Catalog;

    fn catalog() -> (Catalog, AttrId, AttrId, AttrId) {
        let mut c = Catalog::new();
        let p = c.add_attr("partkey", 200_000);
        let s = c.add_attr("suppkey", 10_000);
        let cu = c.add_attr("custkey", 150_000);
        (c, p, s, cu)
    }

    #[test]
    fn cardenas_limits() {
        // Small domain saturates; huge domain approaches n.
        assert!((SizeEstimator::cardenas(10.0, 1e9) - 10.0).abs() < 1e-6);
        let near_n = SizeEstimator::cardenas(1e15, 1e6);
        assert!((near_n - 1e6).abs() / 1e6 < 1e-3);
        assert_eq!(SizeEstimator::cardenas(0.0, 100.0), 0.0);
    }

    #[test]
    fn tpcd_shapes_without_override() {
        let (c, p, s, cu) = catalog();
        let est = SizeEstimator::new(&c, 6_001_215);
        assert_eq!(est.estimate(&[]), 1);
        // Single attributes saturate to their cardinality.
        assert!(est.estimate(&[s]) >= 9_990);
        assert!(est.estimate(&[cu]) >= 149_000);
        // p×c is astronomically larger than n ⇒ nearly n.
        let pc = est.estimate(&[p, cu]);
        assert!(pc > 5_900_000 && pc <= 6_001_215);
    }

    #[test]
    fn override_models_partsupp_correlation() {
        let (c, p, s, cu) = catalog();
        let mut est = SizeEstimator::new(&c, 6_001_215);
        // TPC-D: each part has 4 suppliers ⇒ |{p,s}| domain is 800k.
        est.add_domain_override(&[p, s], 800_000);
        let ps = est.estimate(&[p, s]);
        assert!((780_000..=800_000).contains(&ps), "got {ps}");
        // The override propagates to the superset {p,s,c}.
        let psc = est.estimate(&[p, s, cu]);
        assert!(psc < 6_001_215 && psc > 5_800_000, "got {psc}");
    }

    #[test]
    fn measured_sizes_match_construction() {
        let (c, p, s, cu) = catalog();
        let mut keys = Vec::new();
        let mut measures = Vec::new();
        for i in 0..100u64 {
            keys.extend_from_slice(&[i % 10 + 1, i % 4 + 1, i % 25 + 1]);
            measures.push(1);
        }
        let fact = Relation::from_fact(vec![p, s, cu], keys, &measures);
        assert_eq!(measure_size(&c, &fact, &[p]), 10);
        assert_eq!(measure_size(&c, &fact, &[s]), 4);
        assert_eq!(measure_size(&c, &fact, &[cu]), 25);
        assert_eq!(measure_size(&c, &fact, &[p, s]), 20); // lcm(10,4)=20 combos
        assert_eq!(measure_size(&c, &fact, &[]), 1);
        let empty = Relation::empty(vec![p]);
        assert_eq!(measure_size(&c, &empty, &[]), 0);
    }
}
