//! Smallest-parent computation planning (paper Figure 10; \[AAD+96\]).
//!
//! Computing every view directly from the fact table wastes work: the paper
//! computes "each view from the smallest parent". Given the requested views
//! with size estimates, the planner orders them by decreasing size and
//! assigns each the cheapest already-available source (the fact table or a
//! previously planned view) that *derives* it.

use ct_common::{Catalog, CtError, Result, ViewDef};

/// Where a view's input comes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanSource {
    /// Compute from the raw fact relation.
    Fact,
    /// Compute from a previously computed view (index into the request list).
    View(usize),
}

/// One computation step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanStep {
    /// Index of the view (into the request list) being computed.
    pub target: usize,
    /// Input relation.
    pub source: PlanSource,
}

/// An ordered computation plan: executing steps in order guarantees every
/// `View(i)` source has already been produced.
#[derive(Clone, Debug, Default)]
pub struct ComputePlan {
    /// Steps in execution order.
    pub steps: Vec<PlanStep>,
}

/// Plans the computation of `views` given per-view size estimates (same
/// indexing) and the fact-table size.
///
/// # Errors
/// [`CtError::Unsupported`] if some view cannot be derived from the fact
/// schema at all.
pub fn plan_computation(
    catalog: &Catalog,
    fact_attrs: &[ct_common::AttrId],
    fact_size: u64,
    views: &[ViewDef],
    sizes: &[u64],
) -> Result<ComputePlan> {
    assert_eq!(views.len(), sizes.len(), "one size estimate per view");
    // Largest views first: they can only come from the fact table or other
    // large views, and once computed they become cheap sources for the rest.
    let mut order: Vec<usize> = (0..views.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse((sizes[i], views[i].arity())));

    let mut steps = Vec::with_capacity(views.len());
    let mut available: Vec<usize> = Vec::new(); // indices already planned
    for &i in &order {
        let target = &views[i].projection;
        if !catalog.derivable_from(target, fact_attrs) {
            return Err(CtError::unsupported(format!(
                "view {} is not derivable from the fact table",
                views[i].display_name(catalog)
            )));
        }
        let mut best = (fact_size, PlanSource::Fact);
        for &j in &available {
            if sizes[j] < best.0 && catalog.derivable_from(target, &views[j].projection) {
                best = (sizes[j], PlanSource::View(j));
            }
        }
        steps.push(PlanStep { target: i, source: best.1 });
        available.push(i);
    }
    Ok(ComputePlan { steps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_common::{AggFn, AttrId, Catalog};

    fn setup() -> (Catalog, [AttrId; 3]) {
        let mut c = Catalog::new();
        let p = c.add_attr("partkey", 200_000);
        let s = c.add_attr("suppkey", 10_000);
        let cu = c.add_attr("custkey", 150_000);
        (c, [p, s, cu])
    }

    #[test]
    fn paper_dependency_graph() {
        // Paper Figure 10: psc from fact; ps from psc; p from ps; s from ps;
        // c from psc; none from the smallest single-attr view.
        let (c, [p, s, cu]) = setup();
        let views = vec![
            ViewDef::new(0, vec![p, s, cu], AggFn::Sum),
            ViewDef::new(1, vec![p, s], AggFn::Sum),
            ViewDef::new(2, vec![cu], AggFn::Sum),
            ViewDef::new(3, vec![s], AggFn::Sum),
            ViewDef::new(4, vec![p], AggFn::Sum),
            ViewDef::new(5, vec![], AggFn::Sum),
        ];
        let sizes = vec![5_970_000, 800_000, 150_000, 10_000, 200_000, 1];
        let plan =
            plan_computation(&c, &[p, s, cu], 6_001_215, &views, &sizes).unwrap();
        assert_eq!(plan.steps.len(), 6);
        let source_of = |target: usize| {
            plan.steps.iter().find(|st| st.target == target).unwrap().source
        };
        assert_eq!(source_of(0), PlanSource::Fact);
        assert_eq!(source_of(1), PlanSource::View(0), "ps from psc");
        assert_eq!(source_of(2), PlanSource::View(0), "c only derivable from psc");
        assert_eq!(source_of(4), PlanSource::View(1), "p from ps");
        assert_eq!(source_of(3), PlanSource::View(1), "s from ps");
        assert_eq!(source_of(5), PlanSource::View(3), "none from smallest view");
        // Execution order respects dependencies.
        let mut produced = Vec::new();
        for st in &plan.steps {
            if let PlanSource::View(j) = st.source {
                assert!(produced.contains(&j), "source {j} not yet produced");
            }
            produced.push(st.target);
        }
    }

    #[test]
    fn underivable_view_is_rejected() {
        let (mut c, [p, s, _]) = setup();
        let other = c.add_attr("orderdate", 2_000);
        let views = vec![ViewDef::new(0, vec![other], AggFn::Sum)];
        assert!(plan_computation(&c, &[p, s], 100, &views, &[10]).is_err());
    }

    #[test]
    fn empty_request_plans_nothing() {
        let (c, [p, s, cu]) = setup();
        let plan = plan_computation(&c, &[p, s, cu], 100, &[], &[]).unwrap();
        assert!(plan.steps.is_empty());
    }
}
