//! Sort-based view computation (\[AAD+96\]; paper §3.2).
//!
//! A target view is computed from a *source* relation (the fact table or any
//! parent view) in three steps:
//!
//! 1. **translate** — each target attribute is either projected from the
//!    source or rolled up through a dimension hierarchy (e.g.
//!    `partkey → part.brand`);
//! 2. **sort** — rows are sorted on the requested column order using the
//!    external merge sorter (sequential spill I/O);
//! 3. **aggregate** — adjacent rows with equal keys have their aggregate
//!    states merged.
//!
//! The *same* sort produces the view and the load order of the physical
//! structure, which is the paper's argument that the Cubetree preprocessing
//! sort "can be hardly considered as an overhead".

use crate::relation::Relation;
use ct_common::{AttrId, Catalog, CtError, Result};
use ct_storage::{ExternalSorter, StorageEnv};

/// Computes the view grouping by `target_attrs` from `source`, returning it
/// sorted by `sort_cols` (a permutation of the target column indices).
///
/// # Errors
/// * [`CtError::Unsupported`] if a target attribute is not derivable from the
///   source schema.
/// * [`CtError::InvalidArgument`] if `sort_cols` is not a permutation of
///   `0..target_attrs.len()`.
pub fn compute_view(
    env: &StorageEnv,
    catalog: &Catalog,
    source: &Relation,
    target_attrs: &[AttrId],
    sort_cols: &[usize],
) -> Result<Relation> {
    let arity = target_attrs.len();
    validate_permutation(sort_cols, arity)?;
    // Resolve each target attribute against the source schema once.
    let mut resolvers = Vec::with_capacity(arity);
    for &t in target_attrs {
        let (src_attr, path) = catalog.derivation_path(&source.attrs, t).ok_or_else(|| {
            CtError::unsupported(format!(
                "attribute {} is not derivable from the source projection",
                catalog.attr(t).name
            ))
        })?;
        let col = source
            .col_of(src_attr)
            .expect("derivation source attribute must be in the schema");
        resolvers.push((col, path));
    }

    // Record layout: [target keys (arity)] ++ [full state (4 words)].
    let width = arity + 4;
    let mut sorter = ExternalSorter::new(env, width, sort_cols.to_vec());
    let mut rec = vec![0u64; width];
    for i in 0..source.len() {
        let key = source.key(i);
        for (c, (col, path)) in resolvers.iter().enumerate() {
            let mut v = key[*col];
            for h in path {
                v = h.apply(v);
            }
            rec[c] = v;
        }
        rec[arity..].copy_from_slice(&Relation::state_to_words(&source.states[i]));
        sorter.push(&rec)?;
    }
    env.stats().add_tuples(source.len() as u64);

    // Stream out, merging adjacent equal keys.
    let mut out = Relation::empty(target_attrs.to_vec());
    let mut stream = sorter.finish()?;
    let mut current: Option<(Vec<u64>, ct_common::AggState)> = None;
    while let Some(r) = stream.next_record()? {
        let key = &r[..arity];
        let state = Relation::words_to_state(&r[arity..]);
        match &mut current {
            Some((k, s)) if k.as_slice() == key => s.merge(&state),
            _ => {
                if let Some((k, s)) = current.take() {
                    out.push(&k, s);
                }
                current = Some((key.to_vec(), state));
            }
        }
    }
    if let Some((k, s)) = current.take() {
        out.push(&k, s);
    }
    env.stats().add_tuples(out.len() as u64);
    Ok(out)
}

fn validate_permutation(sort_cols: &[usize], arity: usize) -> Result<()> {
    if sort_cols.len() != arity {
        return Err(CtError::invalid("sort order must cover all target columns"));
    }
    let mut seen = vec![false; arity];
    for &c in sort_cols {
        if c >= arity || seen[c] {
            return Err(CtError::invalid("sort order must be a permutation of target columns"));
        }
        seen[c] = true;
    }
    Ok(())
}

/// The packing sort order for a view of arity `k`: reversed projection
/// (`x_k, …, x_1` — paper §2.3).
pub fn packed_sort_cols(arity: usize) -> Vec<usize> {
    (0..arity).rev().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's running warehouse: fact over partkey/suppkey/custkey with
    /// a brand hierarchy on part.
    fn setup() -> (StorageEnv, Catalog, Relation, [AttrId; 4]) {
        let env = StorageEnv::new("compute-test").unwrap();
        let mut c = Catalog::new();
        let p = c.add_attr("partkey", 6);
        let s = c.add_attr("suppkey", 3);
        let cu = c.add_attr("custkey", 3);
        let brand = c.add_attr("part.brand", 2);
        c.add_hierarchy(p, brand, vec![0, 1, 1, 1, 2, 2, 2]);
        // Fact rows: (p, s, c, quantity)
        let rows: Vec<(u64, u64, u64, i64)> = vec![
            (1, 1, 1, 10),
            (1, 1, 1, 5), // same group as above
            (2, 1, 3, 7),
            (4, 2, 1, 3),
            (5, 2, 1, 2),
            (6, 3, 3, 8),
            (1, 2, 2, 4),
        ];
        let mut keys = Vec::new();
        let mut measures = Vec::new();
        for (a, b, d, q) in rows {
            keys.extend_from_slice(&[a, b, d]);
            measures.push(q);
        }
        let fact = Relation::from_fact(vec![p, s, cu], keys, &measures);
        (env, c, fact, [p, s, cu, brand])
    }

    #[test]
    fn top_view_groups_duplicates() {
        let (env, c, fact, [p, s, cu, _]) = setup();
        let v = compute_view(&env, &c, &fact, &[p, s, cu], &[2, 1, 0]).unwrap();
        assert_eq!(v.len(), 6, "the two (1,1,1) rows must merge");
        // Sorted by (custkey, suppkey, partkey).
        assert_eq!(v.key(0), &[1, 1, 1]);
        assert_eq!(v.states[0].sum, 15);
        assert_eq!(v.states[0].count, 2);
        let last = v.key(v.len() - 1);
        assert_eq!(last[2], 3, "largest custkey last");
    }

    #[test]
    fn single_attr_view_from_fact() {
        let (env, c, fact, [p, _, _, _]) = setup();
        let v = compute_view(&env, &c, &fact, &[p], &[0]).unwrap();
        let keys: Vec<u64> = (0..v.len()).map(|i| v.key(i)[0]).collect();
        assert_eq!(keys, vec![1, 2, 4, 5, 6]);
        assert_eq!(v.states[0].sum, 19); // part 1: 10+5+4
    }

    #[test]
    fn view_from_parent_equals_view_from_fact() {
        let (env, c, fact, [p, s, cu, _]) = setup();
        let top = compute_view(&env, &c, &fact, &[p, s, cu], &[2, 1, 0]).unwrap();
        let from_fact = compute_view(&env, &c, &fact, &[s], &[0]).unwrap();
        let from_parent = compute_view(&env, &c, &top, &[s], &[0]).unwrap();
        assert_eq!(from_fact.keys, from_parent.keys);
        for i in 0..from_fact.len() {
            assert_eq!(from_fact.states[i], from_parent.states[i]);
        }
    }

    #[test]
    fn hierarchy_rollup_through_brand() {
        let (env, c, fact, [_, _, _, brand]) = setup();
        let v = compute_view(&env, &c, &fact, &[brand], &[0]).unwrap();
        assert_eq!(v.len(), 2);
        // Brand 1 = parts 1-3: 10+5+7+4 = 26; brand 2 = parts 4-6: 3+2+8 = 13.
        assert_eq!(v.key(0), &[1]);
        assert_eq!(v.states[0].sum, 26);
        assert_eq!(v.key(1), &[2]);
        assert_eq!(v.states[1].sum, 13);
    }

    #[test]
    fn scalar_none_view() {
        let (env, c, fact, _) = setup();
        let v = compute_view(&env, &c, &fact, &[], &[]).unwrap();
        assert_eq!(v.len(), 1);
        assert_eq!(v.states[0].sum, 39);
        assert_eq!(v.states[0].count, 7);
    }

    #[test]
    fn underivable_target_errors() {
        let (env, c, fact, [p, _, _, brand]) = setup();
        let brand_view = compute_view(&env, &c, &fact, &[brand], &[0]).unwrap();
        // partkey cannot be derived back from brand.
        assert!(compute_view(&env, &c, &brand_view, &[p], &[0]).is_err());
    }

    #[test]
    fn invalid_sort_orders_rejected() {
        let (env, c, fact, [p, s, _, _]) = setup();
        assert!(compute_view(&env, &c, &fact, &[p, s], &[0]).is_err());
        assert!(compute_view(&env, &c, &fact, &[p, s], &[0, 0]).is_err());
        assert!(compute_view(&env, &c, &fact, &[p, s], &[0, 2]).is_err());
    }

    #[test]
    fn packed_sort_cols_reverse() {
        assert_eq!(packed_sort_cols(3), vec![2, 1, 0]);
        assert_eq!(packed_sort_cols(0), Vec::<usize>::new());
    }

    #[test]
    fn counts_roll_up_correctly() {
        // COUNT at a coarse node must equal the number of *fact rows*, not
        // the number of parent groups — the classic count-of-counts trap.
        let (env, c, fact, [p, s, cu, _]) = setup();
        let top = compute_view(&env, &c, &fact, &[p, s, cu], &[2, 1, 0]).unwrap();
        let none = compute_view(&env, &c, &top, &[], &[]).unwrap();
        assert_eq!(none.states[0].count, 7);
        assert_eq!(none.states[0].min, 2);
        assert_eq!(none.states[0].max, 10);
    }

    #[test]
    fn large_input_spills_and_stays_correct() {
        let (env, c, _, [p, s, cu, _]) = setup();
        // 60k fact rows over a 50x20x30 key space.
        let n = 60_000u64;
        let mut keys = Vec::with_capacity(n as usize * 3);
        let mut measures = Vec::with_capacity(n as usize);
        let mut x = 12345u64;
        for _ in 0..n {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            keys.push(x % 50 + 1);
            keys.push((x >> 8) % 20 + 1);
            keys.push((x >> 16) % 30 + 1);
            measures.push(((x >> 24) % 100) as i64);
        }
        let expected_total: i64 = measures.iter().sum();
        let fact = Relation::from_fact(vec![p, s, cu], keys, &measures);
        let v = compute_view(&env, &c, &fact, &[p, s, cu], &[2, 1, 0]).unwrap();
        assert!(v.len() <= 50 * 20 * 30);
        let total: i64 = v.states.iter().map(|st| st.sum).sum();
        let count: i64 = v.states.iter().map(|st| st.count).sum();
        assert_eq!(total, expected_total);
        assert_eq!(count, n as i64);
        // Keys strictly ascending in (c, s, p) order.
        for i in 1..v.len() {
            let (a, b) = (v.key(i - 1), v.key(i));
            assert!((a[2], a[1], a[0]) < (b[2], b[1], b[0]));
        }
    }

    #[test]
    fn empty_source_gives_empty_view() {
        let (env, c, _, [p, s, _, _]) = setup();
        let empty = Relation::empty(vec![p, s]);
        let v = compute_view(&env, &c, &empty, &[p], &[0]).unwrap();
        assert!(v.is_empty());
        let none = compute_view(&env, &c, &empty, &[], &[]).unwrap();
        assert!(none.is_empty(), "a none view over zero rows has zero rows");
    }
}
