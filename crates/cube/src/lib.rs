//! # ct-cube — Data Cube machinery
//!
//! Everything between the raw fact table and the physical storage of the
//! materialized views:
//!
//! * [`relation`] — the in-memory columnar form of a (partial) aggregate
//!   view, with mergeable aggregate states.
//! * [`lattice`] — the Data Cube lattice (\[HRU96\], paper Figure 9) and the
//!   *derives-from* relation ([MQM97, GHRU97], paper Figure 10).
//! * [`compute`] — sort-based view computation in the style of \[AAD+96\]: a
//!   view is computed by translating, sorting (externally when large) and
//!   aggregating a *parent* relation, not necessarily the fact table.
//! * [`plan`] — the smallest-parent computation plan over a requested view
//!   set (the dependency graph of paper Figure 10).
//! * [`estimate`] — view-size estimation (Cardenas' formula with correlation
//!   overrides) for the selection algorithm.
//! * [`greedy`] — the 1-greedy view **and** index selection of \[GHRU97\] that
//!   the paper uses to pick its materialized set (paper §3: `V = {psc, ps,
//!   c, s, p, none}`, `I = {Icsp, Ipcs, Ispc}`).

pub mod compute;
pub mod estimate;
pub mod greedy;
pub mod lattice;
pub mod plan;
pub mod relation;

pub use compute::compute_view;
pub use estimate::SizeEstimator;
pub use greedy::{one_greedy, GreedyConfig, GreedyResult, Structure};
pub use lattice::Lattice;
pub use plan::{plan_computation, ComputePlan, PlanSource, PlanStep};
pub use relation::Relation;
