//! # ct-btree — B+-trees over the paged storage layer
//!
//! The indexing half of the paper's *conventional* configuration: the
//! straight-forward relational materialization stores each ROLAP view in a
//! heap table and indexes it with B-trees (paper §1, §3). This crate
//! implements a disk-resident B+-tree with:
//!
//! * composite fixed-arity `u64` keys (the concatenated group-by attributes,
//!   e.g. `I{custkey,suppkey,partkey}` from the paper's selected index set);
//! * fixed-width `u64`-word payloads (heap RIDs for secondary indexes, or
//!   aggregate words when used as a primary structure);
//! * point lookup, ordered range/prefix scans via leaf chaining;
//! * one-at-a-time inserts and in-place payload updates (the operations that
//!   make the conventional refresh path slow — paper §3.4);
//! * sequential bulk loading from sorted input for the initial build.

pub mod node;
pub mod tree;

pub use tree::BTree;
