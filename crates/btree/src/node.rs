//! On-page node layouts and their in-memory decoded forms.
//!
//! Structural mutations (insert, split) decode a node into a small vector
//! form, edit it, and re-encode. A page holds at most a few hundred entries,
//! so the copies are bounded and the logic stays obviously correct.
//!
//! Layouts (all little-endian):
//!
//! ```text
//! meta page (page 0):
//!   0  u32  magic
//!   4  u16  key_len (words)      6  u16  payload_len (words)
//!   8  u64  root page id        16  u32  height (1 = root is a leaf)
//!   24 u64  entry count
//!
//! leaf page:
//!   0  u8   tag = 1              2  u16  entry count
//!   8  u64  next leaf page id (u64::MAX = none)
//!   16 ..   entries: key_len + payload_len words each
//!
//! internal page:
//!   0  u8   tag = 2              2  u16  entry count (= #separators)
//!   16 u64  child[0]
//!   24 ..   entries: separator key (key_len words) + child page id
//! ```

use ct_common::{CtError, Result};
use ct_storage::{Page, PAGE_SIZE};

/// Magic number identifying a B+-tree meta page.
pub const MAGIC: u32 = 0x4254_5245; // "BTRE"
/// Leaf node tag.
pub const TAG_LEAF: u8 = 1;
/// Internal node tag.
pub const TAG_INTERNAL: u8 = 2;
/// Byte size of the node header.
pub const HEADER: usize = 16;
/// "No next leaf" sentinel.
pub const NO_LEAF: u64 = u64::MAX;

/// Maximum leaf entries for a key/payload geometry.
pub fn leaf_capacity(key_len: usize, pay_len: usize) -> usize {
    (PAGE_SIZE - HEADER) / ((key_len + pay_len) * 8)
}

/// Maximum separators for an internal node of a key geometry.
pub fn internal_capacity(key_len: usize) -> usize {
    (PAGE_SIZE - HEADER - 8) / ((key_len + 1) * 8)
}

/// Decoded leaf node.
#[derive(Debug, Clone, PartialEq)]
pub struct LeafNode {
    /// Flattened keys, `key_len` words per entry, sorted ascending.
    pub keys: Vec<u64>,
    /// Flattened payloads, `pay_len` words per entry.
    pub pays: Vec<u64>,
    /// Right-sibling page id or [`NO_LEAF`].
    pub next: u64,
}

impl LeafNode {
    /// An empty leaf.
    pub fn new() -> Self {
        LeafNode { keys: Vec::new(), pays: Vec::new(), next: NO_LEAF }
    }

    /// Number of entries.
    pub fn len(&self, key_len: usize) -> usize {
        self.keys.len() / key_len.max(1)
    }

    /// True if the leaf holds no entries.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Key of entry `i`.
    pub fn key(&self, i: usize, key_len: usize) -> &[u64] {
        &self.keys[i * key_len..(i + 1) * key_len]
    }

    /// Payload of entry `i`.
    pub fn pay(&self, i: usize, pay_len: usize) -> &[u64] {
        &self.pays[i * pay_len..(i + 1) * pay_len]
    }

    /// Binary search for `key`; `Ok(i)` if present, `Err(i)` = insert slot.
    pub fn search(&self, key: &[u64], key_len: usize) -> std::result::Result<usize, usize> {
        let n = self.len(key_len);
        let mut lo = 0usize;
        let mut hi = n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            match self.key(mid, key_len).cmp(key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok(mid),
            }
        }
        Err(lo)
    }

    /// Inserts an entry at slot `i`.
    pub fn insert_at(&mut self, i: usize, key: &[u64], pay: &[u64], key_len: usize, pay_len: usize) {
        let kpos = i * key_len;
        let ppos = i * pay_len;
        self.keys.splice(kpos..kpos, key.iter().copied());
        self.pays.splice(ppos..ppos, pay.iter().copied());
    }

    /// Splits off the upper half into a new right leaf; returns it and the
    /// separator (the right leaf's first key).
    pub fn split(&mut self, key_len: usize, pay_len: usize) -> (LeafNode, Vec<u64>) {
        let n = self.len(key_len);
        let mid = n / 2;
        let right = LeafNode {
            keys: self.keys.split_off(mid * key_len),
            pays: self.pays.split_off(mid * pay_len),
            next: self.next,
        };
        let sep = right.key(0, key_len).to_vec();
        (right, sep)
    }

    /// Decodes a leaf from a page.
    pub fn read(page: &Page, key_len: usize, pay_len: usize) -> Result<Self> {
        if page.bytes()[0] != TAG_LEAF {
            return Err(CtError::corrupt("expected leaf node"));
        }
        let n = page.get_u16(2) as usize;
        let next = page.get_u64(8);
        let mut keys = vec![0u64; n * key_len];
        let mut pays = vec![0u64; n * pay_len];
        let stride = (key_len + pay_len) * 8;
        for i in 0..n {
            let off = HEADER + i * stride;
            page.get_u64s(off, &mut keys[i * key_len..(i + 1) * key_len]);
            page.get_u64s(off + key_len * 8, &mut pays[i * pay_len..(i + 1) * pay_len]);
        }
        Ok(LeafNode { keys, pays, next })
    }

    /// Encodes the leaf into a page.
    pub fn write(&self, page: &mut Page, key_len: usize, pay_len: usize) {
        page.clear();
        page.bytes_mut()[0] = TAG_LEAF;
        let n = self.len(key_len);
        page.put_u16(2, n as u16);
        page.put_u64(8, self.next);
        let stride = (key_len + pay_len) * 8;
        for i in 0..n {
            let off = HEADER + i * stride;
            page.put_u64s(off, self.key(i, key_len));
            page.put_u64s(off + key_len * 8, self.pay(i, pay_len));
        }
    }
}

impl Default for LeafNode {
    fn default() -> Self {
        LeafNode::new()
    }
}

/// Decoded internal node: `children.len() == seps.len()/key_len + 1`.
#[derive(Debug, Clone, PartialEq)]
pub struct InternalNode {
    /// Flattened separator keys; keys `>= seps[i]` route right of child `i`.
    pub seps: Vec<u64>,
    /// Child page ids.
    pub children: Vec<u64>,
}

impl InternalNode {
    /// A node with a single child and no separators.
    pub fn new(first_child: u64) -> Self {
        InternalNode { seps: Vec::new(), children: vec![first_child] }
    }

    /// Number of separators.
    pub fn len(&self, key_len: usize) -> usize {
        self.seps.len() / key_len.max(1)
    }

    /// Separator `i`.
    pub fn sep(&self, i: usize, key_len: usize) -> &[u64] {
        &self.seps[i * key_len..(i + 1) * key_len]
    }

    /// Index of the child to follow for `key`: the number of separators
    /// `<= key`.
    pub fn route(&self, key: &[u64], key_len: usize) -> usize {
        let n = self.len(key_len);
        let mut lo = 0usize;
        let mut hi = n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.sep(mid, key_len) <= key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Inserts separator/child after routing slot `i` (the result of a child
    /// split at position `i`).
    pub fn insert_at(&mut self, i: usize, sep: &[u64], child: u64, key_len: usize) {
        let spos = i * key_len;
        self.seps.splice(spos..spos, sep.iter().copied());
        self.children.insert(i + 1, child);
    }

    /// Splits the node: upper half moves to a new right node; the middle
    /// separator is *promoted* (returned, not kept in either node).
    pub fn split(&mut self, key_len: usize) -> (InternalNode, Vec<u64>) {
        let n = self.len(key_len);
        let mid = n / 2;
        let promoted = self.sep(mid, key_len).to_vec();
        let right = InternalNode {
            seps: self.seps.split_off((mid + 1) * key_len),
            children: self.children.split_off(mid + 1),
        };
        self.seps.truncate(mid * key_len);
        (right, promoted)
    }

    /// Decodes an internal node from a page.
    pub fn read(page: &Page, key_len: usize) -> Result<Self> {
        if page.bytes()[0] != TAG_INTERNAL {
            return Err(CtError::corrupt("expected internal node"));
        }
        let n = page.get_u16(2) as usize;
        let mut children = Vec::with_capacity(n + 1);
        children.push(page.get_u64(HEADER));
        let mut seps = vec![0u64; n * key_len];
        let stride = (key_len + 1) * 8;
        for i in 0..n {
            let off = HEADER + 8 + i * stride;
            page.get_u64s(off, &mut seps[i * key_len..(i + 1) * key_len]);
            children.push(page.get_u64(off + key_len * 8));
        }
        Ok(InternalNode { seps, children })
    }

    /// Encodes the internal node into a page.
    pub fn write(&self, page: &mut Page, key_len: usize) {
        page.clear();
        page.bytes_mut()[0] = TAG_INTERNAL;
        let n = self.len(key_len);
        page.put_u16(2, n as u16);
        page.put_u64(HEADER, self.children[0]);
        let stride = (key_len + 1) * 8;
        for i in 0..n {
            let off = HEADER + 8 + i * stride;
            page.put_u64s(off, self.sep(i, key_len));
            page.put_u64(off + key_len * 8, self.children[i + 1]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities_are_sane() {
        // key of 3 words + RID payload of 1 word = 32 bytes per entry.
        assert_eq!(leaf_capacity(3, 1), (8192 - 16) / 32);
        assert!(internal_capacity(1) > 200);
        assert!(leaf_capacity(1, 1) > 400);
    }

    #[test]
    fn leaf_roundtrip() {
        let mut leaf = LeafNode::new();
        leaf.next = 77;
        for i in 0..10u64 {
            let n = leaf.len(2);
            leaf.insert_at(n, &[i, i * 2], &[i * 100], 2, 1);
        }
        let mut page = Page::zeroed();
        leaf.write(&mut page, 2, 1);
        let back = LeafNode::read(&page, 2, 1).unwrap();
        assert_eq!(back, leaf);
        assert_eq!(back.next, 77);
        assert_eq!(back.key(3, 2), &[3, 6]);
        assert_eq!(back.pay(3, 1), &[300]);
    }

    #[test]
    fn leaf_search_and_insert_keep_order() {
        let mut leaf = LeafNode::new();
        for k in [5u64, 1, 9, 3, 7] {
            let slot = leaf.search(&[k], 1).unwrap_err();
            leaf.insert_at(slot, &[k], &[k * 10], 1, 1);
        }
        let keys: Vec<u64> = (0..5).map(|i| leaf.key(i, 1)[0]).collect();
        assert_eq!(keys, vec![1, 3, 5, 7, 9]);
        assert_eq!(leaf.search(&[7], 1), Ok(3));
        assert_eq!(leaf.search(&[4], 1), Err(2));
    }

    #[test]
    fn leaf_split_halves() {
        let mut leaf = LeafNode::new();
        leaf.next = 42;
        for i in 0..10u64 {
            leaf.insert_at(i as usize, &[i], &[i], 1, 1);
        }
        let (right, sep) = leaf.split(1, 1);
        assert_eq!(leaf.len(1), 5);
        assert_eq!(right.len(1), 5);
        assert_eq!(sep, vec![5]);
        assert_eq!(right.next, 42);
        assert_eq!(right.key(0, 1), &[5]);
    }

    #[test]
    fn internal_roundtrip_and_route() {
        let mut node = InternalNode::new(100);
        node.insert_at(0, &[10, 0], 101, 2);
        node.insert_at(1, &[20, 5], 102, 2);
        let mut page = Page::zeroed();
        node.write(&mut page, 2);
        let back = InternalNode::read(&page, 2).unwrap();
        assert_eq!(back, node);
        assert_eq!(back.route(&[5, 0], 2), 0);
        assert_eq!(back.route(&[10, 0], 2), 1, "equal keys route right");
        assert_eq!(back.route(&[15, 0], 2), 1);
        assert_eq!(back.route(&[20, 5], 2), 2);
        assert_eq!(back.route(&[99, 9], 2), 2);
    }

    #[test]
    fn internal_split_promotes_middle() {
        let mut node = InternalNode::new(0);
        for i in 0..5u64 {
            let n = node.len(1);
            node.insert_at(n, &[(i + 1) * 10], i + 1, 1);
        }
        // seps: 10,20,30,40,50; children: 0..=5
        let (right, promoted) = node.split(1);
        assert_eq!(promoted, vec![30]);
        assert_eq!(node.len(1), 2); // 10, 20
        assert_eq!(node.children, vec![0, 1, 2]);
        assert_eq!(right.len(1), 2); // 40, 50
        assert_eq!(right.children, vec![3, 4, 5]);
    }

    #[test]
    fn wrong_tag_is_corrupt() {
        let page = Page::zeroed();
        assert!(LeafNode::read(&page, 1, 1).is_err());
        assert!(InternalNode::read(&page, 1).is_err());
    }
}
