//! The disk-resident B+-tree.

use crate::node::{
    internal_capacity, leaf_capacity, InternalNode, LeafNode, MAGIC, NO_LEAF, TAG_LEAF,
};
use ct_common::{CtError, Result};
use ct_storage::{BufferPool, FileId, PageId};
use std::sync::Arc;

/// A B+-tree over one page file.
///
/// Keys are `key_len` `u64` words compared lexicographically; payloads are
/// `pay_len` words. Keys are unique — [`BTree::upsert`] merges on conflict.
pub struct BTree {
    pool: Arc<BufferPool>,
    fid: FileId,
    key_len: usize,
    pay_len: usize,
    root: u64,
    height: u32,
    entries: u64,
    leaf_cap: usize,
    int_cap: usize,
}

const META_PAGE: PageId = PageId(0);

impl BTree {
    /// Creates an empty tree in a fresh file.
    pub fn create(pool: Arc<BufferPool>, fid: FileId, key_len: usize, pay_len: usize) -> Result<Self> {
        assert!(key_len >= 1 && pay_len >= 1, "key and payload must be non-empty");
        let leaf_cap = leaf_capacity(key_len, pay_len);
        let int_cap = internal_capacity(key_len);
        assert!(leaf_cap >= 2 && int_cap >= 2, "geometry too large for a page");
        let meta = pool.new_page(fid)?;
        debug_assert_eq!(meta, META_PAGE);
        let root = pool.new_page(fid)?;
        pool.with_page_mut(fid, root, |p| LeafNode::new().write(p, key_len, pay_len))?;
        let mut t = BTree {
            pool,
            fid,
            key_len,
            pay_len,
            root: root.0,
            height: 1,
            entries: 0,
            leaf_cap,
            int_cap,
        };
        t.write_meta()?;
        Ok(t)
    }

    /// Opens an existing tree from its file.
    pub fn open(pool: Arc<BufferPool>, fid: FileId) -> Result<Self> {
        let (key_len, pay_len, root, height, entries) =
            pool.with_page(fid, META_PAGE, |p| {
                (
                    p.get_u16(4) as usize,
                    p.get_u16(6) as usize,
                    p.get_u64(8),
                    p.get_u32(16),
                    p.get_u64(24),
                )
            })?;
        let magic = pool.with_page(fid, META_PAGE, |p| p.get_u32(0))?;
        if magic != MAGIC {
            return Err(CtError::corrupt("not a B+-tree file"));
        }
        Ok(BTree {
            pool,
            fid,
            key_len,
            pay_len,
            root,
            height,
            entries,
            leaf_cap: leaf_capacity(key_len, pay_len),
            int_cap: internal_capacity(key_len),
        })
    }

    fn write_meta(&mut self) -> Result<()> {
        self.pool.with_page_mut(self.fid, META_PAGE, |p| {
            p.put_u32(0, MAGIC);
            p.put_u16(4, self.key_len as u16);
            p.put_u16(6, self.pay_len as u16);
            p.put_u64(8, self.root);
            p.put_u32(16, self.height);
            p.put_u64(24, self.entries);
        })
    }

    /// Persists the meta page (entry count, root) — call after batches.
    pub fn flush_meta(&mut self) -> Result<()> {
        self.write_meta()
    }

    /// Key arity in words.
    pub fn key_len(&self) -> usize {
        self.key_len
    }

    /// Payload width in words.
    pub fn pay_len(&self) -> usize {
        self.pay_len
    }

    /// Number of entries.
    pub fn len(&self) -> u64 {
        self.entries
    }

    /// True if the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Tree height (1 = root is a leaf).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The file backing this tree.
    pub fn file_id(&self) -> FileId {
        self.fid
    }

    /// Point lookup.
    pub fn get(&self, key: &[u64]) -> Result<Option<Vec<u64>>> {
        debug_assert_eq!(key.len(), self.key_len);
        let leaf_pid = self.descend(key)?;
        let leaf = self.read_leaf(leaf_pid)?;
        Ok(match leaf.search(key, self.key_len) {
            Ok(i) => Some(leaf.pay(i, self.pay_len).to_vec()),
            Err(_) => None,
        })
    }

    /// Inserts `key → pay`; if the key exists, `merge(existing, new)` updates
    /// the stored payload in place. Returns `true` if a new entry was added.
    pub fn upsert(
        &mut self,
        key: &[u64],
        pay: &[u64],
        merge: impl FnOnce(&mut [u64], &[u64]),
    ) -> Result<bool> {
        debug_assert_eq!(key.len(), self.key_len);
        debug_assert_eq!(pay.len(), self.pay_len);
        let split = self.insert_rec(PageId(self.root), self.height, key, pay, &mut Some(merge))?;
        match split {
            InsertOutcome::Updated => Ok(false),
            InsertOutcome::Inserted => {
                self.entries += 1;
                Ok(true)
            }
            InsertOutcome::Split(sep, right) => {
                // Grow a new root.
                let new_root = self.pool.new_page(self.fid)?;
                let mut node = InternalNode::new(self.root);
                node.insert_at(0, &sep, right, self.key_len);
                let key_len = self.key_len;
                self.pool.with_page_mut(self.fid, new_root, |p| node.write(p, key_len))?;
                self.root = new_root.0;
                self.height += 1;
                self.entries += 1;
                self.write_meta()?;
                Ok(true)
            }
        }
    }

    /// Plain insert; replaces the payload if the key exists.
    pub fn insert(&mut self, key: &[u64], pay: &[u64]) -> Result<bool> {
        self.upsert(key, pay, |old, new| old.copy_from_slice(new))
    }

    /// Inclusive range scan: calls `f(key, payload)` for every entry with
    /// `lo <= key <= hi`; `f` returns `false` to stop early.
    pub fn scan_range(
        &self,
        lo: &[u64],
        hi: &[u64],
        mut f: impl FnMut(&[u64], &[u64]) -> bool,
    ) -> Result<()> {
        debug_assert_eq!(lo.len(), self.key_len);
        debug_assert_eq!(hi.len(), self.key_len);
        let mut pid = self.descend(lo)?;
        loop {
            let leaf = self.read_leaf(pid)?;
            let n = leaf.len(self.key_len);
            let start = match leaf.search(lo, self.key_len) {
                Ok(i) => i,
                Err(i) => i,
            };
            for i in start..n {
                let k = leaf.key(i, self.key_len);
                if k > hi {
                    return Ok(());
                }
                if !f(k, leaf.pay(i, self.pay_len)) {
                    return Ok(());
                }
            }
            if leaf.next == NO_LEAF {
                return Ok(());
            }
            pid = PageId(leaf.next);
        }
    }

    /// Prefix scan: every entry whose first `prefix.len()` key words equal
    /// `prefix`.
    pub fn scan_prefix(
        &self,
        prefix: &[u64],
        f: impl FnMut(&[u64], &[u64]) -> bool,
    ) -> Result<()> {
        assert!(prefix.len() <= self.key_len, "prefix longer than key");
        let mut lo = vec![0u64; self.key_len];
        let mut hi = vec![u64::MAX; self.key_len];
        lo[..prefix.len()].copy_from_slice(prefix);
        hi[..prefix.len()].copy_from_slice(prefix);
        self.scan_range(&lo, &hi, f)
    }

    /// Full ordered scan.
    pub fn scan_all(&self, f: impl FnMut(&[u64], &[u64]) -> bool) -> Result<()> {
        let lo = vec![0u64; self.key_len];
        let hi = vec![u64::MAX; self.key_len];
        self.scan_range(&lo, &hi, f)
    }

    /// Bulk-loads a tree from key-sorted `(key, payload)` pairs. Leaves are
    /// filled to capacity and written strictly sequentially (this is how the
    /// conventional configuration builds its indexes after view
    /// materialization, paper §3.2).
    ///
    /// # Errors
    /// Returns [`CtError::InvalidArgument`] if the input is not strictly
    /// ascending by key.
    pub fn bulk_load(
        pool: Arc<BufferPool>,
        fid: FileId,
        key_len: usize,
        pay_len: usize,
        mut next: impl FnMut() -> Result<Option<(Vec<u64>, Vec<u64>)>>,
    ) -> Result<Self> {
        let mut tree = BTree::create(pool, fid, key_len, pay_len)?;
        // Level 0: stream into full leaves.
        let mut leaf = LeafNode::new();
        let mut leaf_pids: Vec<u64> = vec![tree.root];
        // (min_key, pid) for level construction; the first leaf reuses the
        // root page allocated by create() and is replaced below if we grow.
        let mut level: Vec<(Vec<u64>, u64)> = Vec::new();
        let mut prev_key: Option<Vec<u64>> = None;
        let mut count = 0u64;
        let mut first_key_of_leaf: Option<Vec<u64>> = None;
        while let Some((key, pay)) = next()? {
            if key.len() != key_len || pay.len() != pay_len {
                return Err(CtError::invalid("bulk_load record geometry mismatch"));
            }
            if let Some(prev) = &prev_key {
                if prev.as_slice() >= key.as_slice() {
                    return Err(CtError::invalid("bulk_load input not strictly ascending"));
                }
            }
            if leaf.len(key_len) == tree.leaf_cap {
                // Seal current leaf, chain to a fresh one.
                let new_pid = tree.pool.new_page(fid)?;
                leaf.next = new_pid.0;
                let pid = *leaf_pids.last().unwrap();
                tree.pool.with_page_mut(fid, PageId(pid), |p| leaf.write(p, key_len, pay_len))?;
                level.push((first_key_of_leaf.take().unwrap(), pid));
                leaf = LeafNode::new();
                leaf_pids.push(new_pid.0);
            }
            if leaf.is_empty() {
                first_key_of_leaf = Some(key.clone());
            }
            let n = leaf.len(key_len);
            leaf.insert_at(n, &key, &pay, key_len, pay_len);
            prev_key = Some(key);
            count += 1;
        }
        // Seal the trailing leaf.
        let pid = *leaf_pids.last().unwrap();
        tree.pool.with_page_mut(fid, PageId(pid), |p| leaf.write(p, key_len, pay_len))?;
        if let Some(fk) = first_key_of_leaf.take() {
            level.push((fk, pid));
        } else if level.is_empty() {
            // Entirely empty input: root stays the empty leaf.
            tree.entries = 0;
            tree.write_meta()?;
            return Ok(tree);
        }
        // Build internal levels bottom-up.
        let mut height = 1u32;
        while level.len() > 1 {
            height += 1;
            let mut next_level: Vec<(Vec<u64>, u64)> = Vec::new();
            for chunk in level.chunks(tree.int_cap + 1) {
                let mut node = InternalNode::new(chunk[0].1);
                for (i, (min_key, child)) in chunk.iter().enumerate().skip(1) {
                    node.insert_at(i - 1, min_key, *child, key_len);
                }
                let pid = tree.pool.new_page(fid)?;
                tree.pool.with_page_mut(fid, pid, |p| node.write(p, key_len))?;
                next_level.push((chunk[0].0.clone(), pid.0));
            }
            level = next_level;
        }
        tree.root = level[0].1;
        tree.height = height;
        tree.entries = count;
        tree.write_meta()?;
        Ok(tree)
    }

    /// Walks from the root to the leaf that owns `key`.
    fn descend(&self, key: &[u64]) -> Result<PageId> {
        let mut pid = PageId(self.root);
        for _ in 1..self.height {
            let node = self.read_internal(pid)?;
            let slot = node.route(key, self.key_len);
            pid = PageId(node.children[slot]);
        }
        Ok(pid)
    }

    fn read_leaf(&self, pid: PageId) -> Result<LeafNode> {
        self.pool
            .with_page(self.fid, pid, |p| LeafNode::read(p, self.key_len, self.pay_len))?
    }

    fn read_internal(&self, pid: PageId) -> Result<InternalNode> {
        self.pool.with_page(self.fid, pid, |p| InternalNode::read(p, self.key_len))?
    }

    fn insert_rec(
        &mut self,
        pid: PageId,
        level: u32,
        key: &[u64],
        pay: &[u64],
        merge: &mut Option<impl FnOnce(&mut [u64], &[u64])>,
    ) -> Result<InsertOutcome> {
        let is_leaf = self.pool.with_page(self.fid, pid, |p| p.bytes()[0] == TAG_LEAF)?;
        if is_leaf {
            debug_assert_eq!(level, 1, "leaf found above level 1");
            let mut leaf = self.read_leaf(pid)?;
            match leaf.search(key, self.key_len) {
                Ok(i) => {
                    let pay_len = self.pay_len;
                    let slot = &mut leaf.pays[i * pay_len..(i + 1) * pay_len];
                    (merge.take().expect("merge consumed twice"))(slot, pay);
                    self.write_leaf(pid, &leaf)?;
                    Ok(InsertOutcome::Updated)
                }
                Err(slot) => {
                    leaf.insert_at(slot, key, pay, self.key_len, self.pay_len);
                    if leaf.len(self.key_len) > self.leaf_cap {
                        let (mut right, sep) = leaf.split(self.key_len, self.pay_len);
                        let right_pid = self.pool.new_page(self.fid)?;
                        std::mem::swap(&mut leaf.next, &mut right.next);
                        leaf.next = right_pid.0;
                        self.write_leaf(right_pid, &right)?;
                        self.write_leaf(pid, &leaf)?;
                        Ok(InsertOutcome::Split(sep, right_pid.0))
                    } else {
                        self.write_leaf(pid, &leaf)?;
                        Ok(InsertOutcome::Inserted)
                    }
                }
            }
        } else {
            let mut node = self.read_internal(pid)?;
            let slot = node.route(key, self.key_len);
            let child = PageId(node.children[slot]);
            match self.insert_rec(child, level - 1, key, pay, merge)? {
                InsertOutcome::Split(sep, new_child) => {
                    node.insert_at(slot, &sep, new_child, self.key_len);
                    if node.len(self.key_len) > self.int_cap {
                        let (right, promoted) = node.split(self.key_len);
                        let right_pid = self.pool.new_page(self.fid)?;
                        self.write_internal(right_pid, &right)?;
                        self.write_internal(pid, &node)?;
                        Ok(InsertOutcome::Split(promoted, right_pid.0))
                    } else {
                        self.write_internal(pid, &node)?;
                        Ok(InsertOutcome::Inserted)
                    }
                }
                other => Ok(other),
            }
        }
    }

    fn write_leaf(&self, pid: PageId, leaf: &LeafNode) -> Result<()> {
        let (k, p) = (self.key_len, self.pay_len);
        self.pool.with_page_mut(self.fid, pid, |page| leaf.write(page, k, p))
    }

    fn write_internal(&self, pid: PageId, node: &InternalNode) -> Result<()> {
        let k = self.key_len;
        self.pool.with_page_mut(self.fid, pid, |page| node.write(page, k))
    }
}

enum InsertOutcome {
    /// Existing key's payload was merged.
    Updated,
    /// New key inserted, no structural change above.
    Inserted,
    /// Child split: (separator, new right child page).
    Split(Vec<u64>, u64),
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_storage::StorageEnv;
    use rand::rngs::StdRng;
    use rand::{seq::SliceRandom, SeedableRng};

    fn tree(key_len: usize, pay_len: usize) -> (StorageEnv, BTree) {
        let env = StorageEnv::new("btree-test").unwrap();
        let fid = env.create_file("tree").unwrap();
        let t = BTree::create(env.pool().clone(), fid, key_len, pay_len).unwrap();
        (env, t)
    }

    #[test]
    fn insert_get_small() {
        let (_env, mut t) = tree(2, 1);
        assert!(t.is_empty());
        assert!(t.insert(&[1, 2], &[12]).unwrap());
        assert!(t.insert(&[2, 1], &[21]).unwrap());
        assert!(!t.insert(&[1, 2], &[99]).unwrap(), "replace is not a new entry");
        assert_eq!(t.get(&[1, 2]).unwrap(), Some(vec![99]));
        assert_eq!(t.get(&[2, 1]).unwrap(), Some(vec![21]));
        assert_eq!(t.get(&[9, 9]).unwrap(), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn random_inserts_scale_past_many_splits() {
        let (_env, mut t) = tree(1, 1);
        let mut keys: Vec<u64> = (0..20_000u64).collect();
        keys.shuffle(&mut StdRng::seed_from_u64(7));
        for &k in &keys {
            t.insert(&[k], &[k * 3]).unwrap();
        }
        assert_eq!(t.len(), 20_000);
        assert!(t.height() >= 2, "splits must have happened");
        for &k in keys.iter().step_by(997) {
            assert_eq!(t.get(&[k]).unwrap(), Some(vec![k * 3]));
        }
        // Full scan must be ordered and complete.
        let mut seen = 0u64;
        let mut prev: Option<u64> = None;
        t.scan_all(|k, p| {
            if let Some(pv) = prev {
                assert!(k[0] > pv);
            }
            assert_eq!(p[0], k[0] * 3);
            prev = Some(k[0]);
            seen += 1;
            true
        })
        .unwrap();
        assert_eq!(seen, 20_000);
    }

    #[test]
    fn upsert_merges_in_place() {
        let (_env, mut t) = tree(1, 1);
        t.insert(&[5], &[10]).unwrap();
        let added =
            t.upsert(&[5], &[7], |old, new| old[0] = old[0].wrapping_add(new[0])).unwrap();
        assert!(!added);
        assert_eq!(t.get(&[5]).unwrap(), Some(vec![17]));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn range_and_prefix_scans() {
        let (_env, mut t) = tree(2, 1);
        for a in 1..=5u64 {
            for b in 1..=5u64 {
                t.insert(&[a, b], &[a * 10 + b]).unwrap();
            }
        }
        let mut got = Vec::new();
        t.scan_range(&[2, 3], &[3, 2], |k, _| {
            got.push((k[0], k[1]));
            true
        })
        .unwrap();
        assert_eq!(got, vec![(2, 3), (2, 4), (2, 5), (3, 1), (3, 2)]);

        let mut pref = Vec::new();
        t.scan_prefix(&[4], |k, p| {
            pref.push((k[1], p[0]));
            true
        })
        .unwrap();
        assert_eq!(pref, vec![(1, 41), (2, 42), (3, 43), (4, 44), (5, 45)]);

        // Early stop.
        let mut n = 0;
        t.scan_all(|_, _| {
            n += 1;
            n < 3
        })
        .unwrap();
        assert_eq!(n, 3);
    }

    #[test]
    fn bulk_load_matches_inserts() {
        let env = StorageEnv::new("btree-bulk").unwrap();
        let n = 10_000u64;
        let fid = env.create_file("bulk").unwrap();
        let mut i = 0u64;
        let t = BTree::bulk_load(env.pool().clone(), fid, 1, 2, || {
            if i < n {
                let k = i * 2; // even keys
                i += 1;
                Ok(Some((vec![k], vec![k + 1, k + 2])))
            } else {
                Ok(None)
            }
        })
        .unwrap();
        assert_eq!(t.len(), n);
        assert!(t.height() >= 2);
        assert_eq!(t.get(&[1234]).unwrap(), Some(vec![1235, 1236]));
        assert_eq!(t.get(&[1235]).unwrap(), None);
        let mut count = 0u64;
        t.scan_all(|k, p| {
            assert_eq!(k[0] % 2, 0);
            assert_eq!(p[0], k[0] + 1);
            count += 1;
            true
        })
        .unwrap();
        assert_eq!(count, n);
    }

    #[test]
    fn bulk_load_empty_and_reopen() {
        let env = StorageEnv::new("btree-empty").unwrap();
        let fid = env.create_file("empty").unwrap();
        let t = BTree::bulk_load(env.pool().clone(), fid, 3, 1, || Ok(None)).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.get(&[1, 2, 3]).unwrap(), None);
        drop(t);
        let t2 = BTree::open(env.pool().clone(), fid).unwrap();
        assert_eq!(t2.key_len(), 3);
        assert_eq!(t2.pay_len(), 1);
        assert!(t2.is_empty());
    }

    #[test]
    fn bulk_load_rejects_unsorted() {
        let env = StorageEnv::new("btree-unsorted").unwrap();
        let fid = env.create_file("bad").unwrap();
        let mut items = vec![(vec![2u64], vec![0u64]), (vec![1], vec![0])].into_iter();
        let r = BTree::bulk_load(env.pool().clone(), fid, 1, 1, || Ok(items.next()));
        assert!(r.is_err());
    }

    #[test]
    fn reopen_preserves_contents() {
        let env = StorageEnv::new("btree-reopen").unwrap();
        let fid = env.create_file("t").unwrap();
        let mut t = BTree::create(env.pool().clone(), fid, 2, 1).unwrap();
        for i in 0..500u64 {
            t.insert(&[i, i + 1], &[i * 7]).unwrap();
        }
        t.flush_meta().unwrap();
        drop(t);
        let t2 = BTree::open(env.pool().clone(), fid).unwrap();
        assert_eq!(t2.len(), 500);
        assert_eq!(t2.get(&[123, 124]).unwrap(), Some(vec![861]));
    }
}
