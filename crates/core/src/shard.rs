//! Partitioned forests: sharding the fact space across independent
//! Cubetree environments with scatter-gather query merging.
//!
//! The paper packs each Cubetree into one sequential disk organization,
//! which caps build and query parallelism at a single buffer pool and
//! storage environment. A [`ShardedEngine`] partitions the fact space on a
//! *partition attribute* (hash by default, range splits under skew) into N
//! independent shards, each a full [`CubetreeEngine`]: its own buffer pool,
//! manifest, MVCC generations, and delta tier. Builds, refreshes, and
//! compactions run per-shard in parallel on the scoped-worker pool; queries
//! are routed to the owning shard(s) by pruning on the partition key and the
//! partial per-shard answers are merged ([`PartialAnswer::absorb`]) before a
//! single finalization.
//!
//! Because every aggregate state is mergeable (COUNT/SUM/MIN/MAX compose;
//! AVG is finalized from SUM+COUNT only after the gather), the merged answer
//! is bit-identical to the unsharded engine for every query class — the
//! equivalence suite proves this at shards ∈ {1, 2, 3, 4}. The gather
//! protocol is partition-agnostic: it would be the same if shards were
//! remote peers instead of local environments.

use crate::delta::{DeltaConfig, DeltaSnapshot, DeltaStats};
use crate::engine::{
    BatchResult, CubetreeConfig, CubetreeEngine, RolapEngine, ServedAnswer, ServingEngine,
    ViewInfo,
};
use crate::forest::{AnswerStamp, CubetreeForest, ReaderPin};
use crate::jobs::{run_jobs, Job};
use crate::query::{
    execute_planned_query_batch_partial, execute_planned_query_partial,
    plan_query_with_entries, ForestPlan, PartialAnswer,
};
use crate::sched::SchedSummary;
use ct_common::query::QueryRow;
use ct_common::{AttrId, Catalog, CtError, Result, SliceQuery};
use ct_cube::Relation;
use ct_storage::{FaultPlan, IoSnapshot};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

/// How many partition-column values the skew detector samples when it has
/// to derive range-split boundaries (deterministic stride sampling).
const SKEW_SAMPLE_CAP: usize = 65_536;

/// Partitioning policy of a [`ShardedEngine`].
#[derive(Clone, Debug)]
pub struct ShardSpec {
    /// Number of shards (clamped to at least 1).
    pub shards: usize,
    /// The attribute whose value routes a fact row to its shard. Defaults
    /// to the catalog's leading attribute (`AttrId(0)`) when `None`.
    pub partition_attr: Option<AttrId>,
    /// Skew guard: if hash sharding would leave some shard holding more
    /// than `skew_factor ×` the mean row count, the load falls back to
    /// range splits from a sampled quantile sketch (and logs `shard.skew`).
    pub skew_factor: f64,
}

impl ShardSpec {
    /// A hash-sharding spec over `shards` shards with the default 2× skew
    /// guard.
    pub fn new(shards: usize) -> Self {
        ShardSpec { shards: shards.max(1), partition_attr: None, skew_factor: 2.0 }
    }

    /// Selects the partition attribute explicitly.
    pub fn with_partition_attr(mut self, attr: AttrId) -> Self {
        self.partition_attr = Some(attr);
        self
    }

    /// Overrides the skew-fallback threshold (multiples of the mean).
    pub fn with_skew_factor(mut self, factor: f64) -> Self {
        self.skew_factor = factor;
        self
    }
}

impl Default for ShardSpec {
    fn default() -> Self {
        ShardSpec::new(1)
    }
}

/// The routing function from partition-key values to shard indices.
///
/// Hash routing spreads arbitrary key distributions but can only prune
/// equality slices; range routing (the skew fallback) keys each shard to a
/// contiguous value interval, so range slices prune too.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardRouter {
    /// `shard = splitmix64(value) mod shards`.
    Hash {
        /// Number of shards.
        shards: usize,
    },
    /// `boundaries` is a sorted list of `shards - 1` inclusive upper cuts:
    /// shard `i` owns values `v` with `boundaries[i-1] < v <= boundaries[i]`
    /// (shard 0 from the bottom, the last shard to the top).
    Range {
        /// Sorted inclusive upper boundaries, one fewer than the shard count.
        boundaries: Vec<u64>,
    },
}

/// A Fibonacci-free 64-bit finalizer (splitmix64). Deterministic across
/// runs and platforms, so shard placement is stable.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl ShardRouter {
    /// Number of shards this router spreads over.
    pub fn shards(&self) -> usize {
        match self {
            ShardRouter::Hash { shards } => *shards,
            ShardRouter::Range { boundaries } => boundaries.len() + 1,
        }
    }

    /// The owning shard of a partition-key value.
    pub fn route(&self, v: u64) -> usize {
        match self {
            ShardRouter::Hash { shards } => (splitmix64(v) % *shards as u64) as usize,
            ShardRouter::Range { boundaries } => boundaries.partition_point(|&b| b < v),
        }
    }

    /// The shards a query must consult, pruned on its partition-key
    /// constraint. Hash routing prunes equality slices to one shard; range
    /// routing prunes interval constraints to the covering shard span; an
    /// unconstrained query fans out to every shard.
    pub fn shards_for(&self, q: &SliceQuery, partition_attr: AttrId) -> Vec<usize> {
        let n = self.shards();
        match q.range_of(partition_attr) {
            Some((lo, hi)) if lo == hi => vec![self.route(lo)],
            Some((lo, hi)) => match self {
                // A hash spreads an interval over every shard.
                ShardRouter::Hash { .. } => (0..n).collect(),
                ShardRouter::Range { .. } => (self.route(lo)..=self.route(hi)).collect(),
            },
            None => (0..n).collect(),
        }
    }
}

/// Configuration of a [`ShardedEngine`]: a per-shard base engine config plus
/// the partitioning spec.
#[derive(Clone)]
pub struct ShardedConfig {
    /// Per-shard engine configuration. `base.threads` is the *total* worker
    /// budget: the sharded layer runs `min(threads, shards)` shard jobs at
    /// once and gives each shard `max(1, threads / shards)` inner workers.
    pub base: CubetreeConfig,
    /// Partitioning policy.
    pub spec: ShardSpec,
    /// Optional *distinct* per-shard fault plans (fault-plan clones share
    /// state, so crash tests that must kill one shard but not its siblings
    /// arm a dedicated plan per shard). Empty means every shard inherits
    /// `base.faults`.
    pub shard_faults: Vec<FaultPlan>,
}

impl ShardedConfig {
    /// Bundles a base engine config with a shard spec.
    pub fn new(base: CubetreeConfig, spec: ShardSpec) -> Self {
        ShardedConfig { base, spec, shard_faults: Vec::new() }
    }

    /// Installs one independent fault plan per shard (length must equal the
    /// shard count; checked at engine construction).
    pub fn with_shard_faults(mut self, plans: Vec<FaultPlan>) -> Self {
        self.shard_faults = plans;
        self
    }
}

/// N independent Cubetree forests behind one [`RolapEngine`] face: rows are
/// partitioned on a leading dimension, queries scatter to the owning shards
/// and gather by merging partial aggregate states.
pub struct ShardedEngine {
    shards: Vec<CubetreeEngine>,
    catalog: Catalog,
    partition_attr: AttrId,
    router: ShardRouter,
    spec: ShardSpec,
    recorder: ct_obs::Recorder,
    /// Persistent root (shard subdirectories + `shards.meta`), when opened
    /// via [`ShardedEngine::open_at`].
    root: Option<PathBuf>,
    /// Concurrent shard jobs (`min(threads, shards)`).
    outer_threads: usize,
    /// Fact rows routed to each shard by the last [`RolapEngine::load`]
    /// (feeds the bench skew report).
    loaded_rows: Vec<u64>,
}

/// Derives the per-shard engine config: split the worker budget, share the
/// recorder (recorder clones share state, so per-shard I/O sums into one
/// snapshot), and install the shard's own fault plan when one was given.
fn shard_config(config: &ShardedConfig, shard: usize) -> CubetreeConfig {
    let mut c = config.base.clone();
    c.threads = (config.base.threads / config.spec.shards).max(1);
    if let Some(plan) = config.shard_faults.get(shard) {
        c.faults = plan.clone();
    }
    c
}

fn check_shard_faults(config: &ShardedConfig) -> Result<()> {
    if !config.shard_faults.is_empty() && config.shard_faults.len() != config.spec.shards {
        return Err(CtError::invalid(format!(
            "shard_faults has {} plans for {} shards",
            config.shard_faults.len(),
            config.spec.shards
        )));
    }
    Ok(())
}

impl ShardedEngine {
    /// Creates a sharded engine over ephemeral per-shard environments.
    pub fn new(catalog: Catalog, config: ShardedConfig) -> Result<Self> {
        check_shard_faults(&config)?;
        let spec = config.spec.clone();
        let partition_attr = spec.partition_attr.unwrap_or(AttrId(0));
        let mut shards = Vec::with_capacity(spec.shards);
        for i in 0..spec.shards {
            shards.push(CubetreeEngine::new(catalog.clone(), shard_config(&config, i))?);
        }
        Ok(ShardedEngine {
            shards,
            catalog,
            partition_attr,
            router: ShardRouter::Hash { shards: spec.shards },
            outer_threads: config.base.threads.min(spec.shards).max(1),
            recorder: config.base.recorder.clone(),
            spec,
            root: None,
            loaded_rows: Vec::new(),
        })
    }

    /// Opens (or creates) a sharded engine over a persistent root
    /// directory. Each shard lives in `root/shard-<i>` and recovers
    /// independently through its own manifest; `root/shards.meta` pins the
    /// shard count, partition attribute, and routing strategy across
    /// restarts (so a range-split layout reopens as range, not hash).
    pub fn open_at(root: &Path, catalog: Catalog, config: ShardedConfig) -> Result<Self> {
        check_shard_faults(&config)?;
        let mut spec = config.spec.clone();
        let meta = read_meta(root)?;
        if let Some(m) = &meta {
            if !config.shard_faults.is_empty() && config.shard_faults.len() != m.shards {
                return Err(CtError::invalid(format!(
                    "shard_faults has {} plans for {} persisted shards",
                    config.shard_faults.len(),
                    m.shards
                )));
            }
            spec.shards = m.shards;
            spec.partition_attr = Some(m.partition_attr);
        }
        let partition_attr = spec.partition_attr.unwrap_or(AttrId(0));
        let router = meta
            .map(|m| m.router)
            .unwrap_or(ShardRouter::Hash { shards: spec.shards });
        let mut shards = Vec::with_capacity(spec.shards);
        for i in 0..spec.shards {
            let dir = root.join(format!("shard-{i}"));
            let mut c = shard_config(&config, i);
            c.threads = (config.base.threads / spec.shards).max(1);
            shards.push(CubetreeEngine::open_at(&dir, catalog.clone(), c)?);
        }
        Ok(ShardedEngine {
            shards,
            catalog,
            partition_attr,
            router,
            outer_threads: config.base.threads.min(spec.shards).max(1),
            recorder: config.base.recorder.clone(),
            spec,
            root: Some(root.to_path_buf()),
            loaded_rows: Vec::new(),
        })
    }

    /// The per-shard engines, in shard order.
    pub fn shards(&self) -> &[CubetreeEngine] {
        &self.shards
    }

    /// The active routing function.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// The partition attribute rows and queries are routed on.
    pub fn partition_attr(&self) -> AttrId {
        self.partition_attr
    }

    /// Sum of per-shard generation numbers: a monotonic stamp that advances
    /// whenever any shard commits a new generation (shards refresh
    /// independently, so a single per-forest number does not exist).
    pub fn generation(&self) -> u64 {
        self.shards.iter().map(|s| s.forest().map_or(0, CubetreeForest::generation_number)).sum()
    }

    /// Physical I/O summed over every shard environment ([`ct_storage::IoStats`]
    /// counters are per-environment, unlike recorder metrics which already
    /// share state through the common recorder clone).
    pub fn io_snapshot(&self) -> IoSnapshot {
        let mut t = IoSnapshot::default();
        for s in &self.shards {
            let x = s.env().snapshot();
            t.seq_reads += x.seq_reads;
            t.rand_reads += x.rand_reads;
            t.seq_writes += x.seq_writes;
            t.rand_writes += x.rand_writes;
            t.buffer_hits += x.buffer_hits;
            t.tuples += x.tuples;
        }
        t
    }

    /// Resident-delta accounting summed across shard memtables (`None`
    /// before load). `oldest` is the oldest resident row anywhere.
    pub fn delta_stats(&self) -> Option<DeltaStats> {
        let mut out: Option<DeltaStats> = None;
        for s in &self.shards {
            let d = s.delta_stats()?;
            let acc = out.get_or_insert_with(DeltaStats::default);
            acc.active_rows += d.active_rows;
            acc.sealed_rows += d.sealed_rows;
            acc.source_rows += d.source_rows;
            acc.bytes += d.bytes;
            acc.sealed_tiers += d.sealed_tiers;
            acc.oldest = match (acc.oldest, d.oldest) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            };
        }
        out
    }

    /// Splits a relation into per-shard parts by routing each row on the
    /// partition column. Aggregate states ride along untouched, so
    /// retraction deltas partition correctly too.
    fn partition(&self, rows: &Relation) -> Result<Vec<Relation>> {
        let col = rows.col_of(self.partition_attr).ok_or_else(|| {
            CtError::invalid(format!(
                "rows lack the partition attribute {}",
                self.catalog.attr(self.partition_attr).name
            ))
        })?;
        let mut parts: Vec<Relation> =
            (0..self.shards.len()).map(|_| Relation::empty(rows.attrs.clone())).collect();
        for i in 0..rows.len() {
            let key = rows.key(i);
            parts[self.router.route(key[col])].push(key, rows.states[i]);
        }
        Ok(parts)
    }

    /// Skew guard: when hash routing would leave some shard holding more
    /// than `skew_factor ×` the mean row count, switch to range splits at
    /// sampled quantiles of the partition column (deterministic stride
    /// sample, so the layout is stable across runs). Logs a `shard.skew`
    /// warning either way the fallback fires.
    fn resolve_router(&mut self, fact: &Relation, col: usize) {
        let n = self.shards.len();
        if n <= 1 || fact.is_empty() {
            return;
        }
        let hash = ShardRouter::Hash { shards: n };
        let mut counts = vec![0u64; n];
        for i in 0..fact.len() {
            counts[hash.route(fact.key(i)[col])] += 1;
        }
        let max = counts.iter().copied().max().unwrap_or(0);
        let mean = fact.len() as f64 / n as f64;
        if (max as f64) <= self.spec.skew_factor * mean {
            self.router = hash;
            return;
        }
        // Degenerate leading dimension: sample, sort, cut at quantiles.
        let stride = (fact.len() / SKEW_SAMPLE_CAP).max(1);
        let mut sample: Vec<u64> =
            (0..fact.len()).step_by(stride).map(|i| fact.key(i)[col]).collect();
        sample.sort_unstable();
        let boundaries: Vec<u64> =
            (1..n).map(|i| sample[(i * sample.len() / n).min(sample.len() - 1)]).collect();
        self.recorder.add("shard.skew", 1);
        eprintln!(
            "shard.skew: hash sharding on `{}` is {:.1}x the mean (max {} of {} rows); \
             falling back to range splits at {:?}",
            self.catalog.attr(self.partition_attr).name,
            max as f64 / mean,
            max,
            fact.len(),
            boundaries
        );
        self.router = ShardRouter::Range { boundaries };
    }

    fn record_shard_gauges(&self, parts: &[Relation]) {
        if !self.recorder.is_enabled() {
            return;
        }
        let rows: Vec<u64> = parts.iter().map(|p| p.len() as u64).collect();
        let max = rows.iter().copied().max().unwrap_or(0);
        let mean = rows.iter().sum::<u64>() as f64 / rows.len().max(1) as f64;
        self.recorder.gauge_set("shard.count", self.shards.len() as f64);
        self.recorder.gauge_set("shard.rows.max", max as f64);
        self.recorder.gauge_set("shard.rows.mean", mean);
    }

    /// Fact rows routed to each shard by the last load (max/mean feed the
    /// bench skew report).
    pub fn shard_rows(&self) -> &[u64] {
        &self.loaded_rows
    }

    /// Streams fact rows into the owning shards' delta tiers, routed on the
    /// partition key. Returns the number of source rows absorbed.
    pub fn ingest(&self, rows: &Relation) -> Result<u64> {
        let parts = self.partition(rows)?;
        let mut total = 0;
        for (shard, part) in self.shards.iter().zip(&parts) {
            if !part.is_empty() {
                total += shard.ingest(part)?;
            }
        }
        Ok(total)
    }

    /// Merge-packs every shard's resident delta tier, in parallel. Returns
    /// `true` if any shard compacted.
    pub fn compact_delta(&self) -> Result<bool> {
        let dids: Vec<Mutex<bool>> = self.shards.iter().map(|_| Mutex::new(false)).collect();
        let jobs: Vec<Job<'_>> = self
            .shards
            .iter()
            .zip(&dids)
            .map(|(shard, did)| {
                Box::new(move || {
                    let d = shard.compact_delta()?;
                    *did.lock().unwrap_or_else(|p| p.into_inner()) = d;
                    Ok(())
                }) as Job<'_>
            })
            .collect();
        run_jobs(self.outer_threads, jobs)?;
        Ok(dids.iter().any(|d| *d.lock().unwrap_or_else(|p| p.into_inner())))
    }

    /// Bulk-incremental refresh: the delta is routed on the partition key
    /// and each owning shard merge-packs its part in parallel (a shard with
    /// an empty part is skipped, so shard generations advance
    /// independently). Each shard's commit is atomic, but the multi-shard
    /// update as a whole is not — before fanning out, a persistent engine
    /// writes a *refresh intent* (`refresh.intent` at the root: a fresh
    /// refresh id plus the touched shard set) and stamps the id into every
    /// shard's manifest commit, so [`ShardedEngine::recover_update`] can
    /// tell committed shards from aborted ones after a crash. The intent is
    /// marked done once every shard has committed.
    pub fn refresh(&self, delta: &Relation) -> Result<()> {
        let parts = self.partition(delta)?;
        let touched: Vec<usize> =
            parts.iter().enumerate().filter(|(_, p)| !p.is_empty()).map(|(i, _)| i).collect();
        if touched.is_empty() {
            return Ok(());
        }
        let intent = match &self.root {
            Some(root) => {
                let id = read_intent(root)?.map_or(1, |i| i.id + 1);
                let intent = RefreshIntent { id, pending: true, touched: touched.clone() };
                write_intent(root, &intent)?;
                Some(intent)
            }
            None => None,
        };
        let stamp = intent.as_ref().map(|i| refresh_stamp(i.id));
        let stamp = stamp.as_deref();
        let jobs: Vec<Job<'_>> = self
            .shards
            .iter()
            .zip(&parts)
            .filter(|(_, part)| !part.is_empty())
            .map(|(shard, part)| {
                Box::new(move || shard.refresh_stamped(part, stamp)) as Job<'_>
            })
            .collect();
        run_jobs(self.outer_threads, jobs)?;
        if let (Some(root), Some(mut intent)) = (&self.root, intent) {
            intent.pending = false;
            write_intent(root, &intent)?;
        }
        Ok(())
    }

    /// Converges a partially-committed multi-shard [`ShardedEngine::refresh`]
    /// to a consistent cut after a crash, given `delta` (the same relation
    /// the crashed refresh was given). The pending refresh intent names the
    /// touched shards and the refresh id; a touched shard committed exactly
    /// if its manifest carries that id as its stamp — commit status is never
    /// inferred from generation numbers, which legitimately diverge across
    /// shards (empty-part skips, independent delta compactions). If no
    /// touched shard carries the stamp, nothing is re-applied — the cut is
    /// the pre-update state; if at least one does, the delta is re-applied
    /// to exactly the touched shards that lack it. Either way the intent is
    /// then marked done, so a second pass is a no-op.
    pub fn recover_update(&self, delta: &Relation) -> Result<()> {
        let Some(root) = &self.root else {
            // An ephemeral engine cannot survive a crash; there is nothing
            // on disk to converge.
            return Ok(());
        };
        let Some(intent) = read_intent(root)? else {
            return Ok(());
        };
        if !intent.pending {
            return Ok(());
        }
        if intent.touched.iter().any(|&i| i >= self.shards.len()) {
            return Err(CtError::corrupt(
                "refresh.intent names a shard outside the persisted layout",
            ));
        }
        let stamp = refresh_stamp(intent.id);
        let committed: Vec<usize> = intent
            .touched
            .iter()
            .copied()
            .filter(|&i| self.shards[i].env().manifest().stamp.as_deref() == Some(stamp.as_str()))
            .collect();
        if !committed.is_empty() {
            let parts = self.partition(delta)?;
            let jobs: Vec<Job<'_>> = intent
                .touched
                .iter()
                .filter(|i| !committed.contains(i) && !parts[**i].is_empty())
                .map(|&i| {
                    let shard = &self.shards[i];
                    let part = &parts[i];
                    let stamp = stamp.as_str();
                    Box::new(move || shard.refresh_stamped(part, Some(stamp))) as Job<'_>
                })
                .collect();
            run_jobs(self.outer_threads, jobs)?;
        }
        write_intent(
            root,
            &RefreshIntent { id: intent.id, pending: false, touched: intent.touched },
        )
    }

    /// Pins every shard once (generation + delta snapshot under each
    /// shard's generation lock). Queries are planned against these pins
    /// *centrally* — entry counts summed across all shards — and executed
    /// against them per shard, so one batch sees one consistent cut.
    fn pin_all(&self) -> Result<Vec<(ReaderPin, DeltaSnapshot)>> {
        self.shards
            .iter()
            .map(|s| Ok(shard_forest(s)?.pin_with_delta()))
            .collect()
    }

    /// Plans `q` once for every shard: the planner's entry counts are the
    /// sums across all shard pins, mirroring what the unsharded forest
    /// would see. Per-shard planning is not an option — entry counts
    /// diverge across shards (and tie on empty ones), different placements
    /// carry different aggregate functions, and gathered partials must all
    /// come from one placement to merge coherently.
    fn plan_across(
        &self,
        pins: &[(ReaderPin, DeltaSnapshot)],
        q: &SliceQuery,
    ) -> Result<ForestPlan> {
        plan_query_with_entries(
            pins[0].0.placements(),
            |id| pins.iter().map(|(g, _)| g.entries_of(id)).sum(),
            &self.catalog,
            q,
        )
    }

    /// Scatter-gather over an explicit shard set: execute partials on each
    /// target shard's pin, then merge in shard order and finalize once.
    fn gather_one(&self, q: &SliceQuery, targets: &[usize]) -> Result<Vec<QueryRow>> {
        let pins = self.pin_all()?;
        let plan = self.plan_across(&pins, q)?;
        let slots: Vec<Mutex<Option<PartialAnswer<'_>>>> =
            targets.iter().map(|_| Mutex::new(None)).collect();
        let jobs: Vec<Job<'_>> = targets
            .iter()
            .zip(&slots)
            .map(|(&s, slot)| {
                let shard = &self.shards[s];
                let (pin, delta) = &pins[s];
                let plan = &plan;
                Box::new(move || {
                    let part = execute_planned_query_partial(
                        pin,
                        delta.as_option(),
                        shard.env(),
                        &self.catalog,
                        q,
                        plan,
                    )?;
                    *slot.lock().unwrap_or_else(|p| p.into_inner()) = Some(part);
                    Ok(())
                }) as Job<'_>
            })
            .collect();
        run_jobs(self.outer_threads.min(targets.len()), jobs)?;
        let gather_start = Instant::now();
        let mut merged: Option<PartialAnswer<'_>> = None;
        for slot in slots {
            let part = slot
                .into_inner()
                .unwrap_or_else(|p| p.into_inner())
                .ok_or_else(|| CtError::invalid("shard worker returned no partial answer"))?;
            match &mut merged {
                None => merged = Some(part),
                Some(m) => m.absorb(part),
            }
        }
        let rows = merged
            .ok_or_else(|| CtError::invalid("query routed to zero shards"))?
            .finish();
        if self.recorder.is_enabled() {
            self.recorder
                .observe("shard.gather_us", gather_start.elapsed().as_micros() as u64);
        }
        Ok(rows)
    }

    fn record_fanout(&self, consulted: usize) {
        if self.recorder.is_enabled() {
            self.recorder.observe("shard.fanout", consulted as u64);
            if consulted < self.shards.len() {
                self.recorder.add("shard.pruned", 1);
            }
        }
    }

    /// The multi-shard batch path behind [`RolapEngine::query_batch`] and
    /// [`ServingEngine::serve_batch`]: routes every query up front, then
    /// each owning shard serves its sub-batch under a single MVCC pin,
    /// reusing the batch scheduler when the shard environment is parallel.
    /// Plans are computed once, centrally, and shared by every shard (see
    /// [`Self::plan_across`]). The returned generation stamp is summed over
    /// the *pinned* per-shard snapshots — the same cut the answers were
    /// computed from, even if a refresh commits mid-batch.
    ///
    /// Alongside the answers, every query gets its cache stamps: one
    /// [`AnswerStamp`] per consulted shard (from that shard's pin) plus a
    /// trailing *plan guard* whose generation is the sum over **all**
    /// pinned shards. Planning scores placements by entry counts summed
    /// across every shard, so a refresh on a shard a query never touches
    /// can still flip its chosen placement (and, for pruned queries, its
    /// answer); the guard makes any refresh anywhere a stamp mismatch,
    /// while ingests to non-consulted shards — which never affect planning
    /// — keep the stamps matching so subset hits survive.
    fn query_batch_stamped(
        &self,
        queries: &[SliceQuery],
    ) -> Result<(u64, BatchResult, Vec<Vec<AnswerStamp>>)> {
        let mut assign: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        let mut targets_per_q: Vec<Vec<usize>> = Vec::with_capacity(queries.len());
        for (qi, q) in queries.iter().enumerate() {
            let targets = self.router.shards_for(q, self.partition_attr);
            self.record_fanout(targets.len());
            for &s in &targets {
                assign[s].push(qi);
            }
            targets_per_q.push(targets);
        }
        let pins = self.pin_all()?;
        let stamp: u64 = pins.iter().map(|(pin, _)| pin.number()).sum();
        let shard_stamps: Vec<AnswerStamp> =
            pins.iter().map(|(pin, delta)| AnswerStamp::of(pin, delta)).collect();
        let plan_guard = AnswerStamp { generation: stamp, delta_epoch: 0 };
        let stamps: Vec<Vec<AnswerStamp>> = targets_per_q
            .iter()
            .map(|targets| {
                targets
                    .iter()
                    .map(|&s| shard_stamps[s])
                    .chain(std::iter::once(plan_guard))
                    .collect()
            })
            .collect();
        let plans = queries
            .iter()
            .map(|q| self.plan_across(&pins, q))
            .collect::<Result<Vec<_>>>()?;
        let slots: Vec<Mutex<Option<ShardBatch<'_>>>> =
            self.shards.iter().map(|_| Mutex::new(None)).collect();
        let jobs: Vec<Job<'_>> = self
            .shards
            .iter()
            .enumerate()
            .filter(|(s, _)| !assign[*s].is_empty())
            .map(|(s, shard)| {
                let indices = &assign[s];
                let slot = &slots[s];
                let (pin, delta) = &pins[s];
                let plans = &plans;
                Box::new(move || {
                    let out = if shard.env().parallelism().is_parallel() && indices.len() > 1 {
                        let sub: Vec<SliceQuery> =
                            indices.iter().map(|&i| queries[i].clone()).collect();
                        let sub_plans: Vec<ForestPlan> =
                            indices.iter().map(|&i| plans[i].clone()).collect();
                        let (partials, sched) = execute_planned_query_batch_partial(
                            pin,
                            Some(delta),
                            shard.env(),
                            &self.catalog,
                            &sub,
                            &sub_plans,
                        )?;
                        ShardBatch {
                            partials: indices.iter().copied().zip(partials).collect(),
                            sched: Some(sched),
                        }
                    } else {
                        let mut partials = Vec::with_capacity(indices.len());
                        for &qi in indices {
                            let part = execute_planned_query_partial(
                                pin,
                                delta.as_option(),
                                shard.env(),
                                &self.catalog,
                                &queries[qi],
                                &plans[qi],
                            )?;
                            partials.push((qi, part));
                        }
                        ShardBatch { partials, sched: None }
                    };
                    *slot.lock().unwrap_or_else(|p| p.into_inner()) = Some(out);
                    Ok(())
                }) as Job<'_>
            })
            .collect();
        run_jobs(self.outer_threads, jobs)?;
        // Gather: merge partials per query in shard order, finalize once.
        let gather_start = Instant::now();
        let mut merged: Vec<Option<PartialAnswer<'_>>> =
            queries.iter().map(|_| None).collect();
        let mut sched_total: Option<SchedSummary> = None;
        for slot in slots {
            let Some(batch) = slot.into_inner().unwrap_or_else(|p| p.into_inner()) else {
                continue;
            };
            if let Some(s) = batch.sched {
                let t = sched_total.get_or_insert_with(SchedSummary::default);
                t.groups += s.groups;
                t.reordered += s.reordered;
                t.shared_scans += s.shared_scans;
            }
            for (qi, part) in batch.partials {
                match &mut merged[qi] {
                    None => merged[qi] = Some(part),
                    Some(m) => m.absorb(part),
                }
            }
        }
        let results = merged
            .into_iter()
            .map(|m| {
                m.map(PartialAnswer::finish)
                    .ok_or_else(|| CtError::invalid("query routed to zero shards"))
            })
            .collect::<Result<Vec<_>>>()?;
        if self.recorder.is_enabled() {
            self.recorder
                .observe("shard.gather_us", gather_start.elapsed().as_micros() as u64);
        }
        Ok((stamp, BatchResult { results, sched: sched_total }, stamps))
    }
}

/// Per-shard output of a batched scatter: partial answers tagged with their
/// position in the caller's query list, plus the shard's scheduler summary.
struct ShardBatch<'a> {
    partials: Vec<(usize, PartialAnswer<'a>)>,
    sched: Option<SchedSummary>,
}

fn shard_forest(shard: &CubetreeEngine) -> Result<&CubetreeForest> {
    shard.forest().ok_or_else(|| CtError::invalid("engine not loaded yet"))
}

impl RolapEngine for ShardedEngine {
    fn name(&self) -> &'static str {
        "cubetrees-sharded"
    }

    fn load(&mut self, fact: &Relation) -> Result<()> {
        let col = fact.col_of(self.partition_attr).ok_or_else(|| {
            CtError::invalid(format!(
                "fact lacks the partition attribute {}",
                self.catalog.attr(self.partition_attr).name
            ))
        })?;
        self.resolve_router(fact, col);
        let parts = self.partition(fact)?;
        self.loaded_rows = parts.iter().map(|p| p.len() as u64).collect();
        self.record_shard_gauges(&parts);
        if let Some(root) = &self.root {
            // Persist the resolved layout BEFORE any per-shard load commits:
            // if the skew guard switched the router (or the layout changed)
            // and the process crashes mid-load, a reopen must route the
            // shards that did commit with the strategy they were partitioned
            // under, never a stale one. A full rebuild also supersedes any
            // crashed refresh, so a leftover intent is cleared here.
            write_meta(root, self.spec.shards, self.partition_attr, &self.router)?;
            clear_intent(root)?;
        }
        let jobs: Vec<Job<'_>> = self
            .shards
            .iter_mut()
            .zip(&parts)
            .map(|(shard, part)| Box::new(move || shard.load(part)) as Job<'_>)
            .collect();
        run_jobs(self.outer_threads, jobs)
    }

    fn query(&self, q: &SliceQuery) -> Result<Vec<QueryRow>> {
        if self.shards.len() == 1 {
            return self.shards[0].query(q);
        }
        let targets = self.router.shards_for(q, self.partition_attr);
        self.record_fanout(targets.len());
        self.gather_one(q, &targets)
    }

    fn query_batch(&self, queries: &[SliceQuery]) -> Result<BatchResult> {
        // One shard is the unsharded engine: delegate so behavior (and the
        // per-query I/O profile) is bit-identical to the baseline.
        if self.shards.len() == 1 {
            return self.shards[0].query_batch(queries);
        }
        Ok(self.query_batch_stamped(queries)?.1)
    }

    fn update(&mut self, delta: &Relation) -> Result<()> {
        self.refresh(delta)
    }

    fn storage_bytes(&self) -> u64 {
        self.shards.iter().map(RolapEngine::storage_bytes).sum()
    }

    fn env(&self) -> &ct_storage::StorageEnv {
        // The trait exposes one environment; shard 0 stands in for
        // single-env callers (benches sum every shard via
        // [`ShardedEngine::io_snapshot`] instead).
        self.shards[0].env()
    }

    fn catalog(&self) -> &Catalog {
        &self.catalog
    }
}

impl ServingEngine for ShardedEngine {
    fn loaded(&self) -> bool {
        self.shards.iter().all(|s| s.forest().is_some())
    }

    fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    fn recorder(&self) -> &ct_obs::Recorder {
        &self.recorder
    }

    fn generation(&self) -> u64 {
        ShardedEngine::generation(self)
    }

    fn plan_check(&self, q: &SliceQuery) -> Result<()> {
        // Shards materialize the same view set; shard 0 answers for all.
        let forest = shard_forest(&self.shards[0])?;
        crate::query::plan_generation_query(&forest.pin(), &self.catalog, q).map(|_| ())
    }

    fn views(&self) -> Result<(u64, Vec<ViewInfo>)> {
        // Every shard holds the same placements; entry counts sum across
        // shards, the stamp is the sharded generation sum.
        let mut views: Option<Vec<ViewInfo>> = None;
        for s in &self.shards {
            let (_, infos) = crate::engine::view_infos(shard_forest(s)?, &self.catalog);
            match &mut views {
                None => views = Some(infos),
                Some(acc) => {
                    for (a, b) in acc.iter_mut().zip(infos) {
                        a.entries += b.entries;
                    }
                }
            }
        }
        Ok((ShardedEngine::generation(self), views.unwrap_or_default()))
    }

    /// The scatter-gather batch path under one pin *per shard*: every
    /// shard's sub-batch answers from a single snapshot, and `run_jobs`
    /// already converts per-shard panics into errors, so a poisoned batch
    /// reports instead of unwinding into the server's batcher thread. Batch
    /// failures are whole-batch (matching the unsharded scheduled path).
    /// The generation stamp is summed from the per-shard pins the batch
    /// executed under — never from a separate pre-execution read, so a
    /// refresh committing between stamp and execution cannot mislabel the
    /// snapshot (the unsharded engine stamps from its pin the same way).
    fn serve_batch(
        &self,
        queries: &[SliceQuery],
    ) -> (u64, Vec<std::result::Result<ServedAnswer, String>>) {
        // One shard is the unsharded engine: its serve_batch stamps from
        // the single pin it executes under.
        if self.shards.len() == 1 {
            return self.shards[0].serve_batch(queries);
        }
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.query_batch_stamped(queries)
        }));
        match outcome {
            Ok(Ok((stamp, out, stamps))) => (
                stamp,
                out.results
                    .into_iter()
                    .zip(stamps)
                    .map(|(rows, stamps)| Ok(ServedAnswer { rows, stamps }))
                    .collect(),
            ),
            Ok(Err(e)) => {
                let msg = format!("batch execution failed: {e}");
                (ShardedEngine::generation(self), queries.iter().map(|_| Err(msg.clone())).collect())
            }
            Err(_) => {
                let msg = "batch execution panicked".to_string();
                (ShardedEngine::generation(self), queries.iter().map(|_| Err(msg.clone())).collect())
            }
        }
    }

    /// The sharded probe: one stamp per shard the router would consult for
    /// `q`, plus the plan guard (see `query_batch_stamped` for why
    /// the guard exists). Stamp reads are per-shard, matching the
    /// consistency of `pin_all` — the scatter-gather path itself pins
    /// shards one at a time, so a probe-time match proves equivalence to a
    /// fresh scatter-gather execution, which is the bar serving answers
    /// already meet.
    fn answer_stamps(&self, q: &SliceQuery) -> Vec<AnswerStamp> {
        if self.shards.len() == 1 {
            return ServingEngine::answer_stamps(&self.shards[0], q);
        }
        let mut shard_stamps = Vec::with_capacity(self.shards.len());
        for s in &self.shards {
            match s.forest() {
                Some(f) => shard_stamps.push(f.answer_stamp()),
                None => return Vec::new(),
            }
        }
        let guard = AnswerStamp {
            generation: shard_stamps.iter().map(|s| s.generation).sum(),
            delta_epoch: 0,
        };
        self.router
            .shards_for(q, self.partition_attr)
            .into_iter()
            .map(|s| shard_stamps[s])
            .chain(std::iter::once(guard))
            .collect()
    }

    fn refresh(&self, delta: &Relation) -> Result<()> {
        ShardedEngine::refresh(self, delta)
    }

    fn ingest(&self, rows: &Relation) -> Result<u64> {
        ShardedEngine::ingest(self, rows)
    }

    fn delta_stats(&self) -> Option<DeltaStats> {
        ShardedEngine::delta_stats(self)
    }

    fn compaction_due(&self, config: &DeltaConfig) -> bool {
        self.shards
            .iter()
            .any(|s| s.forest().is_some_and(|f| f.delta().should_compact(config)))
    }

    fn compact_delta(&self) -> Result<bool> {
        ShardedEngine::compact_delta(self)
    }

    fn io_snapshot(&self) -> IoSnapshot {
        ShardedEngine::io_snapshot(self)
    }
}

/// Persisted routing metadata.
struct ShardMeta {
    shards: usize,
    partition_attr: AttrId,
    router: ShardRouter,
}

/// Atomically writes `root/shards.meta` (tmp + rename, same discipline as
/// the per-shard manifests).
fn write_meta(root: &Path, shards: usize, attr: AttrId, router: &ShardRouter) -> Result<()> {
    let strategy = match router {
        ShardRouter::Hash { .. } => "hash".to_string(),
        ShardRouter::Range { boundaries } => {
            let cuts: Vec<String> = boundaries.iter().map(u64::to_string).collect();
            format!("range {}", cuts.join(" "))
        }
    };
    let body = format!("shards {shards}\npartition_attr {}\nstrategy {strategy}\n", attr.0);
    let tmp = root.join("shards.meta.tmp");
    std::fs::write(&tmp, body)?;
    std::fs::rename(&tmp, root.join("shards.meta"))?;
    Ok(())
}

fn read_meta(root: &Path) -> Result<Option<ShardMeta>> {
    let path = root.join("shards.meta");
    let body = match std::fs::read_to_string(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let corrupt = || CtError::corrupt(format!("malformed shards.meta at {}", path.display()));
    let mut shards = None;
    let mut attr = None;
    let mut router = None;
    for line in body.lines() {
        let mut it = line.split_whitespace();
        match it.next() {
            Some("shards") => {
                shards = Some(it.next().ok_or_else(corrupt)?.parse().map_err(|_| corrupt())?);
            }
            Some("partition_attr") => {
                let id: u16 = it.next().ok_or_else(corrupt)?.parse().map_err(|_| corrupt())?;
                attr = Some(AttrId(id));
            }
            Some("strategy") => match it.next().ok_or_else(corrupt)? {
                "hash" => router = Some(None),
                "range" => {
                    let cuts = it
                        .map(|c| c.parse().map_err(|_| corrupt()))
                        .collect::<Result<Vec<u64>>>()?;
                    router = Some(Some(cuts));
                }
                _ => return Err(corrupt()),
            },
            _ => return Err(corrupt()),
        }
    }
    let shards: usize = shards.ok_or_else(corrupt)?;
    if shards == 0 {
        return Err(corrupt());
    }
    let attr = attr.ok_or_else(corrupt)?;
    let router = match router.ok_or_else(corrupt)? {
        None => ShardRouter::Hash { shards },
        Some(cuts) => {
            if cuts.len() + 1 != shards || cuts.windows(2).any(|w| w[0] > w[1]) {
                return Err(corrupt());
            }
            ShardRouter::Range { boundaries: cuts }
        }
    };
    Ok(Some(ShardMeta { shards, partition_attr: attr, router }))
}

/// File name of the refresh-intent record at a sharded root.
const INTENT_NAME: &str = "refresh.intent";

/// The persisted intent of one multi-shard refresh: its refresh id, whether
/// it is still pending (written before the fan-out, flipped to done after
/// every shard committed or recovery converged), and the shards its delta
/// touches. Ids are monotone per root — each refresh reads the last intent
/// and takes `id + 1` — so a shard manifest stamped `refresh-<id>` proves
/// that exact refresh committed there.
struct RefreshIntent {
    id: u64,
    pending: bool,
    touched: Vec<usize>,
}

/// The manifest stamp token of refresh `id`.
fn refresh_stamp(id: u64) -> String {
    format!("refresh-{id}")
}

/// Atomically writes `root/refresh.intent` (tmp + rename, same discipline
/// as `shards.meta`).
fn write_intent(root: &Path, intent: &RefreshIntent) -> Result<()> {
    let touched: Vec<String> = intent.touched.iter().map(usize::to_string).collect();
    let state = if intent.pending { "pending" } else { "done" };
    let body =
        format!("id {}\nstate {state}\ntouched {}\n", intent.id, touched.join(" "));
    let tmp = root.join("refresh.intent.tmp");
    std::fs::write(&tmp, body)?;
    std::fs::rename(&tmp, root.join(INTENT_NAME))?;
    Ok(())
}

fn read_intent(root: &Path) -> Result<Option<RefreshIntent>> {
    let path = root.join(INTENT_NAME);
    let body = match std::fs::read_to_string(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let corrupt =
        || CtError::corrupt(format!("malformed refresh.intent at {}", path.display()));
    let mut id = None;
    let mut pending = None;
    let mut touched = None;
    for line in body.lines() {
        let mut it = line.split_whitespace();
        match it.next() {
            Some("id") => {
                id = Some(it.next().ok_or_else(corrupt)?.parse().map_err(|_| corrupt())?);
            }
            Some("state") => match it.next().ok_or_else(corrupt)? {
                "pending" => pending = Some(true),
                "done" => pending = Some(false),
                _ => return Err(corrupt()),
            },
            Some("touched") => {
                touched = Some(
                    it.map(|t| t.parse().map_err(|_| corrupt()))
                        .collect::<Result<Vec<usize>>>()?,
                );
            }
            _ => return Err(corrupt()),
        }
    }
    Ok(Some(RefreshIntent {
        id: id.ok_or_else(corrupt)?,
        pending: pending.ok_or_else(corrupt)?,
        touched: touched.ok_or_else(corrupt)?,
    }))
}

/// Removes a leftover intent record (a full reload supersedes any crashed
/// refresh). Missing files are fine.
fn clear_intent(root: &Path) -> Result<()> {
    match std::fs::remove_file(root.join(INTENT_NAME)) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e.into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_common::{AggFn, ViewDef};

    #[test]
    fn hash_router_is_stable_and_in_range() {
        let r = ShardRouter::Hash { shards: 4 };
        for v in 0..1000 {
            let s = r.route(v);
            assert!(s < 4);
            assert_eq!(s, r.route(v));
        }
    }

    #[test]
    fn range_router_routes_by_boundary() {
        let r = ShardRouter::Range { boundaries: vec![10, 20, 30] };
        assert_eq!(r.shards(), 4);
        assert_eq!(r.route(0), 0);
        assert_eq!(r.route(10), 0);
        assert_eq!(r.route(11), 1);
        assert_eq!(r.route(20), 1);
        assert_eq!(r.route(30), 2);
        assert_eq!(r.route(31), 3);
        assert_eq!(r.route(u64::MAX), 3);
    }

    #[test]
    fn query_pruning_matches_routing() {
        let a = AttrId(0);
        let hash = ShardRouter::Hash { shards: 4 };
        let range = ShardRouter::Range { boundaries: vec![10, 20, 30] };
        // Equality slices prune to the one owning shard under either router.
        let eq = SliceQuery::new(vec![], vec![(a, 15)]);
        assert_eq!(hash.shards_for(&eq, a), vec![hash.route(15)]);
        assert_eq!(range.shards_for(&eq, a), vec![1]);
        // Interval constraints prune under range routing only.
        let iv = SliceQuery::new(vec![], vec![]).with_range(a, 15, 25);
        assert_eq!(hash.shards_for(&iv, a), vec![0, 1, 2, 3]);
        assert_eq!(range.shards_for(&iv, a), vec![1, 2]);
        // Unconstrained queries fan out everywhere.
        let open = SliceQuery::new(vec![a], vec![]);
        assert_eq!(hash.shards_for(&open, a).len(), 4);
    }

    #[test]
    fn meta_roundtrip() {
        let dir = ct_storage::TempDir::new("shard-meta").unwrap();
        let root = dir.path().to_path_buf();
        let router = ShardRouter::Range { boundaries: vec![7, 40] };
        write_meta(&root, 3, AttrId(2), &router).unwrap();
        let m = read_meta(&root).unwrap().unwrap();
        assert_eq!(m.shards, 3);
        assert_eq!(m.partition_attr, AttrId(2));
        assert_eq!(m.router, router);
        // Hash strategy round-trips too.
        write_meta(&root, 2, AttrId(0), &ShardRouter::Hash { shards: 2 }).unwrap();
        let m = read_meta(&root).unwrap().unwrap();
        assert_eq!(m.router, ShardRouter::Hash { shards: 2 });
    }

    #[test]
    fn intent_roundtrip() {
        let dir = ct_storage::TempDir::new("shard-intent").unwrap();
        let root = dir.path().to_path_buf();
        assert!(read_intent(&root).unwrap().is_none());
        write_intent(&root, &RefreshIntent { id: 3, pending: true, touched: vec![0, 2] })
            .unwrap();
        let i = read_intent(&root).unwrap().unwrap();
        assert_eq!((i.id, i.pending, i.touched), (3, true, vec![0, 2]));
        assert_eq!(refresh_stamp(i.id), "refresh-3");
        write_intent(&root, &RefreshIntent { id: 3, pending: false, touched: vec![0, 2] })
            .unwrap();
        assert!(!read_intent(&root).unwrap().unwrap().pending);
        // Clearing is idempotent (a reload may clear an absent intent).
        clear_intent(&root).unwrap();
        assert!(read_intent(&root).unwrap().is_none());
        clear_intent(&root).unwrap();
    }

    #[test]
    fn sharded_answers_match_unsharded_smoke() {
        let mut c = Catalog::new();
        let p = c.add_attr("p", 50);
        let s = c.add_attr("s", 8);
        let views = vec![
            ViewDef::new(0, vec![p, s], AggFn::Sum),
            ViewDef::new(1, vec![p], AggFn::Avg),
        ];
        let mut keys = Vec::new();
        let mut measures = Vec::new();
        let mut x = 11u64;
        for _ in 0..400 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            keys.push(x % 50 + 1);
            keys.push((x >> 8) % 8 + 1);
            measures.push((x >> 16) as i64 % 100);
        }
        let fact = Relation::from_fact(vec![p, s], keys, &measures);
        let mut base =
            CubetreeEngine::new(c.clone(), CubetreeConfig::new(views.clone())).unwrap();
        base.load(&fact).unwrap();
        for shards in [1usize, 3] {
            let spec = ShardSpec::new(shards).with_partition_attr(p);
            let cfg = ShardedConfig::new(CubetreeConfig::new(views.clone()), spec);
            let mut sharded = ShardedEngine::new(c.clone(), cfg).unwrap();
            sharded.load(&fact).unwrap();
            for q in [
                SliceQuery::new(vec![s], vec![(p, 7)]),
                SliceQuery::new(vec![p], vec![(s, 3)]),
                SliceQuery::new(vec![], vec![(p, 9)]),
            ] {
                let want = ct_common::query::normalize_rows(base.query(&q).unwrap());
                let got = ct_common::query::normalize_rows(sharded.query(&q).unwrap());
                assert_eq!(want, got, "shards={shards} query mismatch");
            }
        }
    }
}
