//! Scoped-worker job dispatch shared by the build/refresh pipeline
//! ([`crate::forest`]) and the batched query executor ([`crate::query`]).
//!
//! Jobs are independent units dispatched over a bounded pool of scoped
//! threads; work-stealing is a single atomic cursor over a slot vector.
//! Error reporting is deterministic: the error of the lowest-indexed failing
//! job wins regardless of completion order, and a panicking job surfaces as
//! an `Err` instead of taking down (or hanging) the pool.

use ct_common::{CtError, Result};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One boxed job.
pub(crate) type Job<'a> = Box<dyn FnOnce() -> Result<()> + Send + 'a>;

/// Runs one job, converting a panic into an error. The panic payload's
/// message is preserved when it is a string.
fn run_job_caught(job: Job<'_>) -> Result<()> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(CtError::invalid(format!("worker job panicked: {msg}")))
        }
    }
}

/// Runs independent jobs on at most `threads` scoped workers (inline when
/// sequential). Jobs may finish in any order but must be deterministic in
/// isolation; on failure the error of the lowest-indexed failing job wins,
/// so error reporting is deterministic too.
pub(crate) fn run_jobs(threads: usize, jobs: Vec<Job<'_>>) -> Result<()> {
    if threads <= 1 || jobs.len() <= 1 {
        for job in jobs {
            run_job_caught(job)?;
        }
        return Ok(());
    }
    let workers = threads.min(jobs.len());
    let slots: Vec<Mutex<Option<Job<'_>>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let errors: Vec<Mutex<Option<CtError>>> =
        slots.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                if i >= slots.len() {
                    break;
                }
                // Poisoning is impossible (locks are only held to move the
                // job/error in or out), but recover the guard rather than
                // panic if it ever happens.
                let job = slots[i].lock().unwrap_or_else(|p| p.into_inner()).take();
                let Some(job) = job else { continue };
                if let Err(e) = run_job_caught(job) {
                    *errors[i].lock().unwrap_or_else(|p| p.into_inner()) = Some(e);
                }
            });
        }
    });
    for e in errors {
        if let Some(e) = e.into_inner().unwrap_or_else(|p| p.into_inner()) {
            return Err(e);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn all_jobs_run_at_any_thread_count() {
        for threads in [1, 2, 4, 16] {
            let done = AtomicU64::new(0);
            let jobs: Vec<Job<'_>> = (0..10)
                .map(|_| {
                    Box::new(|| {
                        done.fetch_add(1, Ordering::SeqCst);
                        Ok(())
                    }) as Job<'_>
                })
                .collect();
            run_jobs(threads, jobs).unwrap();
            assert_eq!(done.load(Ordering::SeqCst), 10);
        }
    }

    #[test]
    fn lowest_index_error_wins() {
        let jobs: Vec<Job<'_>> = vec![
            Box::new(|| Ok(())),
            Box::new(|| Err(CtError::invalid("second"))),
            Box::new(|| Err(CtError::invalid("third"))),
        ];
        let err = run_jobs(4, jobs).unwrap_err();
        assert!(err.to_string().contains("second"), "got: {err}");
    }

    #[test]
    fn panics_become_errors() {
        let jobs: Vec<Job<'_>> = vec![Box::new(|| panic!("boom"))];
        let err = run_jobs(2, jobs).unwrap_err();
        assert!(err.to_string().contains("boom"), "got: {err}");
    }
}
