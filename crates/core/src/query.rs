//! Slice-query planning and execution over a Cubetree forest, plus the
//! rollup aggregation helper shared with the conventional engine.
//!
//! Planning follows the paper's observations in §3.3: a query may be
//! answerable from several materialized views ("other parameters like the
//! existence of an index … should be taken into account"). The planner
//! scores every placement that *derives* the query's lattice node by the
//! expected number of matching tuples, breaking ties toward the placement
//! whose physical sort order has the longest prefix of sliced attributes —
//! that is exactly what the paper's multi-sort-order replicas are for.

use crate::delta::DeltaSnapshot;
use crate::forest::{CubetreeForest, Generation};
use crate::jobs::{run_jobs, Job};
use crate::sched::SchedSummary;
use ct_common::query::QueryRow;
use ct_common::{
    AggFn, AggState, AttrId, Catalog, CtError, Hierarchy, Rect, Result, SliceQuery, ViewDef,
    ViewId, COORD_MAX,
};
use std::collections::HashMap;
use std::sync::Mutex;

/// Leaf pages prefetched ahead of a confirmed sequential sweep in the
/// batched executor (see [`ct_rtree::PackedRTree::search_with_readahead`]).
pub const READAHEAD_WINDOW: usize = 8;

/// Streaming group-by aggregator with hierarchy rollup and residual
/// predicate checking.
///
/// Feed it raw `(key, state)` pairs from any materialized source whose
/// projection derives the query's attributes; it translates keys through
/// dimension hierarchies, re-checks every predicate (cheap and safe — the
/// access path may have already applied some), groups by the query's
/// `group_by` list and merges aggregate states.
pub struct RollupAggregator<'a> {
    group_resolvers: Vec<Resolver<'a>>,
    pred_resolvers: Vec<(Resolver<'a>, u64)>,
    range_resolvers: Vec<(Resolver<'a>, u64, u64)>,
    groups: HashMap<Vec<u64>, AggState>,
    accepted: u64,
}

/// Source column index plus the hierarchy chain that maps it to a query
/// attribute.
type Resolver<'a> = (usize, Vec<&'a Hierarchy>);

impl<'a> RollupAggregator<'a> {
    /// Creates an aggregator for `query` over rows whose key columns are
    /// `source_attrs`.
    ///
    /// # Errors
    /// [`CtError::Unsupported`] if a query attribute is not derivable from
    /// `source_attrs`.
    pub fn new(
        catalog: &'a Catalog,
        source_attrs: &[AttrId],
        query: &SliceQuery,
    ) -> Result<Self> {
        let resolve = |target: AttrId| -> Result<(usize, Vec<&'a Hierarchy>)> {
            let (src, path) = catalog.derivation_path(source_attrs, target).ok_or_else(|| {
                CtError::unsupported(format!(
                    "query attribute {} not derivable from the chosen view",
                    catalog.attr(target).name
                ))
            })?;
            let col = source_attrs.iter().position(|&a| a == src).expect("src in list");
            Ok((col, path))
        };
        let group_resolvers =
            query.group_by.iter().map(|&a| resolve(a)).collect::<Result<Vec<_>>>()?;
        let pred_resolvers = query
            .predicates
            .iter()
            .map(|&(a, v)| Ok((resolve(a)?, v)))
            .collect::<Result<Vec<_>>>()?;
        let range_resolvers = query
            .ranges
            .iter()
            .map(|&(a, lo, hi)| Ok((resolve(a)?, lo, hi)))
            .collect::<Result<Vec<_>>>()?;
        Ok(RollupAggregator {
            group_resolvers,
            pred_resolvers,
            range_resolvers,
            groups: HashMap::new(),
            accepted: 0,
        })
    }

    /// Offers one source row; rows failing a predicate are skipped.
    pub fn accept(&mut self, key: &[u64], state: &AggState) {
        for ((col, path), want) in &self.pred_resolvers {
            let mut v = key[*col];
            for h in path {
                v = h.apply(v);
            }
            if v != *want {
                return;
            }
        }
        for ((col, path), lo, hi) in &self.range_resolvers {
            let mut v = key[*col];
            for h in path {
                v = h.apply(v);
            }
            if v < *lo || v > *hi {
                return;
            }
        }
        let mut group = Vec::with_capacity(self.group_resolvers.len());
        for (col, path) in &self.group_resolvers {
            let mut v = key[*col];
            for h in path {
                v = h.apply(v);
            }
            group.push(v);
        }
        self.accepted += 1;
        self.groups.entry(group).or_insert_with(AggState::identity).merge(state);
    }

    /// Rows that passed the predicates.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Merges another aggregator's groups into this one. Both must have
    /// been created for the *same query* (their group keys are then in the
    /// same `group_by` order); the sources may differ — this is how a tree
    /// scan absorbs the resident delta tier's aggregate states.
    pub fn absorb(&mut self, other: RollupAggregator<'_>) {
        self.accepted += other.accepted;
        for (key, state) in other.groups {
            self.groups.entry(key).or_insert_with(AggState::identity).merge(&state);
        }
    }

    /// Finalizes the groups under aggregate `f`. For deletion-safe
    /// aggregates, groups whose count reached zero were annihilated by
    /// retractions and are omitted (the group no longer exists).
    pub fn finish(self, f: AggFn) -> Vec<QueryRow> {
        self.groups
            .into_iter()
            .filter(|(_, state)| !(f.deletion_safe() && state.is_annihilated()))
            .map(|(key, state)| QueryRow { key, agg: state.finalize(f) })
            .collect()
    }
}

/// A planned access path into the forest.
#[derive(Clone, Debug)]
pub struct ForestPlan {
    /// Index into [`CubetreeForest::placements`].
    pub placement: usize,
    /// Expected matching tuples (the paper's cost unit).
    pub est_tuples: f64,
    /// Length of the physical-sort-order prefix covered by predicates.
    pub sort_prefix: usize,
}

/// Chooses the cheapest placement able to answer `q`, planning against the
/// current generation. Convenience wrapper over
/// [`plan_generation_query`] for callers that do not hold a pin.
pub fn plan_forest_query(
    forest: &CubetreeForest,
    catalog: &Catalog,
    q: &SliceQuery,
) -> Result<ForestPlan> {
    plan_generation_query(&forest.pin(), catalog, q)
}

/// Chooses the cheapest placement able to answer `q` within one pinned
/// generation (entry counts, and therefore cost estimates, are
/// per-generation state).
///
/// # Errors
/// [`CtError::Unsupported`] if no placement derives the query's node.
pub fn plan_generation_query(
    gen: &Generation,
    catalog: &Catalog,
    q: &SliceQuery,
) -> Result<ForestPlan> {
    plan_query_with_entries(gen.placements(), |id| gen.entries_of(id), catalog, q)
}

/// The planner core, over an explicit entry-count source. The sharded
/// engine plans each query *once* against the entry counts summed across
/// every shard's pinned generation, then executes the chosen placement on
/// all of them: per-shard planning could legitimately pick different views
/// on different shards (entry counts diverge; empty shards tie everywhere),
/// and views carry their own aggregate functions, so gathered partials must
/// all come from one placement to be coherent.
///
/// # Errors
/// [`CtError::Unsupported`] if no placement derives the query's node.
pub fn plan_query_with_entries(
    placements: &[crate::forest::PlacedView],
    entries_of: impl Fn(ViewId) -> u64,
    catalog: &Catalog,
    q: &SliceQuery,
) -> Result<ForestPlan> {
    let node = q.node();
    let mut best: Option<ForestPlan> = None;
    for (i, p) in placements.iter().enumerate() {
        if !catalog.derivable_from(&node, &p.def.projection) {
            continue;
        }
        let entries = entries_of(p.def.id) as f64;
        // Selectivity from predicates on attributes the view stores
        // directly; a bounded range contributes its span fraction.
        let mut selectivity = 1.0f64;
        for a in &p.def.projection {
            if let Some((lo, hi)) = q.range_of(*a) {
                let card = catalog.attr(*a).cardinality.max(1) as f64;
                let span = (hi.saturating_sub(lo) + 1) as f64;
                selectivity *= (card / span).max(1.0);
            }
        }
        let est_tuples = (entries / selectivity).max(1.0);
        // Physical sort order is the reversed projection (§2.3): count how
        // many of its leading attributes the query pins; a bounded range
        // keeps the run contiguous but ends the prefix.
        let mut sort_prefix = 0usize;
        for a in p.def.projection.iter().rev() {
            match q.range_of(*a) {
                Some((lo, hi)) if lo == hi => sort_prefix += 1,
                Some(_) => {
                    sort_prefix += 1;
                    break;
                }
                None => break,
            }
        }
        let candidate = ForestPlan { placement: i, est_tuples, sort_prefix };
        let better = match &best {
            None => true,
            Some(b) => {
                (candidate.est_tuples, std::cmp::Reverse(candidate.sort_prefix))
                    < (b.est_tuples, std::cmp::Reverse(b.sort_prefix))
            }
        };
        if better {
            best = Some(candidate);
        }
    }
    best.ok_or_else(|| {
        CtError::unsupported("no materialized view can answer this query".to_string())
    })
}

/// The search region of `q` over a placement with definition `def` in a
/// `dims`-dimensional tree: direct predicates pin their axis, open
/// attributes span `[1, COORD_MAX]`, padding axes pin to 0 (paper Figure 4).
pub(crate) fn query_region(def: &ViewDef, dims: usize, q: &SliceQuery) -> Rect {
    let arity = def.arity();
    let mut lo = vec![0u64; dims];
    let mut hi = vec![0u64; dims];
    for (axis, attr) in def.projection.iter().enumerate() {
        match q.range_of(*attr) {
            Some((l, h)) => {
                lo[axis] = l.max(1);
                hi[axis] = h.min(COORD_MAX);
            }
            None => {
                lo[axis] = 1;
                hi[axis] = COORD_MAX;
            }
        }
    }
    for axis in arity..dims {
        lo[axis] = 0;
        hi[axis] = 0;
    }
    Rect::new(&lo, &hi)
}

/// Feeds the resident delta snapshot through a fresh aggregator for `q`.
/// The delta rows are fact-grained (keyed by the full fact schema), so any
/// query answerable from a materialized view is answerable from them too —
/// the aggregator re-applies predicates and hierarchy rollups, and the
/// result absorbs into a tree-scan aggregator for the same query.
fn delta_aggregator<'a>(
    delta: &DeltaSnapshot,
    catalog: &'a Catalog,
    q: &SliceQuery,
) -> Result<RollupAggregator<'a>> {
    let mut agg = RollupAggregator::new(catalog, delta.attrs(), q)?;
    for (key, state) in delta.rows() {
        agg.accept(key, state);
    }
    Ok(agg)
}

/// Plans and executes `q` against the forest's current generation, merged
/// with the resident delta tier (pinned atomically together). `env` is
/// charged the CPU tuple cost of the entries the search touches; delta rows
/// are in-memory and charge no page I/O.
pub fn execute_forest_query(
    forest: &CubetreeForest,
    env: &ct_storage::StorageEnv,
    catalog: &Catalog,
    q: &SliceQuery,
) -> Result<Vec<QueryRow>> {
    let (pin, delta) = forest.pin_with_delta();
    execute_query_with_delta(&pin, delta.as_option(), env, catalog, q)
}

/// Plans and executes `q` against one pinned generation. The snapshot's
/// trees and files stay readable even if an update commits meanwhile.
pub fn execute_generation_query(
    gen: &Generation,
    env: &ct_storage::StorageEnv,
    catalog: &Catalog,
    q: &SliceQuery,
) -> Result<Vec<QueryRow>> {
    execute_query_with_delta(gen, None, env, catalog, q)
}

/// Plans and executes `q` against one pinned generation, merging the tree
/// scan with a resident-delta snapshot taken under the same generation lock
/// (see [`CubetreeForest::pin_with_delta`]). With `delta` `None` this is
/// exactly the historical tree-only executor, bit for bit.
pub fn execute_query_with_delta(
    gen: &Generation,
    delta: Option<&DeltaSnapshot>,
    env: &ct_storage::StorageEnv,
    catalog: &Catalog,
    q: &SliceQuery,
) -> Result<Vec<QueryRow>> {
    Ok(execute_query_partial(gen, delta, env, catalog, q)?.finish())
}

/// One executed query's *unfinalized* aggregate groups: the scatter-gather
/// unit of the sharded engine. Partial answers for the same query from
/// different shards (or any disjoint sources) merge with
/// [`PartialAnswer::absorb`]; [`PartialAnswer::finish`] is then called
/// exactly once, so AVG finalization and retraction annihilation happen
/// after every source has contributed. Because [`ct_common::AggState::merge`]
/// is associative and commutative over integers, the finalized rows are
/// bit-identical however the sources were partitioned.
pub struct PartialAnswer<'a> {
    agg: RollupAggregator<'a>,
    agg_fn: AggFn,
}

impl<'a> PartialAnswer<'a> {
    /// Merges another shard's partial answer for the *same query*.
    pub fn absorb(&mut self, other: PartialAnswer<'_>) {
        debug_assert_eq!(
            self.agg_fn, other.agg_fn,
            "partial answers for one query must share an aggregate function"
        );
        self.agg.absorb(other.agg);
    }

    /// Finalizes the gathered groups (AVG division, annihilated-group
    /// filtering) into result rows. Call once, after every absorb.
    pub fn finish(self) -> Vec<QueryRow> {
        self.agg.finish(self.agg_fn)
    }
}

/// The single-query executor in partial form: identical planning, tree
/// scan, metrics and delta merging to [`execute_query_with_delta`], but the
/// groups come back unfinalized so a sharded caller can gather partials
/// from several forests before one [`PartialAnswer::finish`].
pub fn execute_query_partial<'a>(
    gen: &Generation,
    delta: Option<&DeltaSnapshot>,
    env: &ct_storage::StorageEnv,
    catalog: &'a Catalog,
    q: &SliceQuery,
) -> Result<PartialAnswer<'a>> {
    let plan = plan_generation_query(gen, catalog, q)?;
    execute_planned_query_partial(gen, delta, env, catalog, q, &plan)
}

/// [`execute_query_partial`] with the access path already chosen. The
/// sharded engine plans once across all shards (see
/// [`plan_query_with_entries`]) and then runs the *same* placement on every
/// shard — placements are identical across shard forests, so the index is
/// portable.
pub fn execute_planned_query_partial<'a>(
    gen: &Generation,
    delta: Option<&DeltaSnapshot>,
    env: &ct_storage::StorageEnv,
    catalog: &'a Catalog,
    q: &SliceQuery,
    plan: &ForestPlan,
) -> Result<PartialAnswer<'a>> {
    // Root phase: successive queries accumulate under one "query" span whose
    // I/O delta reconciles against the global counters.
    let _phase = env.phase("query");
    let placement = &gen.placements()[plan.placement];
    let tree = gen.tree(placement.tree);
    let region = query_region(&placement.def, tree.dims(), q);
    let arity = placement.def.arity();
    let mut agg = RollupAggregator::new(catalog, &placement.def.projection, q)?;
    let want = placement.def.id.0;
    let mut touched = 0u64;
    tree.search(&region, |view, point, state| {
        touched += 1;
        if view == want {
            agg.accept(&point.coords()[..arity], state);
        }
        true
    })?;
    env.stats().add_tuples(touched);
    let recorder = env.recorder();
    if recorder.is_enabled() {
        recorder.observe("core.query.touched_entries", touched);
        recorder.add(&format!("core.query.by_view.v{}", placement.def.id.0), 1);
    }
    if let Some(d) = delta.and_then(DeltaSnapshot::as_option) {
        agg.absorb(delta_aggregator(d, catalog, q)?);
        if recorder.is_enabled() {
            recorder.add("core.query.delta_merged", 1);
            recorder.observe("core.query.delta_rows", d.groups());
        }
    }
    Ok(PartialAnswer { agg, agg_fn: placement.def.agg })
}

/// Results of one scheduled batch execution.
pub struct BatchOutput {
    /// Per-query result rows, positionally aligned with the input batch.
    pub results: Vec<Vec<QueryRow>>,
    /// What the scheduler did with the batch.
    pub sched: SchedSummary,
}

/// Plans, schedules and executes a whole batch against the forest.
///
/// The batch is partitioned into per-tree groups (see [`crate::sched`]);
/// groups run concurrently on the environment's worker budget while queries
/// inside a group sweep their tree's leaf runs in packed order with
/// readahead. Consecutive queries with identical placement and region share
/// one leaf pass: the tree is searched once and every rider's aggregator is
/// fed from it (safe because [`RollupAggregator`] re-checks all predicates),
/// with the touched-tuple cost charged once for the pass.
///
/// Per-query results and counters are identical to running the sequential
/// executor query by query; only execution order (and therefore interleaved
/// I/O attribution at `threads > 1`) differs. Execution errors surface with
/// the lowest batch index among failing *groups* — planning errors, the
/// common case, are reported for the first offending query exactly like the
/// sequential loop.
pub fn execute_forest_query_batch(
    forest: &CubetreeForest,
    env: &ct_storage::StorageEnv,
    catalog: &Catalog,
    queries: &[SliceQuery],
) -> Result<BatchOutput> {
    // One pin around the whole batch: every query in it answers from the
    // same generation, merged with the delta resident at pin time.
    let (pin, delta) = forest.pin_with_delta();
    execute_generation_query_batch_with_delta(&pin, delta.as_option(), env, catalog, queries)
}

/// Plans, schedules and executes a whole batch against one pinned
/// generation — the form [`execute_forest_query_batch`] delegates to.
///
/// Callers that need to attribute the answers to a specific committed
/// generation (the serving layer stamps every HTTP response with the
/// generation it answered from) pin the forest themselves, read
/// [`Generation::number`], and execute through this entry point, so the
/// stamp and the answers are guaranteed to come from the same snapshot.
pub fn execute_generation_query_batch(
    gen: &Generation,
    env: &ct_storage::StorageEnv,
    catalog: &Catalog,
    queries: &[SliceQuery],
) -> Result<BatchOutput> {
    execute_generation_query_batch_with_delta(gen, None, env, catalog, queries)
}

/// The batched executor with resident-delta merging: every rider of a
/// shared scan additionally absorbs the delta snapshot's groups for its own
/// query (each rider re-applies its own predicates over the delta rows,
/// exactly as it does over the shared tree scan). With `delta` `None` this
/// is the historical batched executor, bit for bit.
pub fn execute_generation_query_batch_with_delta(
    gen: &Generation,
    delta: Option<&DeltaSnapshot>,
    env: &ct_storage::StorageEnv,
    catalog: &Catalog,
    queries: &[SliceQuery],
) -> Result<BatchOutput> {
    let (partials, sched) =
        execute_generation_query_batch_partial(gen, delta, env, catalog, queries)?;
    let results = partials.into_iter().map(PartialAnswer::finish).collect();
    Ok(BatchOutput { results, sched })
}

/// The batched executor in partial form: the scheduled per-tree sweeps,
/// shared scans, readahead and delta merging of
/// [`execute_generation_query_batch_with_delta`], returning one unfinalized
/// [`PartialAnswer`] per query (positionally aligned with the batch) for a
/// sharded caller to gather before finishing.
pub fn execute_generation_query_batch_partial<'a>(
    gen: &Generation,
    delta: Option<&DeltaSnapshot>,
    env: &ct_storage::StorageEnv,
    catalog: &'a Catalog,
    queries: &[SliceQuery],
) -> Result<(Vec<PartialAnswer<'a>>, SchedSummary)> {
    let plans = queries
        .iter()
        .map(|q| plan_generation_query(gen, catalog, q))
        .collect::<Result<Vec<_>>>()?;
    execute_planned_query_batch_partial(gen, delta, env, catalog, queries, &plans)
}

/// [`execute_generation_query_batch_partial`] with every access path
/// already chosen (one plan per query, positionally aligned). See
/// [`plan_query_with_entries`] for why the sharded engine must plan
/// centrally.
pub fn execute_planned_query_batch_partial<'a>(
    gen: &Generation,
    delta: Option<&DeltaSnapshot>,
    env: &ct_storage::StorageEnv,
    catalog: &'a Catalog,
    queries: &[SliceQuery],
    plans: &[ForestPlan],
) -> Result<(Vec<PartialAnswer<'a>>, SchedSummary)> {
    let delta = delta.and_then(DeltaSnapshot::as_option);
    // One root "query" phase around the whole batch, opened and dropped on
    // the calling thread so root phases never overlap and the I/O delta
    // reconciles against the global counters.
    let phase = env.phase("query");
    let (groups, sched) = crate::sched::schedule_planned(gen, queries, plans)?;
    let recorder = env.recorder().clone();
    if recorder.is_enabled() {
        recorder.add("query.sched.batches", 1);
        recorder.add("query.sched.groups", sched.groups);
        recorder.add("query.sched.reordered", sched.reordered);
        recorder.add("query.sched.shared_scans", sched.shared_scans);
    }
    let slots: Vec<Mutex<Option<PartialAnswer<'a>>>> =
        queries.iter().map(|_| Mutex::new(None)).collect();
    let mut jobs: Vec<Job<'_>> = Vec::with_capacity(groups.len());
    for group in groups {
        let slots = &slots;
        let recorder = recorder.clone();
        jobs.push(Box::new(move || {
            // Wall-only span: concurrent groups cannot split the shared I/O
            // counters, so per-group spans time only.
            let _span = recorder.span(&format!("query/tree{}", group.tree));
            let tree = gen.tree(group.tree);
            let mut i = 0;
            while i < group.queries.len() {
                // Extend the shared-scan unit over identical scans.
                let mut j = i + 1;
                while j < group.queries.len()
                    && group.queries[j].plan.placement == group.queries[i].plan.placement
                    && group.queries[j].region == group.queries[i].region
                {
                    j += 1;
                }
                let unit = &group.queries[i..j];
                let placement = &gen.placements()[unit[0].plan.placement];
                let arity = placement.def.arity();
                let want = placement.def.id.0;
                let mut aggs = unit
                    .iter()
                    .map(|sq| {
                        RollupAggregator::new(
                            catalog,
                            &placement.def.projection,
                            &queries[sq.index],
                        )
                    })
                    .collect::<Result<Vec<_>>>()?;
                let mut touched = 0u64;
                tree.search_with_readahead(&unit[0].region, READAHEAD_WINDOW, |view, point, state| {
                    touched += 1;
                    if view == want {
                        for agg in aggs.iter_mut() {
                            agg.accept(&point.coords()[..arity], state);
                        }
                    }
                    true
                })?;
                // One leaf pass, charged once however many queries rode it.
                env.stats().add_tuples(touched);
                if recorder.is_enabled() {
                    // Identical scans touch identical entries, so per-query
                    // metric values match the sequential executor's.
                    for _ in unit {
                        recorder.observe("core.query.touched_entries", touched);
                        recorder.add(&format!("core.query.by_view.v{want}"), 1);
                    }
                }
                for (sq, mut agg) in unit.iter().zip(aggs) {
                    if let Some(d) = delta {
                        agg.absorb(delta_aggregator(d, catalog, &queries[sq.index])?);
                        if recorder.is_enabled() {
                            recorder.add("core.query.delta_merged", 1);
                            recorder.observe("core.query.delta_rows", d.groups());
                        }
                    }
                    *slots[sq.index].lock().unwrap_or_else(|p| p.into_inner()) =
                        Some(PartialAnswer { agg, agg_fn: placement.def.agg });
                }
                i = j;
            }
            Ok(())
        }));
    }
    run_jobs(env.parallelism().threads, jobs)?;
    drop(phase);
    let partials = slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .unwrap_or_else(|p| p.into_inner())
                .ok_or_else(|| CtError::invalid("batch execution left a query unanswered"))
        })
        .collect::<Result<Vec<_>>>()?;
    Ok((partials, sched))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_common::ViewDef;
    use ct_cube::Relation;
    use ct_rtree::LeafFormat;
    use ct_storage::StorageEnv;

    /// Small warehouse: 3 fact attrs, views {psc, ps, c, none} + replicas.
    fn setup() -> (StorageEnv, Catalog, CubetreeForest, [AttrId; 3]) {
        let env = StorageEnv::new("forest-query").unwrap();
        let mut cat = Catalog::new();
        let p = cat.add_attr("partkey", 8);
        let s = cat.add_attr("suppkey", 4);
        let c = cat.add_attr("custkey", 6);
        let mut keys = Vec::new();
        let mut measures = Vec::new();
        let mut x = 99u64;
        for _ in 0..500 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            keys.extend_from_slice(&[x % 8 + 1, (x >> 13) % 4 + 1, (x >> 27) % 6 + 1]);
            measures.push(((x >> 40) % 20) as i64 + 1);
        }
        let fact = Relation::from_fact(vec![p, s, c], keys, &measures);
        let views = vec![
            ViewDef::new(0, vec![p, s, c], ct_common::AggFn::Sum),
            ViewDef::new(1, vec![p, s], ct_common::AggFn::Sum),
            ViewDef::new(2, vec![c], ct_common::AggFn::Sum),
            ViewDef::new(3, vec![], ct_common::AggFn::Sum),
        ];
        let replicas = vec![
            (ct_common::ViewId(0), vec![s, c, p]),
            (ct_common::ViewId(0), vec![c, p, s]),
        ];
        let forest = CubetreeForest::build(
            &env,
            &cat,
            &fact,
            &views,
            &replicas,
            LeafFormat::Compressed,
        )
        .unwrap();
        (env, cat, forest, [p, s, c])
    }

    /// Brute-force reference answer straight from the fact relation.
    fn reference(
        fact: &Relation,
        q: &SliceQuery,
    ) -> Vec<QueryRow> {
        let mut groups: HashMap<Vec<u64>, AggState> = HashMap::new();
        'rows: for i in 0..fact.len() {
            let key = fact.key(i);
            for (a, v) in &q.predicates {
                let col = fact.col_of(*a).unwrap();
                if key[col] != *v {
                    continue 'rows;
                }
            }
            let g: Vec<u64> =
                q.group_by.iter().map(|a| key[fact.col_of(*a).unwrap()]).collect();
            groups.entry(g).or_insert_with(AggState::identity).merge(&fact.states[i]);
        }
        let mut rows: Vec<QueryRow> = groups
            .into_iter()
            .map(|(key, st)| QueryRow { key, agg: st.finalize(AggFn::Sum) })
            .collect();
        rows.sort_by(|a, b| a.key.cmp(&b.key));
        rows
    }

    fn fact_of(env: &StorageEnv) -> Relation {
        // Regenerate the same fact data the setup used.
        let _ = env;
        let mut keys = Vec::new();
        let mut measures = Vec::new();
        let mut x = 99u64;
        for _ in 0..500 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            keys.extend_from_slice(&[x % 8 + 1, (x >> 13) % 4 + 1, (x >> 27) % 6 + 1]);
            measures.push(((x >> 40) % 20) as i64 + 1);
        }
        Relation::from_fact(vec![AttrId(0), AttrId(1), AttrId(2)], keys, &measures)
    }

    #[test]
    fn exact_view_slice_matches_reference() {
        let (env, cat, forest, [p, s, _]) = setup();
        let fact = fact_of(&env);
        let q = SliceQuery::new(vec![s], vec![(p, 3)]);
        let mut got = execute_forest_query(&forest, &env, &cat, &q).unwrap();
        got.sort_by(|a, b| a.key.cmp(&b.key));
        assert_eq!(got, reference(&fact, &q));
    }

    #[test]
    fn unmaterialized_node_answered_by_rollup() {
        let (env, cat, forest, [p, s, c]) = setup();
        let fact = fact_of(&env);
        // Node {p, c} is not materialized; must roll up from psc (a replica).
        let q = SliceQuery::new(vec![p], vec![(c, 2)]);
        let mut got = execute_forest_query(&forest, &env, &cat, &q).unwrap();
        got.sort_by(|a, b| a.key.cmp(&b.key));
        assert_eq!(got, reference(&fact, &q));
        let _ = s;
    }

    #[test]
    fn planner_prefers_replica_with_matching_sort_order() {
        let (_env, cat, forest, [p, s, c]) = setup();
        // Slice on partkey: the replica with projection (s,c,p) sorts by
        // (p,c,s), so partkey is its leading sort attribute.
        let q = SliceQuery::new(vec![s, c], vec![(p, 1)]);
        let plan = plan_forest_query(&forest, &cat, &q).unwrap();
        let chosen = &forest.placements()[plan.placement].def;
        assert_eq!(
            *chosen.projection.last().unwrap(),
            p,
            "expected a placement whose last (leading-sort) attribute is partkey, got {:?}",
            chosen.projection
        );
        assert_eq!(plan.sort_prefix, 1);
    }

    #[test]
    fn planner_prefers_small_exact_view() {
        let (_env, cat, forest, [_, _, c]) = setup();
        let q = SliceQuery::new(vec![], vec![(c, 4)]);
        let plan = plan_forest_query(&forest, &cat, &q).unwrap();
        let chosen = &forest.placements()[plan.placement].def;
        assert_eq!(chosen.projection, vec![c], "V{{c}} is the cheapest source");
    }

    #[test]
    fn none_view_scalar_query() {
        let (env, cat, forest, _) = setup();
        let fact = fact_of(&env);
        let q = SliceQuery::new(vec![], vec![]);
        let got = execute_forest_query(&forest, &env, &cat, &q).unwrap();
        assert_eq!(got.len(), 1);
        let expect: i64 = fact.states.iter().map(|s| s.sum).sum();
        assert_eq!(got[0].agg, expect as f64);
        // And the planner must have used the 1-row none view.
        let plan = plan_forest_query(&forest, &cat, &q).unwrap();
        assert!(forest.placements()[plan.placement].def.projection.is_empty());
    }

    #[test]
    fn every_slice_type_matches_reference() {
        let (env, cat, forest, attrs) = setup();
        let fact = fact_of(&env);
        // All 27 slice types of the 3-attr lattice, with fixed values 1..2.
        for node_mask in 0..8usize {
            let node: Vec<AttrId> =
                (0..3).filter(|i| node_mask & (1 << i) != 0).map(|i| attrs[i]).collect();
            for fix_mask in 0..(1 << node.len()) {
                let mut group_by = Vec::new();
                let mut predicates = Vec::new();
                for (j, &a) in node.iter().enumerate() {
                    if fix_mask & (1 << j) != 0 {
                        predicates.push((a, (j as u64 % 2) + 1));
                    } else {
                        group_by.push(a);
                    }
                }
                let q = SliceQuery::new(group_by, predicates);
                let mut got = execute_forest_query(&forest, &env, &cat, &q).unwrap();
                got.sort_by(|a, b| a.key.cmp(&b.key));
                assert_eq!(got, reference(&fact, &q), "query {:?}", q.display(&cat));
            }
        }
    }

    #[test]
    fn update_then_query_reflects_delta() {
        let (env, cat, forest, [p, s, c]) = setup();
        let fact = fact_of(&env);
        // Delta: 50 rows over the same key space.
        let mut keys = Vec::new();
        let mut measures = Vec::new();
        let mut x = 12345u64;
        for _ in 0..50 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            keys.extend_from_slice(&[x % 8 + 1, (x >> 17) % 4 + 1, (x >> 29) % 6 + 1]);
            measures.push(((x >> 45) % 9) as i64 + 1);
        }
        let delta = Relation::from_fact(vec![p, s, c], keys.clone(), &measures);
        forest.update(&env, &cat, &delta).unwrap();
        // Reference over fact ∪ delta.
        let mut combined_keys = fact.keys.clone();
        combined_keys.extend_from_slice(&keys);
        let mut combined_measures: Vec<i64> = fact.states.iter().map(|st| st.sum).collect();
        combined_measures.extend_from_slice(&measures);
        let combined = Relation::from_fact(vec![p, s, c], combined_keys, &combined_measures);
        for q in [
            SliceQuery::new(vec![s], vec![(p, 1)]),
            SliceQuery::new(vec![], vec![]),
            SliceQuery::new(vec![p], vec![(c, 3)]),
            SliceQuery::new(vec![], vec![(c, 5)]),
        ] {
            let mut got = execute_forest_query(&forest, &env, &cat, &q).unwrap();
            got.sort_by(|a, b| a.key.cmp(&b.key));
            assert_eq!(got, reference(&combined, &q), "query {:?}", q.display(&cat));
        }
    }

    #[test]
    fn underivable_query_is_rejected() {
        let (_env, mut cat, forest, _) = setup();
        let alien = cat.add_attr("alien", 5);
        let q = SliceQuery::new(vec![alien], vec![]);
        assert!(plan_forest_query(&forest, &cat, &q).is_err());
    }
}
