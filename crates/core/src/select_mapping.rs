//! The SelectMapping algorithm (paper Figure 5).
//!
//! Given views `V = {V1 … Vn}`, SelectMapping allocates a forest of
//! Cubetrees such that **no Cubetree contains two views of the same arity**.
//! Views are grouped by arity into sets `S1 … SmaxArity`; each round creates
//! a tree of the highest remaining arity and maps into it one view from each
//! non-empty `Sj`. The result is *minimal*: it uses the fewest trees that
//! keep every view in "a distinct continuous string of leaf-nodes" (§2.4),
//! which simultaneously minimizes non-leaf space overhead and maximizes the
//! buffer hit ratio of the tree tops.
//!
//! The scalar `none` view (arity 0) maps to the origin of the first tree
//! (paper §3, Table 5).

use ct_common::{ViewDef, ViewId};

/// One Cubetree in the plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreeSpec {
    /// Dimensionality of the tree (= the largest arity mapped into it).
    pub dims: usize,
    /// Views mapped to this tree, in increasing arity order (which is also
    /// their packed storage order, since lower-arity views carry trailing
    /// zeros and therefore sort first).
    pub views: Vec<ViewId>,
}

/// The forest allocation produced by [`select_mapping`].
#[derive(Clone, Debug, Default)]
pub struct MappingPlan {
    /// One spec per Cubetree, in creation order (`R1`, `R2`, …).
    pub trees: Vec<TreeSpec>,
}

impl MappingPlan {
    /// The tree index a view was mapped to.
    pub fn tree_of(&self, view: ViewId) -> Option<usize> {
        self.trees.iter().position(|t| t.views.contains(&view))
    }

    /// Number of trees.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }
}

/// Runs SelectMapping over the given view definitions.
///
/// Views of equal arity are assigned in input order (FIFO), which reproduces
/// the paper's Figure 7 grouping for the 9-view example and Table 5 for the
/// TPC-D set.
pub fn select_mapping(views: &[ViewDef]) -> MappingPlan {
    let max_arity = views.iter().map(|v| v.arity()).max().unwrap_or(0);
    // Group views by arity (paper: sets S_i). FIFO within each set.
    let mut sets: Vec<std::collections::VecDeque<ViewId>> =
        vec![std::collections::VecDeque::new(); max_arity + 1];
    for v in views {
        sets[v.arity()].push_back(v.id);
    }
    let mut plan = MappingPlan::default();
    // All arity-0 views (normally just `none`) ride along in the first tree.
    let zero_arity: Vec<ViewId> = sets[0].drain(..).collect();

    // Highest arity with unmapped views drives each round.
    while let Some(arity) = (1..=max_arity).rev().find(|&i| !sets[i].is_empty()) {
        let mut tree = TreeSpec { dims: arity, views: Vec::new() };
        if plan.trees.is_empty() {
            tree.views.extend(zero_arity.iter().copied());
        }
        // One view from each non-empty S_j, ascending so storage order holds.
        for set in sets.iter_mut().take(arity + 1).skip(1) {
            if let Some(v) = set.pop_front() {
                tree.views.push(v);
            }
        }
        plan.trees.push(tree);
    }
    // Degenerate case: only arity-0 views requested.
    if plan.trees.is_empty() && !zero_arity.is_empty() {
        plan.trees.push(TreeSpec { dims: 1, views: zero_arity });
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_common::{AggFn, AttrId};

    fn v(id: u32, arity: usize) -> ViewDef {
        ViewDef::new(id, (0..arity).map(|i| AttrId(i as u16)).collect(), AggFn::Sum)
    }

    /// Paper Figure 7: the 9-view example groups into R1{x,y,z,w} =
    /// {V1,V2,V5,V3}, R2{x,y,z,w} = {V6,V7,V4}, R3{x,y} = {V8,V9}.
    #[test]
    fn figure_7_grouping() {
        let arities = [1usize, 2, 4, 4, 3, 1, 2, 1, 2]; // V1..V9
        let views: Vec<ViewDef> =
            arities.iter().enumerate().map(|(i, &a)| v(i as u32 + 1, a)).collect();
        let plan = select_mapping(&views);
        assert_eq!(plan.tree_count(), 3);
        assert_eq!(plan.trees[0].dims, 4);
        assert_eq!(
            plan.trees[0].views,
            vec![ViewId(1), ViewId(2), ViewId(5), ViewId(3)],
            "R1 = V1, V2, V5, V3 in increasing arity"
        );
        assert_eq!(plan.trees[1].dims, 4);
        assert_eq!(plan.trees[1].views, vec![ViewId(6), ViewId(7), ViewId(4)]);
        assert_eq!(plan.trees[2].dims, 2);
        assert_eq!(plan.trees[2].views, vec![ViewId(8), ViewId(9)]);
    }

    /// Paper Table 5: the TPC-D view set maps to R1{x,y,z} = {psc, ps, c,
    /// none}, R2{x} = {s}, R3{x} = {p}.
    #[test]
    fn table_5_allocation() {
        // Input order mirrors the paper's benefit order:
        // psc(3), ps(2), c(1), s(1), p(1), none(0).
        let views = vec![v(0, 3), v(1, 2), v(2, 1), v(3, 1), v(4, 1), v(5, 0)];
        let plan = select_mapping(&views);
        assert_eq!(plan.tree_count(), 3);
        assert_eq!(plan.trees[0].dims, 3);
        assert_eq!(
            plan.trees[0].views,
            vec![ViewId(5), ViewId(2), ViewId(1), ViewId(0)],
            "R1 holds none, c, ps, psc"
        );
        assert_eq!(plan.trees[1], TreeSpec { dims: 1, views: vec![ViewId(3)] });
        assert_eq!(plan.trees[2], TreeSpec { dims: 1, views: vec![ViewId(4)] });
    }

    #[test]
    fn no_tree_has_two_views_of_same_arity() {
        let views: Vec<ViewDef> = (0..20).map(|i| v(i, (i as usize % 4) + 1)).collect();
        let plan = select_mapping(&views);
        for tree in &plan.trees {
            let mut arities: Vec<usize> = tree
                .views
                .iter()
                .map(|id| views.iter().find(|w| w.id == *id).unwrap().arity())
                .collect();
            let before = arities.len();
            arities.sort();
            arities.dedup();
            assert_eq!(arities.len(), before, "duplicate arity in {tree:?}");
        }
    }

    #[test]
    fn tree_count_is_max_set_size() {
        // The minimal forest size equals the largest arity class.
        let views: Vec<ViewDef> =
            (0..7).map(|i| v(i, 2)).chain((7..9).map(|i| v(i, 3))).collect();
        let plan = select_mapping(&views);
        assert_eq!(plan.tree_count(), 7);
        // Every view is mapped exactly once.
        let mut all: Vec<ViewId> = plan.trees.iter().flat_map(|t| t.views.clone()).collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 9);
    }

    #[test]
    fn only_none_view() {
        let plan = select_mapping(&[v(0, 0)]);
        assert_eq!(plan.tree_count(), 1);
        assert_eq!(plan.trees[0].views, vec![ViewId(0)]);
        assert_eq!(plan.tree_of(ViewId(0)), Some(0));
        assert_eq!(plan.tree_of(ViewId(9)), None);
    }

    #[test]
    fn empty_input() {
        let plan = select_mapping(&[]);
        assert_eq!(plan.tree_count(), 0);
    }

    #[test]
    fn views_in_tree_are_ascending_arity() {
        let views: Vec<ViewDef> = (0..12).map(|i| v(i, (i as usize % 5).max(1))).collect();
        let plan = select_mapping(&views);
        for tree in &plan.trees {
            let arities: Vec<usize> = tree
                .views
                .iter()
                .map(|id| views.iter().find(|w| w.id == *id).unwrap().arity())
                .collect();
            assert!(arities.windows(2).all(|w| w[0] < w[1]), "{arities:?}");
        }
    }
}
