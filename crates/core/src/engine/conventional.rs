//! The conventional (relational) storage engine — the paper's baseline.
//!
//! "The straight forward implementation materializes the ROLAP views using
//! IUS tables which are then indexed with B-trees" (paper §1). Here each
//! materialized view is:
//!
//! * a heap table of `[group-by keys ++ aggregate words]` rows;
//! * a *primary* B-tree on the projection-order key mapping to the row's
//!   RID — the "additional indexing … to speed up this phase" of the
//!   paper's footnote 7, required for row-at-a-time incremental updates;
//! * any number of *secondary* B-trees with permuted keys (the paper's
//!   selected set `I`), also mapping to RIDs.
//!
//! Queries pick the cheapest view + index by expected matching tuples;
//! index access fetches qualifying rows from the heap by RID — the random
//! I/O pattern that separates this organization from the Cubetrees.
//! Incremental refresh probes the primary index once per delta group and
//! either updates the heap row in place or inserts into the heap *and every
//! index* — the behaviour that "did not succeed in completing the task
//! within the one day window" in the paper's Table 7.

use crate::engine::RolapEngine;
use crate::query::RollupAggregator;
use ct_common::query::QueryRow;
use ct_common::{
    AggState, AttrId, Catalog, CostModel, CtError, Result, SliceQuery, ViewDef, ViewId,
};
use ct_btree::BTree;
use ct_cube::{compute_view, plan_computation, PlanSource, Relation, SizeEstimator};
use ct_heap::{HeapTable, Rid};
use ct_storage::env::DEFAULT_POOL_PAGES;
use ct_storage::StorageEnv;

/// Configuration of a [`ConventionalEngine`].
#[derive(Clone, Debug)]
pub struct ConventionalConfig {
    /// The views to materialize as tables.
    pub views: Vec<ViewDef>,
    /// Secondary indexes `(view, key order)` — the selection algorithm's
    /// set `I`.
    pub indexes: Vec<(ViewId, Vec<AttrId>)>,
    /// Buffer pool size in pages.
    pub pool_pages: usize,
    /// I/O cost model for simulated time.
    pub cost: CostModel,
    /// Metrics recorder; disabled by default (zero-cost probes).
    pub recorder: ct_obs::Recorder,
    /// Deterministic fault-injection plan; inert by default.
    pub faults: ct_storage::FaultPlan,
}

impl ConventionalConfig {
    /// A default configuration over the given views (no secondary indexes).
    pub fn new(views: Vec<ViewDef>) -> Self {
        ConventionalConfig {
            views,
            indexes: Vec::new(),
            pool_pages: DEFAULT_POOL_PAGES,
            cost: CostModel::default(),
            recorder: ct_obs::Recorder::disabled(),
            faults: ct_storage::FaultPlan::none(),
        }
    }

    /// Adds a secondary index.
    pub fn with_index(mut self, view: ViewId, order: Vec<AttrId>) -> Self {
        self.indexes.push((view, order));
        self
    }

    /// Attaches a metrics recorder (see [`ct_obs::Recorder::enabled`]).
    pub fn with_recorder(mut self, recorder: ct_obs::Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Attaches a fault-injection plan (see [`ct_storage::FaultPlan`]).
    pub fn with_faults(mut self, faults: ct_storage::FaultPlan) -> Self {
        self.faults = faults;
        self
    }
}

/// Wall-clock and simulated time split of the initial load, mirroring the
/// paper's Table 6 columns ("Views" vs "Indices").
#[derive(Clone, Copy, Debug, Default)]
pub struct LoadBreakdown {
    /// Wall seconds computing views and filling tables.
    pub views_wall: f64,
    /// Simulated seconds for the same.
    pub views_sim: f64,
    /// Wall seconds building B-tree indexes.
    pub index_wall: f64,
    /// Simulated seconds for the same.
    pub index_sim: f64,
}

/// One materialized view: heap table + primary index + secondary indexes.
struct MatView {
    def: ViewDef,
    table: HeapTable,
    table_fid: ct_storage::FileId,
    /// `None` for the scalar `none` view (no key columns to index).
    primary: Option<BTree>,
    secondaries: Vec<(Vec<AttrId>, BTree)>,
    index_fids: Vec<ct_storage::FileId>,
}

/// The conventional relational configuration.
pub struct ConventionalEngine {
    env: StorageEnv,
    catalog: Catalog,
    config: ConventionalConfig,
    views: Vec<MatView>,
    breakdown: LoadBreakdown,
}

impl ConventionalEngine {
    /// Creates an engine (storage environment included) for `catalog`.
    pub fn new(catalog: Catalog, config: ConventionalConfig) -> Result<Self> {
        for (vid, order) in &config.indexes {
            let def = config
                .views
                .iter()
                .find(|v| v.id == *vid)
                .ok_or_else(|| CtError::invalid(format!("index on unknown view {vid:?}")))?;
            if !def.covers_exactly(order) {
                return Err(CtError::invalid(
                    "index key must be a permutation of its view's projection",
                ));
            }
        }
        let env = StorageEnv::with_config_faults(
            "conventional",
            config.pool_pages,
            config.cost,
            ct_storage::Parallelism::default(),
            config.recorder.clone(),
            config.faults.clone(),
        )?;
        Ok(ConventionalEngine {
            env,
            catalog,
            config,
            views: Vec::new(),
            breakdown: LoadBreakdown::default(),
        })
    }

    /// The time split of the last [`RolapEngine::load`] (Table 6's columns).
    pub fn load_breakdown(&self) -> LoadBreakdown {
        self.breakdown
    }

    /// Full recomputation refresh: drops every materialized structure and
    /// rebuilds from `full_fact` (the paper's Table 7 middle row).
    pub fn recompute(&mut self, full_fact: &Relation) -> Result<()> {
        for v in self.views.drain(..) {
            self.env.remove_file(v.table_fid)?;
            for fid in v.index_fids {
                self.env.remove_file(fid)?;
            }
        }
        self.load(full_fact)
    }

    fn materialize(&mut self, def: &ViewDef, rel: &Relation) -> Result<()> {
        let t0 = std::time::Instant::now();
        let io0 = self.env.snapshot();
        let arity = def.arity();
        let agg_w = def.agg.width();
        let table_fid = self.env.create_file(&format!("view-{}-table", def.id.0))?;
        let mut table = HeapTable::create(self.env.pool().clone(), table_fid, (arity + agg_w).max(1))?;
        let mut rids = Vec::with_capacity(rel.len());
        let mut row = vec![0u64; arity + agg_w];
        let mut agg_words = Vec::with_capacity(agg_w);
        for i in 0..rel.len() {
            row[..arity].copy_from_slice(rel.key(i));
            agg_words.clear();
            rel.states[i].encode(def.agg, &mut agg_words);
            row[arity..].copy_from_slice(&agg_words);
            rids.push(table.append(&row)?.to_u64());
        }
        table.flush_meta()?;
        self.env.stats().add_tuples(rel.len() as u64);
        let io1 = self.env.snapshot();
        let t1 = std::time::Instant::now();
        self.breakdown.views_wall += (t1 - t0).as_secs_f64();
        self.breakdown.views_sim +=
            io1.since(&io0).simulated_seconds(self.env.cost_model());

        let mut index_fids = Vec::new();
        // Primary index on the projection order: the relation arrives sorted
        // that way, so this is a sequential bulk load.
        let primary = if arity > 0 {
            let fid = self.env.create_file(&format!("view-{}-pk", def.id.0))?;
            index_fids.push(fid);
            let mut i = 0usize;
            let t = BTree::bulk_load(self.env.pool().clone(), fid, arity, 1, || {
                if i < rel.len() {
                    let pair = (rel.key(i).to_vec(), vec![rids[i]]);
                    i += 1;
                    Ok(Some(pair))
                } else {
                    Ok(None)
                }
            })?;
            Some(t)
        } else {
            None
        };

        // Secondary indexes: sort (permuted key, rid) pairs, bulk load.
        let mut secondaries = Vec::new();
        for (vid, order) in self.config.indexes.clone() {
            if vid != def.id {
                continue;
            }
            let perm: Vec<usize> = order
                .iter()
                .map(|a| def.projection.iter().position(|b| b == a).unwrap())
                .collect();
            let mut pairs: Vec<(Vec<u64>, u64)> = (0..rel.len())
                .map(|i| {
                    let k = rel.key(i);
                    (perm.iter().map(|&c| k[c]).collect(), rids[i])
                })
                .collect();
            pairs.sort();
            self.env.stats().add_tuples(rel.len() as u64);
            let fid =
                self.env.create_file(&format!("view-{}-ix-{}", def.id.0, secondaries.len()))?;
            index_fids.push(fid);
            let mut it = pairs.into_iter();
            let t = BTree::bulk_load(self.env.pool().clone(), fid, arity, 1, || {
                Ok(it.next().map(|(k, r)| (k, vec![r])))
            })?;
            secondaries.push((order, t));
        }
        let io2 = self.env.snapshot();
        self.breakdown.index_wall += t1.elapsed().as_secs_f64();
        self.breakdown.index_sim +=
            io2.since(&io1).simulated_seconds(self.env.cost_model());
        self.views.push(MatView { def: def.clone(), table, table_fid, primary, secondaries, index_fids });
        Ok(())
    }

    /// Syncs every live view file and commits the durable manifest naming
    /// them, so a crash after this point recovers to the current state.
    fn commit_manifest(&self) -> Result<()> {
        let mut entries = Vec::new();
        for mv in &self.views {
            let id = mv.def.id.0;
            let mut fids = mv.index_fids.iter();
            let mut named: Vec<(String, ct_storage::FileId)> =
                vec![(format!("view-{id}-table"), mv.table_fid)];
            if mv.primary.is_some() {
                let fid = *fids
                    .next()
                    .ok_or_else(|| CtError::invalid("primary index has no backing file"))?;
                named.push((format!("view-{id}-pk"), fid));
            }
            for (j, &fid) in fids.enumerate() {
                named.push((format!("view-{id}-ix-{j}"), fid));
            }
            for (component, fid) in named {
                self.env.pool().file(fid)?.sync()?;
                entries.push(self.env.manifest_entry(&component, fid)?);
            }
        }
        self.env.commit_manifest(entries)
    }

    /// Chooses the cheapest (view, access path) for `q`.
    fn plan(&self, q: &SliceQuery) -> Result<(usize, AccessPath, f64)> {
        let node = q.node();
        let mut best: Option<(usize, AccessPath, f64, usize)> = None;
        for (i, mv) in self.views.iter().enumerate() {
            if !self.catalog.derivable_from(&node, &mv.def.projection) {
                continue;
            }
            let rows = mv.table.len() as f64;
            // Scan path.
            let mut cand: (AccessPath, f64, usize) = (AccessPath::Scan, rows, 0);
            // Index paths: primary (projection order) + secondaries. A key
            // prefix is leading equality attributes, optionally extended by
            // one bounded range on the next attribute.
            let mut orders: Vec<(&[AttrId], AccessPath)> = Vec::new();
            if mv.primary.is_some() {
                orders.push((
                    &mv.def.projection,
                    AccessPath::Primary { eq_len: 0, range_next: false },
                ));
            }
            for (j, (order, _)) in mv.secondaries.iter().enumerate() {
                orders.push((order, AccessPath::Secondary { j, eq_len: 0, range_next: false }));
            }
            for (order, path) in orders {
                let mut eq_len = 0usize;
                let mut range_next = false;
                let mut selectivity = 1.0f64;
                for a in order {
                    match q.range_of(*a) {
                        Some((l, h)) if l == h => {
                            eq_len += 1;
                            selectivity *= self.catalog.attr(*a).cardinality.max(1) as f64;
                        }
                        Some((l, h)) => {
                            range_next = true;
                            let card = self.catalog.attr(*a).cardinality.max(1) as f64;
                            let span = (h.saturating_sub(l) + 1) as f64;
                            selectivity *= (card / span).max(1.0);
                            break;
                        }
                        None => break,
                    }
                }
                if eq_len == 0 && !range_next {
                    continue;
                }
                let est = (rows / selectivity).max(1.0);
                let depth = eq_len + range_next as usize;
                if (est, std::cmp::Reverse(depth)) < (cand.1, std::cmp::Reverse(cand.2)) {
                    cand = (path.with_shape(eq_len, range_next), est, depth);
                }
            }
            let better = match &best {
                None => true,
                Some((_, _, c, p)) => (cand.1, std::cmp::Reverse(cand.2)) < (*c, std::cmp::Reverse(*p)),
            };
            if better {
                best = Some((i, cand.0, cand.1, cand.2));
            }
        }
        best.map(|(i, p, c, _)| (i, p, c))
            .ok_or_else(|| CtError::unsupported("no materialized view can answer this query"))
    }

    fn execute(&self, q: &SliceQuery, view: usize, path: AccessPath) -> Result<Vec<QueryRow>> {
        let mv = &self.views[view];
        let arity = mv.def.arity();
        let mut agg = RollupAggregator::new(&self.catalog, &mv.def.projection, q)?;
        let mut processed = 0u64;
        match path {
            AccessPath::Scan => {
                mv.table.scan(|_, row| {
                    let state = AggState::decode(mv.def.agg, &row[arity..])
                        .expect("aggregate state decodes");
                    agg.accept(&row[..arity], &state);
                    processed += 1;
                    true
                })?;
            }
            AccessPath::Primary { eq_len, range_next }
            | AccessPath::Secondary { eq_len, range_next, .. } => {
                let (order, tree): (&[AttrId], &BTree) = match path {
                    AccessPath::Primary { .. } => (
                        &mv.def.projection,
                        mv.primary.as_ref().expect("planned primary exists"),
                    ),
                    AccessPath::Secondary { j, .. } => {
                        let (o, t) = &mv.secondaries[j];
                        (o, t)
                    }
                    AccessPath::Scan => unreachable!(),
                };
                // Key-space bounds: equality prefix, optional range on the
                // next key column, then open.
                let mut lo_key = vec![0u64; tree.key_len()];
                let mut hi_key = vec![u64::MAX; tree.key_len()];
                for (i, a) in order.iter().take(eq_len).enumerate() {
                    // A degenerate range [v, v] counts as equality too.
                    let (v, _) = q.range_of(*a).expect("planned prefix is fixed");
                    lo_key[i] = v;
                    hi_key[i] = v;
                }
                if range_next {
                    let (l, h) =
                        q.range_of(order[eq_len]).expect("planned range exists");
                    lo_key[eq_len] = l;
                    hi_key[eq_len] = h;
                }
                let mut rids = Vec::new();
                tree.scan_range(&lo_key, &hi_key, |_, pay| {
                    rids.push(Rid::from_u64(pay[0]));
                    true
                })?;
                // RID fetches hit the heap in index order — the random-I/O
                // pattern the paper attributes to the conventional scheme.
                for rid in rids {
                    let row = mv.table.get(rid)?;
                    let state = AggState::decode(mv.def.agg, &row[arity..])?;
                    agg.accept(&row[..arity], &state);
                    processed += 1;
                }
            }
        }
        self.env.stats().add_tuples(processed);
        let recorder = self.env.recorder();
        if recorder.is_enabled() {
            recorder.observe("core.query.touched_entries", processed);
            recorder.add(&format!("core.query.by_view.v{}", mv.def.id.0), 1);
        }
        Ok(agg.finish(mv.def.agg))
    }
}

/// How a planned query reaches its view's rows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AccessPath {
    /// Full heap scan.
    Scan,
    /// Primary index, probing with `eq_len` leading equality attributes and
    /// optionally one range on the next key column.
    Primary {
        /// Equality prefix length.
        eq_len: usize,
        /// Whether a bounded range extends the prefix by one column.
        range_next: bool,
    },
    /// Secondary index `j`, probed the same way.
    Secondary {
        /// Index position within the view's secondary list.
        j: usize,
        /// Equality prefix length.
        eq_len: usize,
        /// Whether a bounded range extends the prefix by one column.
        range_next: bool,
    },
}

impl AccessPath {
    fn with_shape(self, eq_len: usize, range_next: bool) -> AccessPath {
        match self {
            AccessPath::Primary { .. } => AccessPath::Primary { eq_len, range_next },
            AccessPath::Secondary { j, .. } => AccessPath::Secondary { j, eq_len, range_next },
            AccessPath::Scan => AccessPath::Scan,
        }
    }
}

impl RolapEngine for ConventionalEngine {
    fn name(&self) -> &'static str {
        "conventional"
    }

    fn load(&mut self, fact: &Relation) -> Result<()> {
        if !self.views.is_empty() {
            return Err(CtError::invalid("engine already loaded; use update or recompute"));
        }
        self.breakdown = LoadBreakdown::default();
        let phase = self.env.phase("load");
        let t0 = std::time::Instant::now();
        let io0 = self.env.snapshot();
        let estimator = SizeEstimator::new(&self.catalog, fact.len() as u64);
        let defs = self.config.views.clone();
        let sizes: Vec<u64> = defs.iter().map(|v| estimator.estimate(&v.projection)).collect();
        let plan =
            plan_computation(&self.catalog, &fact.attrs, fact.len() as u64, &defs, &sizes)?;
        let mut relations: Vec<Option<Relation>> = (0..defs.len()).map(|_| None).collect();
        {
            let _compute = phase.child("compute_views");
            for step in &plan.steps {
                let def = &defs[step.target];
                let sort: Vec<usize> = (0..def.arity()).collect(); // projection order
                let rel = match step.source {
                    PlanSource::Fact => {
                        compute_view(&self.env, &self.catalog, fact, &def.projection, &sort)?
                    }
                    PlanSource::View(j) => {
                        let src = relations[j].as_ref().expect("plan order violated");
                        compute_view(&self.env, &self.catalog, src, &def.projection, &sort)?
                    }
                };
                relations[step.target] = Some(rel);
            }
        }
        // View computation belongs to the "Views" column of Table 6.
        self.breakdown.views_wall += t0.elapsed().as_secs_f64();
        self.breakdown.views_sim +=
            self.env.snapshot().since(&io0).simulated_seconds(self.env.cost_model());
        {
            let _materialize = phase.child("materialize");
            for (i, def) in defs.iter().enumerate() {
                let rel = relations[i].take().expect("all views computed");
                self.materialize(def, &rel)?;
            }
        }
        self.env.pool().flush_all()?;
        self.commit_manifest()
    }

    fn query(&self, q: &SliceQuery) -> Result<Vec<QueryRow>> {
        let _phase = self.env.phase("query");
        let (view, path, _cost) = self.plan(q)?;
        self.execute(q, view, path)
    }

    /// Row-at-a-time incremental maintenance: one primary-index probe per
    /// delta group, then either an in-place heap update or a heap insert
    /// plus an insert into **every** index of the view.
    fn update(&mut self, delta: &Relation) -> Result<()> {
        if delta.has_retractions() {
            if let Some(mv) = self.views.iter().find(|mv| !mv.def.agg.deletion_safe()) {
                return Err(CtError::unsupported(format!(
                    "delta contains deletions but view {:?} is materialized with {}, \
                     which cannot absorb retractions; use a deletion-safe aggregate \
                     (count, avg or sum+count)",
                    mv.def.id,
                    mv.def.agg.name()
                )));
            }
        }
        let _phase = self.env.phase("update");
        let catalog = self.catalog.clone();
        for mv in &mut self.views {
            let sort: Vec<usize> = (0..mv.def.arity()).collect();
            let rel = compute_view(&self.env, &catalog, delta, &mv.def.projection, &sort)?;
            let arity = mv.def.arity();
            let agg_w = mv.def.agg.width();
            let mut row = vec![0u64; arity + agg_w];
            let mut words = Vec::with_capacity(agg_w);
            for i in 0..rel.len() {
                let key = rel.key(i);
                let delta_state = rel.states[i];
                let existing = match &mv.primary {
                    Some(t) => t.get(key)?,
                    None => {
                        // Scalar none view: its single row lives at a fixed RID.
                        if mv.table.is_empty() {
                            None
                        } else {
                            Some(vec![Rid { page: 1, slot: 0 }.to_u64()])
                        }
                    }
                };
                match existing {
                    Some(pay) => {
                        let rid = Rid::from_u64(pay[0]);
                        let mut old = mv.table.get(rid)?;
                        let mut state = AggState::decode(mv.def.agg, &old[arity..])?;
                        state.merge(&delta_state);
                        words.clear();
                        state.encode(mv.def.agg, &mut words);
                        old[arity..].copy_from_slice(&words);
                        mv.table.update(rid, &old)?;
                    }
                    None => {
                        row[..arity].copy_from_slice(key);
                        words.clear();
                        delta_state.encode(mv.def.agg, &mut words);
                        row[arity..].copy_from_slice(&words);
                        let rid = mv.table.append(&row)?.to_u64();
                        if let Some(t) = &mut mv.primary {
                            t.insert(key, &[rid])?;
                        }
                        for (order, t) in &mut mv.secondaries {
                            let perm: Vec<u64> = order
                                .iter()
                                .map(|a| {
                                    let c =
                                        mv.def.projection.iter().position(|b| b == a).unwrap();
                                    key[c]
                                })
                                .collect();
                            t.insert(&perm, &[rid])?;
                        }
                    }
                }
            }
            self.env.stats().add_tuples(rel.len() as u64);
            mv.table.flush_meta()?;
            if let Some(t) = &mut mv.primary {
                t.flush_meta()?;
            }
            for (_, t) in &mut mv.secondaries {
                t.flush_meta()?;
            }
        }
        self.env.pool().flush_all()?;
        self.commit_manifest()
    }

    fn storage_bytes(&self) -> u64 {
        self.views
            .iter()
            .map(|v| {
                self.env.file_bytes(v.table_fid)
                    + v.index_fids.iter().map(|&f| self.env.file_bytes(f)).sum::<u64>()
            })
            .sum()
    }

    fn env(&self) -> &StorageEnv {
        &self.env
    }

    fn catalog(&self) -> &Catalog {
        &self.catalog
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_common::AggFn;

    fn catalog() -> (Catalog, AttrId, AttrId) {
        let mut c = Catalog::new();
        let p = c.add_attr("p", 5);
        let s = c.add_attr("s", 3);
        (c, p, s)
    }

    #[test]
    fn index_config_is_validated() {
        let (c, p, s) = catalog();
        let views = vec![ViewDef::new(0, vec![p, s], AggFn::Sum)];
        // Index on an unknown view.
        let bad = ConventionalConfig::new(views.clone()).with_index(ViewId(7), vec![p, s]);
        assert!(ConventionalEngine::new(c.clone(), bad).is_err());
        // Index whose key is not a permutation of the view.
        let bad = ConventionalConfig::new(views.clone()).with_index(ViewId(0), vec![p]);
        assert!(ConventionalEngine::new(c.clone(), bad).is_err());
        // A valid rotation works.
        let good = ConventionalConfig::new(views).with_index(ViewId(0), vec![s, p]);
        assert!(ConventionalEngine::new(c, good).is_ok());
    }

    #[test]
    fn double_load_is_rejected() {
        let (c, p, s) = catalog();
        let views = vec![ViewDef::new(0, vec![p, s], AggFn::Sum)];
        let mut e = ConventionalEngine::new(c, ConventionalConfig::new(views)).unwrap();
        let fact = Relation::from_fact(vec![p, s], vec![1, 1], &[2]);
        e.load(&fact).unwrap();
        assert!(e.load(&fact).is_err(), "use update or recompute instead");
        e.recompute(&fact).unwrap(); // recompute is the sanctioned reload
        let rows = e.query(&SliceQuery::new(vec![], vec![(p, 1)])).unwrap();
        assert_eq!(rows[0].agg, 2.0);
    }

    #[test]
    fn load_breakdown_accumulates() {
        let (c, p, s) = catalog();
        let views = vec![
            ViewDef::new(0, vec![p, s], AggFn::Sum),
            ViewDef::new(1, vec![p], AggFn::Sum),
        ];
        let cfg = ConventionalConfig::new(views).with_index(ViewId(0), vec![s, p]);
        let mut e = ConventionalEngine::new(c, cfg).unwrap();
        let mut keys = Vec::new();
        let mut measures = Vec::new();
        for i in 0..200u64 {
            keys.extend_from_slice(&[i % 5 + 1, i % 3 + 1]);
            measures.push(1);
        }
        let fact = Relation::from_fact(vec![ct_common::AttrId(0), ct_common::AttrId(1)], keys, &measures);
        e.load(&fact).unwrap();
        let bd = e.load_breakdown();
        assert!(bd.views_wall > 0.0);
        assert!(bd.views_sim >= 0.0);
        assert!(bd.index_wall > 0.0);
    }

    #[test]
    fn scalar_none_view_updates_in_place() {
        let (c, p, s) = catalog();
        let views = vec![ViewDef::new(0, vec![], AggFn::Sum)];
        let mut e = ConventionalEngine::new(c, ConventionalConfig::new(views)).unwrap();
        let fact = Relation::from_fact(vec![p, s], vec![1, 1, 2, 2], &[10, 20]);
        e.load(&fact).unwrap();
        let delta = Relation::from_fact(vec![p, s], vec![3, 3], &[5]);
        e.update(&delta).unwrap();
        let rows = e.query(&SliceQuery::new(vec![], vec![])).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].agg, 35.0);
    }
}
