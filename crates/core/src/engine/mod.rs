//! The two end-to-end ROLAP storage engines of the paper's evaluation.
//!
//! Both engines materialize the *same* logical view set over the same paged
//! storage substrate and answer the same [`SliceQuery`] model, so every
//! difference in the experiments comes from the storage organization itself:
//!
//! * [`ConventionalEngine`] — "the straight forward implementation": each
//!   view in a heap table, indexed by B-trees; row-at-a-time incremental
//!   maintenance (paper §3, the Informix-tables configuration).
//! * [`CubetreeEngine`] — the paper's proposal: the views in a SelectMapping
//!   forest of packed compressed R-trees with merge-pack refresh.

mod conventional;
mod cubetree_engine;

pub use conventional::{ConventionalConfig, ConventionalEngine, LoadBreakdown};
pub use cubetree_engine::{CubetreeConfig, CubetreeEngine};

use crate::sched::SchedSummary;
use ct_common::query::QueryRow;
use ct_common::{Catalog, Result, SliceQuery};
use ct_cube::Relation;
use ct_storage::StorageEnv;

/// Results of answering a whole query batch.
pub struct BatchResult {
    /// Per-query result rows, positionally aligned with the input batch.
    pub results: Vec<Vec<QueryRow>>,
    /// Scheduler statistics, when the engine ran the batch through a
    /// scheduler (`None` for the sequential fallback).
    pub sched: Option<SchedSummary>,
}

/// A complete ROLAP storage engine: load a fact relation, answer slice
/// queries, apply bulk increments.
pub trait RolapEngine {
    /// Short engine name for reports.
    fn name(&self) -> &'static str;

    /// Computes and materializes the configured view set from `fact`.
    fn load(&mut self, fact: &Relation) -> Result<()>;

    /// Answers one slice query from the materialized views.
    fn query(&self, q: &SliceQuery) -> Result<Vec<QueryRow>>;

    /// Answers a batch of slice queries. The default implementation runs
    /// [`RolapEngine::query`] sequentially in arrival order; engines may
    /// override it to schedule and parallelize the batch, as long as the
    /// per-query results are identical to the sequential loop's.
    fn query_batch(&self, queries: &[SliceQuery]) -> Result<BatchResult> {
        let results =
            queries.iter().map(|q| self.query(q)).collect::<Result<Vec<_>>>()?;
        Ok(BatchResult { results, sched: None })
    }

    /// Applies a fact-table increment to every materialized view
    /// (each engine's native refresh strategy).
    fn update(&mut self, delta: &Relation) -> Result<()>;

    /// Bytes allocated by the materialized views and their indexes.
    fn storage_bytes(&self) -> u64;

    /// The engine's storage environment (for I/O accounting).
    fn env(&self) -> &StorageEnv;

    /// The warehouse catalog.
    fn catalog(&self) -> &Catalog;
}
