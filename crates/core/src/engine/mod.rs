//! The two end-to-end ROLAP storage engines of the paper's evaluation.
//!
//! Both engines materialize the *same* logical view set over the same paged
//! storage substrate and answer the same [`SliceQuery`] model, so every
//! difference in the experiments comes from the storage organization itself:
//!
//! * [`ConventionalEngine`] — "the straight forward implementation": each
//!   view in a heap table, indexed by B-trees; row-at-a-time incremental
//!   maintenance (paper §3, the Informix-tables configuration).
//! * [`CubetreeEngine`] — the paper's proposal: the views in a SelectMapping
//!   forest of packed compressed R-trees with merge-pack refresh.

mod conventional;
mod cubetree_engine;

pub use conventional::{ConventionalConfig, ConventionalEngine, LoadBreakdown};
pub use cubetree_engine::{CubetreeConfig, CubetreeEngine};
pub(crate) use cubetree_engine::view_infos;

use crate::delta::{DeltaConfig, DeltaStats};
use crate::forest::AnswerStamp;
use crate::sched::SchedSummary;
use ct_common::query::QueryRow;
use ct_common::{AggFn, Catalog, Result, SliceQuery};
use ct_cube::Relation;
use ct_storage::{IoSnapshot, StorageEnv};

/// Results of answering a whole query batch.
pub struct BatchResult {
    /// Per-query result rows, positionally aligned with the input batch.
    pub results: Vec<Vec<QueryRow>>,
    /// Scheduler statistics, when the engine ran the batch through a
    /// scheduler (`None` for the sequential fallback).
    pub sched: Option<SchedSummary>,
}

/// A complete ROLAP storage engine: load a fact relation, answer slice
/// queries, apply bulk increments.
pub trait RolapEngine {
    /// Short engine name for reports.
    fn name(&self) -> &'static str;

    /// Computes and materializes the configured view set from `fact`.
    fn load(&mut self, fact: &Relation) -> Result<()>;

    /// Answers one slice query from the materialized views.
    fn query(&self, q: &SliceQuery) -> Result<Vec<QueryRow>>;

    /// Answers a batch of slice queries. The default implementation runs
    /// [`RolapEngine::query`] sequentially in arrival order; engines may
    /// override it to schedule and parallelize the batch, as long as the
    /// per-query results are identical to the sequential loop's.
    fn query_batch(&self, queries: &[SliceQuery]) -> Result<BatchResult> {
        let results =
            queries.iter().map(|q| self.query(q)).collect::<Result<Vec<_>>>()?;
        Ok(BatchResult { results, sched: None })
    }

    /// Applies a fact-table increment to every materialized view
    /// (each engine's native refresh strategy).
    fn update(&mut self, delta: &Relation) -> Result<()>;

    /// Bytes allocated by the materialized views and their indexes.
    fn storage_bytes(&self) -> u64;

    /// The engine's storage environment (for I/O accounting).
    fn env(&self) -> &StorageEnv;

    /// The warehouse catalog.
    fn catalog(&self) -> &Catalog;
}

/// One materialized placement as reported by [`ServingEngine::views`].
#[derive(Clone, Debug)]
pub struct ViewInfo {
    /// Logical view id.
    pub id: u32,
    /// Human-readable view name (`V{a, b}` style).
    pub name: String,
    /// Projection attribute names, in stored sort order.
    pub projection: Vec<String>,
    /// The view's aggregate function.
    pub agg: AggFn,
    /// Materialized entries (summed across shards for a sharded engine).
    pub entries: u64,
    /// True for a sort-order replica of another placement.
    pub replica: bool,
}

/// One query's answer from [`ServingEngine::serve_batch`], paired with the
/// freshness stamps of the pinned state it was computed from. The stamps are
/// what the serving layer's answer cache stores alongside the rows: a later
/// probe whose [`ServingEngine::answer_stamps`] equal these proves the
/// current visible state is identical to the one this answer was read under,
/// so replaying the rows is MVCC-equivalent to executing the query again.
///
/// A [`CubetreeEngine`] answer carries exactly one stamp. A sharded answer
/// carries one stamp per shard the query was routed to, in shard order,
/// followed by a *plan guard* stamp (the sum of every shard's generation,
/// with a zero delta epoch): central planning scores placements by entry
/// counts summed over **all** shards, so a refresh anywhere can change which
/// placement answers a query even when the consulted shards did not move.
#[derive(Clone, Debug)]
pub struct ServedAnswer {
    /// The query's result rows.
    pub rows: Vec<QueryRow>,
    /// Freshness stamps of the state the rows were computed from.
    pub stamps: Vec<AnswerStamp>,
}

/// The engine face the HTTP serving layer binds to: batched reads under
/// snapshot pins, streaming and bulk writes, delta accounting, and the
/// metrics surface. Object-safe so one server binary can front either the
/// single [`CubetreeEngine`] or a [`crate::shard::ShardedEngine`] — routes
/// fan out across shards and merge *before* serialization, transparently to
/// clients.
pub trait ServingEngine: Send + Sync {
    /// True once a forest is materialized (serving requires a loaded engine).
    fn loaded(&self) -> bool;

    /// The warehouse catalog (request validation resolves names against it).
    fn catalog(&self) -> &Catalog;

    /// The engine's metrics recorder.
    fn recorder(&self) -> &ct_obs::Recorder;

    /// A monotonic freshness stamp: the committed generation number, or for
    /// a sharded engine the sum of per-shard generations (shards refresh
    /// independently, so a single per-forest number does not exist).
    fn generation(&self) -> u64;

    /// Checks that `q` is answerable from the materialized views, without
    /// executing it (the HTTP layer turns a failure into `400`).
    fn plan_check(&self, q: &SliceQuery) -> Result<()>;

    /// The materialized placements plus the generation stamp they were
    /// listed under.
    fn views(&self) -> Result<(u64, Vec<ViewInfo>)>;

    /// Executes one admission-formed batch under a single snapshot per
    /// storage environment (one MVCC pin, plus one per shard for a sharded
    /// engine) and returns the generation stamp with per-query outcomes.
    ///
    /// Execution must be panic-isolated: a poisoned query (or batch) comes
    /// back as `Err` strings rather than unwinding into the caller, so the
    /// server's batcher thread survives.
    fn serve_batch(&self, queries: &[SliceQuery]) -> (u64, Vec<std::result::Result<ServedAnswer, String>>);

    /// The freshness stamps a fresh execution of `q` would carry right now
    /// (see [`ServedAnswer::stamps`]), without pinning or executing
    /// anything. The answer cache probes with these: equality against a
    /// stored entry's stamps proves the entry is current. Returns an empty
    /// vector when the engine is not loaded (an empty probe never matches a
    /// stored entry, so unloaded engines simply miss).
    fn answer_stamps(&self, q: &SliceQuery) -> Vec<AnswerStamp>;

    /// Bulk-incremental refresh through a shared reference (merge-pack the
    /// next generation(s) while concurrent reads keep their pins).
    fn refresh(&self, delta: &Relation) -> Result<()>;

    /// Streams fact rows into the in-memory delta tier(s); returns rows
    /// absorbed. A sharded engine routes rows by the partition key.
    fn ingest(&self, rows: &Relation) -> Result<u64>;

    /// Resident-delta accounting, summed across shards (`None` before load).
    fn delta_stats(&self) -> Option<DeltaStats>;

    /// True when any delta tier has crossed the compaction thresholds.
    fn compaction_due(&self, config: &DeltaConfig) -> bool;

    /// Merge-packs resident delta rows into the next generation(s); `true`
    /// if anything compacted.
    fn compact_delta(&self) -> Result<bool>;

    /// The `/metrics` JSON body.
    fn metrics_json(&self) -> String {
        self.recorder().snapshot().to_json()
    }

    /// Physical I/O summed over every storage environment the engine owns.
    fn io_snapshot(&self) -> IoSnapshot;
}
