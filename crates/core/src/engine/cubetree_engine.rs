//! The Cubetree storage engine (the paper's proposal).

use crate::delta::{DeltaConfig, DeltaStats};
use crate::engine::{BatchResult, RolapEngine, ServedAnswer, ServingEngine, ViewInfo};
use crate::forest::{AnswerStamp, CubetreeForest};
use crate::query::{
    execute_forest_query, execute_forest_query_batch, execute_generation_query_batch_with_delta,
    execute_query_with_delta, plan_generation_query,
};
use ct_common::query::QueryRow;
use ct_common::{AttrId, Catalog, CostModel, CtError, Result, SliceQuery, ViewDef, ViewId};
use ct_cube::Relation;
use ct_rtree::LeafFormat;
use ct_storage::env::DEFAULT_POOL_PAGES;
use ct_storage::{IoSnapshot, Parallelism, StorageEnv};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Configuration of a [`CubetreeEngine`].
#[derive(Clone, Debug)]
pub struct CubetreeConfig {
    /// The logical views to materialize.
    pub views: Vec<ViewDef>,
    /// Extra sort-order replicas `(base view, permuted projection)` — the
    /// paper's §3 "data replication scheme, where selected views are stored
    /// in multiple sort-orders".
    pub replicas: Vec<(ViewId, Vec<AttrId>)>,
    /// Physical leaf format (the paper's zero-elided compression unless
    /// running an ablation).
    pub format: LeafFormat,
    /// Buffer pool size in pages.
    pub pool_pages: usize,
    /// I/O cost model for simulated time.
    pub cost: CostModel,
    /// Worker threads for the sort→pack build and refresh pipelines.
    /// `1` (the default) reproduces the sequential pipeline bit for bit.
    pub threads: usize,
    /// Metrics recorder; disabled by default, which keeps instrumentation
    /// zero-cost (every probe is a branch on `None`).
    pub recorder: ct_obs::Recorder,
    /// Deterministic fault-injection plan; inert by default (every probe is
    /// a branch on `None`). Tests arm it to kill builds and refreshes at
    /// chosen writes or crash points.
    pub faults: ct_storage::FaultPlan,
}

impl CubetreeConfig {
    /// A default configuration over the given views.
    pub fn new(views: Vec<ViewDef>) -> Self {
        CubetreeConfig {
            views,
            replicas: Vec::new(),
            format: LeafFormat::default(),
            pool_pages: DEFAULT_POOL_PAGES,
            cost: CostModel::default(),
            threads: 1,
            recorder: ct_obs::Recorder::disabled(),
            faults: ct_storage::FaultPlan::none(),
        }
    }

    /// Adds a replica.
    pub fn with_replica(mut self, base: ViewId, projection: Vec<AttrId>) -> Self {
        self.replicas.push((base, projection));
        self
    }

    /// Sets the build/refresh worker-thread budget (clamped to at least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Attaches a metrics recorder (see [`ct_obs::Recorder::enabled`]).
    pub fn with_recorder(mut self, recorder: ct_obs::Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Attaches a fault-injection plan (see [`ct_storage::FaultPlan`]).
    pub fn with_faults(mut self, faults: ct_storage::FaultPlan) -> Self {
        self.faults = faults;
        self
    }
}

/// The paper's storage organization: a SelectMapping forest of packed,
/// compressed R-trees.
pub struct CubetreeEngine {
    env: StorageEnv,
    catalog: Catalog,
    config: CubetreeConfig,
    forest: Option<CubetreeForest>,
}

impl CubetreeEngine {
    /// Creates an engine (storage environment included) for `catalog`.
    pub fn new(catalog: Catalog, config: CubetreeConfig) -> Result<Self> {
        let env = StorageEnv::with_config_faults(
            "cubetree",
            config.pool_pages,
            config.cost,
            Parallelism::new(config.threads),
            config.recorder.clone(),
            config.faults.clone(),
        )?;
        Ok(CubetreeEngine { env, catalog, config, forest: None })
    }

    /// Opens (or creates) an engine over a *persistent* directory.
    ///
    /// The directory is created if missing and recovered through
    /// [`StorageEnv::open_at`] (torn manifest commits roll back, orphaned
    /// files are reclaimed). When a committed manifest is present the forest
    /// is re-attached via [`CubetreeForest::open`] and the engine is
    /// immediately queryable; on a fresh directory the caller loads it with
    /// [`RolapEngine::load`] as usual. This is how the sharded layer gives
    /// every shard its own recoverable environment.
    pub fn open_at(dir: &std::path::Path, catalog: Catalog, config: CubetreeConfig) -> Result<Self> {
        let (env, _recovery) = StorageEnv::open_at(
            dir,
            config.pool_pages,
            config.cost,
            Parallelism::new(config.threads),
            config.recorder.clone(),
            config.faults.clone(),
        )?;
        let forest = if env.manifest().entries.is_empty() {
            None
        } else {
            Some(CubetreeForest::open(&env, &config.views, &config.replicas, config.format)?)
        };
        Ok(CubetreeEngine { env, catalog, config, forest })
    }

    /// The built forest (after [`RolapEngine::load`]).
    pub fn forest(&self) -> Option<&CubetreeForest> {
        self.forest.as_ref()
    }

    fn forest_ref(&self) -> Result<&CubetreeForest> {
        self.forest.as_ref().ok_or_else(|| CtError::invalid("engine not loaded yet"))
    }

    /// Bulk-incremental refresh through a shared reference: merge-packs the
    /// next forest generation, commits it atomically and publishes it, while
    /// concurrent readers keep answering from their pinned generation. This
    /// is what makes a mixed read/refresh workload possible; the
    /// [`RolapEngine::update`] entry point delegates here.
    pub fn refresh(&self, delta: &Relation) -> Result<()> {
        self.refresh_stamped(delta, None)
    }

    /// [`CubetreeEngine::refresh`] with an optional commit stamp recorded
    /// in this engine's manifest at the flip point. The sharded layer
    /// stamps each shard's part of a multi-shard refresh with the refresh
    /// id, so crash recovery can tell committed shards from aborted ones
    /// without guessing from generation numbers.
    pub fn refresh_stamped(&self, delta: &Relation, stamp: Option<&str>) -> Result<()> {
        let forest = self.forest_ref()?;
        let _phase = self.env.phase("update");
        forest.update_stamped(&self.env, &self.catalog, delta, stamp)?;
        self.env.pool().flush_all()
    }

    /// Streams fact rows into the in-memory delta tier. The rows are
    /// visible to queries immediately (merged with every tree answer) and
    /// move into the packed trees at the next [`CubetreeEngine::compact_delta`].
    ///
    /// Returns the number of source rows absorbed.
    pub fn ingest(&self, rows: &Relation) -> Result<u64> {
        self.forest_ref()?.ingest(rows)
    }

    /// Merge-packs the resident delta tier into the next forest generation
    /// (the paper's Figure 15 refresh, fed from the memtables instead of an
    /// external batch). Returns `false` when nothing was resident.
    pub fn compact_delta(&self) -> Result<bool> {
        let forest = self.forest_ref()?;
        let _phase = self.env.phase("update");
        let did = forest.compact_delta(&self.env, &self.catalog)?;
        if did {
            self.env.pool().flush_all()?;
        }
        Ok(did)
    }

    /// Resident-delta accounting (`None` before [`RolapEngine::load`]).
    pub fn delta_stats(&self) -> Option<DeltaStats> {
        self.forest.as_ref().map(|f| f.delta().stats())
    }
}

impl RolapEngine for CubetreeEngine {
    fn name(&self) -> &'static str {
        "cubetrees"
    }

    fn load(&mut self, fact: &Relation) -> Result<()> {
        let _phase = self.env.phase("load");
        let forest = CubetreeForest::build(
            &self.env,
            &self.catalog,
            fact,
            &self.config.views,
            &self.config.replicas,
            self.config.format,
        )?;
        self.env.pool().flush_all()?;
        self.forest = Some(forest);
        Ok(())
    }

    fn query(&self, q: &SliceQuery) -> Result<Vec<QueryRow>> {
        execute_forest_query(self.forest_ref()?, &self.env, &self.catalog, q)
    }

    fn query_batch(&self, queries: &[SliceQuery]) -> Result<BatchResult> {
        // The scheduler is reserved for parallel environments: at threads=1
        // the sequential per-query loop is the pinned bit-identical baseline
        // (results *and* IoSnapshot), so nothing may reorder or prefetch.
        if self.env.parallelism().is_parallel() && queries.len() > 1 {
            let out =
                execute_forest_query_batch(self.forest_ref()?, &self.env, &self.catalog, queries)?;
            Ok(BatchResult { results: out.results, sched: Some(out.sched) })
        } else {
            // One pin for the whole loop: the batch answers from a single
            // generation (and one delta snapshot) even if a refresh commits
            // mid-way. Each call still opens its own "query" root phase, so
            // the I/O accounting stays bit-identical to the historical
            // per-query loop (an empty delta merges nothing).
            let forest = self.forest_ref()?;
            let (pin, delta) = forest.pin_with_delta();
            let results = queries
                .iter()
                .map(|q| {
                    execute_query_with_delta(&pin, delta.as_option(), &self.env, &self.catalog, q)
                })
                .collect::<Result<Vec<_>>>()?;
            Ok(BatchResult { results, sched: None })
        }
    }

    fn update(&mut self, delta: &Relation) -> Result<()> {
        self.refresh(delta)
    }

    fn storage_bytes(&self) -> u64 {
        self.forest.as_ref().map_or(0, |f| f.storage_bytes(&self.env))
    }

    fn env(&self) -> &StorageEnv {
        &self.env
    }

    fn catalog(&self) -> &Catalog {
        &self.catalog
    }
}

/// Builds the `/views` listing from one pinned generation. Shared with the
/// sharded engine, which merges per-shard entry counts over the same shape.
pub(crate) fn view_infos(forest: &CubetreeForest, catalog: &Catalog) -> (u64, Vec<ViewInfo>) {
    let pin = forest.pin();
    let views = pin
        .placements()
        .iter()
        .map(|p| ViewInfo {
            id: p.def.id.0,
            name: p.def.display_name(catalog),
            projection: p
                .def
                .projection
                .iter()
                .map(|a| catalog.attr(*a).name.clone())
                .collect(),
            agg: p.def.agg,
            entries: pin.entries_of(p.def.id),
            replica: p.logical != p.def.id,
        })
        .collect();
    (pin.number(), views)
}

impl ServingEngine for CubetreeEngine {
    fn loaded(&self) -> bool {
        self.forest.is_some()
    }

    fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    fn recorder(&self) -> &ct_obs::Recorder {
        self.env.recorder()
    }

    fn generation(&self) -> u64 {
        self.forest.as_ref().map_or(0, CubetreeForest::generation_number)
    }

    fn plan_check(&self, q: &SliceQuery) -> Result<()> {
        let forest = self.forest_ref()?;
        plan_generation_query(&forest.pin(), &self.catalog, q).map(|_| ())
    }

    fn views(&self) -> Result<(u64, Vec<ViewInfo>)> {
        Ok(view_infos(self.forest_ref()?, &self.catalog))
    }

    /// One pin (and one delta snapshot) for the whole batch: answers and
    /// the stamped generation number come from the same snapshot even if a
    /// refresh or delta compaction commits midway.
    ///
    /// Execution is panic-isolated: a panicking query (or batch) is
    /// answered as an error instead of unwinding into the server's batcher
    /// thread. Without this, one poisoned batch would strand every queued
    /// waiter and permanently eat the admission queue's capacity.
    fn serve_batch(
        &self,
        queries: &[SliceQuery],
    ) -> (u64, Vec<std::result::Result<ServedAnswer, String>>) {
        let Some(forest) = self.forest.as_ref() else {
            return (0, queries.iter().map(|_| Err("engine not loaded".to_string())).collect());
        };
        let (pin, delta) = forest.pin_with_delta();
        let generation = pin.number();
        let stamp = AnswerStamp::of(&pin, &delta);
        let served = |rows: Vec<QueryRow>| ServedAnswer { rows, stamps: vec![stamp] };
        let answers = if self.env.parallelism().is_parallel() && queries.len() > 1 {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                execute_generation_query_batch_with_delta(
                    &pin,
                    delta.as_option(),
                    &self.env,
                    &self.catalog,
                    queries,
                )
            }));
            match outcome {
                Ok(Ok(out)) => out.results.into_iter().map(|rows| Ok(served(rows))).collect(),
                Ok(Err(e)) => {
                    let msg = format!("batch execution failed: {e}");
                    queries.iter().map(|_| Err(msg.clone())).collect()
                }
                Err(_) => {
                    let msg = "batch execution panicked".to_string();
                    queries.iter().map(|_| Err(msg.clone())).collect()
                }
            }
        } else {
            queries
                .iter()
                .map(|q| {
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        execute_query_with_delta(
                            &pin,
                            delta.as_option(),
                            &self.env,
                            &self.catalog,
                            q,
                        )
                    }));
                    match outcome {
                        Ok(Ok(rows)) => Ok(served(rows)),
                        Ok(Err(e)) => Err(format!("query execution failed: {e}")),
                        Err(_) => Err("query execution panicked".to_string()),
                    }
                })
                .collect()
        };
        (generation, answers)
    }

    fn answer_stamps(&self, q: &SliceQuery) -> Vec<AnswerStamp> {
        let _ = q; // one environment: every query carries the same stamp
        match self.forest.as_ref() {
            Some(forest) => vec![forest.answer_stamp()],
            None => Vec::new(),
        }
    }

    fn refresh(&self, delta: &Relation) -> Result<()> {
        CubetreeEngine::refresh(self, delta)
    }

    fn ingest(&self, rows: &Relation) -> Result<u64> {
        CubetreeEngine::ingest(self, rows)
    }

    fn delta_stats(&self) -> Option<DeltaStats> {
        CubetreeEngine::delta_stats(self)
    }

    fn compaction_due(&self, config: &DeltaConfig) -> bool {
        self.forest.as_ref().is_some_and(|f| f.delta().should_compact(config))
    }

    fn compact_delta(&self) -> Result<bool> {
        CubetreeEngine::compact_delta(self)
    }

    fn io_snapshot(&self) -> IoSnapshot {
        self.env.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_common::AggFn;

    fn catalog() -> (Catalog, AttrId, AttrId) {
        let mut c = Catalog::new();
        let p = c.add_attr("p", 5);
        let s = c.add_attr("s", 3);
        (c, p, s)
    }

    #[test]
    fn querying_before_load_fails() {
        let (c, p, s) = catalog();
        let views = vec![ViewDef::new(0, vec![p, s], AggFn::Sum)];
        let engine = CubetreeEngine::new(c, CubetreeConfig::new(views)).unwrap();
        assert!(engine.query(&SliceQuery::new(vec![p], vec![])).is_err());
        assert_eq!(engine.storage_bytes(), 0);
        assert!(engine.forest().is_none());
    }

    #[test]
    fn updating_before_load_fails() {
        let (c, p, s) = catalog();
        let views = vec![ViewDef::new(0, vec![p, s], AggFn::Sum)];
        let mut engine = CubetreeEngine::new(c, CubetreeConfig::new(views)).unwrap();
        let delta = Relation::empty(vec![p, s]);
        assert!(engine.update(&delta).is_err());
    }

    #[test]
    fn load_then_query_roundtrip() {
        let (c, p, s) = catalog();
        let views = vec![ViewDef::new(0, vec![p, s], AggFn::Sum)];
        let mut engine = CubetreeEngine::new(c, CubetreeConfig::new(views)).unwrap();
        let fact = Relation::from_fact(vec![p, s], vec![1, 1, 2, 2, 1, 2], &[3, 4, 5]);
        engine.load(&fact).unwrap();
        assert_eq!(engine.name(), "cubetrees");
        assert!(engine.storage_bytes() > 0);
        let rows = engine.query(&SliceQuery::new(vec![s], vec![(p, 1)])).unwrap();
        assert_eq!(rows.len(), 2);
        let total: f64 = rows.iter().map(|r| r.agg).sum();
        assert_eq!(total, 8.0);
    }
}
